//! Minimal, dependency-free subset of the `proptest` API.
//!
//! The build environment is fully offline, so the real `proptest` cannot
//! be fetched. This stand-in keeps the surface the workspace's property
//! tests use — the `proptest!` macro, `Strategy` (ranges, tuples,
//! `prop_map`, `Just`), `any::<T>()`, `proptest::collection::vec`,
//! `ProptestConfig::with_cases`, and the `prop_assert*` macros.
//!
//! Differences from upstream: cases are generated from a deterministic
//! per-test seed (derived from the test's module path and name, so
//! failures reproduce exactly on re-run), and there is no shrinking — a
//! failing case panics with the bound values visible in the assert
//! message instead.

use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

pub mod test_runner {
    /// Deterministic generator (SplitMix64) behind every strategy.
    #[derive(Debug, Clone)]
    pub struct TestRng(u64);

    impl TestRng {
        pub fn from_seed(seed: u64) -> Self {
            TestRng(seed)
        }

        pub fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform sample in `[0, span)` (`span > 0`).
        pub fn below(&mut self, span: u64) -> u64 {
            ((self.next_u64() as u128 * span as u128) >> 64) as u64
        }
    }
}

use test_runner::TestRng;

/// FNV-1a over a string — used to derive per-test seeds.
pub fn fnv1a(s: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in s.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x1_0000_01b3);
    }
    h
}

/// Per-`proptest!` block configuration. Only `cases` is honoured.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 128 }
    }
}

// ---------------------------------------------------------------------------
// Strategies
// ---------------------------------------------------------------------------

/// A generator of test values.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// The result of [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Types with a default "anything goes" strategy (integers are biased
/// toward edge values to sharpen bug-finding without shrinking).
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// Strategy form of [`Arbitrary`]; built by [`any`].
pub struct Any<T>(PhantomData<T>);

impl<T> std::fmt::Debug for Any<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("any")
    }
}

impl<T> Clone for Any<T> {
    fn clone(&self) -> Self {
        Any(PhantomData)
    }
}

pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                // One draw in eight lands on an edge value.
                if rng.below(8) == 0 {
                    match rng.below(4) {
                        0 => 0 as $t,
                        1 => 1 as $t,
                        2 => <$t>::MAX,
                        _ => <$t>::MIN,
                    }
                } else {
                    rng.next_u64() as $t
                }
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Finite values only; property tests here never want NaN traffic.
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64) * 2e6 - 1e6
    }
}

/// Integer types range strategies can produce.
pub trait RangeValue: Copy + PartialOrd {
    fn to_u64(self) -> u64;
    fn from_u64(v: u64) -> Self;
}

macro_rules! impl_range_value {
    ($($t:ty),*) => {$(
        impl RangeValue for $t {
            #[inline]
            fn to_u64(self) -> u64 {
                (self as i128 as u64).wrapping_sub(<$t>::MIN as i128 as u64)
            }
            #[inline]
            fn from_u64(v: u64) -> Self {
                v.wrapping_add(<$t>::MIN as i128 as u64) as $t
            }
        }
    )*};
}

impl_range_value!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<T: RangeValue> Strategy for Range<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let lo = self.start.to_u64();
        let hi = self.end.to_u64();
        assert!(lo < hi, "empty range strategy");
        T::from_u64(lo + rng.below(hi - lo))
    }
}

impl<T: RangeValue> Strategy for RangeInclusive<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let lo = self.start().to_u64();
        let hi = self.end().to_u64();
        assert!(lo <= hi, "empty range strategy");
        let span = hi - lo;
        if span == u64::MAX {
            return T::from_u64(rng.next_u64());
        }
        T::from_u64(lo + rng.below(span + 1))
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($name:ident . $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}

pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::{Range, RangeInclusive};

    /// Inclusive length bounds for [`vec`].
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// `proptest::collection::vec` — a vector of `element` samples with a
    /// length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64;
            let len = self.size.lo + rng.below(span + 1) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Arbitrary, Just,
        ProptestConfig, Strategy,
    };
}

// ---------------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------------

/// The `proptest!` block: expands each `fn` into a `#[test]` that runs the
/// body over `config.cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    ( #![proptest_config($cfg:expr)] $($rest:tt)* ) => {
        $crate::__proptest_fns!{ @cfg($cfg) $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_fns!{ @cfg(<$crate::ProptestConfig as ::core::default::Default>::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    ( @cfg($cfg:expr) ) => {};
    ( @cfg($cfg:expr)
      $(#[$meta:meta])*
      fn $name:ident ( $($params:tt)* ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            let __seed = $crate::fnv1a(concat!(module_path!(), "::", stringify!($name)));
            for __case in 0..__config.cases as u64 {
                let mut __rng = $crate::test_runner::TestRng::from_seed(
                    __seed ^ __case.wrapping_mul(0x9E37_79B9_7F4A_7C15),
                );
                $crate::__proptest_bind!{ __rng, $($params)* }
                $body
            }
        }
        $crate::__proptest_fns!{ @cfg($cfg) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_bind {
    ( $rng:ident $(,)? ) => {};
    ( $rng:ident, $pat:pat in $strat:expr ) => {
        let $pat = $crate::Strategy::generate(&($strat), &mut $rng);
    };
    ( $rng:ident, $pat:pat in $strat:expr, $($rest:tt)* ) => {
        let $pat = $crate::Strategy::generate(&($strat), &mut $rng);
        $crate::__proptest_bind!{ $rng, $($rest)* }
    };
    ( $rng:ident, $id:ident : $ty:ty ) => {
        let $id: $ty = $crate::Arbitrary::arbitrary(&mut $rng);
    };
    ( $rng:ident, $id:ident : $ty:ty, $($rest:tt)* ) => {
        let $id: $ty = $crate::Arbitrary::arbitrary(&mut $rng);
        $crate::__proptest_bind!{ $rng, $($rest)* }
    };
}

/// `prop_assert!` — no shrinking in the stub, so this is `assert!`.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(x in 3usize..10, y in -4i64..=4, flag: bool) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((-4..=4).contains(&y));
            let _ = flag;
        }

        #[test]
        fn vec_lengths_respected(v in crate::collection::vec(any::<u8>(), 2..=5)) {
            prop_assert!((2..=5).contains(&v.len()));
        }

        #[test]
        fn tuples_and_map(pair in (0u8..4, any::<bool>()).prop_map(|(a, b)| (a as usize, b))) {
            prop_assert!(pair.0 < 4);
        }

        #[test]
        fn exact_vec_size(v in crate::collection::vec(any::<u64>(), 4)) {
            prop_assert_eq!(v.len(), 4);
        }
    }

    #[test]
    fn deterministic_per_test() {
        let mut a = crate::test_runner::TestRng::from_seed(9);
        let mut b = crate::test_runner::TestRng::from_seed(9);
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}
