//! Hand-rolled `#[derive(Serialize)]` / `#[derive(Deserialize)]` macros for
//! the vendored serde stub — no `syn`/`quote`, the item token stream is
//! parsed directly and the impls are emitted as source text.
//!
//! Supported shapes (exactly what the workspace uses):
//! - structs with named fields → map of field name → value
//! - tuple structs: 1 field is transparent (newtype), n fields → sequence
//! - unit structs → null
//! - enums with any mix of unit / newtype / tuple / struct variants,
//!   externally tagged like real serde (`"Unit"`, `{"Variant": …}`)
//! - container attributes `#[serde(try_from = "T", into = "T")]`
//!
//! Generics are not supported (nothing in the workspace derives on a
//! generic type); attempting it fails with a clear compile error.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, Mode::Ser)
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, Mode::De)
}

#[derive(Clone, Copy, PartialEq)]
enum Mode {
    Ser,
    De,
}

struct Field {
    name: String,
}

enum Shape {
    Unit,
    Named(Vec<Field>),
    Tuple(usize),
}

struct Variant {
    name: String,
    shape: Shape,
}

struct Item {
    name: String,
    is_enum: bool,
    shape: Shape,           // for structs
    variants: Vec<Variant>, // for enums
    try_from: Option<String>,
    into: Option<String>,
}

fn expand(input: TokenStream, mode: Mode) -> TokenStream {
    let item = parse_item(input);
    let code = match mode {
        Mode::Ser => gen_serialize(&item),
        Mode::De => gen_deserialize(&item),
    };
    code.parse()
        .expect("serde_derive: generated code must parse")
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    let mut try_from = None;
    let mut into = None;

    skip_attrs(&tokens, &mut i, &mut try_from, &mut into);
    skip_visibility(&tokens, &mut i);

    let keyword = expect_ident(&tokens, &mut i);
    let is_enum = match keyword.as_str() {
        "struct" => false,
        "enum" => true,
        other => panic!("serde_derive: expected struct or enum, found `{other}`"),
    };
    let name = expect_ident(&tokens, &mut i);
    if matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde_derive: generic types are not supported by the offline stub");
    }

    if is_enum {
        let body = expect_group(&tokens, &mut i, Delimiter::Brace);
        let variants = parse_variants(body);
        Item {
            name,
            is_enum,
            shape: Shape::Unit,
            variants,
            try_from,
            into,
        }
    } else {
        let shape = parse_struct_shape(&tokens, &mut i);
        Item {
            name,
            is_enum,
            shape,
            variants: Vec::new(),
            try_from,
            into,
        }
    }
}

/// Skips leading attributes, capturing `#[serde(try_from/into = "…")]`.
fn skip_attrs(
    tokens: &[TokenTree],
    i: &mut usize,
    try_from: &mut Option<String>,
    into: &mut Option<String>,
) {
    while matches!(tokens.get(*i), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
        *i += 1;
        let TokenTree::Group(g) = &tokens[*i] else {
            panic!("serde_derive: malformed attribute");
        };
        let inner: Vec<TokenTree> = g.stream().into_iter().collect();
        if matches!(inner.first(), Some(TokenTree::Ident(id)) if id.to_string() == "serde") {
            if let Some(TokenTree::Group(args)) = inner.get(1) {
                parse_serde_attr(args.stream(), try_from, into);
            }
        }
        *i += 1;
    }
}

/// Parses `try_from = "T", into = "T"` inside a `#[serde(…)]` attribute.
fn parse_serde_attr(stream: TokenStream, try_from: &mut Option<String>, into: &mut Option<String>) {
    let toks: Vec<TokenTree> = stream.into_iter().collect();
    let mut j = 0;
    while j < toks.len() {
        let TokenTree::Ident(key) = &toks[j] else {
            panic!("serde_derive: unsupported #[serde] attribute syntax");
        };
        let key = key.to_string();
        let is_eq = matches!(&toks.get(j + 1), Some(TokenTree::Punct(p)) if p.as_char() == '=');
        let value = if is_eq {
            match &toks.get(j + 2) {
                Some(TokenTree::Literal(lit)) => {
                    let s = lit.to_string();
                    j += 3;
                    s.trim_matches('"').to_string()
                }
                _ => panic!("serde_derive: expected string literal in #[serde({key} = …)]"),
            }
        } else {
            panic!("serde_derive: unsupported #[serde({key})] attribute (offline stub)");
        };
        match key.as_str() {
            "try_from" => *try_from = Some(value),
            "into" => *into = Some(value),
            other => panic!("serde_derive: unsupported #[serde({other} = …)] (offline stub)"),
        }
        if matches!(&toks.get(j), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            j += 1;
        }
    }
}

fn skip_visibility(tokens: &[TokenTree], i: &mut usize) {
    if matches!(tokens.get(*i), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
        *i += 1;
        if matches!(tokens.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
        {
            *i += 1;
        }
    }
}

fn expect_ident(tokens: &[TokenTree], i: &mut usize) -> String {
    match tokens.get(*i) {
        Some(TokenTree::Ident(id)) => {
            *i += 1;
            id.to_string()
        }
        other => panic!("serde_derive: expected identifier, found {other:?}"),
    }
}

fn expect_group(tokens: &[TokenTree], i: &mut usize, delim: Delimiter) -> TokenStream {
    match tokens.get(*i) {
        Some(TokenTree::Group(g)) if g.delimiter() == delim => {
            *i += 1;
            g.stream()
        }
        other => panic!("serde_derive: expected {delim:?} group, found {other:?}"),
    }
}

fn parse_struct_shape(tokens: &[TokenTree], i: &mut usize) -> Shape {
    match tokens.get(*i) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
            let fields = parse_named_fields(g.stream());
            *i += 1;
            Shape::Named(fields)
        }
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
            let arity = count_tuple_fields(g.stream());
            *i += 1;
            Shape::Tuple(arity)
        }
        Some(TokenTree::Punct(p)) if p.as_char() == ';' => Shape::Unit,
        other => panic!("serde_derive: unexpected struct body {other:?}"),
    }
}

/// Parses `name: Type, …` field lists, skipping attributes and visibility.
/// Commas inside angle brackets (`Vec<(A, B)>`, `HashMap<K, V>`) belong to
/// the type, tracked with an angle-bracket depth counter.
fn parse_named_fields(stream: TokenStream) -> Vec<Field> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut i = 0;
    let mut fields = Vec::new();
    let mut ignored = (None, None);
    while i < tokens.len() {
        skip_attrs(&tokens, &mut i, &mut ignored.0, &mut ignored.1);
        if i >= tokens.len() {
            break;
        }
        skip_visibility(&tokens, &mut i);
        let name = expect_ident(&tokens, &mut i);
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => panic!("serde_derive: expected `:` after field `{name}`, found {other:?}"),
        }
        skip_type_until_comma(&tokens, &mut i);
        fields.push(Field { name });
    }
    fields
}

/// Advances past one type, stopping after the `,` that ends it (or at EOF).
fn skip_type_until_comma(tokens: &[TokenTree], i: &mut usize) {
    let mut angle_depth = 0i32;
    while *i < tokens.len() {
        if let TokenTree::Punct(p) = &tokens[*i] {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => {
                    *i += 1;
                    return;
                }
                _ => {}
            }
        }
        *i += 1;
    }
}

/// Counts the comma-separated types of a tuple struct / tuple variant body.
fn count_tuple_fields(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut i = 0;
    let mut count = 0;
    while i < tokens.len() {
        // Each call consumes one `vis Type,` chunk.
        let mut ignored = (None, None);
        skip_attrs(&tokens, &mut i, &mut ignored.0, &mut ignored.1);
        if i >= tokens.len() {
            break;
        }
        skip_visibility(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        skip_type_until_comma(&tokens, &mut i);
        count += 1;
    }
    count
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut i = 0;
    let mut variants = Vec::new();
    let mut ignored = (None, None);
    while i < tokens.len() {
        skip_attrs(&tokens, &mut i, &mut ignored.0, &mut ignored.1);
        if i >= tokens.len() {
            break;
        }
        let name = expect_ident(&tokens, &mut i);
        let shape = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream());
                i += 1;
                Shape::Named(fields)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let arity = count_tuple_fields(g.stream());
                i += 1;
                Shape::Tuple(arity)
            }
            _ => Shape::Unit,
        };
        // Skip an optional `= discriminant` and the trailing comma.
        while i < tokens.len() {
            if let TokenTree::Punct(p) = &tokens[i] {
                if p.as_char() == ',' {
                    i += 1;
                    break;
                }
            }
            i += 1;
        }
        variants.push(Variant { name, shape });
    }
    variants
}

// ---------------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------------

fn gen_serialize(item: &Item) -> String {
    let name = &item.name;
    let body = if let Some(into_ty) = &item.into {
        format!(
            "let __converted: {into_ty} = \
             ::core::convert::Into::into(::core::clone::Clone::clone(self));\n\
             ::serde::Serialize::to_content(&__converted)"
        )
    } else if item.is_enum {
        let arms: Vec<String> = item
            .variants
            .iter()
            .map(|v| ser_variant_arm(name, v))
            .collect();
        format!("match self {{\n{}\n}}", arms.join("\n"))
    } else {
        ser_struct_body(&item.shape)
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
         fn to_content(&self) -> ::serde::Content {{\n{body}\n}}\n}}"
    )
}

fn ser_struct_body(shape: &Shape) -> String {
    match shape {
        Shape::Unit => "::serde::Content::Null".to_string(),
        Shape::Named(fields) => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from(\"{0}\"), \
                         ::serde::Serialize::to_content(&self.{0}))",
                        f.name
                    )
                })
                .collect();
            format!("::serde::Content::Map(::std::vec![{}])", entries.join(", "))
        }
        Shape::Tuple(1) => "::serde::Serialize::to_content(&self.0)".to_string(),
        Shape::Tuple(n) => {
            let items: Vec<String> = (0..*n)
                .map(|idx| format!("::serde::Serialize::to_content(&self.{idx})"))
                .collect();
            format!("::serde::Content::Seq(::std::vec![{}])", items.join(", "))
        }
    }
}

fn ser_variant_arm(enum_name: &str, v: &Variant) -> String {
    let vname = &v.name;
    match &v.shape {
        Shape::Unit => format!(
            "{enum_name}::{vname} => \
             ::serde::Content::Str(::std::string::String::from(\"{vname}\")),"
        ),
        Shape::Tuple(n) => {
            let binders: Vec<String> = (0..*n).map(|idx| format!("__f{idx}")).collect();
            let inner = if *n == 1 {
                "::serde::Serialize::to_content(__f0)".to_string()
            } else {
                let items: Vec<String> = binders
                    .iter()
                    .map(|b| format!("::serde::Serialize::to_content({b})"))
                    .collect();
                format!("::serde::Content::Seq(::std::vec![{}])", items.join(", "))
            };
            format!(
                "{enum_name}::{vname}({binds}) => ::serde::Content::Map(::std::vec![\
                 (::std::string::String::from(\"{vname}\"), {inner})]),",
                binds = binders.join(", ")
            )
        }
        Shape::Named(fields) => {
            let binders: Vec<String> = fields.iter().map(|f| f.name.clone()).collect();
            let entries: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from(\"{0}\"), \
                         ::serde::Serialize::to_content({0}))",
                        f.name
                    )
                })
                .collect();
            format!(
                "{enum_name}::{vname} {{ {binds} }} => ::serde::Content::Map(::std::vec![\
                 (::std::string::String::from(\"{vname}\"), \
                 ::serde::Content::Map(::std::vec![{entries}]))]),",
                binds = binders.join(", "),
                entries = entries.join(", ")
            )
        }
    }
}

fn gen_deserialize(item: &Item) -> String {
    let name = &item.name;
    let body = if let Some(from_ty) = &item.try_from {
        format!(
            "let __raw: {from_ty} = ::serde::Deserialize::from_content(__content)?;\n\
             ::core::convert::TryFrom::try_from(__raw)\
             .map_err(|e| ::serde::Error::custom(::std::format!(\"{{e}}\")))"
        )
    } else if item.is_enum {
        de_enum_body(name, &item.variants)
    } else {
        de_struct_body(name, &item.shape)
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
         fn from_content(__content: &::serde::Content) \
         -> ::core::result::Result<Self, ::serde::Error> {{\n{body}\n}}\n}}"
    )
}

/// Builds a struct-literal (or tuple call) from serialized content bound to
/// `__content`, for a plain struct.
fn de_struct_body(name: &str, shape: &Shape) -> String {
    match shape {
        Shape::Unit => format!("::core::result::Result::Ok({name})"),
        Shape::Named(fields) => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "{0}: ::serde::Deserialize::from_content(\
                         ::serde::__field(__entries, \"{0}\", \"{name}\")?)?,",
                        f.name
                    )
                })
                .collect();
            format!(
                "match __content {{\n\
                 ::serde::Content::Map(__entries) => \
                 ::core::result::Result::Ok({name} {{ {inits} }}),\n\
                 _ => ::core::result::Result::Err(::serde::Error::custom(\
                 \"expected map for struct {name}\")),\n}}",
                inits = inits.join(" ")
            )
        }
        Shape::Tuple(1) => format!(
            "::core::result::Result::Ok({name}(\
             ::serde::Deserialize::from_content(__content)?))"
        ),
        Shape::Tuple(n) => {
            let inits: Vec<String> = (0..*n)
                .map(|idx| format!("::serde::Deserialize::from_content(&__items[{idx}])?,"))
                .collect();
            format!(
                "match __content {{\n\
                 ::serde::Content::Seq(__items) if __items.len() == {n} => \
                 ::core::result::Result::Ok({name}({inits})),\n\
                 _ => ::core::result::Result::Err(::serde::Error::custom(\
                 \"expected {n}-element sequence for {name}\")),\n}}",
                inits = inits.join(" ")
            )
        }
    }
}

fn de_enum_body(name: &str, variants: &[Variant]) -> String {
    // Unit variants arrive as a bare string.
    let unit_arms: Vec<String> = variants
        .iter()
        .filter(|v| matches!(v.shape, Shape::Unit))
        .map(|v| {
            format!(
                "\"{vname}\" => ::core::result::Result::Ok({name}::{vname}),",
                vname = v.name
            )
        })
        .collect();
    // Payload variants arrive as a single-entry map keyed by variant name.
    let payload_arms: Vec<String> = variants
        .iter()
        .filter(|v| !matches!(v.shape, Shape::Unit))
        .map(|v| de_payload_variant_arm(name, v))
        .collect();
    format!(
        "match __content {{\n\
         ::serde::Content::Str(__s) => match __s.as_str() {{\n{units}\n\
         __other => ::core::result::Result::Err(::serde::Error::custom(\
         ::std::format!(\"unknown {name} variant `{{__other}}`\"))),\n}},\n\
         ::serde::Content::Map(__entries) if __entries.len() == 1 => {{\n\
         let (__tag, __value) = &__entries[0];\n\
         match __tag.as_str() {{\n{payloads}\n\
         __other => ::core::result::Result::Err(::serde::Error::custom(\
         ::std::format!(\"unknown {name} variant `{{__other}}`\"))),\n}}\n}},\n\
         _ => ::core::result::Result::Err(::serde::Error::custom(\
         \"expected string or single-entry map for enum {name}\")),\n}}",
        units = unit_arms.join("\n"),
        payloads = payload_arms.join("\n"),
    )
}

fn de_payload_variant_arm(name: &str, v: &Variant) -> String {
    let vname = &v.name;
    match &v.shape {
        Shape::Unit => unreachable!("unit variants handled via the string arm"),
        Shape::Tuple(1) => format!(
            "\"{vname}\" => ::core::result::Result::Ok({name}::{vname}(\
             ::serde::Deserialize::from_content(__value)?)),"
        ),
        Shape::Tuple(n) => {
            let inits: Vec<String> = (0..*n)
                .map(|idx| format!("::serde::Deserialize::from_content(&__items[{idx}])?,"))
                .collect();
            format!(
                "\"{vname}\" => match __value {{\n\
                 ::serde::Content::Seq(__items) if __items.len() == {n} => \
                 ::core::result::Result::Ok({name}::{vname}({inits})),\n\
                 _ => ::core::result::Result::Err(::serde::Error::custom(\
                 \"expected {n}-element sequence for {name}::{vname}\")),\n}},",
                inits = inits.join(" ")
            )
        }
        Shape::Named(fields) => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "{0}: ::serde::Deserialize::from_content(\
                         ::serde::__field(__fields, \"{0}\", \"{name}::{vname}\")?)?,",
                        f.name
                    )
                })
                .collect();
            format!(
                "\"{vname}\" => match __value {{\n\
                 ::serde::Content::Map(__fields) => \
                 ::core::result::Result::Ok({name}::{vname} {{ {inits} }}),\n\
                 _ => ::core::result::Result::Err(::serde::Error::custom(\
                 \"expected map for {name}::{vname}\")),\n}},",
                inits = inits.join(" ")
            )
        }
    }
}
