//! Minimal, dependency-free subset of the `serde` data model.
//!
//! The build environment is fully offline, so the real `serde` cannot be
//! fetched. This vendored stand-in keeps the parts the workspace uses:
//! `Serialize`/`Deserialize` traits (routed through a self-describing
//! [`Content`] tree instead of serde's visitor machinery), derive macros
//! (re-exported from the sibling `serde_derive` stub), and impls for the
//! std types that appear in workspace structs.
//!
//! The wire behaviour mirrors serde's defaults: structs become maps,
//! enums are externally tagged (`"Unit"`, `{"Variant": …}`), newtype
//! structs are transparent, and `#[serde(try_from/into)]` container
//! attributes delegate through the conversion types.

use std::fmt;

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// A self-describing serialized value — the stub's entire data model.
#[derive(Debug, Clone, PartialEq)]
pub enum Content {
    Null,
    Bool(bool),
    U64(u64),
    I64(i64),
    F64(f64),
    Str(String),
    Seq(Vec<Content>),
    /// Insertion-ordered map (struct fields keep declaration order).
    Map(Vec<(String, Content)>),
}

impl Content {
    fn kind(&self) -> &'static str {
        match self {
            Content::Null => "null",
            Content::Bool(_) => "bool",
            Content::U64(_) => "unsigned integer",
            Content::I64(_) => "signed integer",
            Content::F64(_) => "float",
            Content::Str(_) => "string",
            Content::Seq(_) => "sequence",
            Content::Map(_) => "map",
        }
    }
}

/// Serialization / deserialization error.
#[derive(Debug, Clone)]
pub struct Error(String);

impl Error {
    pub fn custom<T: fmt::Display>(msg: T) -> Self {
        Error(msg.to_string())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

pub trait Serialize {
    fn to_content(&self) -> Content;
}

pub trait Deserialize: Sized {
    fn from_content(content: &Content) -> Result<Self, Error>;
}

/// Looks up a struct field by name in a serialized map (derive support).
pub fn __field<'a>(
    entries: &'a [(String, Content)],
    name: &str,
    ty: &str,
) -> Result<&'a Content, Error> {
    entries
        .iter()
        .find(|(k, _)| k == name)
        .map(|(_, v)| v)
        .ok_or_else(|| Error::custom(format!("missing field `{name}` for `{ty}`")))
}

fn unexpected(expected: &str, got: &Content) -> Error {
    Error::custom(format!("expected {expected}, found {}", got.kind()))
}

// ---------------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------------

impl Serialize for bool {
    fn to_content(&self) -> Content {
        Content::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_content(c: &Content) -> Result<Self, Error> {
        match c {
            Content::Bool(b) => Ok(*b),
            other => Err(unexpected("bool", other)),
        }
    }
}

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content {
                Content::U64(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_content(c: &Content) -> Result<Self, Error> {
                let v = match c {
                    Content::U64(v) => *v,
                    Content::I64(v) if *v >= 0 => *v as u64,
                    other => return Err(unexpected("unsigned integer", other)),
                };
                <$t>::try_from(v)
                    .map_err(|_| Error::custom(format!("integer {v} out of range")))
            }
        }
    )*};
}

impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content {
                let v = *self as i64;
                if v >= 0 {
                    Content::U64(v as u64)
                } else {
                    Content::I64(v)
                }
            }
        }
        impl Deserialize for $t {
            fn from_content(c: &Content) -> Result<Self, Error> {
                let v = match c {
                    Content::I64(v) => *v,
                    Content::U64(v) => i64::try_from(*v)
                        .map_err(|_| Error::custom(format!("integer {v} out of range")))?,
                    other => return Err(unexpected("signed integer", other)),
                };
                <$t>::try_from(v)
                    .map_err(|_| Error::custom(format!("integer {v} out of range")))
            }
        }
    )*};
}

impl_signed!(i8, i16, i32, i64, isize);

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content {
                Content::F64(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_content(c: &Content) -> Result<Self, Error> {
                match c {
                    Content::F64(v) => Ok(*v as $t),
                    Content::U64(v) => Ok(*v as $t),
                    Content::I64(v) => Ok(*v as $t),
                    Content::Null => Ok(<$t>::NAN),
                    other => Err(unexpected("float", other)),
                }
            }
        }
    )*};
}

impl_float!(f32, f64);

impl Serialize for char {
    fn to_content(&self) -> Content {
        Content::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_content(c: &Content) -> Result<Self, Error> {
        match c {
            Content::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            other => Err(unexpected("single-character string", other)),
        }
    }
}

impl Serialize for String {
    fn to_content(&self) -> Content {
        Content::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_content(c: &Content) -> Result<Self, Error> {
        match c {
            Content::Str(s) => Ok(s.clone()),
            other => Err(unexpected("string", other)),
        }
    }
}

impl Serialize for str {
    fn to_content(&self) -> Content {
        Content::Str(self.to_owned())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_content(&self) -> Content {
        (**self).to_content()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_content(&self) -> Content {
        (**self).to_content()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_content(c: &Content) -> Result<Self, Error> {
        T::from_content(c).map(Box::new)
    }
}

// ---------------------------------------------------------------------------
// Containers
// ---------------------------------------------------------------------------

impl<T: Serialize> Serialize for Option<T> {
    fn to_content(&self) -> Content {
        match self {
            Some(v) => v.to_content(),
            None => Content::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_content(c: &Content) -> Result<Self, Error> {
        match c {
            Content::Null => Ok(None),
            other => T::from_content(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_content(&self) -> Content {
        self.as_slice().to_content()
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_content(c: &Content) -> Result<Self, Error> {
        match c {
            Content::Seq(items) => items.iter().map(T::from_content).collect(),
            other => Err(unexpected("sequence", other)),
        }
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_content(&self) -> Content {
        self.as_slice().to_content()
    }
}

impl<T: Deserialize + fmt::Debug, const N: usize> Deserialize for [T; N] {
    fn from_content(c: &Content) -> Result<Self, Error> {
        let v = Vec::<T>::from_content(c)?;
        let n = v.len();
        <[T; N]>::try_from(v)
            .map_err(|_| Error::custom(format!("expected array of length {N}, found {n}")))
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident . $idx:tt),+ ; $len:expr))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_content(&self) -> Content {
                Content::Seq(vec![$(self.$idx.to_content()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_content(c: &Content) -> Result<Self, Error> {
                match c {
                    Content::Seq(items) if items.len() == $len => {
                        Ok(($($name::from_content(&items[$idx])?,)+))
                    }
                    other => Err(unexpected("tuple sequence", other)),
                }
            }
        }
    )*};
}

impl_tuple! {
    (A.0; 1)
    (A.0, B.1; 2)
    (A.0, B.1, C.2; 3)
    (A.0, B.1, C.2, D.3; 4)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_roundtrip() {
        assert_eq!(u64::from_content(&42u64.to_content()).unwrap(), 42);
        assert_eq!(i64::from_content(&(-9i64).to_content()).unwrap(), -9);
        assert_eq!(f64::from_content(&2.5f64.to_content()).unwrap(), 2.5);
        assert_eq!(f64::from_content(&Content::U64(3)).unwrap(), 3.0);
        assert_eq!(
            String::from_content(&"hi".to_content()).unwrap(),
            "hi".to_string()
        );
        assert!(u8::from_content(&Content::U64(300)).is_err());
    }

    #[test]
    fn containers_roundtrip() {
        let v = vec![Some(1u32), None, Some(7)];
        let c = v.to_content();
        assert_eq!(Vec::<Option<u32>>::from_content(&c).unwrap(), v);
        let t = (1usize, "x".to_string(), true);
        assert_eq!(
            <(usize, String, bool)>::from_content(&t.to_content()).unwrap(),
            t
        );
    }
}
