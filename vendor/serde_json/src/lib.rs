//! Minimal offline JSON codec over the vendored serde stub's [`Content`]
//! data model: `to_string`, `to_string_pretty`, and `from_str` — the only
//! entry points the workspace uses.
//!
//! Formatting matches real `serde_json` where tests can observe it:
//! compact output has no whitespace, struct fields keep declaration order,
//! floats print via Rust's shortest round-trip `{:?}` (so `2.0`, not `2`),
//! and non-finite floats serialize as `null`.

use serde::{Content, Deserialize, Serialize};
use std::fmt;

/// JSON serialization/deserialization error.
#[derive(Debug, Clone)]
pub struct Error(String);

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Error(msg.into())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Error(e.to_string())
    }
}

pub type Result<T> = std::result::Result<T, Error>;

/// Serializes a value to compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_content(&value.to_content(), &mut out, None, 0);
    Ok(out)
}

/// Serializes a value to 2-space-indented JSON.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_content(&value.to_content(), &mut out, Some(2), 0);
    Ok(out)
}

/// Deserializes a value from a JSON string.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T> {
    let mut parser = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    parser.skip_ws();
    let content = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(Error::new(format!(
            "trailing characters at offset {}",
            parser.pos
        )));
    }
    Ok(T::from_content(&content)?)
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

fn write_content(c: &Content, out: &mut String, indent: Option<usize>, depth: usize) {
    match c {
        Content::Null => out.push_str("null"),
        Content::Bool(true) => out.push_str("true"),
        Content::Bool(false) => out.push_str("false"),
        Content::U64(v) => {
            out.push_str(itoa_buf(*v).as_str());
        }
        Content::I64(v) => {
            if *v < 0 {
                out.push('-');
                out.push_str(itoa_buf(v.unsigned_abs()).as_str());
            } else {
                out.push_str(itoa_buf(*v as u64).as_str());
            }
        }
        Content::F64(v) => {
            if v.is_finite() {
                // `{:?}` is Rust's shortest round-trip float formatting and
                // always keeps a decimal point or exponent — matching
                // serde_json's "2.0" rather than Display's "2".
                out.push_str(&format!("{v:?}"));
            } else {
                out.push_str("null");
            }
        }
        Content::Str(s) => write_json_string(s, out),
        Content::Seq(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_content(item, out, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Content::Map(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, v)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_json_string(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_content(v, out, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn itoa_buf(v: u64) -> String {
    v.to_string()
}

fn write_json_string(s: &str, out: &mut String) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn err(&self, msg: &str) -> Error {
        Error::new(format!("{msg} at offset {}", self.pos))
    }

    fn expect_literal(&mut self, lit: &str) -> Result<()> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(())
        } else {
            Err(self.err(&format!("expected `{lit}`")))
        }
    }

    fn parse_value(&mut self) -> Result<Content> {
        match self.peek() {
            Some(b'n') => {
                self.expect_literal("null")?;
                Ok(Content::Null)
            }
            Some(b't') => {
                self.expect_literal("true")?;
                Ok(Content::Bool(true))
            }
            Some(b'f') => {
                self.expect_literal("false")?;
                Ok(Content::Bool(false))
            }
            Some(b'"') => self.parse_string().map(Content::Str),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b'-') | Some(b'0'..=b'9') => self.parse_number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn parse_array(&mut self) -> Result<Content> {
        self.pos += 1; // '['
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Content::Seq(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Content::Seq(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Content> {
        self.pos += 1; // '{'
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Content::Map(entries));
        }
        loop {
            self.skip_ws();
            if self.peek() != Some(b'"') {
                return Err(self.err("expected string object key"));
            }
            let key = self.parse_string()?;
            self.skip_ws();
            if self.peek() != Some(b':') {
                return Err(self.err("expected `:`"));
            }
            self.pos += 1;
            self.skip_ws();
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Content::Map(entries));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String> {
        self.pos += 1; // opening quote
        let mut out = String::new();
        loop {
            let b = self.peek().ok_or_else(|| self.err("unterminated string"))?;
            match b {
                b'"' => {
                    self.pos += 1;
                    return Ok(out);
                }
                b'\\' => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("bad escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{08}'),
                        b'f' => out.push('\u{0C}'),
                        b'u' => {
                            let cp = self.parse_hex4()?;
                            // Handle UTF-16 surrogate pairs.
                            let ch = if (0xD800..0xDC00).contains(&cp) {
                                self.expect_literal("\\u")?;
                                let low = self.parse_hex4()?;
                                if !(0xDC00..0xE000).contains(&low) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                let c = 0x10000 + ((cp - 0xD800) << 10) + (low - 0xDC00);
                                char::from_u32(c).ok_or_else(|| self.err("invalid codepoint"))?
                            } else {
                                char::from_u32(cp).ok_or_else(|| self.err("invalid codepoint"))?
                            };
                            out.push(ch);
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                _ => {
                    // Consume one UTF-8 character (input is a valid &str).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid utf-8"))?;
                    let ch = rest.chars().next().unwrap();
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| self.err("bad \\u escape"))?;
        let v = u32::from_str_radix(hex, 16).map_err(|_| self.err("bad \\u escape"))?;
        self.pos += 4;
        Ok(v)
    }

    fn parse_number(&mut self) -> Result<Content> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("bad number"))?;
        if is_float {
            text.parse::<f64>()
                .map(Content::F64)
                .map_err(|_| self.err("bad number"))
        } else if let Some(stripped) = text.strip_prefix('-') {
            stripped
                .parse::<u64>()
                .ok()
                .and_then(|v| i64::try_from(v).ok().map(|v| Content::I64(-v)))
                .ok_or_else(|| self.err("integer out of range"))
        } else {
            text.parse::<u64>()
                .map(Content::U64)
                .map_err(|_| self.err("integer out of range"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_roundtrip() {
        assert_eq!(to_string(&42u64).unwrap(), "42");
        assert_eq!(to_string(&-3i64).unwrap(), "-3");
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(to_string(&2.0f64).unwrap(), "2.0");
        assert_eq!(to_string(&0.1f64).unwrap(), "0.1");
        assert_eq!(from_str::<u64>("42").unwrap(), 42);
        assert_eq!(from_str::<f64>("2.5e1").unwrap(), 25.0);
        assert_eq!(from_str::<f64>("7").unwrap(), 7.0);
        assert_eq!(from_str::<i64>("-3").unwrap(), -3);
    }

    #[test]
    fn strings_escape_and_unescape() {
        let s = "he said \"hi\\\"\n\tünïcode \u{1F600}".to_string();
        let json = to_string(&s).unwrap();
        assert_eq!(from_str::<String>(&json).unwrap(), s);
        assert_eq!(
            from_str::<String>("\"\\ud83d\\ude00\"").unwrap(),
            "\u{1F600}"
        );
    }

    #[test]
    fn collections_roundtrip() {
        let v: Vec<Option<u32>> = vec![Some(1), None, Some(3)];
        let json = to_string(&v).unwrap();
        assert_eq!(json, "[1,null,3]");
        assert_eq!(from_str::<Vec<Option<u32>>>(&json).unwrap(), v);
    }

    #[test]
    fn pretty_indents() {
        let v = vec![1u32, 2];
        assert_eq!(to_string_pretty(&v).unwrap(), "[\n  1,\n  2\n]");
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<u64>("4 2").is_err());
        assert!(from_str::<Vec<u64>>("[1,").is_err());
        assert!(from_str::<String>("\"oops").is_err());
    }
}
