//! Minimal offline criterion-compatible benchmark harness.
//!
//! The build environment cannot fetch the real `criterion`, so this
//! stand-in implements the API surface the workspace's benches use —
//! `criterion_group!`/`criterion_main!`, `Criterion::benchmark_group`,
//! group configuration (`sample_size`, `warm_up_time`,
//! `measurement_time`, `throughput`), `bench_with_input`/`bench_function`
//! with a `Bencher::iter` closure, `BenchmarkId`, and
//! `Throughput::Elements`.
//!
//! Measurement is honest wall-clock timing (warm-up, then timed batches),
//! reported as mean ns/iter plus derived element throughput. There are no
//! statistical refinements or HTML reports; measurement windows are
//! capped (default 500 ms, override via `CRITERION_STUB_MEASURE_MS`) so
//! full `cargo bench` sweeps stay tractable.

use std::fmt;
use std::time::{Duration, Instant};

/// Throughput annotation for a benchmark group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// Identifier for one benchmark point: a function name plus a parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            text: format!("{}/{}", function_name.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            text: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { text: s.to_owned() }
    }
}

impl From<String> for BenchmarkId {
    fn from(text: String) -> Self {
        BenchmarkId { text }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.text)
    }
}

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        let name = name.into();
        eprintln!("group {name}");
        BenchmarkGroup {
            name,
            warm_up: Duration::from_millis(50),
            measurement: Duration::from_millis(300),
            throughput: None,
        }
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut group = BenchmarkGroup {
            name: String::new(),
            warm_up: Duration::from_millis(50),
            measurement: Duration::from_millis(300),
            throughput: None,
        };
        group.run_one(&id.into(), f);
        self
    }
}

/// A named group of related benchmark points.
#[derive(Debug)]
pub struct BenchmarkGroup {
    name: String,
    warm_up: Duration,
    measurement: Duration,
    throughput: Option<Throughput>,
}

fn measurement_cap() -> Duration {
    std::env::var("CRITERION_STUB_MEASURE_MS")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .map(Duration::from_millis)
        .unwrap_or_else(|| Duration::from_millis(500))
}

impl BenchmarkGroup {
    /// Kept for API compatibility; the stub sizes samples by time instead.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up = d.min(Duration::from_millis(200));
        self
    }

    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement = d.min(measurement_cap());
        self
    }

    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(&mut self, id: BenchmarkId, input: &I, mut f: F)
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.run_one(&id, |b| f(b, input));
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F)
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        self.run_one(&id, f);
    }

    fn run_one<F>(&mut self, id: &BenchmarkId, mut f: F)
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            warm_up: self.warm_up,
            measurement: self.measurement,
            iters: 0,
            elapsed: Duration::ZERO,
        };
        f(&mut bencher);
        let label = if self.name.is_empty() {
            id.to_string()
        } else {
            format!("{}/{id}", self.name)
        };
        if bencher.iters == 0 {
            println!("{label:<60} (no iterations)");
            return;
        }
        let mean_ns = bencher.elapsed.as_nanos() as f64 / bencher.iters as f64;
        let mut line = format!(
            "{label:<60} {mean_ns:>14.1} ns/iter ({} iters)",
            bencher.iters
        );
        if let Some(Throughput::Elements(elems)) = self.throughput {
            if mean_ns > 0.0 {
                let per_sec = elems as f64 * 1e9 / mean_ns;
                line.push_str(&format!("  {per_sec:>14.0} elem/s"));
            }
        }
        println!("{line}");
    }

    pub fn finish(self) {}
}

/// Timing loop handle passed to benchmark closures.
#[derive(Debug)]
pub struct Bencher {
    warm_up: Duration,
    measurement: Duration,
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up: at least one call, up to the warm-up window.
        let warm_start = Instant::now();
        loop {
            std::hint::black_box(f());
            if warm_start.elapsed() >= self.warm_up {
                break;
            }
        }
        // Measurement: timed batches until the window closes.
        let mut iters = 0u64;
        let mut elapsed = Duration::ZERO;
        let mut batch = 1u64;
        while elapsed < self.measurement {
            let start = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(f());
            }
            elapsed += start.elapsed();
            iters += batch;
            // Grow batches so timer overhead stays negligible for fast
            // bodies, while slow bodies keep batch == 1.
            let per_iter = elapsed.as_nanos() as u64 / iters.max(1);
            if per_iter < 10_000 {
                batch = batch.saturating_mul(2).min(1 << 20);
            }
        }
        self.iters = iters;
        self.elapsed = elapsed;
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_counts_iterations() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("stub");
        g.warm_up_time(Duration::from_millis(1));
        g.measurement_time(Duration::from_millis(5));
        g.throughput(Throughput::Elements(4));
        let mut ran = 0u64;
        g.bench_with_input(BenchmarkId::new("count", 4), &4u64, |b, &n| {
            b.iter(|| {
                ran += 1;
                n * 2
            })
        });
        g.finish();
        assert!(ran > 0);
    }
}
