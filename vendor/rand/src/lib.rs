//! Minimal, dependency-free subset of the `rand` crate API.
//!
//! The build environment for this workspace is fully offline, so the real
//! `rand` crate cannot be fetched from crates.io. This vendored stand-in
//! implements exactly the surface the workspace uses — `StdRng`,
//! `SeedableRng::seed_from_u64`, the `Rng` core trait, the `RngExt`
//! convenience methods (`random`, `random_range`, `random_bool`), and
//! `seq::SliceRandom::shuffle` — with a deterministic, statistically
//! reasonable generator (SplitMix64 seeding a xoshiro256** state).
//!
//! Determinism per seed is the only contract the workspace relies on
//! (tests seed every generator explicitly); the exact stream differs from
//! upstream `rand`, which no test depends on.

use std::ops::{Range, RangeInclusive};

/// Core random-number source: everything derives from `next_u64`.
pub trait Rng {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Seedable generators. Only `seed_from_u64` is needed by the workspace.
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

/// SplitMix64 step — used to expand a `u64` seed into generator state.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

pub mod rngs {
    use super::{splitmix64, Rng, SeedableRng};

    /// The workspace's standard generator: xoshiro256** seeded via SplitMix64.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut sm);
            }
            // xoshiro forbids the all-zero state; SplitMix64 cannot emit
            // four consecutive zeros, but guard anyway.
            if s == [0, 0, 0, 0] {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            StdRng { s }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    /// Alias kept for API familiarity; same engine as [`StdRng`].
    pub type SmallRng = StdRng;
}

/// Integer types that `random_range` can sample uniformly.
pub trait UniformInt: Copy + PartialOrd {
    fn to_u64(self) -> u64;
    fn from_u64(v: u64) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl UniformInt for $t {
            #[inline]
            fn to_u64(self) -> u64 {
                // Order-preserving map into u64 (offset for signed types).
                (self as i128 as u64).wrapping_sub(<$t>::MIN as i128 as u64)
            }
            #[inline]
            fn from_u64(v: u64) -> Self {
                v.wrapping_add(<$t>::MIN as i128 as u64) as $t
            }
        }
    )*};
}

impl_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges that can be sampled: `a..b` and `a..=b`.
pub trait SampleRange<T> {
    fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

#[inline]
fn sample_below<R: Rng + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    // Multiply-shift bounded sampling (Lemire); bias is < 2^-64 per draw,
    // far below anything the tests can observe.
    let x = rng.next_u64();
    ((x as u128 * span as u128) >> 64) as u64
}

impl<T: UniformInt> SampleRange<T> for Range<T> {
    fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> T {
        let lo = self.start.to_u64();
        let hi = self.end.to_u64();
        assert!(lo < hi, "cannot sample empty range");
        T::from_u64(lo + sample_below(rng, hi - lo))
    }
}

impl<T: UniformInt> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> T {
        let lo = self.start().to_u64();
        let hi = self.end().to_u64();
        assert!(lo <= hi, "cannot sample empty range");
        let span = hi - lo;
        if span == u64::MAX {
            return T::from_u64(rng.next_u64());
        }
        T::from_u64(lo + sample_below(rng, span + 1))
    }
}

/// Types that can be drawn uniformly from their full value range.
pub trait StandardUniform: Sized {
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_uniform {
    ($($t:ty),*) => {$(
        impl StandardUniform for $t {
            #[inline]
            fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl StandardUniform for bool {
    #[inline]
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Convenience sampling methods, blanket-implemented for every [`Rng`].
pub trait RngExt: Rng {
    /// Uniform sample over a type's full value range (`rng.random::<u64>()`).
    fn random<T: StandardUniform>(&mut self) -> T {
        T::from_rng(self)
    }

    /// Uniform sample from an integer range (`a..b` or `a..=b`).
    fn random_range<T, S>(&mut self, range: S) -> T
    where
        S: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Bernoulli sample: `true` with probability `p` (clamped to [0, 1]).
    fn random_bool(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            return false;
        }
        if p >= 1.0 {
            return true;
        }
        // 53 high bits give a uniform float in [0, 1).
        let unit = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        unit < p
    }
}

impl<R: Rng + ?Sized> RngExt for R {}

pub mod seq {
    use super::{Rng, RngExt};

    /// Slice shuffling (Fisher–Yates), the only `seq` API the workspace uses.
    pub trait SliceRandom {
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.random_range(0..=i);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.random_range(0usize..1000), b.random_range(0usize..1000));
        }
    }

    #[test]
    fn range_bounds_respected() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v: usize = rng.random_range(3..17);
            assert!((3..17).contains(&v));
            let w: i64 = rng.random_range(-5..=5);
            assert!((-5..=5).contains(&w));
        }
    }

    #[test]
    fn bool_probability_extremes() {
        let mut rng = StdRng::seed_from_u64(2);
        assert!(!rng.random_bool(0.0));
        assert!(rng.random_bool(1.0));
        let heads = (0..2000).filter(|_| rng.random_bool(0.5)).count();
        assert!((800..1200).contains(&heads), "heads={heads}");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<usize> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, (0..100).collect::<Vec<_>>());
    }
}
