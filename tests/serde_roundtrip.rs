//! Serde round-trips for the public data types: what a downstream user
//! persists (configurations, traces, reports) must come back intact, and
//! invalid serialized permutations must be rejected on deserialize.

use bnb::core::cost::HardwareCost;
use bnb::core::delay::PropagationDelay;
use bnb::core::network::BnbNetwork;
use bnb::topology::connection::Connection;
use bnb::topology::perm::Permutation;
use bnb::topology::record::{records_for_permutation, Record};

#[test]
fn permutation_roundtrip_and_validation() {
    let p = Permutation::try_from(vec![2, 0, 3, 1]).unwrap();
    let json = serde_json::to_string(&p).unwrap();
    assert_eq!(json, "[2,0,3,1]", "one-line notation on the wire");
    let back: Permutation = serde_json::from_str(&json).unwrap();
    assert_eq!(back, p);
    // Invalid wire data must be rejected by the TryFrom validation.
    let bad: Result<Permutation, _> = serde_json::from_str("[0,0,1,2]");
    assert!(bad.is_err(), "duplicate images must not deserialize");
    let bad: Result<Permutation, _> = serde_json::from_str("[0,5,1,2]");
    assert!(bad.is_err(), "out-of-range images must not deserialize");
}

#[test]
fn record_roundtrip() {
    let r = Record::new(5, 0xDEAD_BEEF);
    let json = serde_json::to_string(&r).unwrap();
    let back: Record = serde_json::from_str(&json).unwrap();
    assert_eq!(back, r);
}

#[test]
fn cost_and_delay_roundtrip() {
    let c = HardwareCost::bnb_counted(5, 8);
    let back: HardwareCost = serde_json::from_str(&serde_json::to_string(&c).unwrap()).unwrap();
    assert_eq!(back, c);
    let d = PropagationDelay::bnb_structural(5);
    let back: PropagationDelay = serde_json::from_str(&serde_json::to_string(&d).unwrap()).unwrap();
    assert_eq!(back, d);
}

#[test]
fn trace_roundtrip() {
    let net = BnbNetwork::new(3);
    let p = Permutation::try_from(vec![6, 2, 7, 0, 4, 1, 3, 5]).unwrap();
    let (_, trace) = net.route_traced(&records_for_permutation(&p)).unwrap();
    let json = serde_json::to_string(&trace).unwrap();
    let back: bnb::core::trace::RouteTrace = serde_json::from_str(&json).unwrap();
    assert_eq!(back, trace);
    assert_eq!(back.render(), trace.render());
}

#[test]
fn connection_roundtrip() {
    for c in [
        Connection::Identity,
        Connection::Unshuffle { k: 3 },
        Connection::BitReversal,
        Connection::Fixed(Permutation::transposition(8, 1, 5)),
    ] {
        let json = serde_json::to_string(&c).unwrap();
        let back: Connection = serde_json::from_str(&json).unwrap();
        assert_eq!(back, c);
    }
}

#[test]
fn table_roundtrip() {
    let t = bnb::analysis::table2(&[3, 4]);
    let back: bnb::analysis::Table =
        serde_json::from_str(&serde_json::to_string(&t).unwrap()).unwrap();
    assert_eq!(back, t);
    assert_eq!(back.to_markdown(), t.to_markdown());
}

#[test]
fn latency_histogram_roundtrip() {
    use bnb::engine::LatencyHistogram;
    let mut h = LatencyHistogram::new();
    for ns in [0u64, 1, 2, 900, 65_536, 1_000_000_000] {
        h.record(ns);
    }
    let json = serde_json::to_string(&h).unwrap();
    let back: LatencyHistogram = serde_json::from_str(&json).unwrap();
    assert_eq!(back, h);
    // Derived views must agree too, not just the raw fields.
    assert_eq!(back.count(), h.count());
    assert_eq!(back.min_ns(), h.min_ns());
    assert_eq!(back.max_ns(), h.max_ns());
    for q in [0.5, 0.9, 0.99] {
        assert_eq!(back.quantile(q), h.quantile(q));
    }
}

#[test]
fn fault_map_roundtrip() {
    use bnb::core::{FaultKind, FaultMap, FaultSite, HardwareFault};
    let map: FaultMap = [
        HardwareFault {
            site: FaultSite::new(0, 0, 1),
            kind: FaultKind::StuckStraight,
        },
        HardwareFault {
            site: FaultSite::new(1, 2, 3),
            kind: FaultKind::StuckExchange,
        },
        HardwareFault {
            site: FaultSite::new(2, 0, 0),
            kind: FaultKind::DeadArbiter,
        },
        HardwareFault {
            site: FaultSite::new(0, 1, 7),
            kind: FaultKind::BrokenLink,
        },
    ]
    .into_iter()
    .collect();
    let json = serde_json::to_string(&map).unwrap();
    let back: FaultMap = serde_json::from_str(&json).unwrap();
    assert_eq!(back, map);
    assert_eq!(back.len(), 4);
    // Every fault kind survives the wire individually too.
    for fault in map.iter() {
        let one = serde_json::to_string(&fault).unwrap();
        let fault_back: HardwareFault = serde_json::from_str(&one).unwrap();
        assert_eq!(fault_back, *fault);
    }
}

#[test]
fn fault_report_and_outcome_roundtrip() {
    use bnb::core::FaultMap;
    use bnb::sim::faults::{hardware_campaign, FaultReport, Outcome};
    use rand::SeedableRng;
    let mut rng = rand::rngs::StdRng::seed_from_u64(77);
    // A report from a real random campaign, so the fields are live values.
    let report =
        bnb::sim::faults::random_hardware_campaign(3, 20, &mut rng, &bnb::obs::NoopObserver);
    let back: FaultReport = serde_json::from_str(&serde_json::to_string(&report).unwrap()).unwrap();
    assert_eq!(back, report);
    // Healthy campaigns round-trip too (all-zero counters).
    let healthy = hardware_campaign(3, &FaultMap::new(), 5, &mut rng, &bnb::obs::NoopObserver);
    let back: FaultReport =
        serde_json::from_str(&serde_json::to_string(&healthy).unwrap()).unwrap();
    assert_eq!(back, healthy);
    for outcome in [
        Outcome::DetectedAtInput("duplicate destination".to_string()),
        Outcome::DetectedAtSplitter {
            main_stage: 1,
            internal_stage: 0,
        },
        Outcome::DetectedHardware {
            main_stage: 2,
            internal_stage: 1,
        },
        Outcome::Routed { misdelivered: 3 },
    ] {
        let json = serde_json::to_string(&outcome).unwrap();
        let back: Outcome = serde_json::from_str(&json).unwrap();
        assert_eq!(back, outcome);
    }
}

#[test]
fn degraded_point_roundtrip() {
    use bnb::sim::faults::{degraded_sweep, DegradedPoint};
    use rand::SeedableRng;
    let mut rng = rand::rngs::StdRng::seed_from_u64(13);
    let points = degraded_sweep(3, &[0, 1], 5, &mut rng);
    let json = serde_json::to_string(&points).unwrap();
    let back: Vec<DegradedPoint> = serde_json::from_str(&json).unwrap();
    assert_eq!(back, points);
}

#[test]
fn engine_stats_roundtrip() {
    use bnb::core::network::BnbNetwork;
    use bnb::engine::{Engine, EngineConfig, EngineStats};
    use bnb::topology::record::records_for_permutation;
    use rand::SeedableRng;

    // Stats from a real run, so every field is populated.
    let net = BnbNetwork::new(4);
    let engine = Engine::new(net, EngineConfig::with_workers(2));
    let mut rng = rand::rngs::StdRng::seed_from_u64(33);
    let stats = engine.run(|h| {
        for _ in 0..5 {
            h.submit(records_for_permutation(&Permutation::random(16, &mut rng)));
        }
        while h.drain().is_some() {}
        h.stats()
    });
    let json = serde_json::to_string(&stats).unwrap();
    let back: EngineStats = serde_json::from_str(&json).unwrap();
    assert_eq!(back, stats);
    // Pretty form parses back identically as well.
    let pretty: EngineStats =
        serde_json::from_str(&serde_json::to_string_pretty(&stats).unwrap()).unwrap();
    assert_eq!(pretty, stats);
}
