//! Serde round-trips for the public data types: what a downstream user
//! persists (configurations, traces, reports) must come back intact, and
//! invalid serialized permutations must be rejected on deserialize.

use bnb::core::cost::HardwareCost;
use bnb::core::delay::PropagationDelay;
use bnb::core::network::BnbNetwork;
use bnb::topology::connection::Connection;
use bnb::topology::perm::Permutation;
use bnb::topology::record::{records_for_permutation, Record};

#[test]
fn permutation_roundtrip_and_validation() {
    let p = Permutation::try_from(vec![2, 0, 3, 1]).unwrap();
    let json = serde_json::to_string(&p).unwrap();
    assert_eq!(json, "[2,0,3,1]", "one-line notation on the wire");
    let back: Permutation = serde_json::from_str(&json).unwrap();
    assert_eq!(back, p);
    // Invalid wire data must be rejected by the TryFrom validation.
    let bad: Result<Permutation, _> = serde_json::from_str("[0,0,1,2]");
    assert!(bad.is_err(), "duplicate images must not deserialize");
    let bad: Result<Permutation, _> = serde_json::from_str("[0,5,1,2]");
    assert!(bad.is_err(), "out-of-range images must not deserialize");
}

#[test]
fn record_roundtrip() {
    let r = Record::new(5, 0xDEAD_BEEF);
    let json = serde_json::to_string(&r).unwrap();
    let back: Record = serde_json::from_str(&json).unwrap();
    assert_eq!(back, r);
}

#[test]
fn cost_and_delay_roundtrip() {
    let c = HardwareCost::bnb_counted(5, 8);
    let back: HardwareCost = serde_json::from_str(&serde_json::to_string(&c).unwrap()).unwrap();
    assert_eq!(back, c);
    let d = PropagationDelay::bnb_structural(5);
    let back: PropagationDelay = serde_json::from_str(&serde_json::to_string(&d).unwrap()).unwrap();
    assert_eq!(back, d);
}

#[test]
fn trace_roundtrip() {
    let net = BnbNetwork::new(3);
    let p = Permutation::try_from(vec![6, 2, 7, 0, 4, 1, 3, 5]).unwrap();
    let (_, trace) = net.route_traced(&records_for_permutation(&p)).unwrap();
    let json = serde_json::to_string(&trace).unwrap();
    let back: bnb::core::trace::RouteTrace = serde_json::from_str(&json).unwrap();
    assert_eq!(back, trace);
    assert_eq!(back.render(), trace.render());
}

#[test]
fn connection_roundtrip() {
    for c in [
        Connection::Identity,
        Connection::Unshuffle { k: 3 },
        Connection::BitReversal,
        Connection::Fixed(Permutation::transposition(8, 1, 5)),
    ] {
        let json = serde_json::to_string(&c).unwrap();
        let back: Connection = serde_json::from_str(&json).unwrap();
        assert_eq!(back, c);
    }
}

#[test]
fn table_roundtrip() {
    let t = bnb::analysis::table2(&[3, 4]);
    let back: bnb::analysis::Table =
        serde_json::from_str(&serde_json::to_string(&t).unwrap()).unwrap();
    assert_eq!(back, t);
    assert_eq!(back.to_markdown(), t.to_markdown());
}
