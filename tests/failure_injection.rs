//! End-to-end failure injection: the library must detect assumption
//! violations under the strict policy and degrade like hardware (conserve
//! records, never panic) under the permissive policy.

use bnb::core::error::RouteError;
use bnb::core::network::{BnbNetwork, RoutePolicy};
use bnb::sim::faults::{campaign, classify, inject, Fault, Outcome};
use bnb::sim::workload::partial_traffic;
use bnb::topology::perm::Permutation;
use bnb::topology::record::{records_for_permutation, Record};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

#[test]
fn strict_policy_detects_every_duplicate_in_large_campaign() {
    let mut rng = StdRng::seed_from_u64(31337);
    for m in [3usize, 5, 7] {
        let trials = 100;
        let (detected, _) = campaign(m, trials, &mut rng);
        assert_eq!(
            detected, trials,
            "m = {m}: every duplicate must be detected"
        );
    }
}

#[test]
fn permissive_policy_always_conserves_records() {
    // Arbitrary garbage destinations: the permissive network must still
    // output exactly the input multiset (hardware moves records, never
    // creates or destroys them).
    let mut rng = StdRng::seed_from_u64(99);
    let net = BnbNetwork::builder(5)
        .data_width(16)
        .policy(RoutePolicy::Permissive)
        .build();
    for _ in 0..50 {
        let recs: Vec<Record> = (0..32)
            .map(|i| Record::new(rng.random_range(0..32), i as u64))
            .collect();
        let out = net.route(&recs).unwrap();
        let mut in_sorted = recs.clone();
        let mut out_sorted = out.clone();
        in_sorted.sort();
        out_sorted.sort();
        assert_eq!(in_sorted, out_sorted);
    }
}

#[test]
fn strict_policy_reports_the_earliest_violation_site() {
    // A duplicated destination pair placed in the same half produces an
    // unbalanced splitter no later than stage 0's BSN; the duplicate check
    // fires first, so relax it via a hand-built unbalanced case: use the
    // permissive duplicate path on the BSN level through route() of a
    // strict network — the DuplicateDestination error must name both lines.
    let net = BnbNetwork::new(3);
    let mut recs = records_for_permutation(&Permutation::identity(8));
    recs[5] = Record::new(2, 5);
    match net.route(&recs).unwrap_err() {
        RouteError::DuplicateDestination {
            dest,
            first_input,
            second_input,
        } => {
            assert_eq!(dest, 2);
            assert_eq!(first_input, 2);
            assert_eq!(second_input, 5);
        }
        other => panic!("expected duplicate detection, got {other:?}"),
    }
}

#[test]
fn out_of_range_faults_never_reach_the_fabric() {
    let mut rng = StdRng::seed_from_u64(7);
    for policy in [RoutePolicy::Strict, RoutePolicy::Permissive] {
        let net = BnbNetwork::builder(4).policy(policy).build();
        let mut recs = records_for_permutation(&Permutation::random(16, &mut rng));
        inject(&mut recs, Fault::OutOfRangeDestination { line: 9 });
        match classify(&net, &recs) {
            Outcome::DetectedAtInput(msg) => assert!(msg.contains("16-output")),
            other => panic!("{policy:?}: expected input rejection, got {other:?}"),
        }
    }
}

#[test]
fn partial_traffic_is_rejected_by_multistage_but_served_by_crossbar() {
    // The BNB network requires full permutations (its splitters need
    // balance); partial traffic must be rejected up front, while the
    // crossbar serves it.
    use bnb::baselines::crossbar::Crossbar;
    let mut rng = StdRng::seed_from_u64(55);
    let traffic = partial_traffic(16, 0.4, &mut rng);
    let xbar = Crossbar::new(16);
    let served = xbar.route_partial(&traffic).unwrap();
    let active = traffic.iter().flatten().count();
    assert_eq!(served.iter().flatten().count(), active);

    // Filling idle slots with duplicate destination 0 (a naive adapter)
    // is caught by the strict BNB network.
    let net = BnbNetwork::builder(4).data_width(32).build();
    let filled: Vec<Record> = traffic
        .iter()
        .map(|o| o.unwrap_or(Record::new(0, 0)))
        .collect();
    assert!(matches!(
        net.route(&filled),
        Err(RouteError::DuplicateDestination { .. })
    ));
}

#[test]
fn misrouting_under_permissive_duplicates_is_bounded() {
    // With exactly one duplicated destination, at most a handful of
    // records can end up misdelivered — the rest of the traffic is
    // unaffected. Quantify that blast radius.
    let mut rng = StdRng::seed_from_u64(123);
    let net = BnbNetwork::builder(6)
        .data_width(32)
        .policy(RoutePolicy::Permissive)
        .build();
    let n = 64usize;
    let mut worst = 0usize;
    for _ in 0..30 {
        let p = Permutation::random(n, &mut rng);
        let mut recs = records_for_permutation(&p);
        inject(
            &mut recs,
            Fault::DuplicateDestination {
                line: rng.random_range(0..n),
            },
        );
        if let Outcome::Routed { misdelivered } = classify(&net, &recs) {
            worst = worst.max(misdelivered);
        }
    }
    assert!(worst >= 1, "a duplicate must disturb at least one record");
    assert!(
        worst <= n / 2,
        "a single duplicate should not scramble more than half the fabric (worst = {worst})"
    );
}
