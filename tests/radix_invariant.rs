//! The induction invariant inside Theorem 2's proof, checked on real
//! traces: after main stage `i` (and its unshuffle), every record sits in
//! the sub-network block whose index equals the first `i+1` paper bits of
//! its destination — i.e. the network performs an MSB-first radix sort,
//! one address bit per main stage.

use bnb::core::network::BnbNetwork;
use bnb::topology::bitops::paper_bit;
use bnb::topology::perm::Permutation;
use bnb::topology::record::records_for_permutation;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// For the column that closes main stage `i` (its last internal stage),
/// every record on line `j` must satisfy: the top `i+1` bits of `j` equal
/// paper bits `0..=i` of the record's destination.
///
/// The final main stage (`i = m−1`) has no unshuffle after it; its
/// invariant is full delivery, which the other tests already check, so we
/// verify stages `0..m−1` here.
fn check_radix_invariant(m: usize, perm: &Permutation) {
    let net = BnbNetwork::new(m);
    let (_, trace) = net.route_traced(&records_for_permutation(perm)).unwrap();
    for col in &trace.columns {
        let k = m - col.main_stage;
        let closes_main_stage = col.internal_stage + 1 == k;
        if !closes_main_stage || col.main_stage + 1 == m {
            continue;
        }
        let sorted_bits = col.main_stage + 1; // bits 0..=i are now in place
        for (j, r) in col.lines.iter().enumerate() {
            for bit in 0..sorted_bits {
                let line_bit = (j >> (m - 1 - bit)) & 1 == 1;
                let addr_bit = paper_bit(m, r.dest(), bit);
                assert_eq!(
                    line_bit,
                    addr_bit,
                    "m={m}, after main stage {}: line {j} holds dest {} but bit {bit} disagrees",
                    col.main_stage,
                    r.dest()
                );
            }
        }
    }
}

#[test]
fn radix_invariant_exhaustive_n8() {
    for k in (0..40_320u64).step_by(37) {
        let p = Permutation::nth_lexicographic(8, k);
        check_radix_invariant(3, &p);
    }
}

#[test]
fn radix_invariant_random_large() {
    let mut rng = StdRng::seed_from_u64(0xACE);
    for m in [4usize, 6, 8] {
        for _ in 0..10 {
            let p = Permutation::random(1 << m, &mut rng);
            check_radix_invariant(m, &p);
        }
    }
}

/// Within each closing column, the BSN output pattern itself must hold:
/// before the unshuffle, bit `i` alternates 0101… within every nested
/// network (Theorem 1 applied at stage `i`). After the unshuffle, within
/// each sub-block the *current* bit is constant — which is exactly what
/// `check_radix_invariant` asserts — so here we check the complementary
/// half-way invariant: every intermediate column conserves per-block
/// balance of the active bit.
#[test]
fn intermediate_columns_keep_blocks_balanced() {
    let mut rng = StdRng::seed_from_u64(77);
    let m = 5usize;
    let n = 1usize << m;
    let net = BnbNetwork::new(m);
    for _ in 0..10 {
        let p = Permutation::random(n, &mut rng);
        let (_, trace) = net.route_traced(&records_for_permutation(&p)).unwrap();
        for col in &trace.columns {
            let k = m - col.main_stage;
            if col.internal_stage + 1 == k {
                continue; // closing column: handled by the radix invariant
            }
            // After internal stage j (plus wiring), the nested networks of
            // the *next* internal level (size 2^{k-j-1}) each hold an
            // equal number of 0s and 1s of the active bit.
            let block = 1usize << (k - col.internal_stage - 1);
            for start in (0..n).step_by(block) {
                let ones = col.lines[start..start + block]
                    .iter()
                    .filter(|r| paper_bit(m, r.dest(), col.main_stage))
                    .count();
                assert_eq!(
                    ones,
                    block / 2,
                    "column {}.{}: block at {start} unbalanced",
                    col.main_stage,
                    col.internal_stage
                );
            }
        }
    }
}
