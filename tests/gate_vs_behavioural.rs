//! Cross-validation of the two BNB implementations: the gate-level netlist
//! (`bnb-gates`) and the behavioural simulator (`bnb-core`) must route
//! every input identically — including invalid inputs under the permissive
//! policy, since real hardware routes whatever arrives.

use bnb::core::bsn::BitSorter;
use bnb::core::network::{BnbNetwork, RoutePolicy};
use bnb::gates::components::{bit_sorter, bnb_network, splitter};
use bnb::gates::delay::{critical_path, DelayModel};
use bnb::gates::netlist::{Net, Netlist};
use bnb::topology::perm::Permutation;
use bnb::topology::record::{records_for_permutation, Record};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

#[test]
fn full_network_equivalence_exhaustive_n4() {
    let gate = bnb_network(2, 4);
    let beh = BnbNetwork::builder(2).data_width(4).build();
    for k in 0..24 {
        let p = Permutation::nth_lexicographic(4, k);
        let recs = records_for_permutation(&p);
        let g = gate.route(&recs).unwrap();
        let b = beh.route(&recs).unwrap();
        assert_eq!(g, b, "perm {p}: gate and behavioural outputs differ");
    }
}

#[test]
fn full_network_equivalence_sampled_n8_n16() {
    let mut rng = StdRng::seed_from_u64(404);
    for m in [3usize, 4] {
        let gate = bnb_network(m, 6);
        let beh = BnbNetwork::builder(m).data_width(6).build();
        let n = 1usize << m;
        for _ in 0..40 {
            let p = Permutation::random(n, &mut rng);
            let recs: Vec<Record> = (0..n)
                .map(|i| Record::new(p.apply(i), rng.random_range(0..64)))
                .collect();
            let g = gate.route(&recs).unwrap();
            let b = beh.route(&recs).unwrap();
            assert_eq!(g, b, "m = {m}");
        }
    }
}

#[test]
fn equivalence_on_invalid_inputs_permissive() {
    // Hardware semantics: non-permutation inputs mis-route, but both
    // implementations must mis-route the *same way*.
    let mut rng = StdRng::seed_from_u64(505);
    let gate = bnb_network(3, 4);
    let beh = BnbNetwork::builder(3)
        .data_width(4)
        .policy(RoutePolicy::Permissive)
        .build();
    for _ in 0..40 {
        let recs: Vec<Record> = (0..8)
            .map(|_| Record::new(rng.random_range(0..8), rng.random_range(0..16)))
            .collect();
        let g = gate.route(&recs).unwrap();
        let b = beh.route(&recs).unwrap();
        assert_eq!(g, b, "inputs {recs:?}");
    }
}

#[test]
fn bit_sorter_equivalence_exhaustive() {
    for k in [2usize, 3] {
        let n = 1usize << k;
        let mut nl = Netlist::new();
        let ins: Vec<Net> = (0..n).map(|j| nl.input(format!("s{j}"))).collect();
        let outs = bit_sorter(&mut nl, &ins);
        for (j, &o) in outs.iter().enumerate() {
            nl.output(format!("o{j}"), o);
        }
        let beh = BitSorter::new(k);
        for pattern in 0..(1u32 << n) {
            let bits: Vec<bool> = (0..n).map(|j| pattern >> j & 1 == 1).collect();
            let g = nl.eval(&bits).unwrap();
            let b = beh.route_permissive(&bits).unwrap();
            assert_eq!(g, b, "BSN({k}) pattern {pattern:b}");
        }
    }
}

#[test]
fn splitter_equivalence_exhaustive() {
    for p in [1usize, 2, 3] {
        let n = 1usize << p;
        let mut nl = Netlist::new();
        let ins: Vec<Net> = (0..n).map(|j| nl.input(format!("s{j}"))).collect();
        let sp = splitter(&mut nl, &ins);
        for (j, &o) in sp.outputs.iter().enumerate() {
            nl.output(format!("o{j}"), o);
        }
        for pattern in 0..(1u32 << n) {
            let bits: Vec<bool> = (0..n).map(|j| pattern >> j & 1 == 1).collect();
            let g = nl.eval(&bits).unwrap();
            let b = bnb::core::splitter::split(&bits).outputs;
            assert_eq!(g, b, "sp({p}) pattern {pattern:b}");
        }
    }
}

#[test]
fn gate_depth_grows_like_the_delay_model() {
    // The gate-level critical path must grow superlinearly in m, tracking
    // the D_FN-dominated eq. (9) shape (cubic in m), and must be strictly
    // monotone.
    let mut depths = Vec::new();
    for m in 1..=4usize {
        let net = bnb_network(m, 0);
        let cp = critical_path(net.netlist(), &DelayModel::unit()).unwrap();
        depths.push(cp.delay);
    }
    for w in depths.windows(2) {
        assert!(w[1] > w[0], "depth must increase with m: {depths:?}");
    }
    // Growth between m=3 and m=4 must exceed linear scaling (4/3).
    assert!(
        depths[3] / depths[2] > 4.0 / 3.0,
        "superlinear growth expected: {depths:?}"
    );
}

#[test]
fn gate_census_matches_switch_count_model() {
    // Every 2x2 switch in the behavioural model is 2q muxes at gate level
    // (q bits x 2 outputs). With w = 0 and q = m... per main stage i the
    // nested networks carry all q = m slices in the netlist (it does not
    // drop used address bits), so:
    //   muxes = sum_i (m-i) columns * N/2 switches * 2m mux/switch.
    for m in 1..=4usize {
        let n = 1usize << m;
        let net = bnb_network(m, 0);
        let census = net.netlist().census();
        let columns: usize = (1..=m).sum();
        assert_eq!(census.muxes, columns * (n / 2) * 2 * m, "m = {m}");
    }
}
