//! Cross-validation of the two BNB implementations: the gate-level netlist
//! (`bnb-gates`) and the behavioural simulator (`bnb-core`) must route
//! every input identically — including invalid inputs under the permissive
//! policy, since real hardware routes whatever arrives.

use bnb::core::bsn::BitSorter;
use bnb::core::error::RouteError;
use bnb::core::network::{BnbNetwork, RoutePolicy};
use bnb::core::{FaultKind, FaultMap, FaultSite, FaultyFabric, HardwareFault};
use bnb::gates::components::{
    bit_sorter, bnb_network, bnb_network_faultable, splitter, BnbNetlistError, GateFault,
    GateFaultKind,
};
use bnb::gates::delay::{critical_path, DelayModel};
use bnb::gates::netlist::{Net, Netlist};
use bnb::topology::perm::Permutation;
use bnb::topology::record::{records_for_permutation, Record};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

#[test]
fn full_network_equivalence_exhaustive_n4() {
    let gate = bnb_network(2, 4);
    let beh = BnbNetwork::builder(2).data_width(4).build();
    for k in 0..24 {
        let p = Permutation::nth_lexicographic(4, k);
        let recs = records_for_permutation(&p);
        let g = gate.route(&recs).unwrap();
        let b = beh.route(&recs).unwrap();
        assert_eq!(g, b, "perm {p}: gate and behavioural outputs differ");
    }
}

#[test]
fn full_network_equivalence_sampled_n8_n16() {
    let mut rng = StdRng::seed_from_u64(404);
    for m in [3usize, 4] {
        let gate = bnb_network(m, 6);
        let beh = BnbNetwork::builder(m).data_width(6).build();
        let n = 1usize << m;
        for _ in 0..40 {
            let p = Permutation::random(n, &mut rng);
            let recs: Vec<Record> = (0..n)
                .map(|i| Record::new(p.apply(i), rng.random_range(0..64)))
                .collect();
            let g = gate.route(&recs).unwrap();
            let b = beh.route(&recs).unwrap();
            assert_eq!(g, b, "m = {m}");
        }
    }
}

#[test]
fn equivalence_on_invalid_inputs_permissive() {
    // Hardware semantics: non-permutation inputs mis-route, but both
    // implementations must mis-route the *same way*.
    let mut rng = StdRng::seed_from_u64(505);
    let gate = bnb_network(3, 4);
    let beh = BnbNetwork::builder(3)
        .data_width(4)
        .policy(RoutePolicy::Permissive)
        .build();
    for _ in 0..40 {
        let recs: Vec<Record> = (0..8)
            .map(|_| Record::new(rng.random_range(0..8), rng.random_range(0..16)))
            .collect();
        let g = gate.route(&recs).unwrap();
        let b = beh.route(&recs).unwrap();
        assert_eq!(g, b, "inputs {recs:?}");
    }
}

#[test]
fn bit_sorter_equivalence_exhaustive() {
    for k in [2usize, 3] {
        let n = 1usize << k;
        let mut nl = Netlist::new();
        let ins: Vec<Net> = (0..n).map(|j| nl.input(format!("s{j}"))).collect();
        let outs = bit_sorter(&mut nl, &ins);
        for (j, &o) in outs.iter().enumerate() {
            nl.output(format!("o{j}"), o);
        }
        let beh = BitSorter::new(k);
        for pattern in 0..(1u32 << n) {
            let bits: Vec<bool> = (0..n).map(|j| pattern >> j & 1 == 1).collect();
            let g = nl.eval(&bits).unwrap();
            let b = beh.route_permissive(&bits).unwrap();
            assert_eq!(g, b, "BSN({k}) pattern {pattern:b}");
        }
    }
}

#[test]
fn splitter_equivalence_exhaustive() {
    for p in [1usize, 2, 3] {
        let n = 1usize << p;
        let mut nl = Netlist::new();
        let ins: Vec<Net> = (0..n).map(|j| nl.input(format!("s{j}"))).collect();
        let sp = splitter(&mut nl, &ins);
        for (j, &o) in sp.outputs.iter().enumerate() {
            nl.output(format!("o{j}"), o);
        }
        for pattern in 0..(1u32 << n) {
            let bits: Vec<bool> = (0..n).map(|j| pattern >> j & 1 == 1).collect();
            let g = nl.eval(&bits).unwrap();
            let b = bnb::core::splitter::split(&bits).outputs;
            assert_eq!(g, b, "sp({p}) pattern {pattern:b}");
        }
    }
}

#[test]
fn gate_depth_grows_like_the_delay_model() {
    // The gate-level critical path must grow superlinearly in m, tracking
    // the D_FN-dominated eq. (9) shape (cubic in m), and must be strictly
    // monotone.
    let mut depths = Vec::new();
    for m in 1..=4usize {
        let net = bnb_network(m, 0);
        let cp = critical_path(net.netlist(), &DelayModel::unit()).unwrap();
        depths.push(cp.delay);
    }
    for w in depths.windows(2) {
        assert!(w[1] > w[0], "depth must increase with m: {depths:?}");
    }
    // Growth between m=3 and m=4 must exceed linear scaling (4/3).
    assert!(
        depths[3] / depths[2] > 4.0 / 3.0,
        "superlinear growth expected: {depths:?}"
    );
}

/// Maps a behavioural fault onto the gate-level vocabulary. The two
/// enums are deliberately isomorphic (same kinds, same element domains).
fn to_gate_fault(f: &HardwareFault) -> GateFault {
    let kind = match f.kind {
        FaultKind::StuckStraight => GateFaultKind::StuckStraight,
        FaultKind::StuckExchange => GateFaultKind::StuckExchange,
        FaultKind::DeadArbiter => GateFaultKind::DeadArbiter,
        FaultKind::BrokenLink => GateFaultKind::BrokenLink,
        _ => unreachable!("non-exhaustive enum gained a kind"),
    };
    GateFault::new(
        f.site.main_stage,
        f.site.internal_stage,
        f.site.element,
        kind,
    )
}

/// Every in-bounds single fault for an `N = 2^m` network.
fn all_single_faults(m: usize) -> Vec<HardwareFault> {
    const KINDS: [FaultKind; 4] = [
        FaultKind::StuckStraight,
        FaultKind::StuckExchange,
        FaultKind::DeadArbiter,
        FaultKind::BrokenLink,
    ];
    let mut faults = Vec::new();
    for main_stage in 0..m {
        for internal_stage in 0..m - main_stage {
            for kind in KINDS {
                for element in 0..kind.elements(m, main_stage, internal_stage) {
                    faults.push(HardwareFault {
                        site: FaultSite::new(main_stage, internal_stage, element),
                        kind,
                    });
                }
            }
        }
    }
    faults
}

fn differential_perms(n: usize, seed: u64) -> Vec<Permutation> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut perms = vec![
        Permutation::identity(n),
        Permutation::try_from((0..n).rev().collect::<Vec<_>>()).unwrap(),
    ];
    perms.extend((0..6).map(|_| Permutation::random(n, &mut rng)));
    perms
}

/// Asserts one strict route through both implementations produced the
/// identical outcome: the same frame, or the same error field for field.
fn assert_strict_outcomes_match(
    b: Result<Vec<Record>, RouteError>,
    g: Result<Vec<Record>, BnbNetlistError>,
    context: &dyn std::fmt::Debug,
) {
    match (b, g) {
        (Ok(bf), Ok(gf)) => assert_eq!(bf, gf, "frames differ: {context:?}"),
        (
            Err(RouteError::HardwareFault {
                main_stage: bm,
                internal_stage: bi,
                first_line: bl,
                width: bw,
                even_ones: be,
                odd_ones: bo,
            }),
            Err(BnbNetlistError::HardwareFault {
                main_stage: gm,
                internal_stage: gi,
                first_line: gl,
                width: gw,
                even_ones: ge,
                odd_ones: go,
            }),
        ) => assert_eq!(
            (bm, bi, bl, bw, be, bo),
            (gm, gi, gl, gw, ge, go),
            "detection sites differ: {context:?}"
        ),
        (
            Err(RouteError::UnbalancedSplitter {
                main_stage: bm,
                internal_stage: bi,
                first_line: bl,
                width: bw,
                ones: bo,
            }),
            Err(BnbNetlistError::Unbalanced {
                main_stage: gm,
                internal_stage: gi,
                first_line: gl,
                width: gw,
                ones: go,
            }),
        ) => assert_eq!(
            (bm, bi, bl, bw, bo),
            (gm, gi, gl, gw, go),
            "unbalanced sites differ: {context:?}"
        ),
        (b, g) => panic!("outcomes diverge: behavioural {b:?} vs gate {g:?}: {context:?}"),
    }
}

/// The tentpole differential: every fault kind at every element, m = 2..=4
/// — a fault injected by editing gates and the same fault expressed in the
/// behavioural `FaultMap` must produce the identical `HardwareFault`
/// detection or the identical correct frame, permutation by permutation.
#[test]
fn gate_fault_equals_faultmap_fault_for_every_single_fault() {
    for m in 2..=4usize {
        let n = 1usize << m;
        let w = 6;
        let mut gate = bnb_network_faultable(m, w);
        let net = BnbNetwork::builder(m)
            .data_width(w)
            .policy(RoutePolicy::Strict)
            .build();
        let mut fabric = FaultyFabric::new(net, FaultMap::new());
        let perms = differential_perms(n, 0xD1FF ^ m as u64);
        for fault in all_single_faults(m) {
            fabric.set_faults(FaultMap::from_iter([fault]));
            gate.clear_faults();
            gate.inject_fault(to_gate_fault(&fault)).unwrap();
            for perm in &perms {
                let recs = records_for_permutation(perm);
                let b = fabric.route(&recs);
                let g = gate.route_checked(&recs);
                assert_strict_outcomes_match(b, g, &(m, fault, perm));
            }
        }
    }
}

/// Permissive differential: the plain gate-level route (no checks — the
/// hardware just misroutes) must match the behavioural permissive fabric
/// frame for frame under every single fault.
#[test]
fn gate_fault_equals_permissive_faultmap_frames() {
    for m in 2..=3usize {
        let n = 1usize << m;
        let w = 6;
        let mut gate = bnb_network_faultable(m, w);
        let net = BnbNetwork::builder(m)
            .data_width(w)
            .policy(RoutePolicy::Permissive)
            .build();
        let mut fabric = FaultyFabric::new(net, FaultMap::new());
        let perms = differential_perms(n, 0xBEEF ^ m as u64);
        for fault in all_single_faults(m) {
            fabric.set_faults(FaultMap::from_iter([fault]));
            gate.clear_faults();
            gate.inject_fault(to_gate_fault(&fault)).unwrap();
            for perm in &perms {
                let recs = records_for_permutation(perm);
                let b = fabric.route(&recs).unwrap();
                let g = gate.route(&recs).unwrap();
                assert_eq!(b, g, "m={m} fault={fault:?} perm={perm:?}");
            }
        }
    }
}

proptest! {
    /// Randomized fault *schedules*: inject a random set of faults, route,
    /// clear a random subset, route again — after every step the gate-level
    /// and behavioural outcomes must stay identical. The proptest seed in
    /// a failure report reproduces the whole schedule.
    #[test]
    fn random_fault_schedules_stay_equivalent(m in 2usize..=3, seed in any::<u64>()) {
        let n = 1usize << m;
        let w = 6;
        let mut rng = StdRng::seed_from_u64(seed);
        let mut gate = bnb_network_faultable(m, w);
        let net = BnbNetwork::builder(m)
            .data_width(w)
            .policy(RoutePolicy::Strict)
            .build();
        let mut fabric = FaultyFabric::new(net, FaultMap::new());
        let mut active: Vec<HardwareFault> = Vec::new();
        for _ in 0..rng.random_range(1..=3usize) {
            let (site, kind) = bnb::sim::faults::random_hardware_fault(m, &mut rng);
            active.push(HardwareFault { site, kind });
        }
        for step in 0..active.len() + 1 {
            // Steps 1.. drop the oldest fault: an inject-then-clear flap.
            let current = &active[step.min(active.len())..];
            fabric.set_faults(current.iter().copied().collect());
            gate.clear_faults();
            for f in current {
                gate.inject_fault(to_gate_fault(f)).unwrap();
            }
            for _ in 0..4 {
                let p = Permutation::random(n, &mut rng);
                let recs = records_for_permutation(&p);
                let b = fabric.route(&recs);
                let g = gate.route_checked(&recs);
                match (b, g) {
                    (Ok(bf), Ok(gf)) => prop_assert_eq!(bf, gf, "step {} seed {}", step, seed),
                    (Err(RouteError::HardwareFault { main_stage: bm, internal_stage: bi, first_line: bl, .. }),
                     Err(BnbNetlistError::HardwareFault { main_stage: gm, internal_stage: gi, first_line: gl, .. })) => {
                        prop_assert_eq!((bm, bi, bl), (gm, gi, gl), "step {} seed {}", step, seed);
                    }
                    (b, g) => prop_assert!(false, "diverged at step {}: {:?} vs {:?}", step, b, g),
                }
            }
        }
        // Fully cleared: both fabrics are healthy again and agree.
        fabric.set_faults(FaultMap::new());
        gate.clear_faults();
        let p = Permutation::random(n, &mut rng);
        let recs = records_for_permutation(&p);
        prop_assert_eq!(fabric.route(&recs).unwrap(), gate.route_checked(&recs).unwrap());
    }
}

#[test]
fn gate_census_matches_switch_count_model() {
    // Every 2x2 switch in the behavioural model is 2q muxes at gate level
    // (q bits x 2 outputs). With w = 0 and q = m... per main stage i the
    // nested networks carry all q = m slices in the netlist (it does not
    // drop used address bits), so:
    //   muxes = sum_i (m-i) columns * N/2 switches * 2m mux/switch.
    for m in 1..=4usize {
        let n = 1usize << m;
        let net = bnb_network(m, 0);
        let census = net.netlist().census();
        let columns: usize = (1..=m).sum();
        assert_eq!(census.muxes, columns * (n / 2) * 2 * m, "m = {m}");
    }
}
