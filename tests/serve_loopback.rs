//! Loopback soak of the full serving stack: a real `Server` on
//! `127.0.0.1`, concurrent tenant connections driven by the real
//! `loadgen` client, the bounded queue forced into explicit RETRYs, a
//! graceful drain, and a Prometheus scrape whose counters balance the
//! frame ledger.

use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

use bnb::obs::Counters;
use bnb::serve::loadgen::{run_loadgen, LoadMode, LoadgenConfig};
use bnb::serve::server::{ServeConfig, ServeReport, Server, ServerControl};

/// Runs `body` against a live server, then triggers a graceful drain and
/// returns (session report, body result).
fn serve_scope<R: Send>(
    config: ServeConfig,
    body: impl FnOnce(&str, &Arc<ServerControl>) -> R + Send,
) -> (ServeReport, R) {
    let counters = Counters::new();
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind ephemeral port");
    let addr = listener.local_addr().unwrap().to_string();
    let control = ServerControl::new();

    thread::scope(|s| {
        let server_control = Arc::clone(&control);
        let counters_ref = &counters;
        let server = s.spawn(move || {
            Server::new(config, counters_ref)
                .serve(listener, &server_control)
                .expect("serving session")
        });

        let out = body(&addr, &control);

        control.trigger_shutdown();
        let report = server.join().expect("server thread");
        (report, out)
    })
}

/// Scrapes the server's /metrics endpoint over plain HTTP.
fn scrape_metrics(addr: &str) -> String {
    let mut stream = TcpStream::connect(addr).expect("connect for scrape");
    stream
        .write_all(b"GET /metrics HTTP/1.1\r\nHost: bnb\r\nConnection: close\r\n\r\n")
        .unwrap();
    let mut reader = BufReader::new(stream);
    let mut status = String::new();
    reader.read_line(&mut status).unwrap();
    assert!(status.starts_with("HTTP/1.1 200"), "bad status: {status}");
    let mut line = String::new();
    let mut saw_prom_type = false;
    loop {
        line.clear();
        reader.read_line(&mut line).unwrap();
        if line.to_ascii_lowercase().contains("text/plain") {
            saw_prom_type = true;
        }
        if line == "\r\n" {
            break;
        }
    }
    assert!(saw_prom_type, "scrape must be text/plain");
    let mut body = String::new();
    for l in reader.lines() {
        body.push_str(&l.unwrap());
        body.push('\n');
    }
    body
}

/// Pulls `bnb_<name>_total` out of a Prometheus exposition.
fn prom_counter(body: &str, name: &str) -> u64 {
    let needle = format!("bnb_{name} ");
    body.lines()
        .find(|l| l.starts_with(&needle))
        .unwrap_or_else(|| panic!("no family bnb_{name} in:\n{body}"))
        .split_whitespace()
        .nth(1)
        .unwrap()
        .parse()
        .unwrap_or_else(|_| panic!("unparsable value for bnb_{name}"))
}

#[test]
fn concurrent_tenants_route_correctly_with_forced_backpressure() {
    let config = ServeConfig {
        inputs: 16,
        workers: 2,
        queue_capacity: 3,
        // Quota below the loadgen window forces TenantQuota RETRYs.
        tenant_quota: 2,
        max_connections: 16,
        read_timeout: Duration::from_millis(20),
    };
    let (report, load) = serve_scope(config, |addr, _control| {
        run_loadgen(&LoadgenConfig {
            addr: addr.to_string(),
            tenants: 4,
            frames: 40,
            inputs: 16,
            // inflight > tenant_quota drives the admission path into RETRY.
            mode: LoadMode::Closed { inflight: 5 },
            seed: 0x50AC,
            drain_window: Duration::from_secs(2),
            shutdown_when_done: false,
        })
        .expect("loadgen run")
    });

    assert_eq!(load.misdelivered, 0, "no frame may be misrouted: {load:?}");
    assert_eq!(load.errored, 0, "no routing errors expected: {load:?}");
    assert_eq!(load.unanswered, 0, "every frame must be answered: {load:?}");
    assert!(load.served > 0, "some frames must be served: {load:?}");
    assert!(
        load.retried > 0,
        "the bounded queue must push back at least once: {load:?}"
    );
    assert_eq!(
        load.submitted,
        load.served + load.retried,
        "client ledger must balance: {load:?}"
    );

    // Server-side ledger: served + retried + errored + dropped = submitted.
    assert!(report.graceful, "session must end in a graceful drain");
    assert!(
        report.accounted(),
        "server ledger out of balance: {report:?}"
    );
    assert_eq!(report.frames_submitted, load.submitted);
    assert_eq!(report.frames_served, load.served);
    assert_eq!(report.retries_issued, load.retried);
    assert_eq!(report.responses_dropped, 0);
    assert_eq!(report.protocol_errors, 0);
    assert!(report.connections_accepted >= 4);
}

#[test]
fn metrics_endpoint_speaks_prometheus_and_balances_the_ledger() {
    let config = ServeConfig {
        inputs: 8,
        workers: 1,
        queue_capacity: 4,
        tenant_quota: 2,
        max_connections: 8,
        read_timeout: Duration::from_millis(20),
    };
    let (report, (load, metrics)) = serve_scope(config, |addr, _control| {
        let load = run_loadgen(&LoadgenConfig {
            addr: addr.to_string(),
            tenants: 2,
            frames: 20,
            inputs: 8,
            mode: LoadMode::Closed { inflight: 3 },
            seed: 0xFEED,
            drain_window: Duration::from_secs(2),
            shutdown_when_done: false,
        })
        .expect("loadgen run");
        let metrics = scrape_metrics(addr);
        (load, metrics)
    });

    // The exposition parses: every sample line is `name[{labels}] value`.
    for line in metrics.lines() {
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_whitespace();
        let name = parts.next().expect("sample name");
        let value = parts.next().expect("sample value");
        assert!(name.starts_with("bnb_"), "unprefixed family: {line}");
        assert!(
            value.parse::<f64>().is_ok(),
            "unparsable sample value: {line}"
        );
    }

    // The scraped counters account for every submitted frame.
    let served = prom_counter(&metrics, "frames_served_total");
    let retried = prom_counter(&metrics, "retries_issued_total");
    assert_eq!(served, load.served);
    assert_eq!(retried, load.retried);
    assert_eq!(
        served + retried,
        load.submitted,
        "scraped ledger must balance:\n{metrics}"
    );
    assert!(prom_counter(&metrics, "connections_accepted_total") >= 2);

    assert_eq!(load.misdelivered, 0);
    assert!(
        report.accounted(),
        "server ledger out of balance: {report:?}"
    );
}

#[test]
fn wire_shutdown_drains_the_session_gracefully() {
    let config = ServeConfig {
        inputs: 8,
        workers: 1,
        queue_capacity: 4,
        tenant_quota: 4,
        max_connections: 8,
        read_timeout: Duration::from_millis(20),
    };
    let (report, load) = serve_scope(config, |addr, _control| {
        // shutdown_when_done sends the wire SHUTDOWN opcode; the server
        // must drain and exit without trigger_shutdown ever being called
        // by the test body (serve_scope's trailing trigger is then a
        // no-op on an already-draining session).
        run_loadgen(&LoadgenConfig {
            addr: addr.to_string(),
            tenants: 2,
            frames: 10,
            inputs: 8,
            mode: LoadMode::Closed { inflight: 2 },
            seed: 0xD1E,
            drain_window: Duration::from_secs(2),
            shutdown_when_done: true,
        })
        .expect("loadgen run")
    });
    assert!(report.graceful);
    assert_eq!(load.misdelivered, 0);
    assert_eq!(load.unanswered, 0);
    assert!(report.accounted());
}

#[test]
fn malformed_bytes_get_a_typed_protocol_error_not_a_crash() {
    let config = ServeConfig::default();
    let (report, ()) = serve_scope(config, |addr, _control| {
        // An HTTP-looking-but-not-GET preamble is just garbage to the
        // binary protocol: the length prefix "POST" is over MAX_BODY.
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream.write_all(b"POST /x HTTP/1.1\r\n\r\n").unwrap();
        stream.flush().unwrap();
        // The server answers with a protocol ERROR frame and closes.
        stream
            .set_read_timeout(Some(Duration::from_secs(5)))
            .unwrap();
        let mut reader = stream;
        match bnb::serve::protocol::read_message(&mut reader) {
            Ok(Some(bnb::serve::Message::Error { code, .. })) => {
                assert_eq!(code, bnb::serve::ErrorCode::Protocol);
            }
            other => panic!("expected a protocol ERROR frame, got {other:?}"),
        }
    });
    assert_eq!(report.protocol_errors, 1);
    assert_eq!(report.frames_submitted, 0);
    assert!(report.accounted());
}
