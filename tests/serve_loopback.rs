//! Loopback soak of the full serving stack: a real `Server` on
//! `127.0.0.1`, concurrent tenant connections driven by the real
//! `loadgen` client, the bounded queue forced into explicit RETRYs, a
//! graceful drain, and a Prometheus scrape whose counters balance the
//! frame ledger.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

use bnb::obs::Counters;
use bnb::serve::loadgen::{run_loadgen, LoadMode, LoadgenConfig, TenantLoad};
use bnb::serve::server::{ServeConfig, ServeReport, Server, ServerControl, StatusSnapshot};

/// Runs `body` against a live server, then triggers a graceful drain and
/// returns (session report, body result).
fn serve_scope<R: Send>(
    config: ServeConfig,
    body: impl FnOnce(&str, &Arc<ServerControl>) -> R + Send,
) -> (ServeReport, R) {
    let counters = Counters::new();
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind ephemeral port");
    let addr = listener.local_addr().unwrap().to_string();
    let control = ServerControl::new();

    thread::scope(|s| {
        let server_control = Arc::clone(&control);
        let counters_ref = &counters;
        let server = s.spawn(move || {
            Server::new(config, counters_ref)
                .serve(listener, &server_control)
                .expect("serving session")
        });

        let out = body(&addr, &control);

        control.trigger_shutdown();
        let report = server.join().expect("server thread");
        (report, out)
    })
}

/// Scrapes the server's /metrics endpoint over plain HTTP.
fn scrape_metrics(addr: &str) -> String {
    let mut stream = TcpStream::connect(addr).expect("connect for scrape");
    stream
        .write_all(b"GET /metrics HTTP/1.1\r\nHost: bnb\r\nConnection: close\r\n\r\n")
        .unwrap();
    let mut reader = BufReader::new(stream);
    let mut status = String::new();
    reader.read_line(&mut status).unwrap();
    assert!(status.starts_with("HTTP/1.1 200"), "bad status: {status}");
    let mut line = String::new();
    let mut saw_prom_type = false;
    loop {
        line.clear();
        reader.read_line(&mut line).unwrap();
        if line.to_ascii_lowercase().contains("text/plain") {
            saw_prom_type = true;
        }
        if line == "\r\n" {
            break;
        }
    }
    assert!(saw_prom_type, "scrape must be text/plain");
    let mut body = String::new();
    for l in reader.lines() {
        body.push_str(&l.unwrap());
        body.push('\n');
    }
    body
}

/// Scrapes the server's /status endpoint and parses the JSON snapshot.
fn scrape_status(addr: &str) -> StatusSnapshot {
    status_over(TcpStream::connect(addr).expect("connect for status"))
}

/// Sends `GET /status` on an already-open connection and parses the JSON
/// body — also usable mid-drain on a connection accepted beforehand.
fn status_over(mut stream: TcpStream) -> StatusSnapshot {
    stream
        .write_all(b"GET /status HTTP/1.1\r\nHost: bnb\r\nConnection: close\r\n\r\n")
        .unwrap();
    let mut reader = BufReader::new(stream);
    let mut status = String::new();
    reader.read_line(&mut status).unwrap();
    assert!(status.starts_with("HTTP/1.1 200"), "bad status: {status}");
    let mut line = String::new();
    let mut saw_json = false;
    loop {
        line.clear();
        reader.read_line(&mut line).unwrap();
        if line.to_ascii_lowercase().contains("application/json") {
            saw_json = true;
        }
        if line == "\r\n" {
            break;
        }
    }
    assert!(saw_json, "/status must answer application/json");
    let mut body = String::new();
    reader.read_to_string(&mut body).unwrap();
    serde_json::from_str(&body).unwrap_or_else(|e| panic!("unparsable /status ({e:?}):\n{body}"))
}

/// Pulls `bnb_<name>_total` out of a Prometheus exposition.
fn prom_counter(body: &str, name: &str) -> u64 {
    let needle = format!("bnb_{name} ");
    body.lines()
        .find(|l| l.starts_with(&needle))
        .unwrap_or_else(|| panic!("no family bnb_{name} in:\n{body}"))
        .split_whitespace()
        .nth(1)
        .unwrap()
        .parse()
        .unwrap_or_else(|_| panic!("unparsable value for bnb_{name}"))
}

#[test]
fn concurrent_tenants_route_correctly_with_forced_backpressure() {
    let config = ServeConfig {
        inputs: 16,
        workers: 2,
        queue_capacity: 3,
        // Quota below the loadgen window forces TenantQuota RETRYs.
        tenant_quota: 2,
        max_connections: 16,
        read_timeout: Duration::from_millis(20),
        slow_ms: 0,
        reactor_threads: 1,
        window: 32,
    };
    let (report, load) = serve_scope(config, |addr, _control| {
        run_loadgen(&LoadgenConfig {
            addr: addr.to_string(),
            tenants: 4,
            frames: 40,
            inputs: 16,
            // inflight > tenant_quota drives the admission path into RETRY.
            mode: LoadMode::Closed { inflight: 5 },
            seed: 0x50AC,
            drain_window: Duration::from_secs(2),
            shutdown_when_done: false,
            max_resubmits: 0,
            connections: 0,
            keys: None,
        })
        .expect("loadgen run")
    });

    assert_eq!(load.misdelivered, 0, "no frame may be misrouted: {load:?}");
    assert_eq!(load.errored, 0, "no routing errors expected: {load:?}");
    assert_eq!(load.unanswered, 0, "every frame must be answered: {load:?}");
    assert!(load.served > 0, "some frames must be served: {load:?}");
    assert!(
        load.retried > 0,
        "the bounded queue must push back at least once: {load:?}"
    );
    assert_eq!(
        load.submitted,
        load.served + load.retried,
        "client ledger must balance: {load:?}"
    );

    // Server-side ledger: served + retried + errored + dropped = submitted.
    assert!(report.graceful, "session must end in a graceful drain");
    assert!(
        report.accounted(),
        "server ledger out of balance: {report:?}"
    );
    assert_eq!(report.frames_submitted, load.submitted);
    assert_eq!(report.frames_served, load.served);
    assert_eq!(report.retries_issued, load.retried);
    assert_eq!(report.responses_dropped, 0);
    assert_eq!(report.protocol_errors, 0);
    assert!(report.connections_accepted >= 4);
}

#[test]
fn metrics_endpoint_speaks_prometheus_and_balances_the_ledger() {
    let config = ServeConfig {
        inputs: 8,
        workers: 1,
        queue_capacity: 4,
        tenant_quota: 2,
        max_connections: 8,
        read_timeout: Duration::from_millis(20),
        slow_ms: 0,
        reactor_threads: 1,
        window: 32,
    };
    let (report, (load, metrics)) = serve_scope(config, |addr, _control| {
        let load = run_loadgen(&LoadgenConfig {
            addr: addr.to_string(),
            tenants: 2,
            frames: 20,
            inputs: 8,
            mode: LoadMode::Closed { inflight: 3 },
            seed: 0xFEED,
            drain_window: Duration::from_secs(2),
            shutdown_when_done: false,
            max_resubmits: 0,
            connections: 0,
            keys: None,
        })
        .expect("loadgen run");
        let metrics = scrape_metrics(addr);
        (load, metrics)
    });

    // The exposition parses: every sample line is `name[{labels}] value`.
    for line in metrics.lines() {
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_whitespace();
        let name = parts.next().expect("sample name");
        let value = parts.next().expect("sample value");
        assert!(name.starts_with("bnb_"), "unprefixed family: {line}");
        assert!(
            value.parse::<f64>().is_ok(),
            "unparsable sample value: {line}"
        );
    }

    // The scraped counters account for every submitted frame.
    let served = prom_counter(&metrics, "frames_served_total");
    let retried = prom_counter(&metrics, "retries_issued_total");
    assert_eq!(served, load.served);
    assert_eq!(retried, load.retried);
    assert_eq!(
        served + retried,
        load.submitted,
        "scraped ledger must balance:\n{metrics}"
    );
    assert!(prom_counter(&metrics, "connections_accepted_total") >= 2);

    assert_eq!(load.misdelivered, 0);
    assert!(
        report.accounted(),
        "server ledger out of balance: {report:?}"
    );
}

#[test]
fn wire_shutdown_drains_the_session_gracefully() {
    let config = ServeConfig {
        inputs: 8,
        workers: 1,
        queue_capacity: 4,
        tenant_quota: 4,
        max_connections: 8,
        read_timeout: Duration::from_millis(20),
        slow_ms: 0,
        reactor_threads: 1,
        window: 32,
    };
    let (report, load) = serve_scope(config, |addr, _control| {
        // shutdown_when_done sends the wire SHUTDOWN opcode; the server
        // must drain and exit without trigger_shutdown ever being called
        // by the test body (serve_scope's trailing trigger is then a
        // no-op on an already-draining session).
        run_loadgen(&LoadgenConfig {
            addr: addr.to_string(),
            tenants: 2,
            frames: 10,
            inputs: 8,
            mode: LoadMode::Closed { inflight: 2 },
            seed: 0xD1E,
            drain_window: Duration::from_secs(2),
            shutdown_when_done: true,
            max_resubmits: 0,
            connections: 0,
            keys: None,
        })
        .expect("loadgen run")
    });
    assert!(report.graceful);
    assert_eq!(load.misdelivered, 0);
    assert_eq!(load.unanswered, 0);
    assert!(report.accounted());
}

#[test]
fn malformed_bytes_get_a_typed_protocol_error_not_a_crash() {
    let config = ServeConfig::default();
    let (report, ()) = serve_scope(config, |addr, _control| {
        // An HTTP-looking-but-not-GET preamble is just garbage to the
        // binary protocol: the length prefix "POST" is over MAX_BODY.
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream.write_all(b"POST /x HTTP/1.1\r\n\r\n").unwrap();
        stream.flush().unwrap();
        // The server answers with a protocol ERROR frame and closes.
        stream
            .set_read_timeout(Some(Duration::from_secs(5)))
            .unwrap();
        let mut reader = stream;
        match bnb::serve::protocol::read_message(&mut reader) {
            Ok(Some(bnb::serve::Message::Error { code, .. })) => {
                assert_eq!(code, bnb::serve::ErrorCode::Protocol);
            }
            other => panic!("expected a protocol ERROR frame, got {other:?}"),
        }
    });
    assert_eq!(report.protocol_errors, 1);
    assert_eq!(report.frames_submitted, 0);
    assert!(report.accounted());
}

#[test]
fn status_endpoint_reconciles_stage_sums_with_wire_latency() {
    let config = ServeConfig {
        inputs: 8,
        workers: 1,
        queue_capacity: 4,
        tenant_quota: 4,
        max_connections: 8,
        read_timeout: Duration::from_millis(20),
        // Threshold so high nothing trips it; the snapshot must still
        // report it faithfully.
        slow_ms: 60_000,
        reactor_threads: 1,
        window: 32,
    };
    let (report, (load, status)) = serve_scope(config, |addr, _control| {
        let load = run_loadgen(&LoadgenConfig {
            addr: addr.to_string(),
            tenants: 2,
            frames: 25,
            inputs: 8,
            mode: LoadMode::Closed { inflight: 2 },
            seed: 0x57A7,
            drain_window: Duration::from_secs(2),
            shutdown_when_done: false,
            max_resubmits: 0,
            connections: 0,
            keys: None,
        })
        .expect("loadgen run");
        let status = scrape_status(addr);
        (load, status)
    });
    assert!(report.accounted());

    assert!(!status.draining, "session was not draining at scrape time");
    assert!(status.fabric.is_none(), "no fault plan attached");
    assert_eq!(status.telemetry.slow_threshold_ns, 60_000 * 1_000_000);
    assert_eq!(status.telemetry.slow_captured, 0);

    // Every served frame was measured wire-to-wire, and every one of the
    // six lifecycle stages saw exactly those frames.
    let t = &status.telemetry;
    assert_eq!(t.wire.count, load.served, "wire window: {t:?}");
    let names: Vec<&str> = t.stages.iter().map(|s| s.stage.as_str()).collect();
    assert_eq!(
        names,
        [
            "decode",
            "admission",
            "queue_wait",
            "route",
            "drain",
            "write"
        ],
        "stages must appear in timeline order"
    );
    for s in &t.stages {
        assert_eq!(s.count, load.served, "stage {} count: {t:?}", s.stage);
        assert!(
            s.sum_ns <= t.wire.sum_ns,
            "stage {} exceeds wire: {t:?}",
            s.stage
        );
    }

    // The acceptance gate: the stage decomposition partitions wire time.
    // Loopback latencies are microseconds, so tolerate generous relative
    // noise plus a fixed per-request slack for scheduler jitter.
    let stage_sum = t.stage_sum_ns();
    let wire_sum = t.wire.sum_ns;
    assert!(
        wire_sum > 0,
        "served frames must accumulate wire time: {t:?}"
    );
    let slack = wire_sum / 2 + 200_000 * t.wire.count;
    assert!(
        stage_sum.abs_diff(wire_sum) <= slack,
        "stage sums must reconcile with wire-to-wire latency: \
         stages={stage_sum}ns wire={wire_sum}ns slack={slack}ns\n{t:?}"
    );

    // Per-tenant windows cover the run's traffic.
    assert_eq!(t.tenants.len(), 2, "{t:?}");
    let window_served: u64 = t.tenants.iter().map(|w| w.count).sum();
    assert_eq!(window_served, load.served, "{t:?}");
    let window_bytes: u64 = t.tenants.iter().map(|w| w.bytes).sum();
    assert_eq!(window_bytes, load.served * 8 * 4, "{t:?}");

    // The engine view is live: the batches it routed are the frames served.
    assert_eq!(status.engine.batches, load.served + load.errored);
    assert_eq!(status.engine.records, load.served * 8);
    assert_eq!(status.inflight, 0, "drained before the scrape");
}

#[test]
fn operator_surfaces_stay_live_under_traffic_and_during_drain() {
    let config = ServeConfig {
        inputs: 8,
        workers: 1,
        queue_capacity: 4,
        tenant_quota: 4,
        max_connections: 16,
        read_timeout: Duration::from_millis(20),
        slow_ms: 0,
        reactor_threads: 1,
        window: 32,
    };
    let (report, (load, scrapes)) = serve_scope(config, |addr, control| {
        let stop = AtomicBool::new(false);
        let (load, scrapes, drain_status) = thread::scope(|s| {
            // Scraper thread: hammer both endpoints while traffic flows.
            let stop_ref = &stop;
            let scraper = s.spawn(move || {
                let mut n = 0usize;
                while !stop_ref.load(Ordering::Acquire) {
                    let metrics = scrape_metrics(addr);
                    assert!(metrics.contains("bnb_frames_served_total"));
                    let status = scrape_status(addr);
                    assert!(!status.draining, "drain must not start under load");
                    n += 2;
                    thread::sleep(Duration::from_millis(2));
                }
                n
            });
            let load = run_loadgen(&LoadgenConfig {
                addr: addr.to_string(),
                tenants: 3,
                frames: 30,
                inputs: 8,
                mode: LoadMode::Closed { inflight: 2 },
                seed: 0xCAFE,
                drain_window: Duration::from_secs(2),
                shutdown_when_done: false,
                max_resubmits: 0,
                connections: 0,
                keys: None,
            })
            .expect("loadgen run");
            stop.store(true, Ordering::Release);
            let scrapes = scraper.join().expect("scraper thread");

            // During-drain scrape: park a connection so it is accepted
            // (and sitting in the HTTP sniffer) before the drain starts,
            // then ask for /status mid-drain.
            let parked = TcpStream::connect(addr).expect("park connection");
            thread::sleep(Duration::from_millis(50));
            control.trigger_shutdown();
            let drain_status = status_over(parked);
            (load, scrapes, drain_status)
        });
        assert!(
            drain_status.draining,
            "a mid-drain scrape must report draining: {drain_status:?}"
        );
        (load, scrapes)
    });
    assert!(scrapes >= 2, "the scraper never completed a pass");
    assert_eq!(load.misdelivered, 0);
    assert_eq!(load.unanswered, 0);
    assert!(report.graceful);
    assert!(report.accounted());
}

#[test]
fn wire_status_opcode_answers_with_the_json_snapshot() {
    let config = ServeConfig::default();
    let (report, ()) = serve_scope(config, |addr, _control| {
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_secs(5)))
            .unwrap();
        let ask = bnb::serve::Message::Status {
            tenant: 3,
            request_id: 99,
        };
        stream.write_all(&ask.to_bytes()).unwrap();
        match bnb::serve::protocol::read_message(&mut stream) {
            Ok(Some(bnb::serve::Message::StatusReport {
                tenant,
                request_id,
                json,
            })) => {
                assert_eq!(tenant, 3, "report echoes the asking tenant");
                assert_eq!(request_id, 99, "report echoes the request id");
                let snap: StatusSnapshot = serde_json::from_str(&json)
                    .unwrap_or_else(|e| panic!("unparsable STATUS_REPORT ({e:?}):\n{json}"));
                assert!(!snap.draining);
                assert_eq!(snap.connections, 1, "just this probe connection");
                assert_eq!(snap.telemetry.wire.count, 0, "no frames served yet");
            }
            other => panic!("expected a STATUS_REPORT frame, got {other:?}"),
        }
    });
    // STATUS never enters the frame ledger.
    assert_eq!(report.frames_submitted, 0);
    assert_eq!(report.protocol_errors, 0);
    assert!(report.accounted());
}

#[test]
fn loadgen_resubmits_retried_frames_and_both_ledgers_balance() {
    let config = ServeConfig {
        inputs: 16,
        workers: 2,
        queue_capacity: 3,
        // Quota below the loadgen window forces RETRYs, which the client
        // now answers by resubmitting instead of abandoning.
        tenant_quota: 2,
        max_connections: 16,
        read_timeout: Duration::from_millis(20),
        slow_ms: 0,
        reactor_threads: 1,
        window: 32,
    };
    let (report, load) = serve_scope(config, |addr, _control| {
        run_loadgen(&LoadgenConfig {
            addr: addr.to_string(),
            tenants: 4,
            frames: 30,
            inputs: 16,
            mode: LoadMode::Closed { inflight: 5 },
            seed: 0x5EED,
            drain_window: Duration::from_secs(5),
            shutdown_when_done: false,
            max_resubmits: 16,
            connections: 0,
            keys: None,
        })
        .expect("loadgen run")
    });

    assert!(
        load.resubmitted > 0,
        "backpressure must force at least one resubmission: {load:?}"
    );
    assert_eq!(load.misdelivered, 0, "{load:?}");
    assert_eq!(load.errored, 0, "{load:?}");
    assert_eq!(load.unanswered, 0, "{load:?}");
    // Distinct-frame ledger: resubmissions are not new frames.
    assert_eq!(
        load.submitted,
        load.served + load.retried,
        "client ledger must balance: {load:?}"
    );
    // Retry-to-served latency was measured for frames that needed resends.
    if load.retried < load.resubmitted {
        assert!(
            load.retry_latency.max_ns > 0,
            "some resubmitted frame was served, so retry latency exists: {load:?}"
        );
    }

    // Per-tenant breakdowns sum to the run totals.
    assert_eq!(load.per_tenant.len(), 4, "{load:?}");
    let sum = |f: fn(&TenantLoad) -> u64| load.per_tenant.iter().map(f).sum::<u64>();
    assert_eq!(sum(|t| t.submitted), load.submitted, "{load:?}");
    assert_eq!(sum(|t| t.served), load.served, "{load:?}");
    assert_eq!(sum(|t| t.retried), load.retried, "{load:?}");
    assert_eq!(sum(|t| t.resubmitted), load.resubmitted, "{load:?}");

    // Server ledger: every resubmission was one more wire SUBMIT, and
    // every RETRY answer was either resubmitted or abandoned.
    assert!(report.accounted(), "{report:?}");
    assert_eq!(report.frames_submitted, load.submitted + load.resubmitted);
    assert_eq!(report.frames_served, load.served);
    assert_eq!(report.retries_issued, load.resubmitted + load.retried);
}
