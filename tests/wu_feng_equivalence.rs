//! Computational verification of Wu & Feng's topological-equivalence
//! result (paper ref \[12\]): the omega network realizes exactly the
//! baseline network's permutations after relabeling the inputs by
//! bit-reversal. Both networks are our own independent implementations,
//! so agreement here is strong evidence the two wirings are right.

use bnb::baselines::omega::OmegaNetwork;
use bnb::topology::baseline::BaselineNetwork;
use bnb::topology::bitops::{bit_reverse, shuffle};
use bnb::topology::equivalence::{admissible_set, find_relabeling, related_by_relabeling};
use bnb::topology::perm::Permutation;

#[test]
fn omega_is_baseline_with_bit_reversed_inputs() {
    for m in [2usize, 3] {
        let n = 1usize << m;
        let baseline = BaselineNetwork::with_inputs(n).unwrap();
        let omega = OmegaNetwork::with_inputs(n).unwrap();
        let bset = admissible_set(n, |p| baseline.is_admissible(p));
        let oset = admissible_set(n, |p| omega.is_admissible(p));
        assert_eq!(bset.len(), oset.len(), "equal admissible counts");
        let rev = Permutation::from_fn(n, |i| bit_reverse(m, i)).unwrap();
        let id = Permutation::identity(n);
        assert!(
            related_by_relabeling(&bset, &oset, &rev, &id),
            "N = {n}: omega must equal baseline ∘ bit-reversal"
        );
        // And the relation is genuinely needed: identity does not relate
        // them (m >= 2).
        assert!(!related_by_relabeling(&bset, &oset, &id, &id), "N = {n}");
    }
}

#[test]
fn the_search_discovers_the_relabeling_unaided() {
    let n = 8usize;
    let m = 3usize;
    let baseline = BaselineNetwork::with_inputs(n).unwrap();
    let omega = OmegaNetwork::with_inputs(n).unwrap();
    let bset = admissible_set(n, |p| baseline.is_admissible(p));
    let oset = admissible_set(n, |p| omega.is_admissible(p));
    let candidates = vec![
        Permutation::identity(n),
        Permutation::from_fn(n, |i| bit_reverse(m, i)).unwrap(),
        Permutation::from_fn(n, |i| shuffle(m, m, i)).unwrap(),
    ];
    let found = find_relabeling(&bset, &oset, &candidates)
        .expect("Wu-Feng equivalence must be discoverable");
    // Input relabeling = bit-reversal (index 1), output = identity (0).
    assert_eq!(found, (1, 0));
}
