//! Engine shutdown hardening: `drain_and_close` must deliver every
//! in-flight batch exactly once, in submission order, and reject all
//! later submissions — under concurrent submitters, not just the
//! single-threaded unit tests in `bnb-engine`.

use std::collections::BTreeMap;
use std::thread;
use std::time::Duration;

use bnb::core::network::BnbNetwork;
use bnb::engine::{Engine, EngineConfig, ShardDepth};
use bnb::topology::perm::Permutation;
use bnb::topology::record::records_for_permutation;
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn no_frame_is_lost_or_doubled_across_drain_and_close() {
    let m = 4;
    let net = BnbNetwork::new(m);
    let engine = Engine::new(
        net,
        EngineConfig {
            workers: 3,
            queue_capacity: 2,
            shard_depth: ShardDepth::Auto,
        },
    );

    let (accepted_per_thread, early, tail) = engine.run(|handle| {
        thread::scope(|s| {
            // Four submitters racing the close: each tries to push 10
            // frames, retrying on a full queue, stopping early if the
            // close wins the race.
            let submitters: Vec<_> = (0..4)
                .map(|t| {
                    let handle = &handle;
                    s.spawn(move || {
                        let mut rng = StdRng::seed_from_u64(0xC105_ED00 + t as u64);
                        let mut accepted = Vec::new();
                        while accepted.len() < 10 {
                            let perm = Permutation::random(1 << m, &mut rng);
                            match handle.try_submit(records_for_permutation(&perm)) {
                                Ok(seq) => accepted.push(seq),
                                Err(e) if e.is_closed() => break,
                                Err(_) => thread::sleep(Duration::from_micros(50)),
                            }
                        }
                        accepted
                    })
                })
                .collect();

            // A draining consumer pulls half the traffic *before* the
            // close so the test covers frames delivered on both sides of
            // it. `drain()` returns None when nothing is outstanding at
            // that instant (submitters may be mid-retry), so poll.
            let deadline = std::time::Instant::now() + Duration::from_secs(30);
            let mut early = Vec::new();
            while early.len() < 20 {
                match handle.drain() {
                    Some(batch) => {
                        assert!(batch.result.is_ok(), "pre-close batch failed");
                        early.push(batch.seq);
                    }
                    None => {
                        assert!(
                            std::time::Instant::now() < deadline,
                            "submitters stalled: only {} of 20 early drains",
                            early.len()
                        );
                        thread::sleep(Duration::from_micros(100));
                    }
                }
            }

            let tail = handle.drain_and_close();
            let accepted: Vec<Vec<u64>> =
                submitters.into_iter().map(|h| h.join().unwrap()).collect();
            (accepted, early, tail)
        })
    });

    // Ledger: every accepted seq appears exactly once across the early
    // drains and the close-time tail — nothing lost, nothing doubled.
    let mut seen: BTreeMap<u64, usize> = BTreeMap::new();
    for &seq in early.iter() {
        *seen.entry(seq).or_default() += 1;
    }
    let mut last_tail_seq = None;
    for batch in &tail {
        assert!(batch.result.is_ok(), "tail batch {} failed", batch.seq);
        if let Some(prev) = last_tail_seq {
            assert!(batch.seq > prev, "tail must stay in submission order");
        }
        last_tail_seq = Some(batch.seq);
        *seen.entry(batch.seq).or_default() += 1;
    }
    let accepted_total: usize = accepted_per_thread.iter().map(Vec::len).sum();
    assert_eq!(
        seen.len(),
        accepted_total,
        "every accepted batch drains exactly once"
    );
    for (seq, count) in &seen {
        assert_eq!(*count, 1, "batch {seq} drained {count} times");
    }
    for accepted in &accepted_per_thread {
        for seq in accepted {
            assert!(seen.contains_key(seq), "accepted batch {seq} never drained");
        }
    }
    assert!(
        accepted_total >= 20,
        "the race must actually exercise the queue (got {accepted_total})"
    );
}

#[test]
fn submissions_after_close_return_the_batch_intact() {
    let m = 3;
    let net = BnbNetwork::new(m);
    let engine = Engine::new(net, EngineConfig::with_workers(2));
    engine.run(|handle| {
        let perm = Permutation::try_from(vec![1, 0, 3, 2, 5, 4, 7, 6]).unwrap();
        handle.submit(records_for_permutation(&perm));
        let tail = handle.drain_and_close();
        assert_eq!(tail.len(), 1);

        let lines = records_for_permutation(&perm);
        let err = handle.try_submit(lines.clone()).unwrap_err();
        assert!(err.is_closed());
        // The refused batch comes back untouched — callers can re-offer
        // it elsewhere instead of losing the frame.
        assert_eq!(err.into_lines(), lines);
        assert!(handle.drain().is_none(), "closed queue yields no batches");
    });
}
