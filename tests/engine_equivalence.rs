//! Property-based equivalence: the concurrent engine's output must be
//! byte-identical to the sequential `BnbNetwork::route` for every worker
//! count and sharding depth — full permutations, partial traffic, and
//! (under the permissive policy) arbitrary garbage destinations.

use bnb::core::network::{BnbNetwork, RoutePolicy};
use bnb::core::partial::resolve_completed;
use bnb::engine::{Engine, EngineConfig, ShardDepth};
use bnb::topology::perm::Permutation;
use bnb::topology::record::{records_for_permutation, Record};
use proptest::prelude::*;
use std::error::Error as _;

fn engine_for(net: BnbNetwork, workers: usize, depth: ShardDepth) -> Engine {
    Engine::new(
        net,
        EngineConfig {
            workers,
            queue_capacity: 3,
            shard_depth: depth,
        },
    )
}

fn depths() -> [ShardDepth; 4] {
    [
        ShardDepth::Auto,
        ShardDepth::Fixed(0),
        ShardDepth::Fixed(2),
        ShardDepth::Fixed(16), // clamped to m internally
    ]
}

/// A batch hitting an all-shards-faulted fabric drains as
/// [`bnb::engine::EngineError::Quarantined`] with the fault site reachable
/// through the `source()` chain, while batches the fault happens not to
/// disturb route byte-identically to the healthy sequential network —
/// degraded mode quarantines, it never corrupts.
#[test]
fn faulted_shard_quarantines_while_healthy_batches_match() {
    use bnb::core::{FaultKind, FaultMap, FaultSite, FaultyFabric};
    use bnb::engine::{EngineError, FaultPlan, RetryPolicy};
    use rand::SeedableRng;
    let m = 4usize;
    let n = 1usize << m;
    let net = BnbNetwork::builder(m).data_width(32).build();
    let map = FaultMap::single(FaultSite::new(1, 0, 2), FaultKind::StuckExchange);

    // Split seeded permutations into fault-triggering and fault-immune
    // sets using the sequential faulted fabric as the oracle.
    let mut probe = FaultyFabric::new(net, map.clone());
    let mut rng = rand::rngs::StdRng::seed_from_u64(41);
    let mut tripping = Vec::new();
    let mut immune = Vec::new();
    while (tripping.len() < 2 || immune.len() < 2) && (tripping.len() + immune.len()) < 400 {
        let records = records_for_permutation(&Permutation::random(n, &mut rng));
        match probe.route(&records) {
            Err(_) => tripping.push(records),
            Ok(_) => immune.push(records),
        }
    }
    assert!(
        tripping.len() >= 2 && immune.len() >= 2,
        "oracle found no split"
    );
    let batches: Vec<Vec<Record>> = vec![
        immune[0].clone(),
        tripping[0].clone(),
        immune[1].clone(),
        tripping[1].clone(),
    ];
    let expected: Vec<Vec<Record>> = batches.iter().map(|b| net.route(b).unwrap()).collect();

    let plan = FaultPlan::uniform(map, 2).with_retry(RetryPolicy {
        max_attempts: 2,
        backoff: std::time::Duration::ZERO,
    });
    for workers in [1usize, 3] {
        let engine = engine_for(net, workers, ShardDepth::Auto);
        let routed = engine.run_faulted(&plan, |h| {
            for b in &batches {
                h.submit(b.clone());
            }
            (0..batches.len())
                .map(|_| h.drain().unwrap())
                .collect::<Vec<_>>()
        });
        for (i, batch) in routed.iter().enumerate() {
            assert_eq!(batch.seq, i as u64);
            if i % 2 == 0 {
                // Fault-immune batches must be byte-identical to the
                // healthy sequential route.
                assert_eq!(
                    batch.result.as_ref().unwrap(),
                    &expected[i],
                    "workers = {workers}, batch {i}"
                );
            } else {
                let err = batch.result.as_ref().unwrap_err();
                assert!(
                    matches!(err, EngineError::Quarantined { attempts: 2, .. }),
                    "expected quarantine after both shards failed, got {err:?}"
                );
                let cause = err.source().expect("quarantine exposes the fault");
                let text = cause.to_string();
                assert!(
                    text.contains("hardware fault") && text.contains("main stage 1"),
                    "cause chain must carry the fault site, got: {text}"
                );
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Random permutations at every worker count 1..=8 and several shard
    /// depths route identically to the sequential network.
    #[test]
    fn engine_matches_sequential_on_permutations(m in 1usize..=7, seed in any::<u64>()) {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let n = 1usize << m;
        let net = BnbNetwork::new(m);
        let batches: Vec<Vec<Record>> = (0..4)
            .map(|_| records_for_permutation(&Permutation::random(n, &mut rng)))
            .collect();
        let expected: Vec<Vec<Record>> = batches
            .iter()
            .map(|b| net.route(b).unwrap())
            .collect();
        for workers in 1usize..=8 {
            for depth in depths() {
                let engine = engine_for(net, workers, depth);
                let routed = engine.run(|h| {
                    for b in &batches {
                        h.submit(b.clone());
                    }
                    (0..batches.len()).map(|_| h.drain().unwrap()).collect::<Vec<_>>()
                });
                for (i, batch) in routed.iter().enumerate() {
                    prop_assert_eq!(batch.seq, i as u64);
                    prop_assert_eq!(
                        batch.result.as_ref().unwrap(),
                        &expected[i],
                        "workers = {}, depth = {:?}", workers, depth
                    );
                }
            }
        }
    }

    /// Random *partial* traffic: destination-completed frames routed
    /// through the engine reconstruct exactly `route_partial`'s outcome,
    /// at every worker count.
    #[test]
    fn engine_matches_route_partial(m in 1usize..=6, seed in any::<u64>()) {
        use rand::{RngExt, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let n = 1usize << m;
        let net = BnbNetwork::new(m);
        let perm = Permutation::random(n, &mut rng);
        let slots: Vec<Option<Record>> = (0..n)
            .map(|i| {
                rng.random_bool(0.6)
                    .then(|| Record::new(perm.apply(i), i as u64))
            })
            .collect();
        let expected = net.route_partial(&slots).unwrap();
        let frame = net.completed_frame(&slots).unwrap();
        for workers in 1usize..=8 {
            let engine = engine_for(net.index_sibling(), workers, ShardDepth::Auto);
            let routed = engine.run(|h| {
                h.submit(frame.clone());
                h.drain().unwrap()
            });
            let outcome = resolve_completed(&slots, &routed.result.unwrap());
            prop_assert_eq!(&outcome, &expected, "workers = {}", workers);
        }
    }

    /// Permissive-policy garbage traffic (arbitrary destinations, possibly
    /// heavily duplicated) still routes byte-identically: BNB routing is
    /// oblivious data movement, so sharding cannot change the outcome.
    #[test]
    fn engine_matches_sequential_on_garbage(m in 1usize..=6, seed in any::<u64>()) {
        use rand::{RngExt, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let n = 1usize << m;
        let net = BnbNetwork::builder(m).policy(RoutePolicy::Permissive).build();
        let batch: Vec<Record> = (0..n)
            .map(|i| Record::new(rng.random_range(0..n), i as u64))
            .collect();
        let expected = net.route(&batch).unwrap();
        for workers in 1usize..=8 {
            for depth in depths() {
                let engine = engine_for(net, workers, depth);
                let routed = engine.run(|h| {
                    h.submit(batch.clone());
                    h.drain().unwrap()
                });
                prop_assert_eq!(
                    routed.result.as_ref().unwrap(),
                    &expected,
                    "workers = {}, depth = {:?}", workers, depth
                );
            }
        }
    }
}
