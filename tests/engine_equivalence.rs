//! Property-based equivalence: the concurrent engine's output must be
//! byte-identical to the sequential `BnbNetwork::route` for every worker
//! count and sharding depth — full permutations, partial traffic, and
//! (under the permissive policy) arbitrary garbage destinations.

use bnb::core::network::{BnbNetwork, RoutePolicy};
use bnb::core::partial::resolve_completed;
use bnb::engine::{Engine, EngineConfig, ShardDepth};
use bnb::topology::perm::Permutation;
use bnb::topology::record::{records_for_permutation, Record};
use proptest::prelude::*;

fn engine_for(net: BnbNetwork, workers: usize, depth: ShardDepth) -> Engine {
    Engine::new(
        net,
        EngineConfig {
            workers,
            queue_capacity: 3,
            shard_depth: depth,
        },
    )
}

fn depths() -> [ShardDepth; 4] {
    [
        ShardDepth::Auto,
        ShardDepth::Fixed(0),
        ShardDepth::Fixed(2),
        ShardDepth::Fixed(16), // clamped to m internally
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Random permutations at every worker count 1..=8 and several shard
    /// depths route identically to the sequential network.
    #[test]
    fn engine_matches_sequential_on_permutations(m in 1usize..=7, seed in any::<u64>()) {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let n = 1usize << m;
        let net = BnbNetwork::new(m);
        let batches: Vec<Vec<Record>> = (0..4)
            .map(|_| records_for_permutation(&Permutation::random(n, &mut rng)))
            .collect();
        let expected: Vec<Vec<Record>> = batches
            .iter()
            .map(|b| net.route(b).unwrap())
            .collect();
        for workers in 1usize..=8 {
            for depth in depths() {
                let engine = engine_for(net, workers, depth);
                let routed = engine.run(|h| {
                    for b in &batches {
                        h.submit(b.clone());
                    }
                    (0..batches.len()).map(|_| h.drain().unwrap()).collect::<Vec<_>>()
                });
                for (i, batch) in routed.iter().enumerate() {
                    prop_assert_eq!(batch.seq, i as u64);
                    prop_assert_eq!(
                        batch.result.as_ref().unwrap(),
                        &expected[i],
                        "workers = {}, depth = {:?}", workers, depth
                    );
                }
            }
        }
    }

    /// Random *partial* traffic: destination-completed frames routed
    /// through the engine reconstruct exactly `route_partial`'s outcome,
    /// at every worker count.
    #[test]
    fn engine_matches_route_partial(m in 1usize..=6, seed in any::<u64>()) {
        use rand::{RngExt, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let n = 1usize << m;
        let net = BnbNetwork::new(m);
        let perm = Permutation::random(n, &mut rng);
        let slots: Vec<Option<Record>> = (0..n)
            .map(|i| {
                rng.random_bool(0.6)
                    .then(|| Record::new(perm.apply(i), i as u64))
            })
            .collect();
        let expected = net.route_partial(&slots).unwrap();
        let frame = net.completed_frame(&slots).unwrap();
        for workers in 1usize..=8 {
            let engine = engine_for(net.index_sibling(), workers, ShardDepth::Auto);
            let routed = engine.run(|h| {
                h.submit(frame.clone());
                h.drain().unwrap()
            });
            let outcome = resolve_completed(&slots, &routed.result.unwrap());
            prop_assert_eq!(&outcome, &expected, "workers = {}", workers);
        }
    }

    /// Permissive-policy garbage traffic (arbitrary destinations, possibly
    /// heavily duplicated) still routes byte-identically: BNB routing is
    /// oblivious data movement, so sharding cannot change the outcome.
    #[test]
    fn engine_matches_sequential_on_garbage(m in 1usize..=6, seed in any::<u64>()) {
        use rand::{RngExt, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let n = 1usize << m;
        let net = BnbNetwork::builder(m).policy(RoutePolicy::Permissive).build();
        let batch: Vec<Record> = (0..n)
            .map(|i| Record::new(rng.random_range(0..n), i as u64))
            .collect();
        let expected = net.route(&batch).unwrap();
        for workers in 1usize..=8 {
            for depth in depths() {
                let engine = engine_for(net, workers, depth);
                let routed = engine.run(|h| {
                    h.submit(batch.clone());
                    h.drain().unwrap()
                });
                prop_assert_eq!(
                    routed.result.as_ref().unwrap(),
                    &expected,
                    "workers = {}, depth = {:?}", workers, depth
                );
            }
        }
    }
}
