//! End-to-end path tracing: the per-cell hop stream reconstructed by
//! [`PathTracer`] must agree with the switch settings the router actually
//! applied, for every destination of random permutations at several sizes
//! — and the agreement must survive the concurrent engine's subnetwork
//! sharding, where hops for one frame arrive from several worker threads.
//!
//! The cross-check against `route_traced` pins hop records to ground
//! truth: `route_traced` counts exchange settings at switch granularity
//! (one per exchanged pair), while the tracer records them at cell
//! granularity (both cells of an exchanged pair), so the hop stream must
//! carry exactly twice as many exchanged hops as the switch trace has
//! exchange settings.

use bnb::core::network::BnbNetwork;
use bnb::core::tracer::PathTracer;
use bnb::engine::{Engine, EngineConfig, ShardDepth};
use bnb::obs::Counters;
use bnb::topology::perm::Permutation;
use bnb::topology::record::{all_delivered, records_for_permutation};
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn reconstructed_paths_match_applied_switch_settings() {
    let mut rng = StdRng::seed_from_u64(1991);
    for m in 2usize..=4 {
        let n = 1usize << m;
        let net = BnbNetwork::builder(m).data_width(16).build();
        for _ in 0..10 {
            let records = records_for_permutation(&Permutation::random(n, &mut rng));
            let tracer = PathTracer::with_inputs(n);
            let traced_out = net.route_observed(&records, &tracer).unwrap();
            assert!(all_delivered(&traced_out));

            // Structural verification: entry ports, splitter sites, the
            // radix-sort parity invariant, and the exit line of every
            // destination, checked against the network's wiring.
            tracer.verify(&net).unwrap_or_else(|e| {
                panic!("m = {m}: reconstruction disagrees with the fabric: {e}")
            });

            // Ground truth: the switch-granularity trace of the same
            // frame. Each exchange setting moves exactly two cells.
            let (plain_out, switch_trace) = net.route_traced(&records).unwrap();
            assert_eq!(
                plain_out, traced_out,
                "m = {m}: tracing must not change routing results"
            );
            let exchanged_hops: usize = (0..n)
                .map(|d| tracer.hops_for(d).iter().filter(|h| h.exchanged).count())
                .sum();
            assert_eq!(
                exchanged_hops,
                2 * switch_trace.exchange_count(),
                "m = {m}: two exchanged hops per applied exchange setting"
            );
        }
    }
}

#[test]
fn tracing_does_not_perturb_untraced_observers() {
    // A hop-blind observer (Counters) on the same route sees identical
    // totals whether or not a tracer ran before it: hop capture is a pure
    // read of router state.
    let mut rng = StdRng::seed_from_u64(7);
    let m = 4usize;
    let n = 1usize << m;
    let net = BnbNetwork::builder(m).data_width(16).build();
    let records = records_for_permutation(&Permutation::random(n, &mut rng));

    let baseline = Counters::new();
    let out_a = net.route_observed(&records, &baseline).unwrap();

    let tracer = PathTracer::with_inputs(n);
    let out_b = net.route_observed(&records, &tracer).unwrap();

    let after = Counters::new();
    let out_c = net.route_observed(&records, &after).unwrap();

    assert_eq!(out_a, out_b);
    assert_eq!(out_b, out_c);
    assert_eq!(baseline.snapshot(), after.snapshot());
}

#[test]
fn engine_routed_frames_trace_and_verify() {
    // The engine splits each frame into 2^depth subnetwork slices routed
    // by different workers; the hop stream reassembled by the shared
    // tracer must still reconstruct and verify every destination's path.
    let mut rng = StdRng::seed_from_u64(42);
    let m = 4usize;
    let n = 1usize << m;
    let net = BnbNetwork::new(m);
    let tracer = PathTracer::with_inputs(n);
    let config = EngineConfig {
        workers: 3,
        queue_capacity: 2,
        shard_depth: ShardDepth::Fixed(2),
    };
    let engine = Engine::with_observer(net, config, &tracer);
    for round in 0..5 {
        let records = records_for_permutation(&Permutation::random(n, &mut rng));
        engine.run(|h| {
            h.submit(records.clone());
            let batch = h.drain().expect("one batch in, one batch out");
            assert!(batch.result.is_ok(), "round {round}");
        });
        tracer.verify(&net).unwrap_or_else(|e| {
            panic!("round {round}: engine-traced paths failed verification: {e}")
        });
        assert_eq!(
            tracer.total_hops(),
            n * m * (m + 1) / 2,
            "round {round}: every cell crossed every column exactly once"
        );
        // Fresh frame, fresh paths: tracing composes with engine reuse.
        tracer.clear();
    }
}
