//! Observer event counts checked against the paper's closed forms.
//!
//! Equation (7) of the paper gives the column count of an `N = 2^m`-input
//! BNB network: the main stage at index `s` is built from `k = m − s`
//! internal switching columns, so one full frame crosses
//! `m + (m−1) + … + 1 = m(m+1)/2` columns. Each splitter box sweeps its
//! arbiter tree exactly once per frame, and the number of splitter boxes
//! is `n·m − n + 1`: main stage `s` contributes `n − 2^s` boxes across
//! its `m − s` internal columns, and `Σ_{s<m} (n − 2^s) = n·m − n + 1`.
//! A recording observer attached to the real router must reproduce both
//! counts exactly.

use bnb::core::network::BnbNetwork;
use bnb::core::tracer::PathTracer;
use bnb::obs::{Counters, Fanout, MetricsSnapshot};
use bnb::topology::perm::Permutation;
use bnb::topology::record::{all_delivered, records_for_permutation};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Eq. (7): switching columns crossed by one full frame.
fn closed_form_columns(m: u64) -> u64 {
    m * (m + 1) / 2
}

/// Splitter boxes (= arbiter sweeps) per full frame: `n·m − n + 1`.
fn closed_form_sweeps(m: u64) -> u64 {
    let n = 1u64 << m;
    n * m - n + 1
}

#[test]
fn route_observed_matches_closed_forms() {
    let mut rng = StdRng::seed_from_u64(1991);
    for m in [2usize, 3, 4] {
        let n = 1usize << m;
        let net = BnbNetwork::builder(m).data_width(16).build();
        let counters = Counters::new();
        const ROUTES: u64 = 3;
        for _ in 0..ROUTES {
            let records = records_for_permutation(&Permutation::random(n, &mut rng));
            let out = net.route_observed(&records, &counters).unwrap();
            assert!(all_delivered(&out));
        }
        let snap = counters.snapshot();
        assert_eq!(
            snap.columns,
            ROUTES * closed_form_columns(m as u64),
            "m = {m}: columns must match eq. (7)"
        );
        assert_eq!(
            snap.arbiter_sweeps,
            ROUTES * closed_form_sweeps(m as u64),
            "m = {m}: one sweep per splitter box"
        );
        assert_eq!(snap.conflicts, 0, "m = {m}: permutations route cleanly");
    }
}

#[test]
fn builder_attached_observer_sees_router_traffic() {
    let mut rng = StdRng::seed_from_u64(40);
    let m = 4usize;
    let n = 1usize << m;
    let counters = Counters::new();
    let mut router = BnbNetwork::builder(m)
        .data_width(32)
        .observer(&counters)
        .build_router();
    const ROUTES: u64 = 5;
    for _ in 0..ROUTES {
        let mut lines = records_for_permutation(&Permutation::random(n, &mut rng));
        router.route_in_place(&mut lines).unwrap();
        assert!(all_delivered(&lines));
    }
    let snap = counters.snapshot();
    assert_eq!(snap.columns, ROUTES * closed_form_columns(m as u64));
    assert_eq!(snap.arbiter_sweeps, ROUTES * closed_form_sweeps(m as u64));
    // Per-stage breakdown: main stage s contributes m − s columns per frame.
    for stage in &snap.per_stage {
        assert_eq!(
            stage.columns,
            ROUTES * (m - stage.main_stage) as u64,
            "stage {} column share",
            stage.main_stage
        );
    }
    assert_eq!(
        snap.per_stage.len(),
        m,
        "all {m} main stages were exercised"
    );
}

#[test]
fn traced_hop_counts_match_closed_forms() {
    // Per-cell hop granularity refines eq. (7): every one of the N cells
    // crosses every column, so a traced frame records exactly
    // N · m(m+1)/2 hops in total, of which N · m land in main columns
    // (internal stage 0) — one per cell per main stage. The column total
    // seen by a counting observer on the same route must agree.
    let mut rng = StdRng::seed_from_u64(2026);
    for m in [2usize, 3, 4] {
        let n = 1usize << m;
        let net = BnbNetwork::builder(m).data_width(16).build();
        let tracer = PathTracer::with_inputs(n);
        let counters = Counters::new();
        let records = records_for_permutation(&Permutation::random(n, &mut rng));
        let out = net
            .route_observed(&records, &Fanout::new(&tracer, &counters))
            .unwrap();
        assert!(all_delivered(&out));
        let columns = closed_form_columns(m as u64);
        assert_eq!(
            tracer.total_hops() as u64,
            n as u64 * columns,
            "m = {m}: N cells x m(m+1)/2 columns"
        );
        assert_eq!(
            tracer.main_stage_hops(),
            n * m,
            "m = {m}: one main-stage hop per cell per stage"
        );
        assert_eq!(
            counters.snapshot().columns,
            columns,
            "m = {m}: the column total the hops refine"
        );
        tracer
            .verify(&net)
            .expect("reconstructed paths must verify");
    }
}

#[test]
fn metrics_snapshot_serde_round_trips() {
    let mut rng = StdRng::seed_from_u64(77);
    let m = 3usize;
    let n = 1usize << m;
    let net = BnbNetwork::builder(m).build();
    let counters = Counters::new();
    counters.record_latency(1_500);
    counters.record_latency(48_000);
    let records = records_for_permutation(&Permutation::random(n, &mut rng));
    net.route_observed(&records, &counters).unwrap();

    let snap = counters.snapshot();
    let json = serde_json::to_string(&snap).unwrap();
    let back: MetricsSnapshot = serde_json::from_str(&json).unwrap();
    assert_eq!(back, snap, "serde round trip must be lossless");

    // The exporter's JSON is the same document.
    let rendered = bnb::obs::render_json(&snap).unwrap();
    let back: MetricsSnapshot = serde_json::from_str(&rendered).unwrap();
    assert_eq!(back, snap, "render_json must round trip too");
    assert_eq!(back.histogram.count(), 2);
}
