//! End-to-end chaos campaign: randomized fault schedules (inject, flap,
//! clear) replayed against the live-repair engine and against a real
//! `Server` over loopback TCP, under permutation traffic throughout.
//!
//! The contract asserted for every schedule is Theorem 3's guarantee
//! lifted to the repaired system: **zero silent misdeliveries** (every
//! delivered frame is verified against the healthy route), **balanced
//! ledgers** (every submitted frame drains exactly once, as a delivery or
//! an explicit quarantine/error), and **capacity recovery** (after the
//! last transient clears, the scrubber restores every fabric shard).
//! Every schedule is generated from its seed alone, so a failure names
//! the exact seed that reproduces it.

use std::net::TcpListener;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

use bnb::engine::LiveFaultPlan;
use bnb::obs::Counters;
use bnb::serve::loadgen::{run_loadgen, LoadMode, LoadgenConfig};
use bnb::serve::server::{ServeConfig, Server, ServerControl};
use bnb::sim::chaos::{chaos_engine_campaign, ChaosAction, ChaosSchedule};

#[test]
fn hundred_randomized_schedules_hold_the_contract_through_the_engine() {
    let counters = Counters::new();
    let mut failed = Vec::new();
    let mut injected = 0usize;
    let mut quarantined_frames = 0usize;
    for seed in 0..100u64 {
        let schedule = ChaosSchedule::generate(3, 2, 30, 6, seed);
        let report = chaos_engine_campaign(&schedule, 2, &counters);
        assert_eq!(report.seed, seed);
        injected += report.faults_injected;
        quarantined_frames += report.frames_quarantined;
        if !report.holds() {
            failed.push(report);
        }
    }
    assert!(
        failed.is_empty(),
        "chaos contract violated; reproduce via ChaosSchedule::generate(3, 2, 30, 6, seed) \
         for these reports: {failed:?}"
    );
    assert!(injected > 0, "100 schedules never injected a fault");
    assert!(
        quarantined_frames > 0,
        "no schedule ever exhausted retries — the campaign never stressed the repair path"
    );
    // The scrubber actually worked across the campaign: it probed,
    // quarantined damage, and restored capacity.
    let snap = counters.snapshot();
    assert!(snap.scrub_probes > 0, "{snap:?}");
    assert!(snap.shards_quarantined > 0, "{snap:?}");
    assert!(snap.shards_restored > 0, "{snap:?}");
    // Every errored drain was an explicit quarantine — never a
    // validation failure, never a silent anything.
    assert_eq!(
        snap.batch_errors as usize, quarantined_frames,
        "batch errors must all be quarantines: {snap:?}"
    );
}

#[test]
fn chaos_schedules_replay_identically() {
    // The reproducibility promise the failure messages rely on: the same
    // seed yields the same schedule AND the same campaign outcome.
    let a = ChaosSchedule::generate(3, 2, 25, 5, 77);
    let b = ChaosSchedule::generate(3, 2, 25, 5, 77);
    assert_eq!(a, b);
    let ra = chaos_engine_campaign(&a, 1, &bnb::obs::NoopObserver);
    let rb = chaos_engine_campaign(&b, 1, &bnb::obs::NoopObserver);
    // Scrubber/traffic interleaving makes exact frame counts timing
    // dependent; the schedule, the fault totals, and the contract itself
    // are what must replay.
    assert_eq!(
        (
            ra.faults_injected,
            ra.faults_cleared,
            ra.frames_misdelivered
        ),
        (
            rb.faults_injected,
            rb.faults_cleared,
            rb.frames_misdelivered
        ),
        "same seed must replay the same faults: {ra:?} vs {rb:?}"
    );
    assert!(ra.holds() && rb.holds(), "{ra:?} vs {rb:?}");
}

#[test]
fn chaos_through_a_live_server_keeps_the_wire_ledger_balanced() {
    // The serve-side campaign: a chaos driver damages and heals fabric
    // shards through the same LiveFaultPlan the server routes with, while
    // the real loadgen client verifies every ROUTED response over TCP.
    let inputs = 16usize;
    let m = inputs.trailing_zeros() as usize;
    for seed in 0..8u64 {
        let schedule = ChaosSchedule::generate(m, 2, 16, 16, seed);
        let config = ServeConfig {
            inputs,
            workers: 2,
            ..ServeConfig::default()
        };
        let plan = LiveFaultPlan::healthy(2)
            .with_probe_seed(seed)
            .with_scrub_interval(Duration::from_micros(50));
        let counters = Counters::new();
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind ephemeral port");
        let addr = listener.local_addr().unwrap().to_string();
        let control = ServerControl::new();
        let stop = AtomicBool::new(false);

        let (serve_report, load_report) = thread::scope(|s| {
            let server_control = Arc::clone(&control);
            let counters_ref = &counters;
            let plan_ref = &plan;
            let server = s.spawn(move || {
                Server::with_fault_plan(config, counters_ref, plan_ref)
                    .serve(listener, &server_control)
                    .expect("serving session")
            });
            let schedule_ref = &schedule;
            let stop_ref = &stop;
            let driver = s.spawn(move || {
                for op in &schedule_ref.ops {
                    if stop_ref.load(Ordering::Acquire) {
                        break;
                    }
                    match op.action {
                        ChaosAction::Inject { shard, site, kind } => {
                            plan_ref.inject(shard, site, kind)
                        }
                        ChaosAction::Clear { shard } => plan_ref.clear(shard),
                    }
                    thread::sleep(Duration::from_millis(1));
                }
                for shard in 0..2 {
                    plan_ref.clear(shard);
                }
            });

            let load_report = run_loadgen(&LoadgenConfig {
                addr: addr.clone(),
                tenants: 2,
                frames: 40,
                inputs,
                mode: LoadMode::Closed { inflight: 2 },
                seed: seed ^ 0xB1B0,
                drain_window: Duration::from_millis(4000),
                shutdown_when_done: false,
            })
            .expect("loadgen run");

            stop.store(true, Ordering::Release);
            driver.join().expect("chaos driver");
            // Give the still-running scrubber a bounded window to release
            // the last quarantines before the graceful drain kills it.
            let mut spins = 0usize;
            while plan.healthy_shards() < 2 && spins < 20_000 {
                thread::sleep(Duration::from_micros(100));
                spins += 1;
            }
            control.trigger_shutdown();
            (server.join().expect("server thread"), load_report)
        });

        assert!(
            serve_report.accounted(),
            "seed {seed}: serve ledger out of balance: {serve_report:?}"
        );
        assert_eq!(
            load_report.misdelivered, 0,
            "seed {seed}: SILENT MISDELIVERY over the wire: {load_report:?}"
        );
        assert_eq!(
            load_report.protocol_surprises, 0,
            "seed {seed}: malformed responses: {load_report:?}"
        );
        assert!(
            load_report.served > 0,
            "seed {seed}: chaos starved the service entirely: {load_report:?}"
        );
        // Every frame the client sent came back as exactly one of
        // served / retried / errored / unanswered-at-drain.
        assert_eq!(
            load_report.submitted,
            load_report.served + load_report.retried + load_report.errored + load_report.unanswered,
            "seed {seed}: loadgen ledger out of balance: {load_report:?}"
        );
        // The final clears released every quarantine by session end.
        assert_eq!(
            plan.healthy_shards(),
            2,
            "seed {seed}: capacity not restored after the schedule cleared"
        );
    }
}
