//! End-to-end chaos campaign: randomized fault schedules (inject, flap,
//! clear) replayed against the live-repair engine and against a real
//! `Server` over loopback TCP, under permutation traffic throughout.
//!
//! The contract asserted for every schedule is Theorem 3's guarantee
//! lifted to the repaired system: **zero silent misdeliveries** (every
//! delivered frame is verified against the healthy route), **balanced
//! ledgers** (every submitted frame drains exactly once, as a delivery or
//! an explicit quarantine/error), and **capacity recovery** (after the
//! last transient clears, the scrubber restores every fabric shard).
//! Every schedule is generated from its seed alone, so a failure names
//! the exact seed that reproduces it.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use bnb::core::{FaultKind, FaultSite};
use bnb::engine::LiveFaultPlan;
use bnb::obs::Counters;
use bnb::serve::loadgen::{run_loadgen, LoadMode, LoadgenConfig};
use bnb::serve::protocol::read_message;
use bnb::serve::server::{ServeConfig, Server, ServerControl, StatusSnapshot};
use bnb::serve::Message;
use bnb::sim::chaos::{chaos_engine_campaign, ChaosAction, ChaosSchedule};

#[test]
fn hundred_randomized_schedules_hold_the_contract_through_the_engine() {
    let counters = Counters::new();
    let mut failed = Vec::new();
    let mut injected = 0usize;
    let mut quarantined_frames = 0usize;
    for seed in 0..100u64 {
        let schedule = ChaosSchedule::generate(3, 2, 30, 6, seed);
        let report = chaos_engine_campaign(&schedule, 2, &counters);
        assert_eq!(report.seed, seed);
        injected += report.faults_injected;
        quarantined_frames += report.frames_quarantined;
        if !report.holds() {
            failed.push(report);
        }
    }
    assert!(
        failed.is_empty(),
        "chaos contract violated; reproduce via ChaosSchedule::generate(3, 2, 30, 6, seed) \
         for these reports: {failed:?}"
    );
    assert!(injected > 0, "100 schedules never injected a fault");
    assert!(
        quarantined_frames > 0,
        "no schedule ever exhausted retries — the campaign never stressed the repair path"
    );
    // The scrubber actually worked across the campaign: it probed,
    // quarantined damage, and restored capacity.
    let snap = counters.snapshot();
    assert!(snap.scrub_probes > 0, "{snap:?}");
    assert!(snap.shards_quarantined > 0, "{snap:?}");
    assert!(snap.shards_restored > 0, "{snap:?}");
    // Every errored drain was an explicit quarantine — never a
    // validation failure, never a silent anything.
    assert_eq!(
        snap.batch_errors as usize, quarantined_frames,
        "batch errors must all be quarantines: {snap:?}"
    );
}

#[test]
fn chaos_schedules_replay_identically() {
    // The reproducibility promise the failure messages rely on: the same
    // seed yields the same schedule AND the same campaign outcome.
    let a = ChaosSchedule::generate(3, 2, 25, 5, 77);
    let b = ChaosSchedule::generate(3, 2, 25, 5, 77);
    assert_eq!(a, b);
    let ra = chaos_engine_campaign(&a, 1, &bnb::obs::NoopObserver);
    let rb = chaos_engine_campaign(&b, 1, &bnb::obs::NoopObserver);
    // Scrubber/traffic interleaving makes exact frame counts timing
    // dependent; the schedule, the fault totals, and the contract itself
    // are what must replay.
    assert_eq!(
        (
            ra.faults_injected,
            ra.faults_cleared,
            ra.frames_misdelivered
        ),
        (
            rb.faults_injected,
            rb.faults_cleared,
            rb.frames_misdelivered
        ),
        "same seed must replay the same faults: {ra:?} vs {rb:?}"
    );
    assert!(ra.holds() && rb.holds(), "{ra:?} vs {rb:?}");
}

#[test]
fn chaos_through_a_live_server_keeps_the_wire_ledger_balanced() {
    // The serve-side campaign: a chaos driver damages and heals fabric
    // shards through the same LiveFaultPlan the server routes with, while
    // the real loadgen client verifies every ROUTED response over TCP.
    let inputs = 16usize;
    let m = inputs.trailing_zeros() as usize;
    for seed in 0..8u64 {
        let schedule = ChaosSchedule::generate(m, 2, 16, 16, seed);
        let config = ServeConfig {
            inputs,
            workers: 2,
            ..ServeConfig::default()
        };
        let plan = LiveFaultPlan::healthy(2)
            .with_probe_seed(seed)
            .with_scrub_interval(Duration::from_micros(50));
        let counters = Counters::new();
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind ephemeral port");
        let addr = listener.local_addr().unwrap().to_string();
        let control = ServerControl::new();
        let stop = AtomicBool::new(false);

        let (serve_report, load_report) = thread::scope(|s| {
            let server_control = Arc::clone(&control);
            let counters_ref = &counters;
            let plan_ref = &plan;
            let server = s.spawn(move || {
                Server::with_fault_plan(config, counters_ref, plan_ref)
                    .serve(listener, &server_control)
                    .expect("serving session")
            });
            let schedule_ref = &schedule;
            let stop_ref = &stop;
            let driver = s.spawn(move || {
                for op in &schedule_ref.ops {
                    if stop_ref.load(Ordering::Acquire) {
                        break;
                    }
                    match op.action {
                        ChaosAction::Inject { shard, site, kind } => {
                            plan_ref.inject(shard, site, kind)
                        }
                        ChaosAction::Clear { shard } => plan_ref.clear(shard),
                    }
                    thread::sleep(Duration::from_millis(1));
                }
                for shard in 0..2 {
                    plan_ref.clear(shard);
                }
            });

            let load_report = run_loadgen(&LoadgenConfig {
                addr: addr.clone(),
                tenants: 2,
                frames: 40,
                inputs,
                mode: LoadMode::Closed { inflight: 2 },
                seed: seed ^ 0xB1B0,
                drain_window: Duration::from_millis(4000),
                shutdown_when_done: false,
                max_resubmits: 0,
                connections: 0,
                keys: None,
            })
            .expect("loadgen run");

            stop.store(true, Ordering::Release);
            driver.join().expect("chaos driver");
            // Give the still-running scrubber a bounded window to release
            // the last quarantines before the graceful drain kills it.
            let mut spins = 0usize;
            while plan.healthy_shards() < 2 && spins < 20_000 {
                thread::sleep(Duration::from_micros(100));
                spins += 1;
            }
            control.trigger_shutdown();
            (server.join().expect("server thread"), load_report)
        });

        assert!(
            serve_report.accounted(),
            "seed {seed}: serve ledger out of balance: {serve_report:?}"
        );
        assert_eq!(
            load_report.misdelivered, 0,
            "seed {seed}: SILENT MISDELIVERY over the wire: {load_report:?}"
        );
        assert_eq!(
            load_report.protocol_surprises, 0,
            "seed {seed}: malformed responses: {load_report:?}"
        );
        assert!(
            load_report.served > 0,
            "seed {seed}: chaos starved the service entirely: {load_report:?}"
        );
        // Every frame the client sent came back as exactly one of
        // served / retried / errored / unanswered-at-drain.
        assert_eq!(
            load_report.submitted,
            load_report.served + load_report.retried + load_report.errored + load_report.unanswered,
            "seed {seed}: loadgen ledger out of balance: {load_report:?}"
        );
        // The final clears released every quarantine by session end.
        assert_eq!(
            plan.healthy_shards(),
            2,
            "seed {seed}: capacity not restored after the schedule cleared"
        );
    }
}

/// Scrapes the server's /status endpoint and parses the JSON snapshot.
fn scrape_status(addr: &str) -> StatusSnapshot {
    let mut stream = TcpStream::connect(addr).expect("connect for status");
    stream
        .write_all(b"GET /status HTTP/1.1\r\nHost: bnb\r\nConnection: close\r\n\r\n")
        .unwrap();
    let mut reader = BufReader::new(stream);
    let mut status = String::new();
    reader.read_line(&mut status).unwrap();
    assert!(status.starts_with("HTTP/1.1 200"), "bad status: {status}");
    let mut line = String::new();
    loop {
        line.clear();
        reader.read_line(&mut line).unwrap();
        if line == "\r\n" {
            break;
        }
    }
    let mut body = String::new();
    reader.read_to_string(&mut body).unwrap();
    serde_json::from_str(&body).unwrap_or_else(|e| panic!("unparsable /status ({e:?}):\n{body}"))
}

/// Polls /status until `pred` holds or the deadline passes.
fn wait_for_status(addr: &str, deadline: Duration, pred: impl Fn(&StatusSnapshot) -> bool) -> bool {
    let until = Instant::now() + deadline;
    loop {
        if pred(&scrape_status(addr)) {
            return true;
        }
        if Instant::now() > until {
            return false;
        }
        thread::sleep(Duration::from_millis(5));
    }
}

/// A seeded permutation of `0..n` (xorshift Fisher–Yates), so successive
/// frames exercise the faulted switch from many control settings.
fn shuffled(n: usize, seed: u64) -> Vec<u32> {
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    let mut dests: Vec<u32> = (0..n as u32).collect();
    for i in (1..n).rev() {
        let j = (next() % (i as u64 + 1)) as usize;
        dests.swap(i, j);
    }
    dests
}

#[test]
fn status_reflects_shard_quarantine_and_restore() {
    // The operator-surface half of the chaos story: inject a persistent
    // control fault while traffic flows, watch /status walk the shard
    // through quarantine, clear the fault, and watch /status report the
    // scrubber restoring full capacity.
    let inputs = 16usize;
    let config = ServeConfig {
        inputs,
        workers: 2,
        ..ServeConfig::default()
    };
    let plan = LiveFaultPlan::healthy(2)
        .with_probe_seed(0xFAB)
        .with_scrub_interval(Duration::from_micros(50))
        .with_restore_after(1);
    let counters = Counters::new();
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind ephemeral port");
    let addr = listener.local_addr().unwrap().to_string();
    let control = ServerControl::new();
    let stop = AtomicBool::new(false);

    let report = thread::scope(|s| {
        let server_control = Arc::clone(&control);
        let counters_ref = &counters;
        let plan_ref = &plan;
        let server = s.spawn(move || {
            Server::with_fault_plan(config, counters_ref, plan_ref)
                .serve(listener, &server_control)
                .expect("serving session")
        });

        // Closed-loop traffic driver. Detection is traffic's job: the
        // engine demotes the shard only when a frame actually trips the
        // fault's balance check, exactly like real hardware.
        let stop_ref = &stop;
        let driver_addr = addr.clone();
        let driver = s.spawn(move || {
            let mut stream = TcpStream::connect(&driver_addr).expect("driver connect");
            stream
                .set_read_timeout(Some(Duration::from_secs(2)))
                .unwrap();
            let mut req = 0u64;
            while !stop_ref.load(Ordering::Acquire) {
                req += 1;
                let msg = Message::Submit {
                    tenant: 0,
                    request_id: req,
                    dests: shuffled(inputs, req),
                };
                if stream.write_all(&msg.to_bytes()).is_err() {
                    break;
                }
                match read_message(&mut stream) {
                    Ok(Some(_)) => {}
                    _ => break,
                }
            }
        });

        plan.inject(0, FaultSite::new(0, 0, 0), FaultKind::StuckExchange);

        let quarantined = wait_for_status(&addr, Duration::from_secs(10), |st| {
            st.fabric.as_ref().is_some_and(|f| {
                f.degraded
                    && f.shards.iter().any(|sh| {
                        sh.shard == 0 && sh.health == "quarantined" && !sh.faults.is_empty()
                    })
            })
        });
        assert!(
            quarantined,
            "/status never reflected the quarantine: {:?}",
            plan.status()
        );

        // The transient passes; one clean probe streak later the shard is
        // back and the operator surface says so.
        plan.clear(0);
        let restored = wait_for_status(&addr, Duration::from_secs(10), |st| {
            st.fabric.as_ref().is_some_and(|f| {
                !f.degraded
                    && f.healthy == 2
                    && f.shards
                        .iter()
                        .all(|sh| sh.health == "healthy" && sh.faults.is_empty())
            })
        });
        assert!(
            restored,
            "/status never reflected the restore: {:?}",
            plan.status()
        );

        stop.store(true, Ordering::Release);
        driver.join().expect("traffic driver");
        control.trigger_shutdown();
        server.join().expect("server thread")
    });
    assert!(report.accounted(), "{report:?}");
    assert!(report.frames_served > 0, "{report:?}");
}
