//! Claim C1 (Theorem 2): the BNB network self-routes **all** `n!`
//! permutations. Exhaustive for N ∈ {2, 4, 8}; randomized up to N = 4096.

use bnb::core::network::BnbNetwork;
use bnb::topology::perm::Permutation;
use bnb::topology::record::{all_delivered, records_for_permutation};
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn exhaustive_n2_and_n4() {
    for (n, total) in [(2usize, 2u64), (4, 24)] {
        let net = BnbNetwork::builder_for(n).unwrap().build();
        for k in 0..total {
            let p = Permutation::nth_lexicographic(n, k);
            let out = net.route(&records_for_permutation(&p)).unwrap();
            assert!(all_delivered(&out), "N={n} perm {p} mis-routed");
            // Every record must arrive with its payload intact.
            for (j, r) in out.iter().enumerate() {
                assert_eq!(r.data(), p.inverse().apply(j) as u64);
            }
        }
    }
}

#[test]
fn exhaustive_n8_all_40320() {
    let net = BnbNetwork::builder_for(8).unwrap().build();
    for k in 0..40_320u64 {
        let p = Permutation::nth_lexicographic(8, k);
        let out = net.route(&records_for_permutation(&p)).unwrap();
        assert!(all_delivered(&out), "perm {p} mis-routed");
    }
}

#[test]
fn randomized_up_to_n4096() {
    let mut rng = StdRng::seed_from_u64(0xBEEF);
    for m in [4usize, 5, 7, 9, 11, 12] {
        let net = BnbNetwork::new(m);
        let n = 1usize << m;
        let trials = if m <= 9 { 25 } else { 5 };
        for t in 0..trials {
            let p = Permutation::random(n, &mut rng);
            let out = net.route(&records_for_permutation(&p)).unwrap();
            assert!(all_delivered(&out), "N={n}, trial {t} mis-routed");
        }
    }
}

#[test]
fn involutions_and_cyclic_shifts_route() {
    // Structured permutation families that exercise specific switch
    // patterns: involutions (every 2-cycle) and all cyclic shifts.
    let net = BnbNetwork::new(5);
    let n = 32usize;
    for shift in 0..n {
        let p = Permutation::from_fn(n, |i| (i + shift) % n).unwrap();
        let out = net.route(&records_for_permutation(&p)).unwrap();
        assert!(all_delivered(&out), "shift {shift}");
    }
    // Pairwise swap involution.
    let p = Permutation::from_fn(n, |i| i ^ 1).unwrap();
    assert!(all_delivered(
        &net.route(&records_for_permutation(&p)).unwrap()
    ));
    // Halves swap.
    let p = Permutation::from_fn(n, |i| i ^ (n / 2)).unwrap();
    assert!(all_delivered(
        &net.route(&records_for_permutation(&p)).unwrap()
    ));
}
