//! The three pipeline views must agree: the behavioural timing model
//! (`bnb-sim`), the clocked gate-level pipeline (`bnb-gates`) and the
//! combinational router (`bnb-core`) all describe the same machine.

use bnb::core::network::BnbNetwork;
use bnb::gates::pipeline::PipelinedBnb;
use bnb::sim::pipeline::PipelinedFabric;
use bnb::sim::workload::random_batches;
use bnb::topology::perm::Permutation;
use bnb::topology::record::{all_delivered, records_for_permutation};
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn depths_agree_across_all_three_views() {
    for m in 1..=4usize {
        let behavioural = PipelinedFabric::new(BnbNetwork::builder(m).data_width(8).build());
        let gate = PipelinedBnb::new(m, 8);
        assert_eq!(behavioural.depth(), gate.depth(), "m = {m}");
        assert_eq!(gate.depth(), m * (m + 1) / 2);
    }
}

#[test]
fn gate_pipeline_stream_matches_behavioural_results() {
    let m = 3usize;
    let w = 6usize;
    let mut rng = StdRng::seed_from_u64(99);
    let batches: Vec<Vec<_>> = (0..5)
        .map(|_| records_for_permutation(&Permutation::random(8, &mut rng)))
        .collect();

    // Behavioural reference results.
    let net = BnbNetwork::builder(m).data_width(w).build();
    let expected: Vec<Vec<_>> = batches.iter().map(|b| net.route(b).unwrap()).collect();

    // Stream through the clocked gate-level pipeline.
    let mut pipe = PipelinedBnb::new(m, w);
    let mut drained = Vec::new();
    for cycle in 0..(batches.len() + pipe.depth() + 1) {
        let inject = batches.get(cycle).map(Vec::as_slice);
        if let Some(out) = pipe.clock(inject).unwrap() {
            drained.push(out);
        }
    }
    assert_eq!(drained.len(), batches.len());
    for (i, (got, want)) in drained.iter().zip(&expected).enumerate() {
        assert_eq!(got, want, "batch {i}");
        assert!(all_delivered(got));
    }
}

#[test]
fn behavioural_fabric_stats_match_gate_pipeline_timing() {
    let m = 3usize;
    let mut rng = StdRng::seed_from_u64(7);
    let fabric = PipelinedFabric::new(BnbNetwork::builder(m).data_width(16).build());
    let batches = random_batches(8, 10, &mut rng);
    let stats = fabric.run(&batches).unwrap();
    // The gate pipeline drains batch i at cycle i + depth; the last batch
    // therefore completes at cycle (count - 1) + depth, i.e. after
    // count + depth cycles total — exactly the behavioural model's count.
    assert_eq!(stats.cycles, batches.len() + fabric.depth());
    assert_eq!(stats.latency, fabric.depth());
    assert_eq!(stats.completed, batches.len());
}
