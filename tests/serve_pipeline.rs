//! Pipelined wire semantics of the epoll-reactor server: many SUBMITs
//! in flight on one connection, responses in any order but every id
//! answered exactly once; window exhaustion answers RETRY instead of
//! deadlocking; a mid-pipeline SHUTDOWN drains every in-flight id
//! before the FIN; HTTP sniffing survives byte-at-a-time writes on the
//! nonblocking sockets; and tenant authentication accepts good tags and
//! refuses bad ones.

use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use bnb::obs::Counters;
use bnb::serve::loadgen::{run_loadgen, LoadMode, LoadgenConfig};
use bnb::serve::protocol::{read_message, write_message, Message, RecvError, RetryReason};
use bnb::serve::server::{ServeConfig, ServeReport, Server, ServerControl, StatusSnapshot};
use bnb::serve::{ErrorCode, TenantKeys};
use proptest::prelude::*;

fn base_config() -> ServeConfig {
    ServeConfig {
        inputs: 16,
        workers: 2,
        queue_capacity: 8,
        tenant_quota: 8,
        max_connections: 32,
        read_timeout: Duration::from_millis(20),
        slow_ms: 0,
        reactor_threads: 1,
        window: 8,
    }
}

/// Runs `body` against a live server (optionally keyed), then triggers a
/// graceful drain and returns (session report, body result).
fn serve_scope<R: Send>(
    config: ServeConfig,
    keys: Option<TenantKeys>,
    body: impl FnOnce(&str, &Arc<ServerControl>) -> R + Send,
) -> (ServeReport, R) {
    let counters = Counters::new();
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind ephemeral port");
    let addr = listener.local_addr().unwrap().to_string();
    let control = ServerControl::new();

    thread::scope(|s| {
        let server_control = Arc::clone(&control);
        let counters_ref = &counters;
        let server = s.spawn(move || {
            let mut server = Server::new(config, counters_ref);
            if let Some(keys) = keys {
                server = server.with_tenant_keys(keys);
            }
            server
                .serve(listener, &server_control)
                .expect("serving session")
        });

        let out = body(&addr, &control);

        control.trigger_shutdown();
        let report = server.join().expect("server thread");
        (report, out)
    })
}

/// The rotation permutation: input `i` goes to output `(i + k) % n`.
fn rotated_dests(n: usize, k: usize) -> Vec<u32> {
    (0..n).map(|i| ((i + k) % n) as u32).collect()
}

/// Checks a ROUTED response against the rotation that was submitted:
/// output `j` must have received input `(j - k) mod n`.
fn verify_rotation(n: usize, k: usize, sources: &[u32]) -> bool {
    sources.len() == n
        && sources
            .iter()
            .enumerate()
            .all(|(j, &src)| src as usize == (j + n - k % n) % n)
}

/// Reads responses until `want` distinct request ids are answered or the
/// deadline passes; panics on a duplicate answer. Returns id → message.
fn collect_answers(stream: &mut TcpStream, want: usize) -> HashMap<u64, Message> {
    stream
        .set_read_timeout(Some(Duration::from_millis(50)))
        .unwrap();
    let deadline = Instant::now() + Duration::from_secs(20);
    let mut answers: HashMap<u64, Message> = HashMap::new();
    while answers.len() < want {
        assert!(
            Instant::now() < deadline,
            "deadlock: {}/{want} answers after 20s: {answers:?}",
            answers.len()
        );
        match read_message(stream) {
            Ok(Some(msg)) => {
                let id = msg.request_id();
                let prev = answers.insert(id, msg);
                assert!(prev.is_none(), "request id {id} answered twice");
            }
            Ok(None) => panic!("server hung up with {}/{want} answered", answers.len()),
            Err(RecvError::IdleTimeout) => {}
            Err(e) => panic!("wire error mid-pipeline: {e:?}"),
        }
    }
    answers
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Any number of frames blasted down one connection without reading
    /// comes back with every request id answered exactly once — ROUTED
    /// responses correct, refusals explicit — regardless of response
    /// order.
    #[test]
    fn pipelined_ids_are_answered_exactly_once(frames in 1usize..24) {
        let n = 16usize;
        let (report, ()) = serve_scope(base_config(), None, |addr, _| {
            let mut stream = TcpStream::connect(addr).expect("connect");
            stream.set_nodelay(true).ok();
            for id in 0..frames {
                write_message(&mut stream, &Message::Submit {
                    tenant: 1,
                    request_id: id as u64,
                    dests: rotated_dests(n, id % n),
                }).expect("submit");
            }
            let answers = collect_answers(&mut stream, frames);
            for (id, msg) in &answers {
                match msg {
                    Message::Routed { sources, .. } => {
                        assert!(
                            verify_rotation(n, *id as usize % n, sources),
                            "misdelivered frame {id}"
                        );
                    }
                    Message::Retry { .. } => {}
                    other => panic!("unexpected answer {other:?}"),
                }
            }
            let ids: Vec<u64> = (0..frames as u64).collect();
            let mut got: Vec<u64> = answers.keys().copied().collect();
            got.sort_unstable();
            assert_eq!(got, ids);
        });
        let out = report; // the ledger must balance even under pipelining
        prop_assert!(out.accounted(), "unbalanced ledger: {out:?}");
        prop_assert_eq!(out.frames_submitted, frames as u64);
    }
}

#[test]
fn window_exhaustion_answers_retry_not_deadlock() {
    let n = 16usize;
    let frames = 32usize;
    let mut config = base_config();
    // A one-frame window with ample quota/queue: refusals can only be
    // WindowFull.
    config.window = 1;
    config.tenant_quota = 64;
    config.queue_capacity = 64;
    let (report, (served, window_retries)) = serve_scope(config, None, |addr, _| {
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream.set_nodelay(true).ok();
        // One burst write: the reactor decodes the whole run in a single
        // readable sweep, so everything past the first admit hits the
        // exhausted window before any completion can free it.
        let mut burst = Vec::new();
        for id in 0..frames {
            burst.extend_from_slice(
                &Message::Submit {
                    tenant: 1,
                    request_id: id as u64,
                    dests: rotated_dests(n, id % n),
                }
                .to_bytes(),
            );
        }
        stream.write_all(&burst).expect("burst");
        let answers = collect_answers(&mut stream, frames);
        let mut served = 0u64;
        let mut window_retries = 0u64;
        for (id, msg) in &answers {
            match msg {
                Message::Routed { sources, .. } => {
                    assert!(
                        verify_rotation(n, *id as usize % n, sources),
                        "misdelivered frame {id}"
                    );
                    served += 1;
                }
                Message::Retry { reason, .. } => {
                    assert_eq!(*reason, RetryReason::WindowFull, "frame {id}");
                    window_retries += 1;
                }
                other => panic!("unexpected answer {other:?}"),
            }
        }
        (served, window_retries)
    });
    assert!(served >= 1, "at least the first frame is admitted");
    assert!(
        window_retries >= 1,
        "a 32-frame burst into a 1-frame window must refuse something"
    );
    assert_eq!(served + window_retries, frames as u64);
    assert!(report.accounted(), "unbalanced ledger: {report:?}");
    assert_eq!(report.retries_issued, window_retries);
}

#[test]
fn midstream_shutdown_drains_every_inflight_id_before_fin() {
    let n = 16usize;
    let frames = 8usize;
    let (report, ()) = serve_scope(base_config(), None, |addr, _| {
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream.set_nodelay(true).ok();
        let mut burst = Vec::new();
        for id in 0..frames {
            burst.extend_from_slice(
                &Message::Submit {
                    tenant: 2,
                    request_id: id as u64,
                    dests: rotated_dests(n, id % n),
                }
                .to_bytes(),
            );
        }
        burst.extend_from_slice(
            &Message::Shutdown {
                tenant: 2,
                request_id: 99,
            }
            .to_bytes(),
        );
        stream.write_all(&burst).expect("burst + shutdown");
        // Every in-flight id must be answered (ROUTED or an explicit
        // refusal) before the server closes the connection.
        let answers = collect_answers(&mut stream, frames);
        for (id, msg) in &answers {
            assert!(
                matches!(
                    msg,
                    Message::Routed { .. } | Message::Retry { .. } | Message::Error { .. }
                ),
                "frame {id} got {msg:?}"
            );
        }
        // After the drain: FIN, not silence.
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        loop {
            match read_message(&mut stream) {
                Ok(Some(msg)) => panic!("unexpected post-drain message {msg:?}"),
                Ok(None) => break,
                Err(RecvError::IdleTimeout) => {}
                Err(e) => panic!("post-drain wire error {e:?}"),
            }
        }
    });
    assert!(report.graceful, "wire SHUTDOWN must drain gracefully");
    assert!(report.accounted(), "unbalanced ledger: {report:?}");
    assert_eq!(report.frames_submitted, frames as u64);
}

#[test]
fn http_sniff_survives_byte_at_a_time_writes() {
    let (report, body) = serve_scope(base_config(), None, |addr, _| {
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream.set_nodelay(true).ok();
        // Drip the request one byte at a time: the nonblocking reactor
        // sees many partial reads and must keep accumulating until the
        // blank line, not just answer on the first segment.
        let request = b"GET /status HTTP/1.1\r\nHost: bnb\r\nConnection: close\r\n\r\n";
        for &byte in request.iter() {
            stream.write_all(&[byte]).expect("drip write");
            thread::sleep(Duration::from_millis(1));
        }
        let mut response = String::new();
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        stream
            .read_to_string(&mut response)
            .expect("read HTTP response");
        response
    });
    assert!(body.starts_with("HTTP/1.1 200"), "bad response: {body}");
    let json_at = body.find("\r\n\r\n").expect("header/body split") + 4;
    let status: StatusSnapshot = serde_json::from_str(&body[json_at..])
        .unwrap_or_else(|e| panic!("unparsable /status body ({e:?}):\n{body}"));
    assert_eq!(status.reactors, 1, "status reports the reactor count");
    assert_eq!(status.window.limit, 8, "status reports the window limit");
    assert!(report.accounted());
}

#[test]
fn keyed_server_accepts_good_tags_and_refuses_everything_else() {
    let n = 16usize;
    let keys = TenantKeys::parse("1:alpha\n2:beta\n").expect("key file");
    let client_keys = keys.clone();
    let (report, ()) = serve_scope(base_config(), Some(keys), move |addr, _| {
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream.set_nodelay(true).ok();
        let dests = rotated_dests(n, 3);

        // 1) Correct tag: served.
        let tag = client_keys.tag(1, 10, &dests).expect("tenant 1 has a key");
        write_message(
            &mut stream,
            &Message::SubmitTagged {
                tenant: 1,
                request_id: 10,
                tag,
                dests: dests.clone(),
            },
        )
        .unwrap();
        // 2) Wrong tag: refused.
        write_message(
            &mut stream,
            &Message::SubmitTagged {
                tenant: 1,
                request_id: 11,
                tag: tag ^ 1,
                dests: dests.clone(),
            },
        )
        .unwrap();
        // 3) Untagged SUBMIT on a keyed server: refused.
        write_message(
            &mut stream,
            &Message::Submit {
                tenant: 2,
                request_id: 12,
                dests: dests.clone(),
            },
        )
        .unwrap();
        // 4) Unknown tenant: refused no matter the tag.
        write_message(
            &mut stream,
            &Message::SubmitTagged {
                tenant: 9,
                request_id: 13,
                tag: 0xDEAD_BEEF,
                dests: dests.clone(),
            },
        )
        .unwrap();

        let answers = collect_answers(&mut stream, 4);
        match &answers[&10] {
            Message::Routed { sources, .. } => {
                assert!(verify_rotation(n, 3, sources), "misdelivered tagged frame")
            }
            other => panic!("good tag must route, got {other:?}"),
        }
        for id in [11u64, 12, 13] {
            match &answers[&id] {
                Message::Error { code, .. } => {
                    assert_eq!(*code, ErrorCode::Auth, "request {id}")
                }
                other => panic!("request {id} must fail auth, got {other:?}"),
            }
        }
    });
    assert_eq!(report.frames_submitted, 4);
    assert_eq!(report.frames_served, 1);
    assert_eq!(report.auth_failures, 3);
    assert_eq!(report.frames_errored, 3);
    assert!(report.accounted(), "unbalanced ledger: {report:?}");
}

#[test]
fn keyed_loadgen_round_trips_through_a_keyed_server() {
    let keys = TenantKeys::parse("0:k0\n1:k1\n2:k2\n3:k3\n").expect("key file");
    let (report, load) = serve_scope(base_config(), Some(keys.clone()), move |addr, _| {
        run_loadgen(&LoadgenConfig {
            addr: addr.to_string(),
            tenants: 4,
            connections: 0,
            frames: 20,
            inputs: 16,
            mode: LoadMode::Closed { inflight: 4 },
            seed: 0x7A66,
            drain_window: Duration::from_secs(2),
            shutdown_when_done: false,
            max_resubmits: 4,
            keys: Some(keys),
        })
        .expect("keyed loadgen run")
    });
    assert_eq!(load.errored, 0, "tagged frames must pass auth: {load:?}");
    assert_eq!(load.misdelivered, 0);
    assert_eq!(load.unanswered, 0);
    assert!(load.served > 0);
    assert_eq!(report.auth_failures, 0);
    assert!(report.accounted(), "unbalanced ledger: {report:?}");
}

#[test]
fn single_reactor_thread_serves_many_pipelined_connections() {
    let mut config = base_config();
    config.reactor_threads = 1;
    config.queue_capacity = 16;
    config.tenant_quota = 16;
    let (report, load) = serve_scope(config, None, |addr, _| {
        run_loadgen(&LoadgenConfig {
            addr: addr.to_string(),
            tenants: 2,
            connections: 8,
            frames: 16,
            inputs: 16,
            mode: LoadMode::Closed { inflight: 4 },
            seed: 0x1EAD,
            drain_window: Duration::from_secs(2),
            shutdown_when_done: false,
            max_resubmits: 8,
            keys: None,
        })
        .expect("loadgen run")
    });
    assert_eq!(load.connections, 8);
    assert_eq!(load.misdelivered, 0, "single-lane misdelivery: {load:?}");
    assert_eq!(load.unanswered, 0, "single-lane starvation: {load:?}");
    assert!(load.served > 0);
    assert!(report.accounted(), "unbalanced ledger: {report:?}");
}
