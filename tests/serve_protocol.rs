//! Property-based tests over the `bnb serve` wire protocol: every
//! message round-trips byte-exactly, and *any* byte sequence decodes to
//! either a message or a typed error — never a panic, never an unbounded
//! allocation.

use bnb::serve::protocol::{
    decode_body, read_message, Message, RecvError, RetryReason, WireError, HEADER_LEN, MAX_BODY,
    OP_ERROR, OP_RETRY, OP_ROUTED, OP_SHUTDOWN, OP_SUBMIT, VERSION,
};
use bnb::serve::ErrorCode;
use proptest::prelude::*;

/// Builds one of the five message shapes from a flat tuple of raw
/// ingredients (the vendored proptest has no `prop_oneof!`, so the
/// discriminant is explicit).
fn build_message(
    kind: u8,
    tenant: u16,
    request_id: u64,
    lines: Vec<u32>,
    text: Vec<u8>,
) -> Message {
    match kind {
        0 => Message::Submit {
            tenant,
            request_id,
            dests: lines,
        },
        1 => Message::Routed {
            tenant,
            request_id,
            sources: lines,
        },
        2 => Message::Retry {
            tenant,
            request_id,
            reason: RetryReason::from_u8(1 + (lines.len() as u8 % 3)).unwrap(),
        },
        3 => Message::Error {
            tenant,
            request_id,
            code: ErrorCode::from_u8(1 + (lines.len() as u8 % 2)).unwrap(),
            // Printable ASCII keeps the message valid UTF-8 by construction.
            message: text.iter().map(|b| (b' ' + b % 95) as char).collect(),
        },
        _ => Message::Shutdown { tenant, request_id },
    }
}

fn arb_message() -> impl Strategy<Value = Message> {
    (
        0u8..5,
        any::<u16>(),
        any::<u64>(),
        proptest::collection::vec(any::<u32>(), 0..=256),
        proptest::collection::vec(any::<u8>(), 0..=120),
    )
        .prop_map(|(kind, tenant, request_id, lines, text)| {
            build_message(kind, tenant, request_id, lines, text)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// encode → decode is the identity for every message shape.
    #[test]
    fn any_message_round_trips(msg in arb_message()) {
        let bytes = msg.to_bytes();
        let len = u32::from_be_bytes([bytes[0], bytes[1], bytes[2], bytes[3]]) as usize;
        prop_assert_eq!(len, bytes.len() - 4, "length prefix covers the body exactly");
        prop_assert_eq!(decode_body(&bytes[4..]), Ok(msg.clone()));
        let mut cursor = std::io::Cursor::new(&bytes);
        prop_assert_eq!(read_message(&mut cursor).unwrap(), Some(msg));
    }

    /// Arbitrary garbage bodies never panic: always a Message or a typed
    /// WireError.
    #[test]
    fn arbitrary_bytes_decode_to_message_or_typed_error(
        body in proptest::collection::vec(any::<u8>(), 0..=512),
    ) {
        let _ = decode_body(&body); // must return, never panic
    }

    /// Truncating a valid frame anywhere yields a typed error, never a
    /// panic and never a wrong message.
    #[test]
    fn truncation_never_panics(msg in arb_message(), pick in any::<u64>()) {
        let bytes = msg.to_bytes();
        let body = &bytes[4..];
        if body.len() > 1 {
            let cut = (pick % body.len() as u64) as usize; // strictly shorter
            prop_assert!(decode_body(&body[..cut]).is_err());
        }
    }

    /// Flipping any single byte of a valid frame either still decodes (it
    /// hit a payload byte) or fails with a typed error — never a panic.
    #[test]
    fn single_byte_corruption_is_handled(
        msg in arb_message(),
        pick in any::<u64>(),
        xor in 1u8..=255,
    ) {
        let bytes = msg.to_bytes();
        let mut body = bytes[4..].to_vec();
        let i = (pick % body.len() as u64) as usize;
        body[i] ^= xor;
        let _ = decode_body(&body); // must return, never panic
    }

    /// The framed reader survives arbitrary byte streams: every outcome
    /// is a message, a clean EOF, or a typed error.
    #[test]
    fn framed_reader_never_panics_on_garbage(
        stream in proptest::collection::vec(any::<u8>(), 0..=64),
    ) {
        let mut cursor = std::io::Cursor::new(&stream);
        match read_message(&mut cursor) {
            Ok(_) | Err(RecvError::Io(_)) | Err(RecvError::Wire(_)) => {}
            Err(RecvError::IdleTimeout) => {
                prop_assert!(false, "a Cursor never times out");
            }
        }
    }
}

#[test]
fn oversized_length_prefixes_are_refused_without_allocation() {
    // 0xFFFF_FFFF would be a 4 GiB body; the reader must refuse from the
    // prefix alone.
    let mut stream = std::io::Cursor::new(vec![0xFF, 0xFF, 0xFF, 0xFF]);
    match read_message(&mut stream) {
        Err(RecvError::Wire(WireError::Oversized { len, max })) => {
            assert_eq!(len, u64::from(u32::MAX));
            assert_eq!(max, MAX_BODY as u64);
        }
        other => panic!("expected Oversized, got {other:?}"),
    }
}

#[test]
fn header_constants_match_the_design_doc() {
    // DESIGN.md §14 pins these; a drift here is a wire break.
    assert_eq!(VERSION, 1);
    assert_eq!(HEADER_LEN, 12);
    assert_eq!(
        [OP_SUBMIT, OP_ROUTED, OP_RETRY, OP_ERROR, OP_SHUTDOWN],
        [0x01, 0x02, 0x03, 0x04, 0x05]
    );
    assert_eq!(RetryReason::QueueFull.as_u8(), 1);
    assert_eq!(RetryReason::TenantQuota.as_u8(), 2);
    assert_eq!(RetryReason::Draining.as_u8(), 3);
}
