//! Exhaustive hardware fault matrix: every fault kind at every
//! `(main_stage, internal_stage, element)` position, `m = 2..=4`.
//!
//! The guarantee under test is the strict policy's
//! *detect-or-route-correctly* contract: a single faulted element either
//! trips the output balance check (`RouteError::HardwareFault`) or the
//! frame is delivered perfectly — a silent misdelivery is never possible.
//! The permissive policy must instead keep the frame moving and conserve
//! the record multiset (control-plane faults misroute, they never drop or
//! duplicate payloads).

use bnb::core::error::RouteError;
use bnb::core::network::{BnbNetwork, RoutePolicy};
use bnb::core::{FaultKind, FaultMap, FaultSite, FaultyFabric, HardwareFault};
use bnb::topology::perm::Permutation;
use bnb::topology::record::{all_delivered, records_for_permutation, Record};
use rand::rngs::StdRng;
use rand::SeedableRng;

const KINDS: [FaultKind; 4] = [
    FaultKind::StuckStraight,
    FaultKind::StuckExchange,
    FaultKind::DeadArbiter,
    FaultKind::BrokenLink,
];

/// A small but adversarial permutation set: fixed corner cases plus
/// seeded random draws.
fn trial_perms(n: usize) -> Vec<Permutation> {
    let mut rng = StdRng::seed_from_u64(0x9e37_79b9 ^ n as u64);
    let mut perms = vec![
        Permutation::identity(n),
        Permutation::try_from((0..n).rev().collect::<Vec<_>>()).unwrap(),
    ];
    perms.extend((0..6).map(|_| Permutation::random(n, &mut rng)));
    perms
}

/// Every in-bounds single fault for an `N = 2^m` network.
fn all_single_faults(m: usize) -> Vec<HardwareFault> {
    let mut faults = Vec::new();
    for main_stage in 0..m {
        for internal_stage in 0..m - main_stage {
            for kind in KINDS {
                for element in 0..kind.elements(m, main_stage, internal_stage) {
                    let fault = HardwareFault {
                        site: FaultSite::new(main_stage, internal_stage, element),
                        kind,
                    };
                    assert!(fault.in_bounds(m), "generator out of bounds: {fault:?}");
                    faults.push(fault);
                }
            }
        }
    }
    faults
}

fn sorted_multiset(records: &[Record]) -> Vec<(usize, u64)> {
    let mut v: Vec<(usize, u64)> = records.iter().map(|r| (r.dest(), r.data())).collect();
    v.sort_unstable();
    v
}

#[test]
fn strict_detects_or_routes_correctly_for_every_single_fault() {
    for m in 2..=4usize {
        let n = 1usize << m;
        let perms = trial_perms(n);
        let net = BnbNetwork::builder(m)
            .data_width(32)
            .policy(RoutePolicy::Strict)
            .build();
        let mut fabric = FaultyFabric::new(net, FaultMap::new());
        let mut detections = 0usize;
        let mut faults_tested = 0usize;
        for fault in all_single_faults(m) {
            fabric.set_faults(FaultMap::from_iter([fault]));
            faults_tested += 1;
            for perm in &perms {
                let records = records_for_permutation(perm);
                match fabric.route(&records) {
                    Ok(out) => assert!(
                        all_delivered(&out),
                        "SILENT MISDELIVERY: m={m} fault={fault:?} perm={perm:?}"
                    ),
                    Err(RouteError::HardwareFault {
                        main_stage,
                        internal_stage,
                        ..
                    }) => {
                        // Detection fires in the column that is actually
                        // faulted — the check is scoped to fault sites.
                        assert_eq!(
                            (main_stage, internal_stage),
                            (fault.site.main_stage, fault.site.internal_stage),
                            "detection must localize the faulted column"
                        );
                        detections += 1;
                    }
                    Err(other) => panic!(
                        "strict route on valid permutation may only fail with \
                         HardwareFault, got {other}: m={m} fault={fault:?}"
                    ),
                }
            }
        }
        assert!(
            detections > 0,
            "m={m}: {faults_tested} faults never tripped detection — the check is dead"
        );
    }
}

#[test]
fn permissive_conserves_the_record_multiset_for_every_single_fault() {
    for m in 2..=4usize {
        let n = 1usize << m;
        let perms = trial_perms(n);
        let net = BnbNetwork::builder(m)
            .data_width(32)
            .policy(RoutePolicy::Permissive)
            .build();
        let mut fabric = FaultyFabric::new(net, FaultMap::new());
        for fault in all_single_faults(m) {
            fabric.set_faults(FaultMap::from_iter([fault]));
            for perm in &perms {
                let records = records_for_permutation(perm);
                let out = fabric
                    .route(&records)
                    .unwrap_or_else(|e| panic!("permissive must route: {e} fault={fault:?}"));
                assert_eq!(
                    sorted_multiset(&records),
                    sorted_multiset(&out),
                    "records lost or duplicated: m={m} fault={fault:?} perm={perm:?}"
                );
            }
        }
    }
}

#[test]
fn stuck_and_arbiter_faults_are_observable_somewhere() {
    // Kinds that corrupt switch settings must actually be detectable for
    // at least one (site, permutation) pair per network size — otherwise
    // the injection itself is a no-op and the matrix proves nothing.
    for m in 2..=4usize {
        let n = 1usize << m;
        let perms = trial_perms(n);
        let net = BnbNetwork::builder(m)
            .data_width(32)
            .policy(RoutePolicy::Strict)
            .build();
        let mut fabric = FaultyFabric::new(net, FaultMap::new());
        for kind in [
            FaultKind::StuckStraight,
            FaultKind::StuckExchange,
            FaultKind::DeadArbiter,
        ] {
            let mut tripped = false;
            'sites: for fault in all_single_faults(m).into_iter().filter(|f| f.kind == kind) {
                fabric.set_faults(FaultMap::from_iter([fault]));
                for perm in &perms {
                    let records = records_for_permutation(perm);
                    if matches!(
                        fabric.route(&records),
                        Err(RouteError::HardwareFault { .. })
                    ) {
                        tripped = true;
                        break 'sites;
                    }
                }
            }
            assert!(tripped, "m={m}: no {kind:?} fault ever tripped detection");
        }
    }
}

#[test]
fn transient_fault_quarantine_release_restores_the_routing_matrix() {
    // A transient fault's full life cycle through the live-repair engine:
    // healthy -> fault injected -> traffic marks the shard suspect -> the
    // scrubber confirms and quarantines -> the fault clears -> clean
    // probes restore the shard. Releasing the quarantine must restore the
    // *pre-fault routing matrix*: every trial permutation routes to
    // byte-identical output after the repair.
    use bnb::engine::{Engine, EngineConfig, LiveFaultPlan, RetryPolicy, ShardHealth};
    use std::time::Duration;

    let m = 3usize;
    let n = 1usize << m;
    let net = BnbNetwork::builder(m).data_width(32).build();
    let perms = trial_perms(n);
    let matrix: Vec<Vec<Record>> = perms
        .iter()
        .map(|p| {
            net.route(&records_for_permutation(p))
                .expect("healthy route")
        })
        .collect();

    let engine = Engine::new(net, EngineConfig::with_workers(2));
    let plan = LiveFaultPlan::healthy(2)
        .with_probe_seed(17)
        .with_restore_after(2)
        .with_scrub_interval(Duration::ZERO)
        .with_retry(RetryPolicy {
            max_attempts: 4,
            backoff: Duration::ZERO,
        });
    let route_matrix = |h: &bnb::engine::EngineHandle<'_, bnb::obs::NoopObserver>| {
        perms
            .iter()
            .map(|p| {
                h.submit(records_for_permutation(p));
                h.drain()
                    .expect("lock-step drain")
                    .result
                    .expect("healthy plan routes every frame")
            })
            .collect::<Vec<Vec<Record>>>()
    };
    engine.run_scrubbed(&plan, |h| {
        assert_eq!(route_matrix(h), matrix, "healthy engine matches sequential");

        let fault = HardwareFault {
            site: FaultSite::new(1, 0, 0),
            kind: FaultKind::StuckExchange,
        };
        plan.inject(0, fault.site, fault.kind);
        // Drive traffic until the scrubber confirms the quarantine. Every
        // frame must still deliver correctly — routed around on shard 1.
        let mut spins = 0usize;
        while plan.health(0) != ShardHealth::Quarantined {
            for (p, want) in perms.iter().zip(&matrix) {
                h.submit(records_for_permutation(p));
                let got = h
                    .drain()
                    .unwrap()
                    .result
                    .expect("remap must absorb the fault");
                assert_eq!(&got, want, "misdelivery while shard 0 is faulted");
            }
            spins += 1;
            assert!(spins < 100_000, "shard 0 never quarantined");
        }

        // The transient passes; clean probes must release the quarantine.
        plan.clear(0);
        spins = 0;
        while plan.health(0) != ShardHealth::Healthy {
            std::thread::yield_now();
            spins += 1;
            assert!(spins < 100_000_000, "quarantine never released");
        }
        assert_eq!(plan.healthy_shards(), 2, "full capacity restored");

        // The post-repair routing matrix is the pre-fault one, exactly.
        assert_eq!(route_matrix(h), matrix, "repair must restore the matrix");
    });
}

#[test]
fn multi_fault_maps_still_never_misdeliver_under_strict() {
    // Pairs of faults in distinct columns: the per-column check handles
    // each independently.
    let m = 3usize;
    let n = 1usize << m;
    let perms = trial_perms(n);
    let net = BnbNetwork::builder(m)
        .data_width(32)
        .policy(RoutePolicy::Strict)
        .build();
    let mut fabric = FaultyFabric::new(net, FaultMap::new());
    let a = HardwareFault {
        site: FaultSite::new(0, 0, 1),
        kind: FaultKind::StuckExchange,
    };
    let b = HardwareFault {
        site: FaultSite::new(1, 1, 0),
        kind: FaultKind::DeadArbiter,
    };
    fabric.set_faults(FaultMap::from_iter([a, b]));
    let mut detections = 0usize;
    for perm in &perms {
        let records = records_for_permutation(perm);
        match fabric.route(&records) {
            Ok(out) => assert!(all_delivered(&out), "silent misdelivery under two faults"),
            Err(RouteError::HardwareFault { .. }) => detections += 1,
            Err(other) => panic!("unexpected error: {other}"),
        }
    }
    assert!(detections > 0, "two faults never detected across the set");
}
