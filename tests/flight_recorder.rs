//! Flight-recorder integration: real routed traffic through the bounded
//! span ring, the sampling policies, and both standard exporters
//! (Prometheus text exposition and Chrome trace-event JSON) driven from
//! live data rather than synthetic spans.

use bnb::core::network::BnbNetwork;
use bnb::engine::{Engine, EngineConfig, ShardDepth};
use bnb::obs::{
    render_chrome_trace, render_prometheus, Counters, Fanout, FlightRecorder, SamplePolicy,
    SpanKind,
};
use bnb::topology::perm::Permutation;
use bnb::topology::record::{all_delivered, records_for_permutation};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Eq. (7): switching columns per frame.
fn columns(m: usize) -> usize {
    m * (m + 1) / 2
}

/// Splitter boxes (= arbiter sweeps) per frame.
fn sweeps(m: usize) -> usize {
    let n = 1usize << m;
    n * m - n + 1
}

#[test]
fn recorded_route_captures_the_closed_form_span_counts() {
    let mut rng = StdRng::seed_from_u64(3);
    for m in [2usize, 3, 4] {
        let n = 1usize << m;
        let net = BnbNetwork::builder(m).data_width(16).build();
        let recorder = FlightRecorder::new();
        let records = records_for_permutation(&Permutation::random(n, &mut rng));
        let out = net.route_observed(&records, &recorder).unwrap();
        assert!(all_delivered(&out));
        let spans = recorder.spans();
        let by_kind = |k: SpanKind| spans.iter().filter(|s| s.kind == k).count();
        assert_eq!(by_kind(SpanKind::Column), columns(m), "m = {m}");
        assert_eq!(by_kind(SpanKind::Sweep), sweeps(m), "m = {m}");
        assert_eq!(by_kind(SpanKind::Conflict), 0, "m = {m}: clean permutation");
        assert_eq!(recorder.dropped(), 0, "m = {m}: nothing evicted");
        assert_eq!(recorder.sampled_out(), 0, "m = {m}: nothing sampled out");
    }
}

#[test]
fn overflow_keeps_the_newest_spans_and_counts_the_rest() {
    // A deliberately tiny ring under heavy traffic: retention is bounded,
    // the newest spans win, and the drop counter accounts for exactly the
    // overflow — sampling and eviction are never silent.
    let mut rng = StdRng::seed_from_u64(4);
    let m = 5usize;
    let n = 1usize << m;
    let net = BnbNetwork::builder(m).data_width(16).build();
    const CAP: usize = 32;
    let recorder = FlightRecorder::with_capacity(CAP);
    const ROUTES: usize = 8;
    let mut last_route_started = 0;
    for _ in 0..ROUTES {
        let records = records_for_permutation(&Permutation::random(n, &mut rng));
        last_route_started = recorder.now_ns();
        net.route_observed(&records, &recorder).unwrap();
    }
    let per_route = (columns(m) + sweeps(m)) as u64;
    let total = ROUTES as u64 * per_route;
    assert_eq!(recorder.accepted(), total);
    assert_eq!(recorder.len(), CAP, "single-threaded: one lane, full ring");
    assert_eq!(recorder.dropped(), total - CAP as u64);
    // CAP < one route's span count, so every survivor must come from the
    // final route: eviction discards oldest-first.
    let spans = recorder.spans();
    assert_eq!(spans.len(), CAP);
    assert!(CAP as u64 <= per_route);
    assert!(
        spans.iter().all(|s| s.ts_ns >= last_route_started),
        "an old span survived past {total} newer ones"
    );
}

#[test]
fn sampling_policies_filter_live_traffic() {
    let mut rng = StdRng::seed_from_u64(5);
    let m = 4usize;
    let n = 1usize << m;
    let net = BnbNetwork::builder(m).data_width(16).build();
    let records = records_for_permutation(&Permutation::random(n, &mut rng));

    // Head sampling keeps ~1/4 of the event stream.
    let rate = FlightRecorder::new().policy(SamplePolicy::Rate(4));
    net.route_observed(&records, &rate).unwrap();
    let total = (columns(m) + sweeps(m)) as u64;
    assert_eq!(rate.accepted() + rate.sampled_out(), total);
    assert_eq!(rate.accepted(), total.div_ceil(4));

    // Tail sampling on a clean route keeps nothing — and says so.
    let errors = FlightRecorder::new().policy(SamplePolicy::Errors);
    net.route_observed(&records, &errors).unwrap();
    assert!(errors.is_empty(), "no errors on a clean permutation");
    assert_eq!(errors.sampled_out(), total);

    // Predicate sampling: keep only main-column spans (internal stage 0).
    let mains = FlightRecorder::new().policy(SamplePolicy::Predicate(|s| {
        s.kind == SpanKind::Column && s.b == 0
    }));
    net.route_observed(&records, &mains).unwrap();
    assert_eq!(mains.len(), m, "one main column per stage");
}

#[test]
fn engine_traffic_round_trips_through_both_exporters() {
    let mut rng = StdRng::seed_from_u64(6);
    let m = 4usize;
    let n = 1usize << m;
    let counters = Counters::new();
    let recorder = FlightRecorder::new();
    let config = EngineConfig {
        workers: 2,
        queue_capacity: 2,
        shard_depth: ShardDepth::Fixed(1),
    };
    let engine = Engine::with_observer(
        BnbNetwork::new(m),
        config,
        Fanout::new(&counters, &recorder),
    );
    const BATCHES: usize = 4;
    engine.run(|h| {
        for _ in 0..BATCHES {
            h.submit(records_for_permutation(&Permutation::random(n, &mut rng)));
        }
        while h.drain().is_some() {}
    });

    let spans = recorder.spans();
    let drains = spans.iter().filter(|s| s.kind == SpanKind::Drain).count();
    assert_eq!(drains, BATCHES, "one drain span per batch");
    assert!(spans.iter().all(|s| (s.lane as usize) < 8));

    // Chrome trace: structurally valid JSON with one event per span plus
    // process/thread metadata, timestamps non-decreasing per the merge.
    let json = render_chrome_trace(&spans);
    assert!(json.starts_with("{\"displayTimeUnit\":\"ns\""));
    assert!(json.trim_end().ends_with("]}"));
    let events = json.matches("\"ph\":").count();
    let lanes: std::collections::BTreeSet<u32> = spans.iter().map(|s| s.lane).collect();
    assert_eq!(events, spans.len() + 1 + lanes.len(), "spans + metadata");
    assert!(
        spans.windows(2).all(|w| w[0].ts_ns <= w[1].ts_ns),
        "merged spans are time-ordered"
    );

    // Prometheus: every value line is `name[{labels}] integer`, and the
    // families the engine feeds carry the expected totals.
    let prom = render_prometheus(&counters.snapshot());
    for line in prom
        .lines()
        .filter(|l| !l.starts_with('#') && !l.is_empty())
    {
        let (name, value) = line.rsplit_once(' ').expect("name value");
        assert!(!name.is_empty());
        assert!(value.parse::<u64>().is_ok(), "unparseable sample: {line:?}");
    }
    let sample = |name: &str| -> u64 {
        prom.lines()
            .find(|l| l.starts_with(name) && !l.starts_with('#'))
            .and_then(|l| l.rsplit_once(' '))
            .and_then(|(_, v)| v.parse().ok())
            .unwrap_or_else(|| panic!("missing family {name}"))
    };
    assert_eq!(sample("bnb_batches_submitted_total"), BATCHES as u64);
    assert_eq!(sample("bnb_batches_drained_total"), BATCHES as u64);
    assert_eq!(sample("bnb_batch_errors_total"), 0);
    assert_eq!(sample("bnb_batch_latency_ns_count"), BATCHES as u64);
}
