//! Property-based tests of the netlist substrate on *random circuits* —
//! not just the hand-built components: evaluation determinism, optimizer
//! equivalence, and delay monotonicity.

use bnb::gates::delay::{arrival_times, critical_path, DelayModel};
use bnb::gates::netlist::{Net, Netlist};
use bnb::gates::optimize::optimize;
use proptest::prelude::*;

/// A recipe for one random gate: kind selector plus fan-in choices.
#[derive(Debug, Clone)]
struct GateRecipe {
    kind: u8,
    a: usize,
    b: usize,
    c: usize,
}

fn gate_recipe() -> impl Strategy<Value = GateRecipe> {
    (0u8..6, any::<usize>(), any::<usize>(), any::<usize>())
        .prop_map(|(kind, a, b, c)| GateRecipe { kind, a, b, c })
}

/// Builds a random combinational netlist from recipes. Fan-ins always
/// reference existing nets, so the construction is valid by construction.
fn build(n_inputs: usize, recipes: &[GateRecipe]) -> Netlist {
    let mut nl = Netlist::new();
    let mut nets: Vec<Net> = (0..n_inputs).map(|i| nl.input(format!("i{i}"))).collect();
    // A couple of constants to give the folder something to chew on.
    nets.push(nl.constant(false));
    nets.push(nl.constant(true));
    for r in recipes {
        let pick = |sel: usize, nets: &[Net]| nets[sel % nets.len()];
        let a = pick(r.a, &nets);
        let b = pick(r.b, &nets);
        let c = pick(r.c, &nets);
        let g = match r.kind {
            0 => nl.not(a),
            1 => nl.and(a, b),
            2 => nl.or(a, b),
            3 => nl.xor(a, b),
            4 => nl.mux(a, b, c),
            _ => nl.constant(r.a % 2 == 0),
        };
        nets.push(g);
    }
    // Expose a spread of nets as outputs (always at least one).
    let count = nets.len();
    for (i, net) in nets.iter().enumerate() {
        if i % 3 == 0 || i + 1 == count {
            nl.output(format!("o{i}"), *net);
        }
    }
    nl
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The optimizer preserves input/output behaviour on random circuits
    /// and random stimulus.
    #[test]
    fn optimizer_preserves_behaviour(
        n_inputs in 1usize..6,
        recipes in proptest::collection::vec(gate_recipe(), 1..60),
        stimulus in proptest::collection::vec(any::<u64>(), 4),
    ) {
        let nl = build(n_inputs, &recipes);
        let (opt, stats) = optimize(&nl);
        prop_assert!(stats.optimized_gates <= stats.original_gates);
        for s in &stimulus {
            let bits: Vec<bool> = (0..n_inputs).map(|i| s >> i & 1 == 1).collect();
            prop_assert_eq!(nl.eval(&bits).unwrap(), opt.eval(&bits).unwrap());
        }
    }

    /// Optimization never lengthens the unit-delay critical path.
    #[test]
    fn optimizer_never_slows_the_circuit(
        n_inputs in 1usize..5,
        recipes in proptest::collection::vec(gate_recipe(), 1..40),
    ) {
        let nl = build(n_inputs, &recipes);
        let (opt, _) = optimize(&nl);
        let before = critical_path(&nl, &DelayModel::unit()).unwrap().delay;
        let after = critical_path(&opt, &DelayModel::unit()).unwrap().delay;
        prop_assert!(after <= before, "optimizer slowed {before} -> {after}");
    }

    /// Evaluation is deterministic and arrival times upper-bound every
    /// net's logical depth (sanity of the delay analysis).
    #[test]
    fn evaluation_and_delay_sanity(
        n_inputs in 1usize..5,
        recipes in proptest::collection::vec(gate_recipe(), 1..40),
        s in any::<u64>(),
    ) {
        let nl = build(n_inputs, &recipes);
        let bits: Vec<bool> = (0..n_inputs).map(|i| s >> i & 1 == 1).collect();
        prop_assert_eq!(nl.eval(&bits).unwrap(), nl.eval(&bits).unwrap());
        let arr = arrival_times(&nl, &DelayModel::unit());
        // Arrival of any net >= arrival of each of its fan-ins.
        for net in nl.nets() {
            for f in nl.gate(net).fanin() {
                prop_assert!(arr[net.index()] >= arr[f.index()]);
            }
        }
    }

    /// The optimizer is idempotent on random circuits.
    #[test]
    fn optimizer_is_idempotent(
        n_inputs in 1usize..5,
        recipes in proptest::collection::vec(gate_recipe(), 1..40),
    ) {
        let nl = build(n_inputs, &recipes);
        let (opt1, _) = optimize(&nl);
        let (opt2, _) = optimize(&opt1);
        prop_assert_eq!(opt1.census().logic_gates(), opt2.census().logic_gates());
    }
}

/// Verilog export of random circuits is structurally sane: every declared
/// wire appears, and gate counts line up.
#[test]
fn verilog_export_of_random_circuits_is_wellformed() {
    use bnb::gates::export::to_verilog;
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};
    let mut rng = StdRng::seed_from_u64(2);
    for round in 0..20 {
        let recipes: Vec<GateRecipe> = (0..rng.random_range(1..50))
            .map(|_| GateRecipe {
                kind: rng.random_range(0..6),
                a: rng.random_range(0..1000),
                b: rng.random_range(0..1000),
                c: rng.random_range(0..1000),
            })
            .collect();
        let nl = build(3, &recipes);
        let v = to_verilog(&nl, &format!("rand{round}"));
        assert!(v.starts_with(&format!("module rand{round} (")));
        assert!(v.trim_end().ends_with("endmodule"));
        let census = nl.census();
        // One primitive instantiation line per non-mux logic gate.
        let prim_lines = v
            .lines()
            .filter(|l| {
                let t = l.trim_start();
                t.starts_with("and g")
                    || t.starts_with("or g")
                    || t.starts_with("xor g")
                    || t.starts_with("not g")
            })
            .count();
        assert_eq!(
            prim_lines,
            census.nots + census.ands + census.ors + census.xors
        );
    }
}
