//! Steady-state allocation audit: after warm-up, the reusable routing
//! paths (`Router::route_in_place` and the stage-span kernel it wraps)
//! must not touch the heap at all — the property the concurrent engine
//! relies on for allocation-free batch routing.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

use bnb::core::network::BnbNetwork;
use bnb::core::router::Router;
use bnb::core::stages::{validate_lines, Kernel, RouteSpan, StageScratch};
use bnb::topology::perm::Permutation;
use bnb::topology::record::{records_for_permutation, Record};

struct CountingAlloc;

// Per-thread so concurrently running tests never pollute each other's
// measurement window. Const-initialized: the TLS access itself must not
// allocate, and `try_with` tolerates calls during thread teardown.
thread_local! {
    static ALLOCATIONS: Cell<u64> = const { Cell::new(0) };
}

fn bump() {
    let _ = ALLOCATIONS.try_with(|c| c.set(c.get() + 1));
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        bump();
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        bump();
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn allocations_during(f: impl FnOnce()) -> u64 {
    let before = ALLOCATIONS.with(Cell::get);
    f();
    ALLOCATIONS.with(Cell::get) - before
}

#[test]
fn router_steady_state_performs_no_allocation() {
    use rand::SeedableRng;
    let mut rng = rand::rngs::StdRng::seed_from_u64(9);
    for m in [3usize, 6, 8] {
        let n = 1usize << m;
        let net = BnbNetwork::builder(m).data_width(32).build();
        let mut router = Router::new(net);
        let batches: Vec<Vec<Record>> = (0..4)
            .map(|_| records_for_permutation(&Permutation::random(n, &mut rng)))
            .collect();
        let mut buf = batches[0].clone();
        // Warm-up: first routes may grow the lazily-sized scratch buffers.
        for batch in &batches {
            buf.copy_from_slice(batch);
            router.route_in_place(&mut buf).unwrap();
        }
        // Steady state: repeat the same traffic; zero heap traffic allowed.
        let allocs = allocations_during(|| {
            for _ in 0..10 {
                for batch in &batches {
                    buf.copy_from_slice(batch);
                    router.route_in_place(&mut buf).unwrap();
                }
            }
        });
        assert_eq!(
            allocs, 0,
            "m = {m}: route_in_place allocated in steady state"
        );
    }
}

#[test]
fn observed_routing_performs_no_allocation() {
    use bnb::obs::Counters;
    use rand::SeedableRng;
    let mut rng = rand::rngs::StdRng::seed_from_u64(11);
    let m = 6usize;
    let n = 1usize << m;
    let counters = Counters::new();
    let mut router = BnbNetwork::builder(m)
        .data_width(32)
        .observer(&counters)
        .build_router();
    let batches: Vec<Vec<Record>> = (0..4)
        .map(|_| records_for_permutation(&Permutation::random(n, &mut rng)))
        .collect();
    let mut buf = batches[0].clone();
    // Warm-up: sizes the scratch and pins this thread's counter shard.
    for batch in &batches {
        buf.copy_from_slice(batch);
        router.route_in_place(&mut buf).unwrap();
    }
    // Events are Copy structs landing in preallocated atomics: even with a
    // live Counters sink the hot path must stay off the heap.
    let allocs = allocations_during(|| {
        for _ in 0..10 {
            for batch in &batches {
                buf.copy_from_slice(batch);
                router.route_in_place(&mut buf).unwrap();
            }
        }
    });
    assert_eq!(
        allocs, 0,
        "observed route_in_place allocated in steady state"
    );
    let snap = counters.snapshot();
    assert!(snap.columns > 0, "the sink actually collected events");
}

#[test]
fn fault_free_faulty_fabric_performs_no_allocation() {
    // A FaultyFabric with an empty FaultMap must cost exactly what the
    // plain router costs: the fault hooks compile down to a skipped
    // `Option` check, with no heap traffic in steady state.
    use bnb::core::{FaultMap, FaultyFabric};
    use rand::SeedableRng;
    let mut rng = rand::rngs::StdRng::seed_from_u64(12);
    let m = 6usize;
    let n = 1usize << m;
    let net = BnbNetwork::builder(m).data_width(32).build();
    let mut fabric = FaultyFabric::new(net, FaultMap::new());
    let batches: Vec<Vec<Record>> = (0..4)
        .map(|_| records_for_permutation(&Permutation::random(n, &mut rng)))
        .collect();
    let mut buf = batches[0].clone();
    // Warm-up: first routes may grow the lazily-sized scratch buffers.
    for batch in &batches {
        buf.copy_from_slice(batch);
        fabric.route_in_place(&mut buf).unwrap();
    }
    let allocs = allocations_during(|| {
        for _ in 0..10 {
            for batch in &batches {
                buf.copy_from_slice(batch);
                fabric.route_in_place(&mut buf).unwrap();
            }
        }
    });
    assert_eq!(
        allocs, 0,
        "fault-free FaultyFabric allocated in steady state"
    );
}

#[test]
fn flight_recorder_overflow_is_allocation_free_and_counted() {
    // Satellite of the tracing PR: fill a capacity-k ring with far more
    // than k spans. The oldest spans must be evicted (never kept), every
    // eviction must land in `dropped`, and after the first record pins
    // this thread's lane the hot path must not touch the heap at all —
    // the ring is fully preallocated.
    use bnb::obs::{FlightRecorder, Span, SpanKind};
    const CAP: usize = 64;
    const TOTAL: u64 = 300;
    let recorder = FlightRecorder::with_capacity(CAP);
    let span = |i: u64| Span {
        kind: SpanKind::Round,
        ts_ns: i,
        dur_ns: 0,
        lane: 0,
        seq: i,
        a: 0,
        b: 0,
        c: 0,
        ok: true,
    };
    // Warm-up: assigns the thread's lane ordinal.
    recorder.record(span(0));
    let allocs = allocations_during(|| {
        for i in 1..TOTAL {
            recorder.record(span(i));
        }
    });
    assert_eq!(allocs, 0, "recording allocated after warm-up");
    assert_eq!(recorder.len(), CAP, "retention is bounded by capacity");
    assert_eq!(
        recorder.dropped(),
        TOTAL - CAP as u64,
        "every eviction is counted"
    );
    let spans = recorder.spans();
    assert_eq!(spans.len(), CAP);
    assert!(
        spans.iter().all(|s| s.seq >= TOTAL - CAP as u64),
        "only the newest spans survive overflow"
    );
}

#[test]
fn observed_routing_with_flight_recorder_stays_allocation_free() {
    // The recorder sits next to Counters on the hot path; with both
    // attached, steady-state routing must still never allocate.
    use bnb::obs::{Counters, Fanout, FlightRecorder};
    use rand::SeedableRng;
    let mut rng = rand::rngs::StdRng::seed_from_u64(13);
    let m = 6usize;
    let n = 1usize << m;
    let counters = Counters::new();
    let recorder = FlightRecorder::with_capacity(512);
    let observer = Fanout::new(&counters, &recorder);
    let mut router = BnbNetwork::builder(m)
        .data_width(32)
        .observer(&observer)
        .build_router();
    let batches: Vec<Vec<Record>> = (0..4)
        .map(|_| records_for_permutation(&Permutation::random(n, &mut rng)))
        .collect();
    let mut buf = batches[0].clone();
    for batch in &batches {
        buf.copy_from_slice(batch);
        router.route_in_place(&mut buf).unwrap();
    }
    let allocs = allocations_during(|| {
        for _ in 0..10 {
            for batch in &batches {
                buf.copy_from_slice(batch);
                router.route_in_place(&mut buf).unwrap();
            }
        }
    });
    assert_eq!(allocs, 0, "recorded routing allocated in steady state");
    assert!(!recorder.is_empty(), "the recorder actually captured spans");
    assert!(
        recorder.dropped() > 0,
        "a 512-slot ring overflows under this traffic, and it is counted"
    );
}

#[test]
fn packed_kernel_is_allocation_free_after_warmup() {
    // The bit-packed word-parallel fast path (taken by default whenever
    // no observer is attached) sizes its plane/flag/permutation scratch
    // on first use and must never touch the heap again — at sub-word
    // spans (m = 5: one partial u64), multi-word spans (m = 8: four u64
    // words per plane), and on the faulted options whose broken columns
    // fall back to per-box scalar processing.
    use bnb::core::{FaultKind, FaultMap, FaultSite};
    use rand::SeedableRng;
    let mut rng = rand::rngs::StdRng::seed_from_u64(14);
    for m in [5usize, 8] {
        let n = 1usize << m;
        let net = BnbNetwork::new(m);
        let mut scratch = StageScratch::with_capacity(n);
        let faults = FaultMap::single(FaultSite::new(1, 0, 0), FaultKind::StuckExchange);
        let healthy = RouteSpan::new();
        let faulted = RouteSpan::new().faults(&faults);
        let records = records_for_permutation(&Permutation::random(n, &mut rng));
        let mut lines = records.clone();
        // Warm-up sizes the packed planes and the fault tap scratch.
        healthy
            .run(&net, &mut lines, 0, 0..m, &mut scratch)
            .unwrap();
        lines.copy_from_slice(&records);
        let _ = faulted.run(&net, &mut lines, 0, 0..m, &mut scratch);
        let allocs = allocations_during(|| {
            for _ in 0..10 {
                lines.copy_from_slice(&records);
                healthy
                    .run(&net, &mut lines, 0, 0..m, &mut scratch)
                    .unwrap();
                lines.copy_from_slice(&records);
                let _ = faulted.run(&net, &mut lines, 0, 0..m, &mut scratch);
            }
        });
        assert_eq!(
            allocs, 0,
            "m = {m}: packed kernel allocated in steady state"
        );
    }
}

#[test]
fn batched_kernel_is_allocation_free_after_warmup() {
    // The frame-batched SoA kernel: after one warm-up pass has sized the
    // concatenated bit-planes, the outcome vector, and the batch's own
    // dest/data columns, refilling and re-routing the same batch shape
    // must never touch the heap — at a sub-word frame size (m = 5, so
    // frames straddle word boundaries in the concatenated planes) and a
    // multi-word one (m = 8).
    use bnb::core::batch::{route_batch, BatchOutcome, FrameBatch};
    use rand::SeedableRng;
    let mut rng = rand::rngs::StdRng::seed_from_u64(15);
    const FRAMES: usize = 7;
    for m in [5usize, 8] {
        let n = 1usize << m;
        let net = BnbNetwork::new(m);
        let mut scratch = StageScratch::with_capacity(n);
        let opts = RouteSpan::new();
        let frames: Vec<Vec<Record>> = (0..FRAMES)
            .map(|_| records_for_permutation(&Permutation::random(n, &mut rng)))
            .collect();
        let mut batch = FrameBatch::with_capacity(n, FRAMES);
        let mut outcome = BatchOutcome::new();
        let mut out = Vec::new();
        let pass = |batch: &mut FrameBatch,
                    outcome: &mut BatchOutcome,
                    scratch: &mut StageScratch,
                    out: &mut Vec<Record>| {
            batch.clear();
            for frame in &frames {
                batch.push_frame(frame);
            }
            route_batch(&net, batch, &opts, scratch, outcome);
            assert!(outcome.all_ok());
            batch.read_frame_into(FRAMES - 1, out);
        };
        // Warm-up sizes every buffer involved.
        pass(&mut batch, &mut outcome, &mut scratch, &mut out);
        let allocs = allocations_during(|| {
            for _ in 0..10 {
                pass(&mut batch, &mut outcome, &mut scratch, &mut out);
            }
        });
        assert_eq!(
            allocs, 0,
            "m = {m}: batched kernel allocated in steady state"
        );
    }
}

#[test]
fn stage_span_kernel_is_allocation_free_after_warmup() {
    use rand::SeedableRng;
    let mut rng = rand::rngs::StdRng::seed_from_u64(10);
    let m = 7usize;
    let n = 1usize << m;
    let net = BnbNetwork::new(m);
    let mut scratch = StageScratch::with_capacity(n);
    let mut seen = Vec::new();
    let span_opts = RouteSpan::new().kernel(Kernel::Packed);
    let records = records_for_permutation(&Permutation::random(n, &mut rng));
    let mut lines = records.clone();
    // Warm-up (sizes the validation scratch).
    validate_lines(&net, &lines, &mut seen).unwrap();
    span_opts
        .run(&net, &mut lines, 0, 0..m, &mut scratch)
        .unwrap();
    // Steady state, including the split-and-conquer pattern the engine
    // uses: head stages, then each aligned slice separately.
    let allocs = allocations_during(|| {
        for depth in [0usize, 1, 2] {
            lines.copy_from_slice(&records);
            validate_lines(&net, &lines, &mut seen).unwrap();
            span_opts
                .run(&net, &mut lines, 0, 0..depth, &mut scratch)
                .unwrap();
            let span = n >> depth;
            for (idx, chunk) in lines.chunks_mut(span).enumerate() {
                span_opts
                    .run(&net, chunk, idx * span, depth..m, &mut scratch)
                    .unwrap();
            }
        }
    });
    assert_eq!(allocs, 0, "stage kernel allocated in steady state");
}
