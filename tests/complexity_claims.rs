//! The paper's quantitative claims (§5, Tables 1–2) verified end-to-end:
//! closed forms vs constructed structures vs runtime traces.

use bnb::analysis::formulas;
use bnb::analysis::ratio;
use bnb::core::cost::HardwareCost;
use bnb::core::delay::PropagationDelay;
use bnb::core::network::BnbNetwork;
use bnb::topology::perm::Permutation;
use bnb::topology::record::records_for_permutation;

/// eq. (6): the closed form equals the structure-enumerated count for a
/// grid of (m, w).
#[test]
fn eq6_closed_form_equals_counted() {
    for m in 1..=16 {
        for w in [0usize, 1, 4, 8, 16, 32, 64] {
            assert_eq!(
                HardwareCost::bnb_closed_form(m, w),
                HardwareCost::bnb_counted(m, w),
                "m = {m}, w = {w}"
            );
        }
    }
}

/// eq. (7): the *runtime* column count of a real route equals m(m+1)/2.
#[test]
fn eq7_runtime_column_count() {
    for m in 1..=7usize {
        let net = BnbNetwork::new(m);
        let p = Permutation::identity(1 << m);
        let (_, trace) = net.route_traced(&records_for_permutation(&p)).unwrap();
        assert_eq!(trace.column_count(), m * (m + 1) / 2, "m = {m}");
        assert_eq!(
            trace.column_count() as u64,
            PropagationDelay::bnb_structural(m).switch_units
        );
    }
}

/// eqs. (8)–(9): structural delay equals the paper's polynomial.
#[test]
fn eq9_delay_polynomial() {
    for m in 1..=24 {
        assert_eq!(
            PropagationDelay::bnb_structural(m),
            PropagationDelay::bnb_closed_form(m),
            "m = {m}"
        );
    }
}

/// eqs. (10)–(12): Batcher formulas match the constructed comparator
/// network.
#[test]
fn batcher_equations() {
    use bnb::baselines::batcher::BatcherNetwork;
    for m in 1..=9 {
        let net = BatcherNetwork::new(m);
        assert_eq!(
            net.comparator_count() as u64,
            formulas::batcher_comparators(m)
        );
        for w in [0usize, 8] {
            assert_eq!(net.cost(w), formulas::batcher_cost(m, w));
        }
        assert_eq!(net.delay(), formulas::batcher_delay(m));
    }
}

/// Table 1's headline: BNB needs about 1/3 of Batcher's hardware (leading
/// terms), and the exact ratio decreases monotonically toward it.
#[test]
fn table1_hardware_ratio_claim() {
    assert!((ratio::asymptotic_hardware_ratio() - 1.0 / 3.0).abs() < 1e-12);
    let mut prev = f64::MAX;
    for m in 3..=30 {
        let r = ratio::hardware_ratio(m, 0);
        assert!(r < prev, "ratio must decrease: m = {m}");
        assert!(r > 1.0 / 3.0, "ratio approaches 1/3 from above: m = {m}");
        prev = r;
    }
    assert!(ratio::hardware_ratio_per_line(2000.0, 0.0) - 1.0 / 3.0 < 1e-3);
}

/// Table 2's headline: BNB delay is about 2/3 of Batcher's.
#[test]
fn table2_delay_ratio_claim() {
    assert!((ratio::asymptotic_delay_ratio() - 2.0 / 3.0).abs() < 1e-12);
    for m in 3..=30 {
        let r = ratio::delay_ratio(m);
        assert!(r < 1.0, "BNB must be faster at m = {m}");
    }
    assert!((ratio::delay_ratio_per_line(2000.0) - 2.0 / 3.0).abs() < 1e-3);
}

/// The Koppelman comparison rows: BNB beats Koppelman's delay at every
/// size (Table 2), and needs fewer switches (N/6 vs N/4 log³N) with no
/// adder slices (Table 1).
#[test]
fn koppelman_comparison() {
    use bnb::analysis::formulas::table2_poly;
    // Delay: the paper claims a smaller delay than Koppelman's, which the
    // leading terms support (1/3 < 2/3 per log³N) — but evaluating the
    // paper's own Table 2 polynomials shows Koppelman is actually *faster*
    // up to N = 64; BNB wins from N = 128 on. A finding of this
    // reproduction (see EXPERIMENTS.md).
    for m in 2..=6 {
        assert!(
            table2_poly::bnb(m) > table2_poly::koppelman(m),
            "Koppelman's polynomial is lower at m = {m}"
        );
    }
    for m in 7..=24 {
        assert!(
            table2_poly::bnb(m) < table2_poly::koppelman(m),
            "BNB delay must beat Koppelman at m = {m}"
        );
    }
    // Hardware: the Koppelman figures are leading terms only, so compare
    // leading against leading: N/6·log³N < N/4·log³N switches, and BNB
    // needs no adder slices at all.
    for m in 2..=20 {
        let (kop_sw, _, kop_add) = formulas::table1_leading::koppelman(m);
        let (bnb_sw, _, bnb_add) = formulas::table1_leading::bnb(m);
        assert!(bnb_sw < kop_sw, "m = {m}");
        assert_eq!(bnb_add, 0.0);
        assert!(kop_add > 0.0);
        assert_eq!(formulas::bnb_cost(m, 0).adder_slices, 0);
        assert!(formulas::koppelman_cost(m).adder_slices > 0);
    }
    // Batcher vs Koppelman delay: the paper says Koppelman has "a longer
    // delay time" than Batcher — by the leading term (2/3 > 1/2) that is
    // the asymptotic truth, but the polynomials actually cross at m = 13:
    // Koppelman is *faster* for every practical size below N = 8192.
    for m in 2..=12 {
        assert!(
            table2_poly::koppelman(m) < table2_poly::batcher(m),
            "m = {m}"
        );
    }
    for m in 13..=24 {
        assert!(
            table2_poly::koppelman(m) > table2_poly::batcher(m),
            "m = {m}"
        );
    }
}

/// The reproduction's crossover finding: with w = 16 data bits, Batcher is
/// cheaper below N = 64 and BNB above.
#[test]
fn wide_word_crossover_at_n64() {
    for m in 2..=5 {
        assert!(ratio::hardware_ratio(m, 16) > 1.0, "m = {m}");
    }
    for m in 6..=24 {
        assert!(ratio::hardware_ratio(m, 16) < 1.0, "m = {m}");
    }
}
