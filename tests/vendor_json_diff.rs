//! Differential validation of the vendored `serde_json` stub against an
//! independent JSON implementation (python3's `json` module).
//!
//! The workspace builds offline against hand-written subsets of serde /
//! serde_json (see DESIGN.md §9). These tests bound the risk that the
//! stub silently speaks a private dialect: everything it emits must parse
//! under an implementation we did not write, and JSON formatted by that
//! implementation — different whitespace, `\uXXXX` escapes with surrogate
//! pairs, `1e+300`-style exponents — must parse back to the identical
//! value. Tests skip (without failing) when python3 is unavailable.

use std::io::Write;
use std::process::{Command, Stdio};

use serde::{Deserialize, Serialize};

#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct Inner {
    label: String,
    weights: Vec<f64>,
    flag: bool,
    missing: Option<u64>,
}

#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct Sample {
    name: String,
    count: u64,
    delta: i64,
    ratio: f64,
    tiny: f64,
    huge: f64,
    buckets: Vec<u64>,
    inner: Inner,
    nested: Vec<Vec<i64>>,
    present: Option<String>,
}

fn sample() -> Sample {
    Sample {
        // Exercises every escape class: two-char escapes, a raw BMP
        // character, a non-BMP character (surrogate pair under python's
        // default ensure_ascii), and a control character.
        name: "quote \" backslash \\ newline \n tab \t snowman ☃ rocket 🚀 ctrl \u{1}".to_string(),
        count: u64::MAX,
        delta: -987_654_321,
        ratio: 0.1,
        tiny: 1e-5,
        huge: 1e300,
        buckets: vec![0, 1, 2, 1 << 40],
        inner: Inner {
            label: "µ-bench".to_string(),
            weights: vec![0.5, -3.75, 12345.678],
            flag: true,
            missing: None,
        },
        nested: vec![vec![], vec![-1, 0, 1]],
        present: Some("yes".to_string()),
    }
}

/// Runs a python3 one-liner with `stdin`, returning its stdout — or
/// `None` when python3 is not installed (the caller skips).
fn python3(script: &str, stdin: &str) -> Option<String> {
    let mut child = match Command::new("python3")
        .arg("-c")
        .arg(script)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
    {
        Ok(c) => c,
        Err(_) => {
            eprintln!("skipping: python3 not available");
            return None;
        }
    };
    child
        .stdin
        .as_mut()
        .unwrap()
        .write_all(stdin.as_bytes())
        .unwrap();
    let out = child.wait_with_output().unwrap();
    assert!(
        out.status.success(),
        "python3 rejected the stub's output: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    Some(String::from_utf8(out.stdout).unwrap())
}

/// Stub → python → stub: compact stub output must be valid JSON to
/// python, and python's re-emission (ASCII escapes, exponent floats,
/// indentation) must deserialize to the identical value.
#[test]
fn stub_output_roundtrips_through_python() {
    let original = sample();
    let compact = serde_json::to_string(&original).unwrap();
    let Some(reemitted) = python3(
        "import json, sys; print(json.dumps(json.load(sys.stdin), indent=2))",
        &compact,
    ) else {
        return;
    };
    let back: Sample = serde_json::from_str(reemitted.trim()).unwrap();
    assert_eq!(back, original, "value must survive the foreign re-emission");
}

/// Python must see the stub's compact and pretty formattings as the same
/// document.
#[test]
fn compact_and_pretty_agree_under_python() {
    let original = sample();
    let compact = serde_json::to_string(&original).unwrap();
    let pretty = serde_json::to_string_pretty(&original).unwrap();
    let joined = format!("{compact}\n---SPLIT---\n{pretty}");
    let Some(out) = python3(
        "import json, sys\n\
         a, b = sys.stdin.read().split('\\n---SPLIT---\\n')\n\
         assert json.loads(a) == json.loads(b), 'compact and pretty differ'\n\
         print('ok')",
        &joined,
    ) else {
        return;
    };
    assert_eq!(out.trim(), "ok");
}

/// The `bnb faults --metrics json` output — a FaultReport line followed
/// by a MetricsSnapshot line — must be plain JSON to python with the
/// documented keys, and python's re-emission must parse back to the
/// identical report.
#[test]
fn faults_cli_json_is_real_json() {
    let args: Vec<String> = [
        "faults",
        "--inputs",
        "8",
        "--trials",
        "30",
        "--seed",
        "5",
        "--metrics",
        "json",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();
    let out = bnb_cli::run(&args).unwrap();
    let lines: Vec<&str> = out.trim_end().lines().collect();
    assert!(lines.len() >= 2, "expected report + metrics lines:\n{out}");
    let report_line = lines[lines.len() - 2];
    let metrics_line = lines[lines.len() - 1];
    let script = concat!(
        "import json, sys\n",
        "report, metrics = [json.loads(l) for l in sys.stdin.read().splitlines()]\n",
        "keys = ['m', 'trials', 'faults', 'strict_detected', 'strict_correct', ",
        "'strict_misdelivered', 'permissive_misdelivered_trials', ",
        "'permissive_misdelivered_records']\n",
        "missing = [k for k in keys if k not in report]\n",
        "assert not missing, f'missing {missing}'\n",
        "assert report['strict_misdelivered'] == 0, 'silent misdelivery'\n",
        "assert report['strict_detected'] + report['strict_correct'] == report['trials']\n",
        "assert 'hardware_faults' in metrics and 'fault_retries' in metrics\n",
        "assert metrics['hardware_faults'] == report['strict_detected']\n",
        "print(json.dumps(report, indent=2))",
    );
    let Some(reemitted) = python3(script, &format!("{report_line}\n{metrics_line}")) else {
        return;
    };
    let back: bnb::sim::faults::FaultReport = serde_json::from_str(reemitted.trim()).unwrap();
    let original: bnb::sim::faults::FaultReport = serde_json::from_str(report_line).unwrap();
    assert_eq!(
        back, original,
        "report must survive the foreign re-emission"
    );
}

/// Engine stats — the JSON the CLI actually ships — must be plain JSON to
/// python with the documented schema.
#[test]
fn engine_stats_json_is_real_json() {
    use bnb::core::network::BnbNetwork;
    use bnb::engine::{Engine, EngineConfig};
    use bnb::topology::perm::Permutation;
    use bnb::topology::record::records_for_permutation;

    let net = BnbNetwork::new(4);
    let engine = Engine::new(net, EngineConfig::with_workers(2));
    let p = Permutation::try_from((0..16).rev().collect::<Vec<_>>()).unwrap();
    let stats = engine.run(|h| {
        h.submit(records_for_permutation(&p));
        while h.drain().is_some() {}
        h.stats()
    });
    let json = serde_json::to_string(&stats).unwrap();
    let script = concat!(
        "import json, sys; v = json.load(sys.stdin); ",
        "keys = ['workers', 'shard_depth', 'batches', 'records', 'errors', ",
        "'records_per_sec', 'latency', 'histogram', 'queue_high_water']; ",
        "missing = [k for k in keys if k not in v]; ",
        "assert not missing, f'missing {missing}'; ",
        "assert v['batches'] == 1 and v['records'] == 16; ",
        "print('ok')",
    );
    let Some(out) = python3(script, &json) else {
        return;
    };
    assert_eq!(out.trim(), "ok");
}
