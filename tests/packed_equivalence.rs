//! Packed-kernel equivalence: the bit-packed word-parallel fast path in
//! `bnb_core::stages` must be byte-identical to the scalar sweep it
//! replaced — same final frames on success, same error values on
//! failure — across sizes, policies, fault campaigns, and the
//! split-and-conquer span pattern the engine uses.
//!
//! The scalar sweep stays exported as `route_span_scalar` /
//! `route_span_scalar_faulted` precisely so this suite can hold the two
//! kernels against each other forever.

use bnb::core::network::{BnbNetwork, RoutePolicy};
use bnb::core::stages::{
    route_span, route_span_faulted, route_span_scalar, route_span_scalar_faulted, StageScratch,
};
use bnb::core::{FaultKind, FaultMap, FaultSite};
use bnb::obs::NoopObserver;
use bnb::topology::perm::Permutation;
use bnb::topology::record::{records_for_permutation, Record};
use proptest::prelude::*;
use rand::{RngExt, SeedableRng};

fn build(m: usize, policy: RoutePolicy) -> BnbNetwork {
    BnbNetwork::builder(m).data_width(32).policy(policy).build()
}

/// Routes `records` through all `m` stages with both kernels and asserts
/// the outcomes are identical (frames on `Ok`, error values on `Err`).
fn assert_kernels_agree(
    net: &BnbNetwork,
    records: &[Record],
    faults: Option<&FaultMap>,
    ctx: &str,
) {
    let m = net.m();
    let mut scratch = StageScratch::with_capacity(records.len());
    let mut packed = records.to_vec();
    let mut scalar = records.to_vec();
    let (got, want) = match faults {
        Some(map) => (
            route_span_faulted(net, &mut packed, 0, 0..m, &mut scratch, &NoopObserver, map),
            route_span_scalar_faulted(net, &mut scalar, 0, 0..m, &mut scratch, map),
        ),
        None => (
            route_span(net, &mut packed, 0, 0..m, &mut scratch),
            route_span_scalar(net, &mut scalar, 0, 0..m, &mut scratch),
        ),
    };
    assert_eq!(got, want, "result mismatch ({ctx})");
    if got.is_ok() {
        // Post-error line state is unspecified (the engine compares
        // result values only), so frames are compared on success alone.
        assert_eq!(packed, scalar, "frame mismatch ({ctx})");
    }
}

/// A seeded draw of in-bounds faults, spanning every kind.
fn random_faults(m: usize, count: usize, rng: &mut rand::rngs::StdRng) -> FaultMap {
    let kinds = [
        FaultKind::StuckStraight,
        FaultKind::StuckExchange,
        FaultKind::DeadArbiter,
        FaultKind::BrokenLink,
    ];
    let mut map = FaultMap::new();
    for _ in 0..count {
        let main = rng.random_range(0..m);
        let internal = rng.random_range(0..m - main);
        let kind = kinds[rng.random_range(0..kinds.len())];
        let element = rng.random_range(0..kind.elements(m, main, internal));
        map.insert(FaultSite::new(main, internal, element), kind);
    }
    map
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Healthy fabric, both policies, m = 2..=10: byte-identical frames.
    #[test]
    fn packed_matches_scalar_healthy(m in 2usize..=10, seed in any::<u64>(), strict in any::<bool>()) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let policy = if strict { RoutePolicy::Strict } else { RoutePolicy::Permissive };
        let net = build(m, policy);
        let records = records_for_permutation(&Permutation::random(1 << m, &mut rng));
        assert_kernels_agree(&net, &records, None, &format!("m={m} {policy:?}"));
    }

    /// Fault campaigns, both policies: identical frames when both kernels
    /// deliver, identical error values when routing trips a fault check.
    #[test]
    fn packed_matches_scalar_under_faults(
        m in 2usize..=8,
        seed in any::<u64>(),
        strict in any::<bool>(),
        nfaults in 1usize..=3,
    ) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let policy = if strict { RoutePolicy::Strict } else { RoutePolicy::Permissive };
        let net = build(m, policy);
        let records = records_for_permutation(&Permutation::random(1 << m, &mut rng));
        let faults = random_faults(m, nfaults, &mut rng);
        assert_kernels_agree(&net, &records, Some(&faults), &format!("m={m} {policy:?} {faults:?}"));
    }

    /// An empty FaultMap through the faulted entry points is the healthy
    /// fast path for both kernels.
    #[test]
    fn packed_matches_scalar_empty_fault_map(m in 2usize..=8, seed in any::<u64>()) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let net = build(m, RoutePolicy::Strict);
        let records = records_for_permutation(&Permutation::random(1 << m, &mut rng));
        let empty = FaultMap::new();
        assert_kernels_agree(&net, &records, Some(&empty), &format!("m={m} empty-map"));
    }

    /// The engine's split-and-conquer pattern: head stages on the full
    /// frame, then each aligned slice routed separately. Every split
    /// depth must agree with the scalar kernel routed the same way.
    #[test]
    fn packed_matches_scalar_split_spans(m in 3usize..=9, seed in any::<u64>(), depth in 1usize..=3) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let depth = depth.min(m - 1);
        let n = 1usize << m;
        let net = build(m, RoutePolicy::Strict);
        let records = records_for_permutation(&Permutation::random(n, &mut rng));
        let mut scratch = StageScratch::with_capacity(n);

        let mut packed = records.clone();
        route_span(&net, &mut packed, 0, 0..depth, &mut scratch).unwrap();
        let span = n >> depth;
        for (idx, chunk) in packed.chunks_mut(span).enumerate() {
            route_span(&net, chunk, idx * span, depth..m, &mut scratch).unwrap();
        }

        let mut scalar = records.clone();
        route_span_scalar(&net, &mut scalar, 0, 0..depth, &mut scratch).unwrap();
        for (idx, chunk) in scalar.chunks_mut(span).enumerate() {
            route_span_scalar(&net, chunk, idx * span, depth..m, &mut scratch).unwrap();
        }

        prop_assert_eq!(&packed, &scalar, "split mismatch m={} depth={}", m, depth);
    }
}

/// Exhaustive byte-identity sweep at small m: every one of the N!
/// permutations for m ≤ 3, a dense seeded sample for m = 4..=5.
#[test]
fn exhaustive_small_m_byte_identity() {
    fn check(net: &BnbNetwork, records: &[Record]) {
        let m = net.m();
        let mut scratch = StageScratch::with_capacity(records.len());
        let mut packed = records.to_vec();
        let mut scalar = records.to_vec();
        route_span(net, &mut packed, 0, 0..m, &mut scratch).unwrap();
        route_span_scalar(net, &mut scalar, 0, 0..m, &mut scratch).unwrap();
        assert_eq!(packed, scalar, "m={m} records={records:?}");
    }

    // All N! permutations for m <= 3 (2 + 24 + 40320 frames).
    for m in 1usize..=3 {
        let n = 1usize << m;
        let net = build(m, RoutePolicy::Strict);
        let mut dests: Vec<usize> = (0..n).collect();
        permute_all(&mut dests, 0, &mut |p| {
            let records: Vec<Record> = p
                .iter()
                .enumerate()
                .map(|(i, &d)| Record::new(d, i as u64))
                .collect();
            check(&net, &records);
        });
    }

    // Dense seeded sample above that.
    let mut rng = rand::rngs::StdRng::seed_from_u64(77);
    for m in 4usize..=5 {
        let net = build(m, RoutePolicy::Strict);
        for _ in 0..400 {
            let records = records_for_permutation(&Permutation::random(1 << m, &mut rng));
            check(&net, &records);
        }
    }
}

/// Heap's algorithm: calls `f` with every permutation of `items`.
fn permute_all(items: &mut [usize], k: usize, f: &mut impl FnMut(&[usize])) {
    if k == items.len() {
        f(items);
        return;
    }
    for i in k..items.len() {
        items.swap(k, i);
        permute_all(items, k + 1, f);
        items.swap(k, i);
    }
}
