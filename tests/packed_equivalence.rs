//! Kernel equivalence: the bit-packed word-parallel fast path and the
//! frame-batched SoA kernel in `bnb_core` must be byte-identical to the
//! scalar sweep they replaced — same final frames on success, same error
//! values on failure — across sizes, policies, fault campaigns, batch
//! shapes, and the split-and-conquer span pattern the engine uses.
//!
//! The scalar sweep stays selectable as [`Kernel::Scalar`] precisely so
//! this suite can hold the kernels against each other forever.

use bnb::core::batch::{route_batch, BatchOutcome, FrameBatch};
use bnb::core::network::{BnbNetwork, RoutePolicy};
use bnb::core::stages::{Kernel, RouteSpan, StageScratch};
use bnb::core::{FaultKind, FaultMap, FaultSite};
use bnb::topology::perm::Permutation;
use bnb::topology::record::{records_for_permutation, Record};
use proptest::prelude::*;
use rand::{RngExt, SeedableRng};

fn build(m: usize, policy: RoutePolicy) -> BnbNetwork {
    BnbNetwork::builder(m).data_width(32).policy(policy).build()
}

/// Routes `records` through all `m` stages with both per-frame kernels
/// and asserts the outcomes are identical (frames on `Ok`, error values
/// on `Err`).
fn assert_kernels_agree(
    net: &BnbNetwork,
    records: &[Record],
    faults: Option<&FaultMap>,
    ctx: &str,
) {
    let m = net.m();
    let mut scratch = StageScratch::with_capacity(records.len());
    let mut packed_span = RouteSpan::new().kernel(Kernel::Packed);
    let mut scalar_span = RouteSpan::new().kernel(Kernel::Scalar);
    if let Some(map) = faults {
        packed_span = packed_span.faults(map);
        scalar_span = scalar_span.faults(map);
    }
    let mut packed = records.to_vec();
    let mut scalar = records.to_vec();
    let got = packed_span.run(net, &mut packed, 0, 0..m, &mut scratch);
    let want = scalar_span.run(net, &mut scalar, 0, 0..m, &mut scratch);
    assert_eq!(got, want, "result mismatch ({ctx})");
    if got.is_ok() {
        // Post-error line state is unspecified (the engine compares
        // result values only), so frames are compared on success alone.
        assert_eq!(packed, scalar, "frame mismatch ({ctx})");
    }
}

/// Routes every frame of `frames` through [`route_batch`] with `opts`
/// and asserts the per-frame outcomes match the scalar oracle routed one
/// frame at a time: identical `Result` values, identical output frames
/// on success, and untouched original contents on failure. The oracle
/// mirrors the batch contract — validation first (the step `Router::route`
/// performs before any span runs), then the scalar kernel.
fn assert_batch_matches_scalar(
    net: &BnbNetwork,
    frames: &[Vec<Record>],
    opts: &RouteSpan<'_>,
    oracle: &RouteSpan<'_>,
    ctx: &str,
) {
    use bnb::core::stages::validate_lines;
    let n = net.inputs();
    let m = net.m();
    let mut scratch = StageScratch::with_capacity(n);
    let mut seen = Vec::new();
    let mut batch = FrameBatch::with_capacity(n, frames.len());
    for frame in frames {
        batch.push_frame(frame);
    }
    let mut outcome = BatchOutcome::new();
    route_batch(net, &mut batch, opts, &mut scratch, &mut outcome);
    assert_eq!(outcome.results().len(), frames.len(), "outcome len ({ctx})");
    let mut got = Vec::new();
    for (f, frame) in frames.iter().enumerate() {
        let mut scalar = frame.clone();
        let want = validate_lines(net, &scalar, &mut seen)
            .and_then(|()| oracle.run(net, &mut scalar, 0, 0..m, &mut scratch));
        assert_eq!(
            outcome.results()[f],
            want,
            "frame {f} result mismatch ({ctx})"
        );
        batch.read_frame_into(f, &mut got);
        if want.is_ok() {
            assert_eq!(got, scalar, "frame {f} output mismatch ({ctx})");
        } else {
            // Failed frames keep their submitted contents verbatim.
            assert_eq!(&got, frame, "frame {f} not left untouched ({ctx})");
        }
    }
}

/// A seeded draw of in-bounds faults, spanning every kind.
fn random_faults(m: usize, count: usize, rng: &mut rand::rngs::StdRng) -> FaultMap {
    let kinds = [
        FaultKind::StuckStraight,
        FaultKind::StuckExchange,
        FaultKind::DeadArbiter,
        FaultKind::BrokenLink,
    ];
    let mut map = FaultMap::new();
    for _ in 0..count {
        let main = rng.random_range(0..m);
        let internal = rng.random_range(0..m - main);
        let kind = kinds[rng.random_range(0..kinds.len())];
        let element = rng.random_range(0..kind.elements(m, main, internal));
        map.insert(FaultSite::new(main, internal, element), kind);
    }
    map
}

/// Seeded frames for a batch: mostly valid permutations, with a
/// `garble`-controlled chance of invalid frames (duplicate destination)
/// mixed in so batched validation and error reporting get exercised.
fn random_frames(
    n: usize,
    count: usize,
    garble: bool,
    rng: &mut rand::rngs::StdRng,
) -> Vec<Vec<Record>> {
    (0..count)
        .map(|_| {
            let mut recs = records_for_permutation(&Permutation::random(n, rng));
            if garble && n > 1 && rng.random_range(0..4) == 0 {
                // Duplicate one destination: rejected by strict
                // validation, routed as contending traffic permissively.
                let d = recs[0].dest();
                recs[n - 1] = Record::new(d, recs[n - 1].data());
            }
            recs
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Healthy fabric, both policies, m = 2..=10: byte-identical frames.
    #[test]
    fn packed_matches_scalar_healthy(m in 2usize..=10, seed in any::<u64>(), strict in any::<bool>()) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let policy = if strict { RoutePolicy::Strict } else { RoutePolicy::Permissive };
        let net = build(m, policy);
        let records = records_for_permutation(&Permutation::random(1 << m, &mut rng));
        assert_kernels_agree(&net, &records, None, &format!("m={m} {policy:?}"));
    }

    /// Fault campaigns, both policies: identical frames when both kernels
    /// deliver, identical error values when routing trips a fault check.
    #[test]
    fn packed_matches_scalar_under_faults(
        m in 2usize..=8,
        seed in any::<u64>(),
        strict in any::<bool>(),
        nfaults in 1usize..=3,
    ) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let policy = if strict { RoutePolicy::Strict } else { RoutePolicy::Permissive };
        let net = build(m, policy);
        let records = records_for_permutation(&Permutation::random(1 << m, &mut rng));
        let faults = random_faults(m, nfaults, &mut rng);
        assert_kernels_agree(&net, &records, Some(&faults), &format!("m={m} {policy:?} {faults:?}"));
    }

    /// An empty FaultMap through the faulted options is the healthy fast
    /// path for both kernels.
    #[test]
    fn packed_matches_scalar_empty_fault_map(m in 2usize..=8, seed in any::<u64>()) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let net = build(m, RoutePolicy::Strict);
        let records = records_for_permutation(&Permutation::random(1 << m, &mut rng));
        let empty = FaultMap::new();
        assert_kernels_agree(&net, &records, Some(&empty), &format!("m={m} empty-map"));
    }

    /// The engine's split-and-conquer pattern: head stages on the full
    /// frame, then each aligned slice routed separately. Every split
    /// depth must agree with the scalar kernel routed the same way.
    #[test]
    fn packed_matches_scalar_split_spans(m in 3usize..=9, seed in any::<u64>(), depth in 1usize..=3) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let depth = depth.min(m - 1);
        let n = 1usize << m;
        let net = build(m, RoutePolicy::Strict);
        let records = records_for_permutation(&Permutation::random(n, &mut rng));
        let mut scratch = StageScratch::with_capacity(n);
        let packed_span = RouteSpan::new().kernel(Kernel::Packed);
        let scalar_span = RouteSpan::new().kernel(Kernel::Scalar);

        let mut packed = records.clone();
        packed_span.run(&net, &mut packed, 0, 0..depth, &mut scratch).unwrap();
        let span = n >> depth;
        for (idx, chunk) in packed.chunks_mut(span).enumerate() {
            packed_span.run(&net, chunk, idx * span, depth..m, &mut scratch).unwrap();
        }

        let mut scalar = records.clone();
        scalar_span.run(&net, &mut scalar, 0, 0..depth, &mut scratch).unwrap();
        for (idx, chunk) in scalar.chunks_mut(span).enumerate() {
            scalar_span.run(&net, chunk, idx * span, depth..m, &mut scratch).unwrap();
        }

        prop_assert_eq!(&packed, &scalar, "split mismatch m={} depth={}", m, depth);
    }

    /// The batched kernel against the scalar oracle: batch sizes 1, 7,
    /// and 64 (sub-word, unaligned-tail, and multi-word plane shapes),
    /// both policies, valid-only and garbled frame mixes.
    #[test]
    fn batched_matches_scalar(
        m in 1usize..=8,
        seed in any::<u64>(),
        strict in any::<bool>(),
        batch_idx in 0usize..3,
        garble in any::<bool>(),
    ) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let policy = if strict { RoutePolicy::Strict } else { RoutePolicy::Permissive };
        let net = build(m, policy);
        let frames = random_frames(1 << m, [1usize, 7, 64][batch_idx], garble, &mut rng);
        let opts = RouteSpan::new();
        let oracle = RouteSpan::new().kernel(Kernel::Scalar);
        assert_batch_matches_scalar(
            &net, &frames, &opts, &oracle,
            &format!("m={m} {policy:?} b={} garble={garble}", frames.len()),
        );
    }

    /// Batched fault campaigns (the per-frame fallback path): each
    /// frame's result and contents must equal the scalar faulted oracle.
    #[test]
    fn batched_matches_scalar_under_faults(
        m in 2usize..=7,
        seed in any::<u64>(),
        strict in any::<bool>(),
        nfaults in 1usize..=3,
    ) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let policy = if strict { RoutePolicy::Strict } else { RoutePolicy::Permissive };
        let net = build(m, policy);
        let frames = random_frames(1 << m, 7, false, &mut rng);
        let faults = random_faults(m, nfaults, &mut rng);
        let opts = RouteSpan::new().faults(&faults);
        let oracle = RouteSpan::new().kernel(Kernel::Scalar).faults(&faults);
        assert_batch_matches_scalar(
            &net, &frames, &opts, &oracle,
            &format!("m={m} {policy:?} {faults:?}"),
        );
    }

    /// Engine-style batch splits: routing one workload as a single
    /// FrameBatch must be byte-identical to routing it as the uneven
    /// sub-batches a shard scheduler would submit.
    #[test]
    fn batched_split_submission_is_equivalent(
        m in 2usize..=8,
        seed in any::<u64>(),
        split in 1usize..=31,
    ) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let n = 1usize << m;
        let net = build(m, RoutePolicy::Strict);
        let frames = random_frames(n, 32, false, &mut rng);
        let opts = RouteSpan::new();
        let mut scratch = StageScratch::with_capacity(n);
        let mut outcome = BatchOutcome::new();

        let mut whole = FrameBatch::with_capacity(n, frames.len());
        for frame in &frames {
            whole.push_frame(frame);
        }
        route_batch(&net, &mut whole, &opts, &mut scratch, &mut outcome);
        prop_assert!(outcome.all_ok());

        let mut got = Vec::new();
        let mut want = Vec::new();
        let mut offset = 0;
        for group in frames.chunks(split) {
            let mut part = FrameBatch::with_capacity(n, group.len());
            for frame in group {
                part.push_frame(frame);
            }
            route_batch(&net, &mut part, &opts, &mut scratch, &mut outcome);
            prop_assert!(outcome.all_ok());
            for f in 0..group.len() {
                part.read_frame_into(f, &mut got);
                whole.read_frame_into(offset + f, &mut want);
                prop_assert_eq!(&got, &want, "split={} frame={}", split, offset + f);
            }
            offset += group.len();
        }
    }
}

/// Exhaustive byte-identity sweep at small m: every one of the N!
/// permutations for m ≤ 3, a dense seeded sample for m = 4..=5 — packed
/// and batched both held against the scalar oracle.
#[test]
fn exhaustive_small_m_byte_identity() {
    fn check(net: &BnbNetwork, records: &[Record]) {
        let m = net.m();
        let mut scratch = StageScratch::with_capacity(records.len());
        let mut packed = records.to_vec();
        let mut scalar = records.to_vec();
        RouteSpan::new()
            .kernel(Kernel::Packed)
            .run(net, &mut packed, 0, 0..m, &mut scratch)
            .unwrap();
        RouteSpan::new()
            .kernel(Kernel::Scalar)
            .run(net, &mut scalar, 0, 0..m, &mut scratch)
            .unwrap();
        assert_eq!(packed, scalar, "m={m} records={records:?}");

        let mut batch = FrameBatch::new(records.len());
        batch.push_frame(records);
        let mut outcome = BatchOutcome::new();
        route_batch(
            net,
            &mut batch,
            &RouteSpan::new(),
            &mut scratch,
            &mut outcome,
        );
        assert!(outcome.all_ok(), "m={m} batched failed: {records:?}");
        let mut routed = Vec::new();
        batch.read_frame_into(0, &mut routed);
        assert_eq!(routed, scalar, "m={m} batched mismatch: {records:?}");
    }

    // All N! permutations for m <= 3 (2 + 24 + 40320 frames).
    for m in 1usize..=3 {
        let n = 1usize << m;
        let net = build(m, RoutePolicy::Strict);
        let mut dests: Vec<usize> = (0..n).collect();
        permute_all(&mut dests, 0, &mut |p| {
            let records: Vec<Record> = p
                .iter()
                .enumerate()
                .map(|(i, &d)| Record::new(d, i as u64))
                .collect();
            check(&net, &records);
        });
    }

    // Dense seeded sample above that.
    let mut rng = rand::rngs::StdRng::seed_from_u64(77);
    for m in 4usize..=5 {
        let net = build(m, RoutePolicy::Strict);
        for _ in 0..400 {
            let records = records_for_permutation(&Permutation::random(1 << m, &mut rng));
            check(&net, &records);
        }
    }
}

/// Heap's algorithm: calls `f` with every permutation of `items`.
fn permute_all(items: &mut [usize], k: usize, f: &mut impl FnMut(&[usize])) {
    if k == items.len() {
        f(items);
        return;
    }
    for i in k..items.len() {
        items.swap(k, i);
        permute_all(items, k + 1, f);
        items.swap(k, i);
    }
}
