//! All six permutation-capable networks — BNB, Batcher, bitonic, Benes,
//! Koppelman and crossbar — must realize the same permutations and deliver
//! identical outputs; the blocking networks (baseline, omega) must admit
//! strictly fewer.

use bnb::baselines::batcher::BatcherNetwork;
use bnb::baselines::benes::BenesNetwork;
use bnb::baselines::bitonic::BitonicNetwork;
use bnb::baselines::crossbar::Crossbar;
use bnb::baselines::koppelman::KoppelmanModel;
use bnb::baselines::omega::OmegaNetwork;
use bnb::core::network::BnbNetwork;
use bnb::sim::workload::Workload;
use bnb::topology::baseline::BaselineNetwork;
use bnb::topology::perm::Permutation;
use bnb::topology::record::{all_delivered, records_for_permutation};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn all_outputs_agree(n_log: usize, p: &Permutation) {
    let recs = records_for_permutation(p);
    let bnb_out = BnbNetwork::builder(n_log)
        .data_width(32)
        .build()
        .route(&recs)
        .expect("bnb routes");
    let bat_out = BatcherNetwork::new(n_log)
        .route(&recs)
        .expect("batcher routes");
    let bit_out = BitonicNetwork::new(n_log)
        .route(&recs)
        .expect("bitonic routes");
    let ben_out = BenesNetwork::new(n_log).route(&recs).expect("benes routes");
    let kop_out = KoppelmanModel::new(n_log)
        .route(&recs)
        .expect("koppelman routes");
    let xb_out = Crossbar::new(1 << n_log)
        .route(&recs)
        .expect("crossbar routes");
    assert!(all_delivered(&bnb_out));
    assert_eq!(bnb_out, bat_out);
    assert_eq!(bnb_out, bit_out);
    assert_eq!(bnb_out, ben_out);
    assert_eq!(bnb_out, kop_out);
    assert_eq!(bnb_out, xb_out);
}

#[test]
fn agreement_on_random_permutations() {
    let mut rng = StdRng::seed_from_u64(77);
    for m in [2usize, 3, 5, 7] {
        for _ in 0..10 {
            let p = Permutation::random(1 << m, &mut rng);
            all_outputs_agree(m, &p);
        }
    }
}

#[test]
fn agreement_on_classic_workloads() {
    for m in [4usize, 6] {
        let n = 1usize << m;
        for w in Workload::all_for(n) {
            all_outputs_agree(m, &w.permutation(n));
        }
    }
}

#[test]
fn blocking_networks_admit_strictly_fewer() {
    // N = 8: 40 320 permutations; baseline and omega admit exactly
    // 2^12 = 4096 (one per switch-setting vector); the BNB admits all.
    let baseline = BaselineNetwork::with_inputs(8).unwrap();
    let omega = OmegaNetwork::with_inputs(8).unwrap();
    assert_eq!(baseline.count_admissible(), 4096);
    assert_eq!(omega.count_admissible(), 4096);
    // Spot-check: a permutation omega blocks but BNB routes.
    let bnb = BnbNetwork::new(3);
    let mut blocked_but_routed = 0;
    for k in (0..40_320u64).step_by(997) {
        let p = Permutation::nth_lexicographic(8, k);
        if !omega.is_admissible(&p) {
            let out = bnb.route(&records_for_permutation(&p)).unwrap();
            assert!(all_delivered(&out));
            blocked_but_routed += 1;
        }
    }
    assert!(
        blocked_but_routed > 0,
        "some sampled permutation must block omega"
    );
}

#[test]
fn benes_and_bnb_agree_under_repeated_routing() {
    // Routing the same permutation twice must be deterministic everywhere.
    let p = Permutation::try_from(vec![5, 0, 3, 6, 1, 7, 2, 4]).unwrap();
    let recs = records_for_permutation(&p);
    let bnb = BnbNetwork::new(3);
    let a = bnb.route(&recs).unwrap();
    let b = bnb.route(&recs).unwrap();
    assert_eq!(a, b);
    let ben = BenesNetwork::new(3);
    let ra = ben.route(&recs).unwrap();
    let rb = ben.route(&recs).unwrap();
    assert_eq!(ra, rb);
    assert_eq!(a, ra);
}
