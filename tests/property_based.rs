//! Property-based tests (proptest) over the core invariants.

use bnb::baselines::batcher::BatcherNetwork;
use bnb::baselines::benes::BenesNetwork;
use bnb::core::bsn::BitSorter;
use bnb::core::network::BnbNetwork;
use bnb::core::splitter::split;
use bnb::topology::bitops::{shuffle, unshuffle};
use bnb::topology::perm::Permutation;
use bnb::topology::record::{all_delivered, records_for_permutation};
use proptest::prelude::*;

proptest! {
    /// Theorem 2 as a property: any permutation of any power-of-two size
    /// up to 256 self-routes.
    #[test]
    fn bnb_routes_any_permutation(m in 1usize..=8, seed in any::<u64>()) {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let p = Permutation::random(1 << m, &mut rng);
        let net = BnbNetwork::new(m);
        let out = net.route(&records_for_permutation(&p)).unwrap();
        prop_assert!(all_delivered(&out));
    }

    /// Splitter invariant (Theorem 3): any even-weight bit vector is split
    /// with M_e = M_o, for any power-of-two width up to 256.
    #[test]
    fn splitter_even_split(bits in proptest::collection::vec(any::<bool>(), 4..=256)) {
        // Truncate to a power of two and fix parity by flipping bit 0.
        let pow = bits.len().next_power_of_two() / 2;
        let mut bits = bits[..pow.max(4)].to_vec();
        let ones = bits.iter().filter(|&&b| b).count();
        if ones % 2 == 1 {
            bits[0] = !bits[0];
        }
        let out = split(&bits);
        let even = out.outputs.iter().step_by(2).filter(|&&b| b).count();
        let odd = out.outputs.iter().skip(1).step_by(2).filter(|&&b| b).count();
        prop_assert_eq!(even, odd);
        // Conservation: the output is a permutation of the input.
        let in_ones = bits.iter().filter(|&&b| b).count();
        prop_assert_eq!(even + odd, in_ones);
    }

    /// Theorem 1 as a property: any balanced vector sorts to 0101… .
    #[test]
    fn bsn_sorts_balanced_vectors(k in 1usize..=9, seed in any::<u64>()) {
        use rand::seq::SliceRandom;
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let n = 1usize << k;
        let mut bits: Vec<bool> = (0..n).map(|j| j % 2 == 0).collect();
        bits.shuffle(&mut rng);
        let out = BitSorter::new(k).route(&bits).unwrap();
        prop_assert!(out.iter().enumerate().all(|(j, &b)| b == (j % 2 == 1)));
    }

    /// Unshuffle/shuffle are inverse bijections for every k ≤ m ≤ 12.
    #[test]
    fn unshuffle_bijectivity(m in 1usize..=12, k_off in 0usize..12, i_seed in any::<u64>()) {
        let k = 1 + k_off % m;
        let i = (i_seed as usize) % (1 << m);
        prop_assert_eq!(shuffle(k, m, unshuffle(k, m, i)), i);
        // High bits above k are untouched.
        prop_assert_eq!(unshuffle(k, m, i) >> k, i >> k);
    }

    /// Batcher sorts arbitrary u16 multisets (not just permutations).
    #[test]
    fn batcher_sorts_multisets(mut items in proptest::collection::vec(any::<u16>(), 1..=6)) {
        // Pad to the next power of two.
        let n = items.len().next_power_of_two().max(2);
        items.resize(n, u16::MAX);
        let net = BatcherNetwork::with_inputs(n).unwrap();
        let mut sorted = items.clone();
        net.sort_slice(&mut sorted);
        let mut expected = items;
        expected.sort_unstable();
        prop_assert_eq!(sorted, expected);
    }

    /// Benes + Waksman routes any permutation, reduced or not.
    #[test]
    fn benes_routes_any_permutation(m in 1usize..=7, seed in any::<u64>(), reduced: bool) {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let p = Permutation::random(1 << m, &mut rng);
        let net = BenesNetwork::new(m);
        let routing = if reduced {
            let r = net.route_permutation_waksman(&p).unwrap();
            prop_assert!(r.is_waksman_reduced());
            r
        } else {
            net.route_permutation(&p).unwrap()
        };
        let out = net.apply(&routing, &records_for_permutation(&p)).unwrap();
        prop_assert!(all_delivered(&out));
    }

    /// The Clos network routes any permutation for any (power-of-two n, r)
    /// geometry.
    #[test]
    fn clos_routes_any_permutation(
        n_log in 0usize..=4,
        r in 1usize..=9,
        seed in any::<u64>(),
    ) {
        use bnb::baselines::clos::ClosNetwork;
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let net = ClosNetwork::new(1 << n_log, r).unwrap();
        let p = Permutation::random(net.inputs(), &mut rng);
        let out = net.route(&records_for_permutation(&p)).unwrap();
        prop_assert!(all_delivered(&out));
    }

    /// The cellular array routes any permutation of any size >= 2.
    #[test]
    fn cellular_routes_any_permutation(n in 2usize..=64, seed in any::<u64>()) {
        use bnb::baselines::cellular::CellularArray;
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let arr = CellularArray::new(n);
        let p = Permutation::random(n, &mut rng);
        let out = arr.route(&records_for_permutation(&p)).unwrap();
        prop_assert!(all_delivered(&out));
    }

    /// Partial routing delivers exactly the active records, wherever the
    /// idle inputs are.
    #[test]
    fn partial_routing_delivers_actives(m in 1usize..=6, seed in any::<u64>()) {
        use bnb::topology::record::Record;
        use rand::{RngExt, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let n = 1usize << m;
        let p = Permutation::random(n, &mut rng);
        let slots: Vec<Option<Record>> = (0..n)
            .map(|i| rng.random_bool(0.6).then(|| Record::new(p.apply(i), i as u64)))
            .collect();
        let net = BnbNetwork::new(m);
        let out = net.route_partial(&slots).unwrap();
        for (j, slot) in out.outputs.iter().enumerate() {
            match slot {
                Some(r) => prop_assert_eq!(r.dest(), j),
                None => prop_assert!(slots.iter().flatten().all(|r| r.dest() != j)),
            }
        }
        prop_assert_eq!(out.active + out.fillers, n);
    }

    /// Permutation algebra laws.
    #[test]
    fn permutation_laws(m in 1usize..=6, s1 in any::<u64>(), s2 in any::<u64>()) {
        use rand::SeedableRng;
        let n = 1usize << m;
        let mut r1 = rand::rngs::StdRng::seed_from_u64(s1);
        let mut r2 = rand::rngs::StdRng::seed_from_u64(s2);
        let a = Permutation::random(n, &mut r1);
        let b = Permutation::random(n, &mut r2);
        // (a∘b)⁻¹ = b⁻¹∘a⁻¹
        prop_assert_eq!(a.compose(&b).inverse(), b.inverse().compose(&a.inverse()));
        // sign is a homomorphism
        prop_assert_eq!(a.compose(&b).sign(), a.sign() * b.sign());
        // route delivers: routed[a(i)] == items[i]
        let items: Vec<usize> = (0..n).collect();
        let routed = a.route(&items);
        for i in 0..n {
            prop_assert_eq!(routed[a.apply(i)], items[i]);
        }
    }

    /// A permissive fabric with one random hardware fault conserves the
    /// record multiset, and the misdelivery count reported by
    /// `classify_faulted` matches an independent recount.
    #[test]
    fn faulted_permissive_conserves_and_counts(
        m in 2usize..=5,
        perm_seed in any::<u64>(),
        fault_seed in any::<u64>(),
    ) {
        use bnb::core::network::RoutePolicy;
        use bnb::core::{FaultMap, FaultyFabric};
        use bnb::sim::faults::{classify_faulted, random_hardware_fault, Outcome};
        use rand::SeedableRng;
        let n = 1usize << m;
        let mut rng = rand::rngs::StdRng::seed_from_u64(perm_seed);
        let p = Permutation::random(n, &mut rng);
        let mut frng = rand::rngs::StdRng::seed_from_u64(fault_seed);
        let (site, kind) = random_hardware_fault(m, &mut frng);
        let net = BnbNetwork::builder(m)
            .data_width(32)
            .policy(RoutePolicy::Permissive)
            .build();
        let mut fabric = FaultyFabric::new(net, FaultMap::single(site, kind));
        let records = records_for_permutation(&p);
        let out = fabric.route(&records).unwrap();
        let key = |r: &bnb::topology::record::Record| (r.dest(), r.data());
        let mut want: Vec<_> = records.iter().map(key).collect();
        let mut got: Vec<_> = out.iter().map(key).collect();
        want.sort_unstable();
        got.sort_unstable();
        prop_assert_eq!(want, got, "fault {:?} {:?} lost records", site, kind);
        let misdelivered = out.iter().enumerate().filter(|(j, r)| r.dest() != *j).count();
        prop_assert_eq!(
            classify_faulted(&mut fabric, &records),
            Outcome::Routed { misdelivered }
        );
    }

    /// Every column snapshot of a BNB trace holds the same multiset of
    /// records — nothing is lost or duplicated mid-network.
    #[test]
    fn trace_conserves_records(m in 1usize..=6, seed in any::<u64>()) {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let n = 1usize << m;
        let p = Permutation::random(n, &mut rng);
        let recs = records_for_permutation(&p);
        let net = BnbNetwork::new(m);
        let (_, trace) = net.route_traced(&recs).unwrap();
        let mut expected: Vec<_> = recs.clone();
        expected.sort();
        for col in &trace.columns {
            let mut got = col.lines.clone();
            got.sort();
            prop_assert_eq!(&got, &expected);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Data payloads ride along unmodified for any width w.
    #[test]
    fn payloads_survive_any_width(m in 1usize..=6, w in 0usize..=64, seed in any::<u64>()) {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let n = 1usize << m;
        let p = Permutation::random(n, &mut rng);
        let mask = if w == 64 { u64::MAX } else { (1u64 << w) - 1 };
        let recs: Vec<_> = (0..n)
            .map(|i| bnb::topology::record::Record::new(p.apply(i), (i as u64 * 0x9E37) & mask))
            .collect();
        let net = BnbNetwork::builder(m).data_width(w).build();
        let out = net.route(&recs).unwrap();
        for (j, r) in out.iter().enumerate() {
            prop_assert_eq!(r.dest(), j);
            let src = p.inverse().apply(j) as u64;
            prop_assert_eq!(r.data(), (src * 0x9E37) & mask);
        }
    }
}
