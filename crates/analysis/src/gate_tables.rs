//! Gate-level versions of Tables 1 and 2 — measured on generated
//! netlists, something the paper's abstract-unit model could only predict.
//!
//! The paper compares `C_SW`/`C_FN` counts and `D_SW`/`D_FN` sums; here the
//! same two networks are *built* out of AND/OR/XOR/NOT/MUX gates
//! (`bnb_gates::components::bnb_network` and
//! `bnb_baselines::batcher_gates::batcher_netlist`) and measured: logic
//! depth by critical path, area by gate census, plus the post-optimization
//! census showing how much slack the regular design leaves.

use bnb_baselines::batcher_gates::batcher_netlist;
use bnb_gates::components::bnb_network;
use bnb_gates::delay::{critical_path, DelayModel};
use bnb_gates::optimize::optimize;

use crate::tables::Table;

/// One measured row of the gate-level comparison.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GateRow {
    /// `log2 N`.
    pub m: usize,
    /// BNB netlist critical path (unit gate delays).
    pub bnb_depth: f64,
    /// Batcher netlist critical path.
    pub batcher_depth: f64,
    /// BNB logic gates.
    pub bnb_gates: usize,
    /// Batcher logic gates.
    pub batcher_gates: usize,
    /// BNB logic gates after optimization.
    pub bnb_optimized: usize,
}

/// Measures one size (builds both netlists; feasible for `m ≤ 6`).
///
/// # Panics
///
/// Panics if `m == 0`.
pub fn measure(m: usize, w: usize) -> GateRow {
    let bnb = bnb_network(m, w);
    let bat = batcher_netlist(m, w);
    let bnb_depth = critical_path(bnb.netlist(), &DelayModel::unit())
        .expect("netlist has outputs")
        .delay;
    let batcher_depth = critical_path(bat.netlist(), &DelayModel::unit())
        .expect("netlist has outputs")
        .delay;
    let (opt, _) = optimize(bnb.netlist());
    GateRow {
        m,
        bnb_depth,
        batcher_depth,
        bnb_gates: bnb.netlist().census().logic_gates(),
        batcher_gates: bat.netlist().census().logic_gates(),
        bnb_optimized: opt.census().logic_gates(),
    }
}

/// The gate-level comparison table over `ms` at data width `w`.
pub fn gate_level_table(ms: &[usize], w: usize) -> Table {
    let rows = ms
        .iter()
        .map(|&m| {
            let r = measure(m, w);
            vec![
                (1usize << m).to_string(),
                format!("{:.0}", r.bnb_depth),
                format!("{:.0}", r.batcher_depth),
                r.bnb_gates.to_string(),
                r.batcher_gates.to_string(),
                r.bnb_optimized.to_string(),
            ]
        })
        .collect();
    Table {
        title: format!("Gate-level Tables 1+2 — measured netlists (w = {w})"),
        headers: vec![
            "N".into(),
            "BNB depth".into(),
            "Batcher depth".into(),
            "BNB gates".into(),
            "Batcher gates".into(),
            "BNB optimized".into(),
        ],
        rows,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measured_rows_reproduce_the_table2_ordering() {
        for m in [3usize, 4, 5] {
            let r = measure(m, 0);
            assert!(r.bnb_depth < r.batcher_depth, "depth ordering at m = {m}");
            assert!(r.bnb_gates < r.batcher_gates, "area ordering at m = {m}");
            assert!(
                r.bnb_optimized < r.bnb_gates,
                "optimizer finds slack at m = {m}"
            );
        }
    }

    #[test]
    fn table_renders_one_row_per_size() {
        let t = gate_level_table(&[2, 3], 0);
        assert_eq!(t.rows.len(), 2);
        assert!(t.to_markdown().contains("Gate-level"));
        assert_eq!(t.headers.len(), 6);
    }
}
