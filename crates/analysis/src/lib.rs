//! Reproduction of the BNB paper's analytical evaluation (§5).
//!
//! The paper's evaluation consists of closed-form hardware and delay
//! complexities (eqs. (6)–(12)) summarized in two tables:
//!
//! - **Table 1** — hardware complexity leading terms (2×2 switches,
//!   function slices, adder slices) for Batcher's network, Koppelman's
//!   SRPN, and the BNB network → [`tables::table1`].
//! - **Table 2** — propagation-delay polynomials for the same three
//!   networks → [`tables::table2`].
//!
//! This crate regenerates both, two ways each: from the paper's closed
//! forms ([`formulas`]) and from *constructed* networks (exact counts via
//! `bnb-core` / `bnb-baselines`). [`ratio`] quantifies the paper's headline
//! claims — BNB needs ~1/3 of Batcher's hardware and ~2/3 of its delay —
//! and [`report`] assembles everything into the text that backs
//! EXPERIMENTS.md.

pub mod crossover;
pub mod formulas;
pub mod gate_tables;
pub mod ratio;
pub mod report;
pub mod tables;

pub use tables::{table1, table2, Table};
