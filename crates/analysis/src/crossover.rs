//! Crossover analysis: where the cost/delay orderings between the networks
//! flip as `N` and the data width `w` change.
//!
//! The paper compares leading terms only ("who wins asymptotically"). A
//! reproduction can do better: with exact counts, the *finite-N crossover
//! points* fall out, and several are surprising:
//!
//! - with wide data words, Batcher is **cheaper** than BNB at small `N`
//!   (the BNB replicates data slices per nested stage);
//! - by the paper's own Table 2 polynomials, Koppelman's SRPN is **faster**
//!   than the BNB network up to `N = 64`;
//! - the `O(N²)` cellular array is cheaper than every multistage network
//!   at tiny `N`.

use serde::{Deserialize, Serialize};

use crate::formulas;
use crate::ratio;

/// A crossover point: the smallest `m` from which `winner_above` wins.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Crossover {
    /// What is being compared (human-readable).
    pub metric: String,
    /// The smallest `m = log2 N` at which the asymptotic winner first wins.
    pub m_star: usize,
    /// Who wins for `m >= m_star`.
    pub winner_above: String,
}

/// Finds the smallest `m ∈ [2, limit]` from which `pred(m)` holds for every
/// larger `m` up to `limit`. Returns `None` if the predicate never
/// stabilizes to true.
pub fn stable_threshold(limit: usize, pred: impl Fn(usize) -> bool) -> Option<usize> {
    let mut m_star = None;
    for m in 2..=limit {
        if pred(m) {
            m_star.get_or_insert(m);
        } else {
            m_star = None;
        }
    }
    m_star
}

/// The BNB-vs-Batcher hardware crossover at data width `w`: smallest `m`
/// from which BNB's exact total hardware is cheaper.
pub fn bnb_batcher_hardware(w: usize) -> Option<Crossover> {
    stable_threshold(30, |m| ratio::hardware_ratio(m, w) < 1.0).map(|m_star| Crossover {
        metric: format!("total hardware units, w = {w}"),
        m_star,
        winner_above: "BNB".into(),
    })
}

/// The BNB-vs-Koppelman delay crossover (paper Table 2 polynomials).
pub fn bnb_koppelman_delay() -> Option<Crossover> {
    stable_threshold(30, |m| {
        formulas::table2_poly::bnb(m) < formulas::table2_poly::koppelman(m)
    })
    .map(|m_star| Crossover {
        metric: "Table 2 delay polynomial".into(),
        m_star,
        winner_above: "BNB".into(),
    })
}

/// The Koppelman-vs-Batcher delay crossover: despite Koppelman's larger
/// leading term, its polynomial is smaller up to `m = 12`.
pub fn koppelman_batcher_delay() -> Option<Crossover> {
    stable_threshold(30, |m| {
        formulas::table2_poly::koppelman(m) > formulas::table2_poly::batcher(m)
    })
    .map(|m_star| Crossover {
        metric: "Table 2 delay polynomial".into(),
        m_star,
        winner_above: "Batcher".into(),
    })
}

/// The BNB-vs-cellular-array hardware crossover: smallest `m` from which
/// `O(N log³N)` beats `O(N²)` in exact units.
pub fn bnb_cellular_hardware() -> Option<Crossover> {
    use bnb_baselines::cellular::CellularArray;
    use bnb_core::cost::HardwareCost;
    stable_threshold(20, |m| {
        HardwareCost::bnb_counted(m, 0).total_units()
            < CellularArray::new(1 << m).cost().total_units()
    })
    .map(|m_star| Crossover {
        metric: "total hardware units vs O(N^2) cellular array".into(),
        m_star,
        winner_above: "BNB".into(),
    })
}

/// All crossover findings as a rendered list for the report.
pub fn summary() -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "Crossover findings (exact models):");
    for (label, c) in [
        ("BNB vs Batcher hardware, w=0", bnb_batcher_hardware(0)),
        ("BNB vs Batcher hardware, w=16", bnb_batcher_hardware(16)),
        ("BNB vs Batcher hardware, w=32", bnb_batcher_hardware(32)),
        ("BNB vs Koppelman delay", bnb_koppelman_delay()),
        ("Koppelman vs Batcher delay", koppelman_batcher_delay()),
        ("BNB vs cellular array hardware", bnb_cellular_hardware()),
    ] {
        match c {
            Some(c) => {
                let _ = writeln!(
                    out,
                    "  {label}: {} wins from N = {} on ({})",
                    c.winner_above,
                    1usize << c.m_star,
                    c.metric
                );
            }
            None => {
                let _ = writeln!(out, "  {label}: no stable crossover below the scan limit");
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn narrow_words_have_no_crossover_bnb_always_wins() {
        let c = bnb_batcher_hardware(0).expect("BNB wins somewhere");
        assert_eq!(c.m_star, 2, "BNB wins from N = 4 at w = 0");
    }

    #[test]
    fn wide_words_push_the_crossover_out() {
        let c16 = bnb_batcher_hardware(16).expect("crossover exists");
        assert_eq!(c16.m_star, 6, "w = 16 crossover at N = 64");
        let c32 = bnb_batcher_hardware(32).expect("crossover exists");
        assert!(
            c32.m_star >= c16.m_star,
            "wider words can only delay the win"
        );
    }

    #[test]
    fn koppelman_delay_crossovers() {
        assert_eq!(
            bnb_koppelman_delay().unwrap().m_star,
            7,
            "BNB beats Koppelman from N = 128"
        );
        assert_eq!(
            koppelman_batcher_delay().unwrap().m_star,
            13,
            "Batcher only beats Koppelman from N = 8192"
        );
    }

    #[test]
    fn cellular_is_competitive_only_at_tiny_n() {
        let c = bnb_cellular_hardware().unwrap();
        assert!(c.m_star >= 4, "quadratic must win at the smallest sizes");
        assert!(c.m_star <= 8, "and must lose quickly");
    }

    #[test]
    fn stable_threshold_semantics() {
        // Predicate true from 5 on.
        assert_eq!(stable_threshold(10, |m| m >= 5), Some(5));
        // True only at the limit still counts (holds for all larger m scanned).
        assert_eq!(stable_threshold(10, |m| m % 2 == 0), Some(10));
        // False at the limit -> no stable threshold.
        assert_eq!(stable_threshold(10, |m| m % 2 == 1), None);
        // Always true.
        assert_eq!(stable_threshold(10, |_| true), Some(2));
    }

    #[test]
    fn summary_lists_every_comparison() {
        let s = summary();
        assert!(s.contains("BNB vs Batcher hardware, w=16"));
        assert!(s.contains("Koppelman vs Batcher delay"));
        assert!(s.contains("cellular array"));
    }
}
