//! Quantifying the paper's headline claims (§5.3, Conclusion):
//!
//! - hardware: "the network needs about **one third** of the hardware of
//!   the Batcher's network" — the ratio of the leading switch terms is
//!   `(N/6·log³N) / (N/4·log³N + N/4·log³N) = 1/3`;
//! - delay: "the routing delay time is **two thirds** of that of the
//!   Batcher's network" — `(1/3·log³N) / (1/2·log³N) = 2/3`.
//!
//! [`hardware_ratio`] / [`delay_ratio`] evaluate the exact finite-`N`
//! ratios from the closed forms (which the `formulas` tests prove equal to
//! the constructed networks), and the `_per_line` variants evaluate the
//! `N`-normalized polynomials in `f64` so convergence can be checked at
//! arbitrarily large `m`.

use serde::{Deserialize, Serialize};

use crate::formulas;

/// One point of the ratio sweep.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RatioPoint {
    /// `log2 N`.
    pub m: usize,
    /// Exact BNB/Batcher ratio of total hardware units (unit weights).
    pub hardware: f64,
    /// Exact BNB/Batcher ratio of total delay units (unit weights).
    pub delay: f64,
}

/// Exact BNB/Batcher hardware ratio at `m` and data width `w`, total units
/// with unit weights (closed forms, valid for `m ≤ 40`).
pub fn hardware_ratio(m: usize, w: usize) -> f64 {
    let bnb = formulas::bnb_cost(m, w).total_units() as f64;
    let bat = formulas::batcher_cost(m, w).total_units() as f64;
    bnb / bat
}

/// Exact BNB/Batcher delay ratio at `m`, total units with unit weights.
pub fn delay_ratio(m: usize) -> f64 {
    let bnb = formulas::bnb_delay(m).total_units() as f64;
    let bat = formulas::batcher_delay(m).total_units() as f64;
    bnb / bat
}

/// BNB hardware units per input line as an `f64` polynomial in `m`
/// (the `N`-normalized eq. (6), dropping the `−1/N` term).
pub fn bnb_hardware_per_line(m: f64, w: f64) -> f64 {
    m * (m + 1.0) * (2.0 * m + 1.0) / 12.0 + w * m * (m + 1.0) / 4.0 + m * m / 2.0 - m + 1.0
}

/// Batcher hardware units per input line as an `f64` polynomial in `m`
/// (the `N`-normalized eqs. (10)–(11), dropping the `−1/N` term).
pub fn batcher_hardware_per_line(m: f64, w: f64) -> f64 {
    ((m * m - m) / 4.0 + 1.0) * (2.0 * m + w)
}

/// Hardware ratio for arbitrarily large `m` via the per-line polynomials.
pub fn hardware_ratio_per_line(m: f64, w: f64) -> f64 {
    bnb_hardware_per_line(m, w) / batcher_hardware_per_line(m, w)
}

/// Delay ratio for arbitrarily large `m` via the delay polynomials.
pub fn delay_ratio_per_line(m: f64) -> f64 {
    let bnb = m * (m - 1.0) * (m + 4.0) / 3.0 + m * (m + 1.0) / 2.0;
    let bat = m * (m + 1.0) / 2.0 * (m + 1.0);
    bnb / bat
}

/// Sweeps the two exact ratios over `ms` (hardware at data width `w`).
pub fn sweep(ms: &[usize], w: usize) -> Vec<RatioPoint> {
    ms.iter()
        .map(|&m| RatioPoint {
            m,
            hardware: hardware_ratio(m, w),
            delay: delay_ratio(m),
        })
        .collect()
}

/// Asymptotic hardware ratio from the leading terms: exactly 1/3.
pub fn asymptotic_hardware_ratio() -> f64 {
    // (N/6·log³N) / (N/4·log³N switches + N/4·log³N function slices).
    (1.0 / 6.0) / 0.5
}

/// Asymptotic delay ratio from the leading terms: exactly 2/3.
pub fn asymptotic_delay_ratio() -> f64 {
    (1.0 / 3.0) / 0.5
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Claim C4: convergence to 1/3 and 2/3 at very large m.
    #[test]
    fn ratios_converge_to_paper_claims() {
        let hw = hardware_ratio_per_line(3000.0, 0.0);
        assert!(
            (hw - asymptotic_hardware_ratio()).abs() < 2e-3,
            "hardware -> 1/3, got {hw}"
        );
        let d = delay_ratio_per_line(3000.0);
        assert!(
            (d - asymptotic_delay_ratio()).abs() < 2e-3,
            "delay -> 2/3, got {d}"
        );
    }

    /// The per-line polynomials agree with the exact integer formulas in
    /// the range where both are defined.
    #[test]
    fn per_line_polynomials_match_exact_formulas() {
        // The per-line polynomials drop the −1/N terms, so agreement starts
        // at moderate m where those terms are negligible.
        for m in 5..=30usize {
            for w in [0usize, 8] {
                let exact = hardware_ratio(m, w);
                let poly = hardware_ratio_per_line(m as f64, w as f64);
                assert!(
                    (exact - poly).abs() < 0.01,
                    "m = {m}, w = {w}: exact {exact} vs poly {poly}"
                );
            }
            let exact = delay_ratio(m);
            let poly = delay_ratio_per_line(m as f64);
            assert!((exact - poly).abs() < 1e-9, "m = {m}: {exact} vs {poly}");
        }
    }

    #[test]
    fn ratio_improves_with_scale() {
        let small = hardware_ratio(3, 0);
        let large = hardware_ratio(20, 0);
        assert!(
            large < small,
            "hardware ratio must shrink: {small} -> {large}"
        );
        let dsmall = delay_ratio(3);
        let dlarge = delay_ratio(20);
        assert!(
            dlarge < dsmall,
            "delay ratio must shrink: {dsmall} -> {dlarge}"
        );
    }

    #[test]
    fn bnb_wins_at_all_practical_sizes_for_narrow_words() {
        // "Who wins": with address-only words (w = 0) BNB uses less
        // hardware and less delay than Batcher at every size from N = 4.
        for m in 2..=30 {
            assert!(hardware_ratio(m, 0) < 1.0, "hardware, m = {m}");
            assert!(delay_ratio(m) < 1.0, "delay, m = {m}");
        }
    }

    #[test]
    fn wide_words_move_the_hardware_crossover_to_n64() {
        // A finding the paper does not state: with w = 16 data bits the
        // data slices (which BNB replicates per nested stage) dominate at
        // small N, so Batcher is cheaper up to N = 32 and BNB wins from
        // N = 64 on.
        for m in 2..=5 {
            assert!(
                hardware_ratio(m, 16) > 1.0,
                "Batcher should win at m = {m}, w = 16"
            );
        }
        for m in 6..=30 {
            assert!(
                hardware_ratio(m, 16) < 1.0,
                "BNB should win at m = {m}, w = 16"
            );
        }
    }

    #[test]
    fn sweep_produces_one_point_per_m() {
        let pts = sweep(&[3, 5, 8], 8);
        assert_eq!(pts.len(), 3);
        assert_eq!(pts[1].m, 5);
        assert!(pts[2].hardware > 0.0 && pts[2].delay > 0.0);
    }

    #[test]
    fn asymptotes_are_exact_fractions() {
        assert!((asymptotic_hardware_ratio() - 1.0 / 3.0).abs() < 1e-12);
        assert!((asymptotic_delay_ratio() - 2.0 / 3.0).abs() < 1e-12);
    }
}
