//! Regeneration of the paper's Table 1 and Table 2.
//!
//! The paper prints leading-term formulas; we print, for each network and
//! each `N`, both the paper's leading terms and the **exact counts from the
//! constructed networks**, so the tables double as evidence that the
//! implementations realize the claimed complexities.

use std::fmt;
use std::fmt::Write as _;

use bnb_baselines::batcher::BatcherNetwork;
use bnb_baselines::koppelman::KoppelmanModel;
use bnb_core::cost::HardwareCost;
use bnb_core::delay::PropagationDelay;
use serde::{Deserialize, Serialize};

use crate::formulas::{table1_leading, table2_poly};

/// A rendered table: headers plus string rows.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Table {
    /// Table title.
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Data rows.
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Renders as a GitHub-flavoured markdown table.
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "### {}", self.title);
        let _ = writeln!(out);
        let _ = writeln!(out, "| {} |", self.headers.join(" | "));
        let _ = writeln!(out, "|{}|", vec!["---"; self.headers.len()].join("|"));
        for row in &self.rows {
            let _ = writeln!(out, "| {} |", row.join(" | "));
        }
        out
    }
}

impl Table {
    /// Renders as RFC-4180-style CSV (header row first; fields containing
    /// commas or quotes are quoted).
    pub fn to_csv(&self) -> String {
        fn field(s: &str) -> String {
            if s.contains([',', '"', '\n']) {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        }
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{}",
            self.headers
                .iter()
                .map(|h| field(h))
                .collect::<Vec<_>>()
                .join(",")
        );
        for row in &self.rows {
            let _ = writeln!(
                out,
                "{}",
                row.iter().map(|c| field(c)).collect::<Vec<_>>().join(",")
            );
        }
        out
    }

    /// Renders as a LaTeX `tabular` environment with a caption comment.
    pub fn to_latex(&self) -> String {
        fn escape(s: &str) -> String {
            s.replace('\\', r"\textbackslash{}")
                .replace('&', r"\&")
                .replace('%', r"\%")
                .replace('#', r"\#")
                .replace('_', r"\_")
                .replace('^', r"\^{}")
                .replace('~', r"\~{}")
        }
        let mut out = String::new();
        let _ = writeln!(out, "% {}", escape(&self.title));
        let _ = writeln!(
            out,
            r"\begin{{tabular}}{{{}}}",
            "l".repeat(self.headers.len())
        );
        let _ = writeln!(
            out,
            r"{} \\ \hline",
            self.headers
                .iter()
                .map(|h| escape(h))
                .collect::<Vec<_>>()
                .join(" & ")
        );
        for row in &self.rows {
            let _ = writeln!(
                out,
                r"{} \\",
                row.iter()
                    .map(|c| escape(c))
                    .collect::<Vec<_>>()
                    .join(" & ")
            );
        }
        let _ = writeln!(out, r"\end{{tabular}}");
        out
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_markdown())
    }
}

fn fmt_cost(c: HardwareCost) -> (String, String, String) {
    (
        c.switches.to_string(),
        c.function_nodes.to_string(),
        if c.adder_slices == 0 {
            "—".to_string()
        } else {
            c.adder_slices.to_string()
        },
    )
}

/// Paper **Table 1** — hardware complexities of the three networks, for
/// each `m` in `ms` at data width `w`. Each network gets two rows per `m`:
/// the paper's leading terms and the exact count from the constructed
/// network (exact counts for Koppelman are the model's leading terms, the
/// only figures the paper provides).
pub fn table1(ms: &[usize], w: usize) -> Table {
    let mut rows = Vec::new();
    for &m in ms {
        let n = 1usize << m;
        let lead = table1_leading::batcher(m);
        rows.push(vec![
            n.to_string(),
            "Batcher".into(),
            "leading".into(),
            format!("{:.0}", lead.0),
            format!("{:.0}", lead.1),
            "—".into(),
        ]);
        let (s, f, a) = fmt_cost(BatcherNetwork::new(m).cost(w));
        rows.push(vec![
            n.to_string(),
            "Batcher".into(),
            "exact".into(),
            s,
            f,
            a,
        ]);

        let lead = table1_leading::koppelman(m);
        rows.push(vec![
            n.to_string(),
            "Koppelman [11]".into(),
            "leading".into(),
            format!("{:.0}", lead.0),
            format!("{:.0}", lead.1),
            format!("{:.0}", lead.2),
        ]);
        let (s, f, a) = fmt_cost(KoppelmanModel::new(m).cost());
        rows.push(vec![
            n.to_string(),
            "Koppelman [11]".into(),
            "model".into(),
            s,
            f,
            a,
        ]);

        let lead = table1_leading::bnb(m);
        rows.push(vec![
            n.to_string(),
            "BNB (this paper)".into(),
            "leading".into(),
            format!("{:.0}", lead.0),
            format!("{:.0}", lead.1),
            "—".into(),
        ]);
        let (s, f, a) = fmt_cost(HardwareCost::bnb_counted(m, w));
        rows.push(vec![
            n.to_string(),
            "BNB (this paper)".into(),
            "exact".into(),
            s,
            f,
            a,
        ]);
    }
    Table {
        title: format!("Table 1 — hardware complexities (w = {w} data bits)"),
        headers: vec![
            "N".into(),
            "network".into(),
            "kind".into(),
            "2x2 switches".into(),
            "function slices".into(),
            "adder slices".into(),
        ],
        rows,
    }
}

/// Paper **Table 2** — propagation delays at unit weights
/// (`D_SW = D_FN = 1`): the paper's polynomial next to the
/// structure-measured delay of the constructed networks.
pub fn table2(ms: &[usize]) -> Table {
    let mut rows = Vec::new();
    for &m in ms {
        let n = 1usize << m;
        let bat = BatcherNetwork::new(m).delay();
        rows.push(vec![
            n.to_string(),
            "Batcher".into(),
            format!("{:.1}", table2_poly::batcher(m)),
            bat.total_units().to_string(),
        ]);
        rows.push(vec![
            n.to_string(),
            "Koppelman [11]".into(),
            format!("{:.1}", table2_poly::koppelman(m)),
            "model only".into(),
        ]);
        let bnb = PropagationDelay::bnb_structural(m);
        rows.push(vec![
            n.to_string(),
            "BNB (this paper)".into(),
            format!("{:.1}", table2_poly::bnb(m)),
            bnb.total_units().to_string(),
        ]);
    }
    Table {
        title: "Table 2 — propagation delay (unit weights)".into(),
        headers: vec![
            "N".into(),
            "network".into(),
            "paper polynomial".into(),
            "measured (structural)".into(),
        ],
        rows,
    }
}

/// A data-width sweep of the exact BNB-vs-Batcher total hardware: one row
/// per `(N, w)` pair with the winner — the table behind the wide-word
/// crossover finding (EXPERIMENTS.md).
pub fn table1_w_sweep(ms: &[usize], ws: &[usize]) -> Table {
    let mut rows = Vec::new();
    for &m in ms {
        for &w in ws {
            let bnb = HardwareCost::bnb_counted(m, w).total_units();
            let bat = BatcherNetwork::new(m).cost(w).total_units();
            let winner = if bnb < bat { "BNB" } else { "Batcher" };
            rows.push(vec![
                (1usize << m).to_string(),
                w.to_string(),
                bnb.to_string(),
                bat.to_string(),
                format!("{:.3}", bnb as f64 / bat as f64),
                winner.to_string(),
            ]);
        }
    }
    Table {
        title: "Exact total hardware vs data width (unit weights)".into(),
        headers: vec![
            "N".into(),
            "w".into(),
            "BNB units".into(),
            "Batcher units".into(),
            "ratio".into(),
            "winner".into(),
        ],
        rows,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn w_sweep_shows_the_crossover() {
        let t = table1_w_sweep(&[3, 6], &[0, 16]);
        assert_eq!(t.rows.len(), 4);
        let winner_of = |n: &str, w: &str| {
            t.rows
                .iter()
                .find(|r| r[0] == n && r[1] == w)
                .map(|r| r[5].clone())
                .expect("row exists")
        };
        assert_eq!(winner_of("8", "0"), "BNB");
        assert_eq!(winner_of("8", "16"), "Batcher");
        assert_eq!(winner_of("64", "16"), "BNB");
    }

    #[test]
    fn table1_has_six_rows_per_size() {
        let t = table1(&[3, 4], 8);
        assert_eq!(t.rows.len(), 12);
        assert_eq!(t.headers.len(), 6);
        let md = t.to_markdown();
        assert!(md.contains("Table 1"));
        assert!(md.contains("BNB (this paper)"));
        assert!(md.contains("| 8 |"));
    }

    #[test]
    fn table1_exact_rows_match_formulas() {
        let t = table1(&[5], 0);
        // Row 5 is BNB exact; column 3 is switches.
        let bnb_exact = &t.rows[5];
        assert_eq!(bnb_exact[2], "exact");
        assert_eq!(
            bnb_exact[3],
            HardwareCost::bnb_counted(5, 0).switches.to_string()
        );
    }

    #[test]
    fn table2_polynomials_equal_measured_for_bnb_and_batcher() {
        let t = table2(&[3, 6, 10]);
        for row in &t.rows {
            if row[1] != "Koppelman [11]" {
                let poly: f64 = row[2].parse().unwrap();
                let measured: f64 = row[3].parse().unwrap();
                assert!(
                    (poly - measured).abs() < 1e-6,
                    "{}: polynomial {poly} != measured {measured}",
                    row[1]
                );
            }
        }
    }

    #[test]
    fn csv_render_quotes_when_needed() {
        let t = Table {
            title: "t".into(),
            headers: vec!["a".into(), "b,с".into()],
            rows: vec![vec!["plain".into(), "has \"quote\"".into()]],
        };
        let csv = t.to_csv();
        let mut lines = csv.lines();
        assert_eq!(lines.next().unwrap(), "a,\"b,с\"");
        assert_eq!(lines.next().unwrap(), "plain,\"has \"\"quote\"\"\"");
    }

    #[test]
    fn csv_of_table2_parses_back() {
        let t = table2(&[3]);
        let csv = t.to_csv();
        assert_eq!(csv.lines().count(), 1 + t.rows.len());
        assert!(csv.starts_with("N,network,"));
    }

    #[test]
    fn latex_render_escapes_specials() {
        let t = Table {
            title: "100% & more".into(),
            headers: vec!["a_b".into()],
            rows: vec![vec!["x^2".into()]],
        };
        let tex = t.to_latex();
        assert!(tex.contains(r"% 100\% \& more"));
        assert!(tex.contains(r"a\_b"));
        assert!(tex.contains(r"x\^{}2"));
        assert!(tex.contains(r"\begin{tabular}{l}"));
        assert!(tex.trim_end().ends_with(r"\end{tabular}"));
    }

    #[test]
    fn markdown_render_is_well_formed() {
        let t = table2(&[4]);
        let md = t.to_markdown();
        let lines: Vec<&str> = md.lines().filter(|l| l.starts_with('|')).collect();
        // header + separator + 3 rows
        assert_eq!(lines.len(), 5);
        assert!(lines.iter().all(|l| l.matches('|').count() == 5));
        assert_eq!(md, t.to_string());
    }
}
