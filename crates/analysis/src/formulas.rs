//! The paper's closed-form complexity expressions, eqs. (6)–(12), as pure
//! functions of `m = log N` and the data width `w`.
//!
//! Everything here is an independent transcription of §5 — deliberately
//! *not* derived from the constructed networks — so that tests comparing
//! these formulas against structure-enumerated counts are meaningful
//! cross-checks.

use bnb_core::cost::HardwareCost;
use bnb_core::delay::PropagationDelay;

/// eq. (6): exact BNB hardware cost.
///
/// Delegates to [`HardwareCost::bnb_closed_form`], which implements the
/// polynomial with exact integer arithmetic.
pub fn bnb_cost(m: usize, w: usize) -> HardwareCost {
    HardwareCost::bnb_closed_form(m, w)
}

/// eq. (9): exact BNB propagation delay.
pub fn bnb_delay(m: usize) -> PropagationDelay {
    PropagationDelay::bnb_closed_form(m)
}

/// eq. (10): Batcher comparison-element count,
/// `N/4·log²N − N/4·log N + N − 1`.
pub fn batcher_comparators(m: usize) -> u64 {
    let n = 1u64 << m;
    let mu = m as u64;
    n / 4 * mu * mu - n / 4 * mu + n - 1
}

/// eq. (11): Batcher hardware cost for `log N`-bit addresses and `w`-bit
/// data: every comparison element carries `log N + w` switch slices and
/// `log N` function slices.
pub fn batcher_cost(m: usize, w: usize) -> HardwareCost {
    let ce = batcher_comparators(m);
    HardwareCost {
        switches: ce * (m + w) as u64,
        function_nodes: ce * m as u64,
        adder_slices: 0,
    }
}

/// eq. (12): Batcher propagation delay,
/// `(1/2·log³N + 1/2·log²N)·D_FN + (1/2·log²N + 1/2·log N)·D_SW`.
pub fn batcher_delay(m: usize) -> PropagationDelay {
    let mu = m as u64;
    let stages = mu * (mu + 1) / 2;
    PropagationDelay {
        switch_units: stages,
        fn_units: stages * mu,
    }
}

/// Table 1, Koppelman row: `N/4·log³N` switches, `N/2·log²N` function
/// slices, `N·log²N` adder slices (leading terms).
pub fn koppelman_cost(m: usize) -> HardwareCost {
    let n = 1u64 << m;
    let mu = m as u64;
    HardwareCost {
        switches: n / 4 * mu * mu * mu,
        function_nodes: n / 2 * mu * mu,
        adder_slices: n * mu * mu,
    }
}

/// Table 2 polynomials at unit weights (`D_SW = D_FN = 1`), one per row.
pub mod table2_poly {
    /// Batcher: `1/2·log³N + 1/2·log²N + 1/2·log²N + 1/2·log N`.
    pub fn batcher(m: usize) -> f64 {
        let mf = m as f64;
        0.5 * mf.powi(3) + mf.powi(2) + 0.5 * mf
    }

    /// Koppelman: `2/3·log³N − log²N + 1/3·log N + 1`.
    pub fn koppelman(m: usize) -> f64 {
        let mf = m as f64;
        2.0 / 3.0 * mf.powi(3) - mf.powi(2) + mf / 3.0 + 1.0
    }

    /// BNB (this paper): `1/3·log³N + 3/2·log²N − 5/6·log N`.
    pub fn bnb(m: usize) -> f64 {
        let mf = m as f64;
        mf.powi(3) / 3.0 + 1.5 * mf.powi(2) - 5.0 / 6.0 * mf
    }
}

/// Table 1 leading terms at unit weights, one per row, in the paper's
/// column order (switches, function slices, adder slices).
pub mod table1_leading {
    /// Batcher: `(N/4·log³N, N/4·log³N, 0)`.
    pub fn batcher(m: usize) -> (f64, f64, f64) {
        let n = (1u64 << m) as f64;
        let c = n / 4.0 * (m as f64).powi(3);
        (c, c, 0.0)
    }

    /// Koppelman: `(N/4·log³N, N/2·log²N, N·log²N)`.
    pub fn koppelman(m: usize) -> (f64, f64, f64) {
        let n = (1u64 << m) as f64;
        let mf = m as f64;
        (n / 4.0 * mf.powi(3), n / 2.0 * mf.powi(2), n * mf.powi(2))
    }

    /// BNB: `(N/6·log³N, N/2·log²N, 0)`.
    pub fn bnb(m: usize) -> (f64, f64, f64) {
        let n = (1u64 << m) as f64;
        let mf = m as f64;
        (n / 6.0 * mf.powi(3), n / 2.0 * mf.powi(2), 0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bnb_baselines::batcher::BatcherNetwork;
    use bnb_baselines::koppelman::KoppelmanModel;

    /// The closed forms match the constructed networks — the evaluation's
    /// central cross-check.
    #[test]
    fn formulas_match_constructed_networks() {
        for m in 1..=9 {
            for w in [0usize, 8, 32] {
                assert_eq!(
                    bnb_cost(m, w),
                    bnb_core::cost::HardwareCost::bnb_counted(m, w)
                );
                let bat = BatcherNetwork::new(m);
                assert_eq!(batcher_comparators(m), bat.comparator_count() as u64);
                assert_eq!(batcher_cost(m, w), bat.cost(w));
                assert_eq!(batcher_delay(m), bat.delay());
            }
            assert_eq!(
                bnb_delay(m),
                bnb_core::delay::PropagationDelay::bnb_structural(m)
            );
            assert_eq!(koppelman_cost(m), KoppelmanModel::new(m).cost());
        }
    }

    /// Table 2 polynomials equal the unit-weight totals of the component
    /// delays where both exist.
    #[test]
    fn table2_polynomials_are_consistent() {
        for m in 1..=12 {
            assert!((table2_poly::batcher(m) - batcher_delay(m).total_units() as f64).abs() < 1e-9);
            assert!((table2_poly::bnb(m) - bnb_delay(m).total_units() as f64).abs() < 1e-9);
            assert!((table2_poly::koppelman(m) - KoppelmanModel::table2(m)).abs() < 1e-9);
        }
    }

    /// Table 1 leading terms dominate the exact counts as N grows.
    #[test]
    fn leading_terms_converge_to_exact() {
        let m = 18;
        let (sw, fnodes, _) = table1_leading::bnb(m);
        let exact = bnb_cost(m, 0);
        assert!((sw / exact.switches as f64 - 1.0).abs() < 0.25);
        assert!((fnodes / exact.function_nodes as f64 - 1.0).abs() < 0.25);

        let (sw, fnodes, _) = table1_leading::batcher(m);
        let exact = batcher_cost(m, 0);
        assert!((sw / exact.switches as f64 - 1.0).abs() < 0.25);
        assert!((fnodes / exact.function_nodes as f64 - 1.0).abs() < 0.25);
    }

    /// Paper spot values: m = 3 gives 19 comparison elements.
    #[test]
    fn spot_values() {
        assert_eq!(batcher_comparators(3), 19);
        assert_eq!(bnb_cost(3, 0).switches, 56);
        assert_eq!(bnb_delay(3).total_units(), 20);
        assert!((table2_poly::bnb(3) - 20.0).abs() < 1e-9);
    }
}
