//! Assembles the evaluation report backing EXPERIMENTS.md: correctness
//! checks, Table 1, Table 2, the ratio sweep (claim C4), and the ablations.

use std::fmt::Write as _;

use bnb_baselines::batcher::BatcherNetwork;
use bnb_baselines::benes::BenesNetwork;
use bnb_baselines::koppelman::KoppelmanModel;
use bnb_core::network::{BnbNetwork, RoutePolicy, WiringMode};
use bnb_topology::perm::Permutation;
use bnb_topology::record::{all_delivered, records_for_permutation};

use crate::ratio;
use crate::tables::{table1, table2, Table};

/// Claim C1/C5 support: routes `samples` random permutations of `2^m`
/// inputs through the BNB, Batcher, Benes and Koppelman networks and
/// reports delivery counts. Panics never; returns the summary text.
pub fn correctness_summary(m: usize, samples: usize, seed: u64) -> String {
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    let mut rng = StdRng::seed_from_u64(seed);
    let n = 1usize << m;
    let bnb = BnbNetwork::builder(m).data_width(32).build();
    let bat = BatcherNetwork::new(m);
    let ben = BenesNetwork::new(m);
    let kop = KoppelmanModel::new(m);
    let mut ok = [0usize; 4];
    for _ in 0..samples {
        let p = Permutation::random(n, &mut rng);
        let recs = records_for_permutation(&p);
        if bnb.route(&recs).map(|o| all_delivered(&o)).unwrap_or(false) {
            ok[0] += 1;
        }
        if bat.route(&recs).map(|o| all_delivered(&o)).unwrap_or(false) {
            ok[1] += 1;
        }
        if ben.route(&recs).map(|o| all_delivered(&o)).unwrap_or(false) {
            ok[2] += 1;
        }
        if kop.route(&recs).map(|o| all_delivered(&o)).unwrap_or(false) {
            ok[3] += 1;
        }
    }
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Correctness over {samples} random permutations, N = {n}:"
    );
    for (name, k) in [
        ("BNB", ok[0]),
        ("Batcher", ok[1]),
        ("Benes+Waksman", ok[2]),
        ("Koppelman", ok[3]),
    ] {
        let _ = writeln!(out, "  {name:<14} {k}/{samples} delivered");
    }
    out
}

/// The ratio sweep as a markdown table (claim C4).
pub fn ratio_table(ms: &[usize], w: usize) -> Table {
    let rows = ratio::sweep(ms, w)
        .into_iter()
        .map(|p| {
            vec![
                (1usize << p.m).to_string(),
                format!("{:.4}", p.hardware),
                format!("{:.4}", p.delay),
            ]
        })
        .collect();
    Table {
        title: format!("BNB/Batcher ratios (w = {w}); paper asymptotes: hardware 1/3, delay 2/3"),
        headers: vec!["N".into(), "hardware ratio".into(), "delay ratio".into()],
        rows,
    }
}

/// Ablation A2: delivery rate with the correct unshuffle wiring vs the
/// identity and shuffle wirings.
pub fn ablation_wiring_summary(m: usize, samples: usize, seed: u64) -> String {
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    let n = 1usize << m;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Ablation A2 — wiring variants, {samples} random permutations, N = {n}:"
    );
    for mode in [
        WiringMode::Unshuffle,
        WiringMode::Identity,
        WiringMode::Shuffle,
    ] {
        let net = BnbNetwork::builder(m)
            .data_width(32)
            .policy(RoutePolicy::Permissive)
            .wiring(mode)
            .build();
        let mut rng = StdRng::seed_from_u64(seed);
        let mut delivered = 0usize;
        for _ in 0..samples {
            let p = Permutation::random(n, &mut rng);
            let outp = net
                .route(&records_for_permutation(&p))
                .expect("structurally valid");
            if all_delivered(&outp) {
                delivered += 1;
            }
        }
        let _ = writeln!(out, "  {mode:?}: {delivered}/{samples} delivered");
    }
    out
}

/// Ablation A1: local arbiter sweeps vs global ranking trees — the
/// function-unit delay each scheme spends per network traversal.
pub fn ablation_local_vs_global(ms: &[usize]) -> Table {
    let rows = ms
        .iter()
        .map(|&m| {
            let local = bnb_core::delay::PropagationDelay::bnb_structural(m).fn_units;
            // Koppelman-style: per main stage, a ranking sweep of 2·log N
            // adder levels, each adder log N bits deep (bit-serial model).
            let global = (m as u64) * 2 * (m as u64) * (m as u64);
            vec![
                (1usize << m).to_string(),
                local.to_string(),
                global.to_string(),
            ]
        })
        .collect();
    Table {
        title: "Ablation A1 — function-unit delay: local arbiters (BNB) vs global rank trees"
            .into(),
        headers: vec![
            "N".into(),
            "BNB arbiter units".into(),
            "rank-tree units".into(),
        ],
        rows,
    }
}

/// Routing-activity profile: exchange rates of the classic workload
/// permutations on one network — evidence that the self-routing cost is
/// input-independent (same columns, same arbiters) while the switch
/// activity varies with the traffic.
pub fn activity_summary(m: usize) -> String {
    use std::fmt::Write as _;
    let n = 1usize << m;
    let net = BnbNetwork::builder(m).data_width(32).build();
    let mut out = String::new();
    let _ = writeln!(out, "Switch activity (exchange rate) by workload, N = {n}:");
    let workloads: Vec<(&str, Permutation)> = vec![
        ("identity", Permutation::identity(n)),
        (
            "reversal",
            Permutation::from_fn(n, |i| n - 1 - i).expect("bijection"),
        ),
        (
            "bit-reversal",
            Permutation::from_fn(n, |i| bnb_topology::bitops::bit_reverse(m, i))
                .expect("bijection"),
        ),
    ];
    for (name, p) in workloads {
        let (_, trace) = net
            .route_traced(&records_for_permutation(&p))
            .expect("valid traffic");
        let _ = writeln!(
            out,
            "  {name:<13} {:>5.1}% of switches exchange ({} columns)",
            trace.exchange_rate() * 100.0,
            trace.column_count()
        );
    }
    out
}

/// The full evaluation report.
pub fn full_report() -> String {
    let ms = [3usize, 4, 5, 6, 8, 10];
    let mut out = String::new();
    out.push_str("# BNB reproduction — evaluation report\n\n");
    out.push_str(&correctness_summary(6, 50, 7));
    out.push('\n');
    out.push_str(&table1(&ms, 8).to_markdown());
    out.push('\n');
    out.push_str(&table2(&ms).to_markdown());
    out.push('\n');
    out.push_str(&ratio_table(&[3, 5, 8, 10, 14, 20], 0).to_markdown());
    out.push('\n');
    out.push_str(&crate::tables::table1_w_sweep(&[3, 5, 6, 8], &[0, 16, 32]).to_markdown());
    out.push('\n');
    out.push_str(&crate::gate_tables::gate_level_table(&[2, 3, 4, 5], 0).to_markdown());
    out.push('\n');
    out.push_str(&ablation_local_vs_global(&ms).to_markdown());
    out.push('\n');
    out.push_str(&ablation_wiring_summary(5, 50, 11));
    out.push('\n');
    out.push_str(&crate::crossover::summary());
    out.push('\n');
    out.push_str(&activity_summary(5));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn correctness_summary_reports_full_delivery() {
        let s = correctness_summary(4, 10, 1);
        assert!(s.contains("BNB            10/10"));
        assert!(s.contains("Benes+Waksman  10/10"));
    }

    #[test]
    fn ratio_table_has_requested_rows() {
        let t = ratio_table(&[3, 6], 0);
        assert_eq!(t.rows.len(), 2);
        assert!(t.to_markdown().contains("| 8 |"));
    }

    #[test]
    fn wiring_ablation_shows_unshuffle_wins() {
        let s = ablation_wiring_summary(4, 20, 3);
        assert!(s.contains("Unshuffle: 20/20"));
        // Broken wirings deliver (almost) nothing.
        assert!(s.contains("Identity: 0/20") || s.contains("Identity: 1/20"));
    }

    #[test]
    fn local_vs_global_favors_bnb() {
        let t = ablation_local_vs_global(&[4, 8]);
        for row in &t.rows {
            let local: u64 = row[1].parse().unwrap();
            let global: u64 = row[2].parse().unwrap();
            assert!(local < global, "BNB local arbiters must be cheaper");
        }
    }

    #[test]
    fn full_report_contains_all_sections() {
        let r = full_report();
        assert!(r.contains("Table 1"));
        assert!(r.contains("Table 2"));
        assert!(r.contains("ratios"));
        assert!(r.contains("Ablation A1"));
        assert!(r.contains("Ablation A2"));
    }
}
