//! System-level throughput: the pipelined BNB fabric delivering streams of
//! permutation batches (the "high communication bandwidth" use case of
//! paper §1).
//!
//! Measures end-to-end batches/second for random traffic and the classic
//! parallel-processing alignment workloads.

use bnb_core::network::BnbNetwork;
use bnb_sim::pipeline::PipelinedFabric;
use bnb_sim::workload::{random_batches, Workload};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(77);
    let mut g = c.benchmark_group("pipeline_throughput");
    g.sample_size(20);
    g.warm_up_time(std::time::Duration::from_millis(500));
    g.measurement_time(std::time::Duration::from_secs(2));
    for m in [5usize, 7, 9] {
        let n = 1usize << m;
        let fabric = PipelinedFabric::new(BnbNetwork::builder(m).data_width(32).build());
        let batches = random_batches(n, 32, &mut rng);
        g.throughput(Throughput::Elements((32 * n) as u64));
        g.bench_with_input(
            BenchmarkId::new("random_stream", n),
            &batches,
            |b, batches| {
                b.iter(|| black_box(fabric.run(batches).expect("valid batches")));
            },
        );
    }
    // The alignment workload mix at N = 256.
    let fabric = PipelinedFabric::new(BnbNetwork::builder(8).data_width(32).build());
    let mix: Vec<_> = Workload::all_for(256)
        .iter()
        .map(|w| w.permutation(256))
        .collect();
    g.throughput(Throughput::Elements((mix.len() * 256) as u64));
    g.bench_with_input(
        BenchmarkId::new("alignment_mix", 256usize),
        &mix,
        |b, mix| {
            b.iter(|| black_box(fabric.run(mix).expect("valid batches")));
        },
    );
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
