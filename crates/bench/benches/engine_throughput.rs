//! Concurrent engine throughput: records/sec routed by `bnb-engine` as the
//! worker pool grows, against the single-threaded `Router` baseline.
//!
//! Each iteration routes a burst of pre-generated permutation batches
//! through a running engine (submit all, drain all), so the measurement
//! covers the full submit → shard → route → drain pipeline including queue
//! backpressure. Look for records/sec scaling with workers at large N
//! (m >= 7); at small N the per-batch coordination dominates and a single
//! worker wins — which is exactly the sharding trade-off the engine's
//! `ShardDepth::Auto` makes per batch, not per run.

use bnb_core::network::BnbNetwork;
use bnb_core::router::Router;
use bnb_engine::{Engine, EngineConfig, ShardDepth};
use bnb_topology::perm::Permutation;
use bnb_topology::record::{records_for_permutation, Record};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

/// Batches routed per iteration (one burst).
const BURST: usize = 8;

fn bench(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(1991);
    let mut g = c.benchmark_group("engine_throughput");
    g.sample_size(20);
    g.warm_up_time(std::time::Duration::from_millis(500));
    g.measurement_time(std::time::Duration::from_secs(2));
    for m in [7usize, 9, 11] {
        let n = 1usize << m;
        let net = BnbNetwork::builder(m).data_width(32).build();
        let batches: Vec<Vec<Record>> = (0..BURST)
            .map(|_| records_for_permutation(&Permutation::random(n, &mut rng)))
            .collect();
        g.throughput(Throughput::Elements((n * BURST) as u64));

        // Single-threaded baseline: the allocation-free Router. Its
        // default NoopObserver is the "instrumentation disabled" case —
        // compare against router_observed below to see the cost of a live
        // Counters sink (and confirm the noop path pays nothing).
        let mut router = Router::new(net);
        let mut buf = batches[0].clone();
        g.bench_with_input(
            BenchmarkId::new(format!("router_1thread/n{n}"), 1usize),
            &batches,
            |b, batches| {
                b.iter(|| {
                    for batch in batches {
                        buf.copy_from_slice(batch);
                        router.route_in_place(&mut buf).expect("routes");
                    }
                    black_box(buf[0])
                });
            },
        );

        // Same route with every column/sweep event landing in Counters.
        let counters = bnb_obs::Counters::new();
        let mut observed = Router::with_observer(net, &counters);
        g.bench_with_input(
            BenchmarkId::new(format!("router_observed/n{n}"), 1usize),
            &batches,
            |b, batches| {
                b.iter(|| {
                    for batch in batches {
                        buf.copy_from_slice(batch);
                        observed.route_in_place(&mut buf).expect("routes");
                    }
                    black_box(buf[0])
                });
            },
        );

        for workers in [1usize, 2, 4, 8] {
            let engine = Engine::new(
                net,
                EngineConfig {
                    workers,
                    queue_capacity: 4,
                    shard_depth: ShardDepth::Auto,
                },
            );
            g.bench_with_input(
                BenchmarkId::new(format!("engine/n{n}"), workers),
                &batches,
                |b, batches| {
                    engine.run(|h| {
                        b.iter(|| {
                            for batch in batches {
                                h.submit(batch.clone());
                            }
                            let mut last = None;
                            while let Some(routed) = h.drain() {
                                last = Some(routed.result.expect("routes"));
                            }
                            black_box(last)
                        });
                    });
                },
            );
        }
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
