//! **Table 2** — propagation delay of the three networks.
//!
//! Prints the regenerated table (paper polynomials next to structural
//! measurements), adds an independent gate-level critical-path measurement
//! of the full BNB netlist for small N, then benchmarks the delay-analysis
//! machinery.

use bnb_analysis::tables::table2;
use bnb_core::delay::PropagationDelay;
use bnb_gates::components::bnb_network;
use bnb_gates::delay::{critical_path, DelayModel};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn print_table() {
    println!("\n{}", table2(&[3, 4, 5, 6, 8, 10]).to_markdown());
    println!("gate-level critical path of the full BNB netlist (unit gate delays):");
    for m in 1..=5usize {
        let net = bnb_network(m, 0);
        let cp = critical_path(net.netlist(), &DelayModel::unit()).expect("has outputs");
        println!(
            "  N = {:>2}: {:>5.0} gate levels over {} logic gates",
            1usize << m,
            cp.delay,
            net.netlist().census().logic_gates()
        );
    }
    println!(
        "delay ratio BNB/Batcher at N=1024: {:.4} (paper leading-term claim: 2/3)\n",
        bnb_analysis::ratio::delay_ratio(10)
    );
}

fn bench(c: &mut Criterion) {
    print_table();
    let mut g = c.benchmark_group("table2_delay");
    g.sample_size(20);
    g.warm_up_time(std::time::Duration::from_millis(500));
    g.measurement_time(std::time::Duration::from_secs(2));
    for m in [8usize, 12, 16] {
        g.bench_with_input(
            BenchmarkId::new("bnb_structural", 1usize << m),
            &m,
            |b, &m| {
                b.iter(|| black_box(PropagationDelay::bnb_structural(m)));
            },
        );
    }
    for m in [3usize, 4, 5] {
        let net = bnb_network(m, 0);
        g.bench_with_input(
            BenchmarkId::new("gate_critical_path", 1usize << m),
            &m,
            |b, _| {
                b.iter(|| black_box(critical_path(net.netlist(), &DelayModel::unit())));
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
