//! **Table 1** — hardware complexities of Batcher, Koppelman and BNB.
//!
//! Prints the regenerated table (paper leading terms next to exact counts
//! from the constructed networks), then benchmarks the cost-accounting
//! paths themselves: structure enumeration vs closed form.

use bnb_analysis::tables::table1;
use bnb_baselines::batcher::BatcherNetwork;
use bnb_core::cost::HardwareCost;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn print_table() {
    println!("\n{}", table1(&[3, 4, 5, 6, 8, 10], 8).to_markdown());
    println!(
        "hardware ratio BNB/Batcher at N=1024, w=0: {:.4} (paper leading-term claim: 1/3)\n",
        bnb_analysis::ratio::hardware_ratio(10, 0)
    );
}

fn bench(c: &mut Criterion) {
    print_table();
    let mut g = c.benchmark_group("table1_hardware");
    g.sample_size(20);
    g.warm_up_time(std::time::Duration::from_millis(500));
    g.measurement_time(std::time::Duration::from_secs(2));
    for m in [6usize, 10, 14] {
        g.bench_with_input(BenchmarkId::new("bnb_counted", 1usize << m), &m, |b, &m| {
            b.iter(|| black_box(HardwareCost::bnb_counted(m, 8)));
        });
        g.bench_with_input(
            BenchmarkId::new("bnb_closed_form", 1usize << m),
            &m,
            |b, &m| {
                b.iter(|| black_box(HardwareCost::bnb_closed_form(m, 8)));
            },
        );
    }
    for m in [4usize, 6, 8] {
        g.bench_with_input(
            BenchmarkId::new("batcher_construct_and_count", 1usize << m),
            &m,
            |b, &m| {
                b.iter(|| black_box(BatcherNetwork::new(m).comparator_count()));
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
