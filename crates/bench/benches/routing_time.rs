//! **Claim C5** — self-routing vs global routing (paper §1): the Benes
//! network needs a global `O(N log N)` looping computation per permutation
//! before any data moves, while the BNB network's switches set themselves.
//!
//! This bench measures software routing time per permutation for the BNB
//! network, Batcher's sorter, the Koppelman stand-in (all self-routing) and
//! Benes+Waksman (global), across N = 16 … 4096. The *shape* to look for:
//! Benes pays an extra setup term that the self-routers do not.

use bnb_baselines::batcher::BatcherNetwork;
use bnb_baselines::benes::BenesNetwork;
use bnb_baselines::cellular::CellularArray;
use bnb_baselines::clos::ClosNetwork;
use bnb_baselines::koppelman::KoppelmanModel;
use bnb_core::network::BnbNetwork;
use bnb_core::router::Router;
use bnb_topology::perm::Permutation;
use bnb_topology::record::records_for_permutation;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(1991);
    let mut g = c.benchmark_group("routing_time");
    g.sample_size(20);
    g.warm_up_time(std::time::Duration::from_millis(500));
    g.measurement_time(std::time::Duration::from_secs(2));
    for m in [4usize, 6, 8, 10, 12] {
        let n = 1usize << m;
        let perm = Permutation::random(n, &mut rng);
        let recs = records_for_permutation(&perm);

        let bnb = BnbNetwork::builder(m).data_width(32).build();
        g.bench_with_input(BenchmarkId::new("bnb_self_route", n), &recs, |b, recs| {
            b.iter(|| black_box(bnb.route(recs).expect("routes")));
        });

        // The allocation-free router over the same network.
        let mut router = Router::new(bnb);
        let mut buf = recs.clone();
        g.bench_with_input(BenchmarkId::new("bnb_router_reuse", n), &recs, |b, recs| {
            b.iter(|| {
                buf.copy_from_slice(recs);
                router.route_in_place(&mut buf).expect("routes");
                black_box(buf[0])
            });
        });

        let bat = BatcherNetwork::new(m);
        g.bench_with_input(
            BenchmarkId::new("batcher_sort_route", n),
            &recs,
            |b, recs| {
                b.iter(|| black_box(bat.route(recs).expect("routes")));
            },
        );

        let kop = KoppelmanModel::new(m);
        g.bench_with_input(
            BenchmarkId::new("koppelman_rank_route", n),
            &recs,
            |b, recs| {
                b.iter(|| black_box(kop.route(recs).expect("routes")));
            },
        );

        let ben = BenesNetwork::new(m);
        g.bench_with_input(
            BenchmarkId::new("benes_global_route", n),
            &recs,
            |b, recs| {
                b.iter(|| black_box(ben.route(recs).expect("routes")));
            },
        );
        // The global setup alone (what self-routing eliminates):
        g.bench_with_input(
            BenchmarkId::new("benes_looping_only", n),
            &perm,
            |b, perm| {
                b.iter(|| black_box(ben.route_permutation(perm).expect("routes")));
            },
        );

        // The O(N^2) designs ruled out in §1, for scale.
        if m <= 10 {
            let cell = CellularArray::new(n);
            g.bench_with_input(BenchmarkId::new("cellular_array", n), &recs, |b, recs| {
                b.iter(|| black_box(cell.route(recs).expect("routes")));
            });
        }
        let clos = ClosNetwork::new(1 << (m / 2), 1 << (m - m / 2)).expect("power of two");
        g.bench_with_input(
            BenchmarkId::new("clos_edge_coloring", n),
            &recs,
            |b, recs| {
                b.iter(|| black_box(clos.route(recs).expect("routes")));
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
