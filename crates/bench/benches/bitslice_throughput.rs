//! Scalar vs bit-sliced bit-sorter throughput: the paper's one-bit control
//! logic vectorizes across 64 instances per machine word, so the 64-lane
//! BSN should approach a ~64× per-instance speedup over the scalar path.

use bnb_core::bitslice::BitSorter64;
use bnb_core::bsn::BitSorter;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(9);
    let mut g = c.benchmark_group("bitslice_throughput");
    g.sample_size(20);
    g.warm_up_time(std::time::Duration::from_millis(500));
    g.measurement_time(std::time::Duration::from_secs(2));
    for k in [4usize, 7, 10] {
        let n = 1usize << k;
        let scalar = BitSorter::new(k);
        let vector = BitSorter64::new(k);
        let bits: Vec<bool> = (0..n).map(|j| j % 2 == 0).collect();
        let lanes: Vec<u64> = (0..n).map(|_| rng.random::<u64>()).collect();

        g.throughput(Throughput::Elements(1));
        g.bench_with_input(
            BenchmarkId::new("scalar_1_instance", n),
            &bits,
            |b, bits| {
                b.iter(|| black_box(scalar.route_permissive(bits).expect("width ok")));
            },
        );
        g.throughput(Throughput::Elements(64));
        g.bench_with_input(
            BenchmarkId::new("bitsliced_64_instances", n),
            &lanes,
            |b, lanes| {
                b.iter(|| black_box(vector.route(lanes).expect("width ok")));
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
