//! **Figures 1–5** — regenerates the paper's structural figures from the
//! constructed objects (printed once), then benchmarks structure
//! construction and rendering: GBN topology, splitter/BSN netlist
//! generation, and the full gate-level BNB network build.

use bnb_core::network::BnbNetwork;
use bnb_core::render::{render_network, render_profile, render_splitter};
use bnb_gates::components::{bit_sorter, bnb_network};
use bnb_gates::netlist::{Net, Netlist};
use bnb_topology::gbn::Gbn;
use bnb_topology::render::{render_gbn_ascii, render_gbn_dot};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn print_figures() {
    println!("\n--- Fig. 1: B(3, SB) ---");
    print!("{}", render_gbn_ascii(&Gbn::new(3)));
    println!("--- Fig. 2: BNB slice structure ---");
    print!(
        "{}",
        render_network(&BnbNetwork::builder(3).data_width(0).build())
    );
    println!("--- Fig. 3: profile ---");
    print!("{}", render_profile(3));
    println!("--- Fig. 4: splitter ---");
    print!("{}", render_splitter(3));
    println!("--- Fig. 5 lives in the gates crate; see example figure_gallery ---\n");
}

fn bench(c: &mut Criterion) {
    print_figures();
    let mut g = c.benchmark_group("figure_structures");
    g.sample_size(20);
    g.warm_up_time(std::time::Duration::from_millis(500));
    g.measurement_time(std::time::Duration::from_secs(2));
    for m in [3usize, 6, 9] {
        g.bench_with_input(
            BenchmarkId::new("gbn_ascii_render", 1usize << m),
            &m,
            |b, &m| {
                let gbn = Gbn::new(m);
                b.iter(|| black_box(render_gbn_ascii(&gbn)));
            },
        );
        g.bench_with_input(
            BenchmarkId::new("gbn_dot_render", 1usize << m),
            &m,
            |b, &m| {
                let gbn = Gbn::new(m);
                b.iter(|| black_box(render_gbn_dot(&gbn)));
            },
        );
    }
    for m in [3usize, 4, 5] {
        g.bench_with_input(
            BenchmarkId::new("bnb_netlist_build", 1usize << m),
            &m,
            |b, &m| {
                b.iter(|| black_box(bnb_network(m, 0)));
            },
        );
        g.bench_with_input(
            BenchmarkId::new("bsn_netlist_build", 1usize << m),
            &m,
            |b, &m| {
                b.iter(|| {
                    let mut nl = Netlist::new();
                    let ins: Vec<Net> = (0..(1usize << m))
                        .map(|j| nl.input(format!("s{j}")))
                        .collect();
                    black_box(bit_sorter(&mut nl, &ins))
                });
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
