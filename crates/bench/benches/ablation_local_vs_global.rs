//! **Ablation A1** — localized bit information (the paper's key idea, §5.3)
//! vs global information.
//!
//! The BNB splitter decides every switch from a 1-bit XOR tree (one gate
//! per node); the Koppelman-style alternative ranks records with trees of
//! `log N`-bit adders. This bench prints the modelled function-unit delays
//! side by side and measures the software cost of one splitter decision vs
//! one ranking pass at equal widths.

use bnb_analysis::report::ablation_local_vs_global;
use bnb_baselines::koppelman::KoppelmanModel;
use bnb_core::splitter;
use bnb_topology::perm::Permutation;
use bnb_topology::record::records_for_permutation;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    println!(
        "\n{}",
        ablation_local_vs_global(&[3, 4, 5, 6, 8, 10]).to_markdown()
    );

    let mut rng = StdRng::seed_from_u64(42);
    let mut g = c.benchmark_group("ablation_local_vs_global");
    g.sample_size(20);
    g.warm_up_time(std::time::Duration::from_millis(500));
    g.measurement_time(std::time::Duration::from_secs(2));
    for m in [6usize, 8, 10] {
        let n = 1usize << m;
        let p = Permutation::random(n, &mut rng);
        // Local: one full-width splitter decision (arbiter sweep + XORs).
        let bits: Vec<bool> = (0..n).map(|i| p.apply(i) % 2 == 1).collect();
        g.bench_with_input(
            BenchmarkId::new("local_splitter_controls", n),
            &bits,
            |b, bits| {
                b.iter(|| black_box(splitter::controls(bits)));
            },
        );
        // Global: one full ranking pass over the same width.
        let recs = records_for_permutation(&p);
        let kop = KoppelmanModel::new(m);
        g.bench_with_input(
            BenchmarkId::new("global_rank_route", n),
            &recs,
            |b, recs| {
                b.iter(|| black_box(kop.route_counted(recs).expect("routes")));
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
