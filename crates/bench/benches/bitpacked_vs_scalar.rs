//! Head-to-head comparison of the two stage-span routing kernels: the
//! bit-packed word-parallel fast path (`route_span`, taken whenever no
//! observer is attached) against the scalar sweep it replaced
//! (`route_span_scalar`, retained as the correctness oracle).
//!
//! Acceptance bar for the packed kernel: ≥ 2× over scalar at m ≥ 10.
//! The `bnb bench` CLI subcommand measures the same pair and writes the
//! checked-in `BENCH_routing.json` trajectory; this bench is the
//! statistically careful version of that comparison.

use bnb_core::network::BnbNetwork;
use bnb_core::stages::{route_span, route_span_scalar, StageScratch};
use bnb_topology::perm::Permutation;
use bnb_topology::record::{records_for_permutation, Record};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(1991);
    let mut g = c.benchmark_group("bitpacked_vs_scalar");
    g.sample_size(20);
    g.warm_up_time(std::time::Duration::from_millis(500));
    g.measurement_time(std::time::Duration::from_secs(2));
    for m in [4usize, 6, 8, 10, 12] {
        let n = 1usize << m;
        let net = BnbNetwork::builder(m).data_width(32).build();
        let recs = records_for_permutation(&Permutation::random(n, &mut rng));
        let mut scratch = StageScratch::with_capacity(n);
        let mut buf: Vec<Record> = recs.clone();
        g.throughput(Throughput::Elements(n as u64));

        g.bench_with_input(BenchmarkId::new("packed", n), &recs, |b, recs| {
            b.iter(|| {
                buf.copy_from_slice(recs);
                route_span(&net, &mut buf, 0, 0..m, &mut scratch).expect("routes");
                black_box(buf[0])
            });
        });

        g.bench_with_input(BenchmarkId::new("scalar", n), &recs, |b, recs| {
            b.iter(|| {
                buf.copy_from_slice(recs);
                route_span_scalar(&net, &mut buf, 0, 0..m, &mut scratch).expect("routes");
                black_box(buf[0])
            });
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
