//! Head-to-head comparison of the routing kernels: the frame-batched
//! SoA kernel ([`route_batch`] over a 64-frame [`FrameBatch`]), the
//! single-frame bit-packed word-parallel path ([`Kernel::Packed`]), and
//! the scalar sweep they are both held against ([`Kernel::Scalar`], the
//! correctness oracle).
//!
//! Acceptance bars: packed ≥ 2× over scalar at m ≥ 10; batched ≥ 10×
//! over scalar at m ≥ 10 with near-flat cells/s across m. The
//! `bnb bench` CLI subcommand measures the same kernels and writes the
//! checked-in `BENCH_routing.json` trajectory; this bench is the
//! statistically careful version of that comparison.

use bnb_core::batch::{route_batch, BatchOutcome, FrameBatch};
use bnb_core::network::BnbNetwork;
use bnb_core::stages::{Kernel, RouteSpan, StageScratch};
use bnb_topology::perm::Permutation;
use bnb_topology::record::{records_for_permutation, Record};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

const BATCH_FRAMES: usize = 64;

fn bench(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(1991);
    let mut g = c.benchmark_group("bitpacked_vs_scalar");
    g.sample_size(20);
    g.warm_up_time(std::time::Duration::from_millis(500));
    g.measurement_time(std::time::Duration::from_secs(2));
    for m in [4usize, 6, 8, 10, 12] {
        let n = 1usize << m;
        let net = BnbNetwork::builder(m).data_width(32).build();
        let recs = records_for_permutation(&Permutation::random(n, &mut rng));
        let mut scratch = StageScratch::with_capacity(n);
        let mut buf: Vec<Record> = recs.clone();
        g.throughput(Throughput::Elements(n as u64));

        let packed = RouteSpan::new().kernel(Kernel::Packed);
        g.bench_with_input(BenchmarkId::new("packed", n), &recs, |b, recs| {
            b.iter(|| {
                buf.copy_from_slice(recs);
                packed
                    .run(&net, &mut buf, 0, 0..m, &mut scratch)
                    .expect("routes");
                black_box(buf[0])
            });
        });

        let scalar = RouteSpan::new().kernel(Kernel::Scalar);
        g.bench_with_input(BenchmarkId::new("scalar", n), &recs, |b, recs| {
            b.iter(|| {
                buf.copy_from_slice(recs);
                scalar
                    .run(&net, &mut buf, 0, 0..m, &mut scratch)
                    .expect("routes");
                black_box(buf[0])
            });
        });

        // Batched: 64 distinct frames per invocation, throughput counted
        // per cell so the three series compare directly.
        let batch_frames: Vec<Vec<Record>> = (0..BATCH_FRAMES)
            .map(|_| records_for_permutation(&Permutation::random(n, &mut rng)))
            .collect();
        let opts = RouteSpan::new();
        let mut batch = FrameBatch::with_capacity(n, BATCH_FRAMES);
        let mut outcome = BatchOutcome::new();
        g.throughput(Throughput::Elements((n * BATCH_FRAMES) as u64));
        g.bench_with_input(BenchmarkId::new("batched", n), &batch_frames, |b, fr| {
            b.iter(|| {
                batch.clear();
                for frame in fr {
                    batch.push_frame(frame);
                }
                route_batch(&net, &mut batch, &opts, &mut scratch, &mut outcome);
                assert!(outcome.all_ok());
                black_box(batch.len())
            });
        });
        g.throughput(Throughput::Elements(n as u64));
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
