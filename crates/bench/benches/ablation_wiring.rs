//! **Ablation A2** — the GBN unshuffle wiring is load-bearing.
//!
//! Replacing the paper's `2^k`-unshuffle inter-stage wiring with identity
//! or shuffle wiring leaves the hardware cost identical but destroys the
//! radix-sort invariant. The bench prints delivery rates per wiring and
//! times the (identical-cost) route under each wiring to show the delay is
//! unchanged — only correctness differs.

use bnb_analysis::report::ablation_wiring_summary;
use bnb_core::network::{BnbNetwork, RoutePolicy, WiringMode};
use bnb_topology::perm::Permutation;
use bnb_topology::record::records_for_permutation;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    println!("\n{}", ablation_wiring_summary(6, 200, 11));

    let mut rng = StdRng::seed_from_u64(6);
    let n = 256usize;
    let perm = Permutation::random(n, &mut rng);
    let recs = records_for_permutation(&perm);
    let mut g = c.benchmark_group("ablation_wiring");
    g.sample_size(20);
    g.warm_up_time(std::time::Duration::from_millis(500));
    g.measurement_time(std::time::Duration::from_secs(2));
    for mode in [
        WiringMode::Unshuffle,
        WiringMode::Identity,
        WiringMode::Shuffle,
    ] {
        let net = BnbNetwork::builder(8)
            .data_width(32)
            .policy(RoutePolicy::Permissive)
            .wiring(mode)
            .build();
        g.bench_with_input(
            BenchmarkId::new(format!("{mode:?}"), n),
            &recs,
            |b, recs| {
                b.iter(|| black_box(net.route(recs).expect("structurally valid")));
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
