//! Load–latency curves of the input-queued switch over the BNB fabric —
//! the system-level "figure" the paper's §1 bandwidth motivation implies.
//!
//! Prints the measured curves (reproducing the classic ≈0.59 FIFO
//! head-of-line saturation and VOQ's superiority), then benchmarks the
//! per-round cost of the scheduler + fabric under light and saturated
//! load.

use bnb_core::network::BnbNetwork;
use bnb_sim::loadsweep::{saturation_throughput, sweep};
use bnb_sim::scheduler::{QueueDiscipline, VoqSwitch};
use bnb_topology::record::Record;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::hint::black_box;

fn print_curves() {
    let mut rng = StdRng::seed_from_u64(42);
    let loads = [0.1, 0.3, 0.5, 0.6, 0.7, 0.9];
    for d in [QueueDiscipline::Fifo, QueueDiscipline::Voq] {
        println!("\n{d:?} (N = 16, 2000 rounds): offered -> delivered (mean delay)");
        for p in sweep(4, d, &loads, 2000, &mut rng).expect("valid traffic") {
            println!(
                "  {:.2} -> {:.3} ({:.1} rounds)",
                p.offered, p.delivered, p.mean_delay
            );
        }
        let sat = saturation_throughput(4, d, 2000, &mut rng).expect("valid traffic");
        println!("  saturation throughput: {sat:.3}");
    }
    println!();
}

fn bench(c: &mut Criterion) {
    print_curves();
    let mut g = c.benchmark_group("load_latency");
    g.sample_size(20);
    g.warm_up_time(std::time::Duration::from_millis(500));
    g.measurement_time(std::time::Duration::from_secs(2));
    for (label, load) in [("light", 0.2f64), ("saturated", 1.0)] {
        for d in [QueueDiscipline::Fifo, QueueDiscipline::Voq] {
            g.bench_with_input(
                BenchmarkId::new(format!("{d:?}_{label}"), 16usize),
                &load,
                |b, &load| {
                    let mut rng = StdRng::seed_from_u64(7);
                    let mut sw = VoqSwitch::new(BnbNetwork::new(4), d);
                    b.iter(|| {
                        for input in 0..16 {
                            if rng.random_bool(load) {
                                sw.offer(input, Record::new(rng.random_range(0..16), 0))
                                    .expect("valid");
                            }
                        }
                        black_box(sw.step().expect("fabric ok"))
                    });
                },
            );
        }
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
