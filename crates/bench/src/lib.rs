//! Benchmark-only crate: see the `benches/` directory. Each bench prints
//! the table or figure it regenerates before timing the underlying
//! operations, so `cargo bench` output doubles as the paper's evaluation.
