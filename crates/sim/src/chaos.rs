//! Randomized fault-schedule (chaos) campaigns over the live-repair
//! engine.
//!
//! A [`ChaosSchedule`] is a deterministic, serializable script of fault
//! events — inject, flap, clear — generated from one seed and replayed
//! against [`bnb_engine::Engine::run_scrubbed`] while permutation
//! traffic flows. The campaign asserts the repair loop's contract end to
//! end:
//!
//! - **zero silent misdeliveries** — every delivered frame is compared
//!   record-for-record against the healthy sequential route (Theorem 3's
//!   detect-or-route-correctly guarantee, now under concurrent fault
//!   churn);
//! - **a balanced ledger** — every submitted frame drains as exactly one
//!   of delivered or quarantined;
//! - **capacity recovery** — after the schedule's final clear, the
//!   scrubber restores every shard to service.
//!
//! The same seed regenerates the same schedule, the same probe stream,
//! and the same traffic, so any failure in a CI chaos soak is
//! reproducible from the seed printed in its report.

use bnb_core::fault::{FaultKind, FaultSite};
use bnb_core::network::BnbNetwork;
use bnb_engine::{Engine, EngineConfig, EngineError, LiveFaultPlan, RetryPolicy, ShardDepth};
use bnb_obs::Observer;
use bnb_topology::perm::Permutation;
use bnb_topology::record::records_for_permutation;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use serde::{Deserialize, Serialize};
use std::time::Duration;

use crate::faults::random_hardware_fault;

/// One scripted fault event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ChaosAction {
    /// Inject one hardware fault into a fabric shard's live map.
    Inject {
        /// Fabric shard to damage.
        shard: usize,
        /// Where the fault sits.
        site: FaultSite,
        /// What breaks.
        kind: FaultKind,
    },
    /// Clear every fault on a fabric shard (a transient passing).
    Clear {
        /// Fabric shard to heal.
        shard: usize,
    },
}

/// A fault event pinned to a point in the traffic stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChaosOp {
    /// Applied just before frame `at_frame` is submitted.
    pub at_frame: usize,
    /// What happens.
    pub action: ChaosAction,
}

/// A deterministic, serializable chaos script: `ops` fault events spread
/// over `frames` frames of permutation traffic on `shards` fabric
/// shards of an `N = 2^m` network.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChaosSchedule {
    /// Network size exponent.
    pub m: usize,
    /// Fabric shards in the live plan.
    pub shards: usize,
    /// Traffic frames routed while the script runs.
    pub frames: usize,
    /// The generating seed (traffic and scrubber probes reuse it).
    pub seed: u64,
    /// The script, sorted by [`ChaosOp::at_frame`].
    pub ops: Vec<ChaosOp>,
}

impl ChaosSchedule {
    /// Generates a random schedule: `ops` events at random points in the
    /// stream, each either an inject of a random in-bounds hardware
    /// fault on a random shard or a clear of a random shard (biased 2:1
    /// towards injects so faults actually accumulate and flap). Same
    /// arguments, same schedule.
    pub fn generate(m: usize, shards: usize, frames: usize, ops: usize, seed: u64) -> Self {
        let shards = shards.max(1);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut script: Vec<ChaosOp> = (0..ops)
            .map(|_| {
                let at_frame = rng.random_range(0..frames.max(1));
                let shard = rng.random_range(0..shards);
                let action = if rng.random_range(0..3) < 2 {
                    let (site, kind) = random_hardware_fault(m, &mut rng);
                    ChaosAction::Inject { shard, site, kind }
                } else {
                    ChaosAction::Clear { shard }
                };
                ChaosOp { at_frame, action }
            })
            .collect();
        script.sort_by_key(|op| op.at_frame);
        ChaosSchedule {
            m,
            shards,
            frames,
            seed,
            ops: script,
        }
    }

    /// Fault events that damage a shard.
    pub fn injects(&self) -> usize {
        self.ops
            .iter()
            .filter(|op| matches!(op.action, ChaosAction::Inject { .. }))
            .count()
    }

    /// Fault events that heal a shard.
    pub fn clears(&self) -> usize {
        self.ops.len() - self.injects()
    }
}

/// What one chaos run did, serializable for CI artifacts.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChaosReport {
    /// The schedule's seed (reproduces the whole run).
    pub seed: u64,
    /// Traffic frames submitted (scheduled frames plus recovery traffic).
    pub frames_submitted: usize,
    /// Frames delivered, each verified record-for-record against the
    /// healthy sequential route.
    pub frames_delivered: usize,
    /// Frames that exhausted the retry budget and drained as
    /// [`EngineError::Quarantined`] — explicit failures, never silent.
    pub frames_quarantined: usize,
    /// Delivered frames that did NOT match the healthy route — the
    /// campaign's core invariant is that this is always zero.
    pub frames_misdelivered: usize,
    /// Inject events applied.
    pub faults_injected: usize,
    /// Clear events applied (plus the final full clear).
    pub faults_cleared: usize,
    /// Shards in service when the run ended.
    pub healthy_shards_at_end: usize,
    /// Total shards.
    pub shards: usize,
    /// Whether every shard returned to service after the final clear.
    pub recovered: bool,
}

impl ChaosReport {
    /// The run's ledger: every submitted frame drained exactly once, as
    /// a delivery or an explicit quarantine.
    pub fn accounted(&self) -> bool {
        self.frames_submitted == self.frames_delivered + self.frames_quarantined
    }

    /// The whole contract: balanced ledger, zero silent misdeliveries,
    /// and full capacity recovered.
    pub fn holds(&self) -> bool {
        self.accounted() && self.frames_misdelivered == 0 && self.recovered
    }
}

/// Extra lock-step frames allowed for the scrubber to restore every
/// shard after the final clear before the campaign declares recovery
/// failed.
const RECOVERY_FRAME_BUDGET: usize = 10_000;

/// Replays one [`ChaosSchedule`] against a scrubbed engine under
/// lock-step permutation traffic and verifies the repair contract.
///
/// Faults are applied to the shared [`LiveFaultPlan`] at their scheduled
/// frame while the engine routes; every delivered frame is checked
/// against the healthy sequential route; after the script ends, every
/// shard is cleared and traffic continues until the scrubber restores
/// full capacity (bounded by a generous frame budget). Events flow to
/// `observer`.
pub fn chaos_engine_campaign<O: Observer>(
    schedule: &ChaosSchedule,
    workers: usize,
    observer: &O,
) -> ChaosReport {
    let n = 1usize << schedule.m;
    let net = BnbNetwork::builder(schedule.m).data_width(32).build();
    let engine = Engine::with_observer(
        net,
        EngineConfig {
            workers: workers.max(1),
            queue_capacity: 4,
            shard_depth: ShardDepth::Auto,
        },
        observer,
    );
    let plan = LiveFaultPlan::healthy(schedule.shards)
        .with_probe_seed(schedule.seed)
        .with_probe_perms(4)
        .with_restore_after(2)
        .with_scrub_interval(Duration::from_micros(20))
        .with_retry(RetryPolicy {
            max_attempts: (schedule.shards + 1).max(2),
            backoff: Duration::ZERO,
        });
    let mut rng = StdRng::seed_from_u64(schedule.seed.wrapping_add(1));
    let mut report = ChaosReport {
        seed: schedule.seed,
        frames_submitted: 0,
        frames_delivered: 0,
        frames_quarantined: 0,
        frames_misdelivered: 0,
        faults_injected: 0,
        faults_cleared: 0,
        healthy_shards_at_end: 0,
        shards: schedule.shards,
        recovered: false,
    };
    engine.run_scrubbed(&plan, |h| {
        let mut next_op = 0usize;
        let route_one = |report: &mut ChaosReport, rng: &mut StdRng| {
            let lines = records_for_permutation(&Permutation::random(n, rng));
            let expected = net.route(&lines).expect("valid permutation");
            report.frames_submitted += 1;
            h.submit(lines);
            let routed = h.drain().expect("lock-step drain");
            match routed.result {
                Ok(out) => {
                    report.frames_delivered += 1;
                    if out != expected {
                        report.frames_misdelivered += 1;
                    }
                }
                Err(EngineError::Quarantined { .. }) => report.frames_quarantined += 1,
                Err(e) => panic!("valid permutation cannot fail validation: {e}"),
            }
        };
        for frame in 0..schedule.frames {
            while next_op < schedule.ops.len() && schedule.ops[next_op].at_frame <= frame {
                match schedule.ops[next_op].action {
                    ChaosAction::Inject { shard, site, kind } => {
                        plan.inject(shard, site, kind);
                        report.faults_injected += 1;
                    }
                    ChaosAction::Clear { shard } => {
                        plan.clear(shard);
                        report.faults_cleared += 1;
                    }
                }
                next_op += 1;
            }
            route_one(&mut report, &mut rng);
        }
        // Final clear: every transient passes; traffic continues until
        // the scrubber restores every shard (or the budget runs out).
        for shard in 0..schedule.shards {
            plan.clear(shard);
            report.faults_cleared += 1;
        }
        for _ in 0..RECOVERY_FRAME_BUDGET {
            if plan.healthy_shards() == schedule.shards {
                break;
            }
            route_one(&mut report, &mut rng);
        }
        report.healthy_shards_at_end = plan.healthy_shards();
        report.recovered = report.healthy_shards_at_end == schedule.shards;
    });
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use bnb_obs::NoopObserver;

    #[test]
    fn schedules_are_deterministic_and_sorted() {
        let a = ChaosSchedule::generate(3, 2, 50, 12, 99);
        let b = ChaosSchedule::generate(3, 2, 50, 12, 99);
        assert_eq!(a, b, "same seed, same schedule");
        assert_eq!(a.ops.len(), 12);
        assert!(a.ops.windows(2).all(|w| w[0].at_frame <= w[1].at_frame));
        assert_eq!(a.injects() + a.clears(), 12);
        let c = ChaosSchedule::generate(3, 2, 50, 12, 100);
        assert_ne!(a, c, "different seed, different schedule");
    }

    #[test]
    fn schedules_serde_round_trip() {
        let s = ChaosSchedule::generate(4, 3, 40, 10, 7);
        let json = serde_json::to_string(&s).unwrap();
        let back: ChaosSchedule = serde_json::from_str(&json).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn injected_faults_are_in_bounds() {
        let s = ChaosSchedule::generate(3, 2, 100, 40, 5);
        for op in &s.ops {
            if let ChaosAction::Inject { shard, site, kind } = op.action {
                assert!(shard < 2);
                let fault = bnb_core::fault::HardwareFault { site, kind };
                assert!(fault.in_bounds(3), "out-of-bounds inject: {fault:?}");
            }
        }
    }

    #[test]
    fn chaos_campaign_contract_holds_on_a_small_run() {
        let schedule = ChaosSchedule::generate(3, 2, 60, 8, 41);
        let report = chaos_engine_campaign(&schedule, 2, &NoopObserver);
        assert!(report.accounted(), "ledger out of balance: {report:?}");
        assert_eq!(report.frames_misdelivered, 0, "{report:?}");
        assert!(report.recovered, "capacity not restored: {report:?}");
        assert!(report.holds());
        assert!(report.frames_submitted >= 60);
        assert_eq!(report.faults_injected, schedule.injects());
        assert_eq!(
            report.faults_cleared,
            schedule.clears() + schedule.shards,
            "script clears plus the final full clear"
        );
    }

    #[test]
    fn healthy_schedule_is_pure_delivery() {
        let schedule = ChaosSchedule {
            m: 3,
            shards: 2,
            frames: 20,
            seed: 9,
            ops: Vec::new(),
        };
        let report = chaos_engine_campaign(&schedule, 1, &NoopObserver);
        assert_eq!(report.frames_delivered, 20);
        assert_eq!(report.frames_quarantined, 0);
        assert!(report.holds());
    }
}
