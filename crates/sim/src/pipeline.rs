//! Registered-stage timing model of the BNB fabric.
//!
//! The combinational network of `bnb-core` computes *where* records go; this
//! module models *when*. With a register after every switch column, the
//! fabric is a linear pipeline of `m(m+1)/2` stages (paper eq. (7)): a new
//! permutation batch can enter every cycle, each in-flight batch advances
//! one column per cycle, and a batch's latency is exactly the column count.
//!
//! The simulator verifies functional correctness of every completed batch
//! (the routed outputs must match the offered permutation) while measuring
//! fill/drain behaviour and steady-state throughput.

use bnb_core::error::RouteError;
use bnb_core::network::BnbNetwork;
use bnb_topology::perm::Permutation;
use bnb_topology::record::{all_delivered, records_for_permutation};
use serde::{Deserialize, Serialize};

/// Aggregate results of a pipelined run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PipelineStats {
    /// Pipeline depth in cycles (= switch columns).
    pub depth: usize,
    /// Batches offered.
    pub offered: usize,
    /// Batches completed and verified.
    pub completed: usize,
    /// Total cycles from first injection to last drain.
    pub cycles: usize,
    /// Latency of each batch in cycles (constant for a linear pipeline).
    pub latency: usize,
    /// Steady-state throughput in batches per cycle.
    pub throughput: f64,
    /// Total records delivered.
    pub records_delivered: usize,
}

/// A BNB fabric with a register after every switch column.
///
/// # Example
///
/// ```
/// use bnb_core::network::BnbNetwork;
/// use bnb_sim::pipeline::PipelinedFabric;
/// use bnb_sim::workload::Workload;
///
/// let fabric = PipelinedFabric::new(BnbNetwork::builder(4).data_width(16).build());
/// let batches: Vec<_> = Workload::all_for(16)
///     .iter()
///     .map(|w| w.permutation(16))
///     .collect();
/// let stats = fabric.run(&batches)?;
/// assert_eq!(stats.completed, batches.len());
/// assert_eq!(stats.latency, 4 * 5 / 2);
/// # Ok::<(), bnb_core::RouteError>(())
/// ```
#[derive(Debug, Clone)]
pub struct PipelinedFabric {
    network: BnbNetwork,
}

impl PipelinedFabric {
    /// Wraps a network in the pipeline timing model.
    pub fn new(network: BnbNetwork) -> Self {
        PipelinedFabric { network }
    }

    /// The wrapped network.
    pub fn network(&self) -> &BnbNetwork {
        &self.network
    }

    /// Pipeline depth in cycles: one per switch column, `m(m+1)/2`.
    pub fn depth(&self) -> usize {
        let m = self.network.m();
        m * (m + 1) / 2
    }

    /// Streams `batches` through the fabric, one injection per cycle, and
    /// returns timing statistics. Every completed batch is functionally
    /// verified against its offered permutation.
    ///
    /// # Errors
    ///
    /// Propagates any [`RouteError`] from the underlying network (e.g. a
    /// batch that is not a permutation under the strict policy).
    pub fn run(&self, batches: &[Permutation]) -> Result<PipelineStats, RouteError> {
        let depth = self.depth();
        // Functional routing is precomputed per batch (the combinational
        // network is deterministic); the pipeline tracks occupancy/timing.
        let mut traces = Vec::with_capacity(batches.len());
        for p in batches {
            let records = records_for_permutation(p);
            let (out, trace) = self.network.route_traced(&records)?;
            debug_assert!(all_delivered(&out));
            traces.push(trace);
        }
        // Occupancy model: stage s holds the batch injected at cycle t−s−1.
        // With one injection per cycle and no stalls, batch b completes at
        // cycle b + depth.
        let offered = batches.len();
        let mut completed = 0usize;
        let mut records_delivered = 0usize;
        let mut cycle = 0usize;
        while completed < offered {
            // A batch completes once it has traversed all `depth` columns.
            if cycle >= depth && cycle - depth < offered {
                let b = cycle - depth;
                let outputs = traces[b].outputs();
                assert!(
                    all_delivered(outputs),
                    "batch {b} failed functional verification"
                );
                completed += 1;
                records_delivered += outputs.len();
            }
            cycle += 1;
        }
        let cycles = cycle;
        let throughput = if cycles == 0 {
            0.0
        } else {
            offered as f64 / cycles as f64
        };
        Ok(PipelineStats {
            depth,
            offered,
            completed,
            cycles,
            latency: depth,
            throughput,
            records_delivered,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::{random_batches, Workload};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn fabric(m: usize) -> PipelinedFabric {
        PipelinedFabric::new(BnbNetwork::builder(m).data_width(16).build())
    }

    #[test]
    fn depth_matches_eq7() {
        for m in 1..=8 {
            assert_eq!(fabric(m).depth(), m * (m + 1) / 2);
        }
    }

    #[test]
    fn single_batch_latency_equals_depth() {
        let f = fabric(3);
        let stats = f.run(&[Workload::BitReversal.permutation(8)]).unwrap();
        assert_eq!(stats.latency, 6);
        assert_eq!(stats.cycles, 7); // inject at 0, drain at cycle 6
        assert_eq!(stats.completed, 1);
        assert_eq!(stats.records_delivered, 8);
    }

    #[test]
    fn throughput_approaches_one_batch_per_cycle() {
        let mut rng = StdRng::seed_from_u64(42);
        let f = fabric(4);
        let batches = random_batches(16, 200, &mut rng);
        let stats = f.run(&batches).unwrap();
        assert_eq!(stats.completed, 200);
        // 200 batches over 200 + depth cycles.
        assert_eq!(stats.cycles, 200 + f.depth());
        assert!(stats.throughput > 0.9, "throughput = {}", stats.throughput);
    }

    #[test]
    fn all_classic_workloads_stream_through() {
        let f = fabric(4);
        let batches: Vec<Permutation> = Workload::all_for(16)
            .iter()
            .map(|w| w.permutation(16))
            .collect();
        let stats = f.run(&batches).unwrap();
        assert_eq!(stats.completed, batches.len());
    }

    #[test]
    fn empty_offer_completes_immediately() {
        let f = fabric(2);
        let stats = f.run(&[]).unwrap();
        assert_eq!(stats.completed, 0);
        assert_eq!(stats.cycles, 0);
    }

    #[test]
    fn invalid_batch_propagates_route_error() {
        let f = fabric(5);
        // Wrong-width permutation.
        let p = Permutation::identity(8);
        assert!(matches!(f.run(&[p]), Err(RouteError::WidthMismatch { .. })));
    }
}
