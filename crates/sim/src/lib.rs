//! Cycle-level simulation substrate for the BNB fabric.
//!
//! The paper motivates permutation networks as bandwidth providers for
//! switching systems and parallel processors (§1, refs \[1, 2\]). This
//! crate turns the combinational router of `bnb-core` into a *system*:
//!
//! - [`workload`] — the classic parallel-processing permutation workloads
//!   (matrix transpose, bit reversal, perfect shuffle, Lawrie's strided
//!   vector access) plus random and partial traffic generators.
//! - [`pipeline`] — a registered-stage timing model: one batch of `N`
//!   records per cycle enters the fabric, each switch column is one
//!   pipeline stage, so latency is `m(m+1)/2` cycles and steady-state
//!   throughput is one permutation per cycle.
//! - [`scheduler`] — an input-queued switch around the fabric: FIFO and
//!   virtual-output-queue disciplines decompose arbitrary (bursty,
//!   many-to-one) traffic into permutation rounds, quantifying HOL
//!   blocking and scheduling efficiency against the congestion bound.
//! - [`faults`] — assumption-violation injection (duplicate destinations,
//!   out-of-range addresses) and classification of how the network reacts
//!   under strict vs permissive policies; plus hardware-fault campaigns
//!   (stuck switches, dead arbiters, broken links via
//!   `bnb_core::fault::FaultyFabric`) and a degraded-throughput sweep.
//! - [`chaos`] — randomized, seeded fault schedules (inject, flap, clear)
//!   replayed against the live-repair engine under traffic, asserting
//!   zero silent misdeliveries, balanced ledgers, and capacity recovery.
//!
//! All of these drain frames through `bnb-core`'s stage-span entry
//! points, so unobserved simulation runs (no `_observed` variant, or a
//! `NoopObserver`) automatically route on the bit-packed word-parallel
//! kernel; attaching a live observer switches to the scalar sweep that
//! can narrate per-hop events.

pub mod chaos;
pub mod faults;
pub mod hotspot;
pub mod loadsweep;
pub mod pipeline;
pub mod scheduler;
pub mod workload;

pub use chaos::{chaos_engine_campaign, ChaosAction, ChaosOp, ChaosReport, ChaosSchedule};
pub use pipeline::{PipelineStats, PipelinedFabric};
pub use scheduler::{QueueDiscipline, ScheduleStats, VoqSwitch};
pub use workload::Workload;
