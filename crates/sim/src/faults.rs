//! Assumption-violation injection and detection (system S24).
//!
//! The paper's routing guarantee rests on an input assumption (§4): the
//! inputs are a permutation, so every splitter sees a balanced bit vector.
//! This module injects violations — duplicate destinations, out-of-range
//! addresses — and classifies how the network reacts under the strict and
//! permissive policies, demonstrating that the library never *silently*
//! mis-routes when asked to validate.

use bnb_core::error::RouteError;
use bnb_core::network::{BnbNetwork, RoutePolicy};
use bnb_topology::perm::Permutation;
use bnb_topology::record::{records_for_permutation, Record};
use rand::{Rng, RngExt};
use serde::{Deserialize, Serialize};

/// A fault to inject into otherwise-valid permutation traffic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[non_exhaustive]
pub enum Fault {
    /// Overwrite input `line`'s destination with input `(line+1) % n`'s —
    /// creating a duplicate and leaving one destination unserved.
    DuplicateDestination {
        /// The input line to corrupt.
        line: usize,
    },
    /// Set input `line`'s destination out of range (`n`).
    OutOfRangeDestination {
        /// The input line to corrupt.
        line: usize,
    },
}

/// How a routing attempt on faulty traffic ended.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
#[non_exhaustive]
pub enum Outcome {
    /// The fault was caught before any routing (input validation).
    DetectedAtInput(String),
    /// The fault was caught mid-route by a splitter balance check.
    DetectedAtSplitter {
        /// Main-network stage of the detecting splitter.
        main_stage: usize,
        /// Internal stage of the detecting splitter.
        internal_stage: usize,
    },
    /// The network routed the traffic; `misdelivered` records did not land
    /// on their destination (permissive hardware semantics).
    Routed {
        /// Records whose output line differs from their destination.
        misdelivered: usize,
    },
}

/// Applies a fault to a record vector.
///
/// # Panics
///
/// Panics if the fault's `line` is out of range.
pub fn inject(records: &mut [Record], fault: Fault) {
    let n = records.len();
    match fault {
        Fault::DuplicateDestination { line } => {
            assert!(line < n, "fault line out of range");
            let other = records[(line + 1) % n];
            records[line] = Record::new(other.dest(), records[line].data());
        }
        Fault::OutOfRangeDestination { line } => {
            assert!(line < n, "fault line out of range");
            records[line] = Record::new(n, records[line].data());
        }
    }
}

/// Routes faulty traffic and classifies the outcome.
pub fn classify(network: &BnbNetwork, records: &[Record]) -> Outcome {
    match network.route(records) {
        Ok(out) => Outcome::Routed {
            misdelivered: out
                .iter()
                .enumerate()
                .filter(|(j, r)| r.dest() != *j)
                .count(),
        },
        Err(RouteError::UnbalancedSplitter {
            main_stage,
            internal_stage,
            ..
        }) => Outcome::DetectedAtSplitter {
            main_stage,
            internal_stage,
        },
        Err(e) => Outcome::DetectedAtInput(e.to_string()),
    }
}

/// Runs a fault-injection campaign: for `trials` random permutations,
/// inject a duplicate-destination fault at a random line and classify under
/// both policies. Returns `(strict_detected, permissive_misroutes)`.
pub fn campaign<R: Rng + ?Sized>(m: usize, trials: usize, rng: &mut R) -> (usize, usize) {
    let n = 1usize << m;
    let strict = BnbNetwork::builder(m)
        .data_width(32)
        .policy(RoutePolicy::Strict)
        .build();
    let permissive = BnbNetwork::builder(m)
        .data_width(32)
        .policy(RoutePolicy::Permissive)
        .build();
    let mut strict_detected = 0usize;
    let mut permissive_misroutes = 0usize;
    for _ in 0..trials {
        let p = Permutation::random(n, rng);
        let mut records = records_for_permutation(&p);
        inject(
            &mut records,
            Fault::DuplicateDestination {
                line: rng.random_range(0..n),
            },
        );
        match classify(&strict, &records) {
            Outcome::DetectedAtInput(_) | Outcome::DetectedAtSplitter { .. } => {
                strict_detected += 1;
            }
            Outcome::Routed { .. } => {}
        }
        if let Outcome::Routed { misdelivered } = classify(&permissive, &records) {
            permissive_misroutes += misdelivered.min(1);
        }
    }
    (strict_detected, permissive_misroutes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn duplicate_fault_is_always_detected_in_strict_mode() {
        let mut rng = StdRng::seed_from_u64(17);
        let (detected, _) = campaign(4, 50, &mut rng);
        assert_eq!(detected, 50, "strict mode must catch every duplicate");
    }

    #[test]
    fn permissive_mode_misroutes_instead_of_failing() {
        let net = BnbNetwork::builder(3)
            .policy(RoutePolicy::Permissive)
            .build();
        let p = Permutation::identity(8);
        let mut records = records_for_permutation(&p);
        inject(&mut records, Fault::DuplicateDestination { line: 0 });
        match classify(&net, &records) {
            Outcome::Routed { misdelivered } => assert!(misdelivered >= 1),
            other => panic!("permissive mode must route, got {other:?}"),
        }
    }

    #[test]
    fn out_of_range_is_detected_under_both_policies() {
        for policy in [RoutePolicy::Strict, RoutePolicy::Permissive] {
            let net = BnbNetwork::builder(3).policy(policy).build();
            let mut records = records_for_permutation(&Permutation::identity(8));
            inject(&mut records, Fault::OutOfRangeDestination { line: 3 });
            match classify(&net, &records) {
                Outcome::DetectedAtInput(msg) => assert!(msg.contains("does not fit")),
                other => panic!("expected input detection, got {other:?}"),
            }
        }
    }

    #[test]
    fn valid_traffic_routes_cleanly() {
        let net = BnbNetwork::builder(3).data_width(32).build();
        let records = records_for_permutation(&Permutation::identity(8));
        assert_eq!(
            classify(&net, &records),
            Outcome::Routed { misdelivered: 0 }
        );
    }

    #[test]
    fn inject_duplicate_actually_duplicates() {
        let mut records = records_for_permutation(&Permutation::identity(4));
        inject(&mut records, Fault::DuplicateDestination { line: 2 });
        assert_eq!(records[2].dest(), records[3].dest());
    }
}
