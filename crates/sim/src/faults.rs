//! Assumption-violation injection and detection (system S24).
//!
//! The paper's routing guarantee rests on an input assumption (§4): the
//! inputs are a permutation, so every splitter sees a balanced bit vector.
//! This module injects violations — duplicate destinations, out-of-range
//! addresses — and classifies how the network reacts under the strict and
//! permissive policies, demonstrating that the library never *silently*
//! mis-routes when asked to validate.
//!
//! It also runs *hardware*-fault campaigns over `bnb_core::fault`: stuck
//! switches, dead arbiters, and broken links injected through a
//! [`FaultMap`] into a [`FaultyFabric`], classified with the same
//! [`Outcome`] vocabulary ([`Outcome::DetectedHardware`] for the output
//! balance check), summarized as a serializable [`FaultReport`], and
//! measured as degraded delivered throughput ([`degraded_sweep`]).

use bnb_core::error::RouteError;
use bnb_core::fault::{FaultKind, FaultMap, FaultSite, FaultyFabric};
use bnb_core::network::{BnbNetwork, RoutePolicy};
use bnb_obs::Observer;
use bnb_topology::perm::Permutation;
use bnb_topology::record::{records_for_permutation, Record};
use rand::{Rng, RngExt};
use serde::{Deserialize, Serialize};

/// A fault to inject into otherwise-valid permutation traffic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[non_exhaustive]
pub enum Fault {
    /// Overwrite input `line`'s destination with input `(line+1) % n`'s —
    /// creating a duplicate and leaving one destination unserved.
    DuplicateDestination {
        /// The input line to corrupt.
        line: usize,
    },
    /// Set input `line`'s destination out of range (`n`).
    OutOfRangeDestination {
        /// The input line to corrupt.
        line: usize,
    },
}

/// How a routing attempt on faulty traffic ended.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
#[non_exhaustive]
pub enum Outcome {
    /// The fault was caught before any routing (input validation).
    DetectedAtInput(String),
    /// The fault was caught mid-route by a splitter balance check.
    DetectedAtSplitter {
        /// Main-network stage of the detecting splitter.
        main_stage: usize,
        /// Internal stage of the detecting splitter.
        internal_stage: usize,
    },
    /// The fault was caught mid-route by the hardware output-balance
    /// check (`RouteError::HardwareFault`): a splitter split a balanced
    /// input unevenly, which healthy hardware cannot do.
    DetectedHardware {
        /// Main-network stage of the faulty splitter.
        main_stage: usize,
        /// Internal stage of the faulty splitter.
        internal_stage: usize,
    },
    /// The network routed the traffic; `misdelivered` records did not land
    /// on their destination (permissive hardware semantics).
    Routed {
        /// Records whose output line differs from their destination.
        misdelivered: usize,
    },
}

/// Applies a fault to a record vector.
///
/// # Panics
///
/// Panics if the fault's `line` is out of range.
pub fn inject(records: &mut [Record], fault: Fault) {
    let n = records.len();
    match fault {
        Fault::DuplicateDestination { line } => {
            assert!(line < n, "fault line out of range");
            let other = records[(line + 1) % n];
            records[line] = Record::new(other.dest(), records[line].data());
        }
        Fault::OutOfRangeDestination { line } => {
            assert!(line < n, "fault line out of range");
            records[line] = Record::new(n, records[line].data());
        }
    }
}

/// Routes faulty traffic and classifies the outcome.
pub fn classify(network: &BnbNetwork, records: &[Record]) -> Outcome {
    match network.route(records) {
        Ok(out) => Outcome::Routed {
            misdelivered: out
                .iter()
                .enumerate()
                .filter(|(j, r)| r.dest() != *j)
                .count(),
        },
        Err(RouteError::UnbalancedSplitter {
            main_stage,
            internal_stage,
            ..
        }) => Outcome::DetectedAtSplitter {
            main_stage,
            internal_stage,
        },
        Err(e) => Outcome::DetectedAtInput(e.to_string()),
    }
}

/// Routes traffic through a (possibly faulted) [`FaultyFabric`] and
/// classifies the outcome with the same vocabulary as [`classify`].
pub fn classify_faulted<O: Observer>(fabric: &mut FaultyFabric<O>, records: &[Record]) -> Outcome {
    match fabric.route(records) {
        Ok(out) => Outcome::Routed {
            misdelivered: out
                .iter()
                .enumerate()
                .filter(|(j, r)| r.dest() != *j)
                .count(),
        },
        Err(RouteError::HardwareFault {
            main_stage,
            internal_stage,
            ..
        }) => Outcome::DetectedHardware {
            main_stage,
            internal_stage,
        },
        Err(RouteError::UnbalancedSplitter {
            main_stage,
            internal_stage,
            ..
        }) => Outcome::DetectedAtSplitter {
            main_stage,
            internal_stage,
        },
        Err(e) => Outcome::DetectedAtInput(e.to_string()),
    }
}

/// Draws a uniformly random hardware fault for an `N = 2^m` network: a
/// random column, kind, and in-bounds element.
pub fn random_hardware_fault<R: Rng + ?Sized>(m: usize, rng: &mut R) -> (FaultSite, FaultKind) {
    let main_stage = rng.random_range(0..m);
    let internal_stage = rng.random_range(0..m - main_stage);
    let kind = match rng.random_range(0..4) {
        0 => FaultKind::StuckStraight,
        1 => FaultKind::StuckExchange,
        2 => FaultKind::DeadArbiter,
        _ => FaultKind::BrokenLink,
    };
    let element = rng.random_range(0..kind.elements(m, main_stage, internal_stage));
    (FaultSite::new(main_stage, internal_stage, element), kind)
}

/// Summary of a hardware-fault campaign, serializable for the CLI's
/// `faults` subcommand.
///
/// The detect-or-route-correctly guarantee is `strict_misdelivered == 0`:
/// strict policy either reports `RouteError::HardwareFault` or delivers
/// every record, never silently misdelivers.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultReport {
    /// Network size exponent (`N = 2^m`).
    pub m: usize,
    /// Random permutation frames routed.
    pub trials: usize,
    /// Hardware faults injected per trial.
    pub faults: usize,
    /// Strict trials ending in `RouteError::HardwareFault`.
    pub strict_detected: usize,
    /// Strict trials that routed with every record delivered (the fault
    /// was harmless for that permutation).
    pub strict_correct: usize,
    /// Strict trials that routed with a misdelivery — always 0; the
    /// exhaustive fault-matrix suite asserts this for every single fault.
    pub strict_misdelivered: usize,
    /// Permissive trials with at least one misdelivered record.
    pub permissive_misdelivered_trials: usize,
    /// Total misdelivered records across all permissive trials.
    pub permissive_misdelivered_records: usize,
}

/// Runs `trials` random permutations against one fixed [`FaultMap`],
/// classifying each under strict and permissive policy. Events from both
/// fabrics (including `FaultEvent`s) flow to `observer`.
pub fn hardware_campaign<R: Rng + ?Sized, O: Observer>(
    m: usize,
    faults: &FaultMap,
    trials: usize,
    rng: &mut R,
    observer: &O,
) -> FaultReport {
    campaign_inner(m, trials, rng, observer, faults.len(), |_| faults.clone())
}

/// Like [`hardware_campaign`], but each trial draws a fresh single
/// random fault ([`random_hardware_fault`]).
pub fn random_hardware_campaign<R: Rng + ?Sized, O: Observer>(
    m: usize,
    trials: usize,
    rng: &mut R,
    observer: &O,
) -> FaultReport {
    let seeds: Vec<FaultMap> = (0..trials)
        .map(|_| {
            let (site, kind) = random_hardware_fault(m, rng);
            FaultMap::single(site, kind)
        })
        .collect();
    campaign_inner(m, trials, rng, observer, 1, |t| seeds[t].clone())
}

fn campaign_inner<R: Rng + ?Sized, O: Observer>(
    m: usize,
    trials: usize,
    rng: &mut R,
    observer: &O,
    faults_per_trial: usize,
    map_for_trial: impl Fn(usize) -> FaultMap,
) -> FaultReport {
    let n = 1usize << m;
    let strict_net = BnbNetwork::builder(m)
        .data_width(32)
        .policy(RoutePolicy::Strict)
        .build();
    let permissive_net = BnbNetwork::builder(m)
        .data_width(32)
        .policy(RoutePolicy::Permissive)
        .build();
    let mut strict = FaultyFabric::with_observer(strict_net, FaultMap::new(), observer);
    let mut permissive = FaultyFabric::with_observer(permissive_net, FaultMap::new(), observer);
    let mut report = FaultReport {
        m,
        trials,
        faults: faults_per_trial,
        strict_detected: 0,
        strict_correct: 0,
        strict_misdelivered: 0,
        permissive_misdelivered_trials: 0,
        permissive_misdelivered_records: 0,
    };
    for t in 0..trials {
        let map = map_for_trial(t);
        strict.set_faults(map.clone());
        permissive.set_faults(map);
        let records = records_for_permutation(&Permutation::random(n, rng));
        match classify_faulted(&mut strict, &records) {
            Outcome::DetectedHardware { .. } => report.strict_detected += 1,
            Outcome::Routed { misdelivered: 0 } => report.strict_correct += 1,
            Outcome::Routed { .. } => report.strict_misdelivered += 1,
            other => panic!("valid permutation cannot fail validation: {other:?}"),
        }
        if let Outcome::Routed { misdelivered } = classify_faulted(&mut permissive, &records) {
            if misdelivered > 0 {
                report.permissive_misdelivered_trials += 1;
                report.permissive_misdelivered_records += misdelivered;
            }
        }
    }
    report
}

/// One point of the degraded-throughput sweep: delivered fraction under
/// `faults` simultaneous random hardware faults (permissive fabric — the
/// degraded mode keeps moving records and some miss their destination).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DegradedPoint {
    /// Simultaneous hardware faults injected.
    pub faults: usize,
    /// Random permutation frames routed.
    pub frames: usize,
    /// Records offered (`frames * N`).
    pub records: usize,
    /// Records that landed on their destination.
    pub delivered: usize,
    /// `delivered / records` — the fabric's degraded goodput.
    pub delivered_fraction: f64,
}

/// Measures delivered throughput as the fabric degrades: for each entry
/// of `fault_counts`, injects that many random faults into a permissive
/// fabric and routes `frames` random permutation frames — the
/// fabric-degradation analogue of `loadsweep` (motivated by multi-lane
/// MIN studies: a faulted fabric still delivers most records).
pub fn degraded_sweep<R: Rng + ?Sized>(
    m: usize,
    fault_counts: &[usize],
    frames: usize,
    rng: &mut R,
) -> Vec<DegradedPoint> {
    let n = 1usize << m;
    let net = BnbNetwork::builder(m)
        .data_width(32)
        .policy(RoutePolicy::Permissive)
        .build();
    let mut fabric = FaultyFabric::new(net, FaultMap::new());
    fault_counts
        .iter()
        .map(|&faults| {
            let map: FaultMap = (0..faults)
                .map(|_| {
                    let (site, kind) = random_hardware_fault(m, rng);
                    bnb_core::fault::HardwareFault { site, kind }
                })
                .collect();
            fabric.set_faults(map);
            let mut delivered = 0usize;
            for _ in 0..frames {
                let records = records_for_permutation(&Permutation::random(n, rng));
                let out = fabric
                    .route(&records)
                    .expect("permissive fabric routes any permutation");
                delivered += out
                    .iter()
                    .enumerate()
                    .filter(|(j, r)| r.dest() == *j)
                    .count();
            }
            let records = frames * n;
            DegradedPoint {
                faults,
                frames,
                records,
                delivered,
                delivered_fraction: delivered as f64 / (records as f64).max(1.0),
            }
        })
        .collect()
}

/// Runs a fault-injection campaign: for `trials` random permutations,
/// inject a duplicate-destination fault at a random line and classify under
/// both policies. Returns `(strict_detected, permissive_misroutes)`.
pub fn campaign<R: Rng + ?Sized>(m: usize, trials: usize, rng: &mut R) -> (usize, usize) {
    let n = 1usize << m;
    let strict = BnbNetwork::builder(m)
        .data_width(32)
        .policy(RoutePolicy::Strict)
        .build();
    let permissive = BnbNetwork::builder(m)
        .data_width(32)
        .policy(RoutePolicy::Permissive)
        .build();
    let mut strict_detected = 0usize;
    let mut permissive_misroutes = 0usize;
    for _ in 0..trials {
        let p = Permutation::random(n, rng);
        let mut records = records_for_permutation(&p);
        inject(
            &mut records,
            Fault::DuplicateDestination {
                line: rng.random_range(0..n),
            },
        );
        match classify(&strict, &records) {
            Outcome::DetectedAtInput(_)
            | Outcome::DetectedAtSplitter { .. }
            | Outcome::DetectedHardware { .. } => {
                strict_detected += 1;
            }
            Outcome::Routed { .. } => {}
        }
        if let Outcome::Routed { misdelivered } = classify(&permissive, &records) {
            permissive_misroutes += misdelivered.min(1);
        }
    }
    (strict_detected, permissive_misroutes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn duplicate_fault_is_always_detected_in_strict_mode() {
        let mut rng = StdRng::seed_from_u64(17);
        let (detected, _) = campaign(4, 50, &mut rng);
        assert_eq!(detected, 50, "strict mode must catch every duplicate");
    }

    #[test]
    fn permissive_mode_misroutes_instead_of_failing() {
        let net = BnbNetwork::builder(3)
            .policy(RoutePolicy::Permissive)
            .build();
        let p = Permutation::identity(8);
        let mut records = records_for_permutation(&p);
        inject(&mut records, Fault::DuplicateDestination { line: 0 });
        match classify(&net, &records) {
            Outcome::Routed { misdelivered } => assert!(misdelivered >= 1),
            other => panic!("permissive mode must route, got {other:?}"),
        }
    }

    #[test]
    fn out_of_range_is_detected_under_both_policies() {
        for policy in [RoutePolicy::Strict, RoutePolicy::Permissive] {
            let net = BnbNetwork::builder(3).policy(policy).build();
            let mut records = records_for_permutation(&Permutation::identity(8));
            inject(&mut records, Fault::OutOfRangeDestination { line: 3 });
            match classify(&net, &records) {
                Outcome::DetectedAtInput(msg) => assert!(msg.contains("does not fit")),
                other => panic!("expected input detection, got {other:?}"),
            }
        }
    }

    #[test]
    fn valid_traffic_routes_cleanly() {
        let net = BnbNetwork::builder(3).data_width(32).build();
        let records = records_for_permutation(&Permutation::identity(8));
        assert_eq!(
            classify(&net, &records),
            Outcome::Routed { misdelivered: 0 }
        );
    }

    #[test]
    fn inject_duplicate_actually_duplicates() {
        let mut records = records_for_permutation(&Permutation::identity(4));
        inject(&mut records, Fault::DuplicateDestination { line: 2 });
        assert_eq!(records[2].dest(), records[3].dest());
    }

    #[test]
    fn random_hardware_fault_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..500 {
            let (site, kind) = random_hardware_fault(4, &mut rng);
            let fault = bnb_core::fault::HardwareFault { site, kind };
            assert!(fault.in_bounds(4), "out-of-bounds draw: {fault:?}");
        }
    }

    #[test]
    fn hardware_campaign_never_misdelivers_under_strict() {
        let mut rng = StdRng::seed_from_u64(11);
        let map = FaultMap::single(FaultSite::new(1, 0, 0), FaultKind::StuckExchange);
        let report = hardware_campaign(3, &map, 60, &mut rng, &bnb_obs::NoopObserver);
        assert_eq!(report.trials, 60);
        assert_eq!(report.faults, 1);
        assert_eq!(report.strict_misdelivered, 0, "silent misdelivery");
        assert_eq!(report.strict_detected + report.strict_correct, 60);
        assert!(
            report.strict_detected > 0,
            "a stuck switch must trip the balance check for some permutation"
        );
        assert!(report.permissive_misdelivered_records >= report.permissive_misdelivered_trials);
    }

    #[test]
    fn random_campaign_covers_detection_and_counts_events() {
        let mut rng = StdRng::seed_from_u64(23);
        let counters = bnb_obs::Counters::new();
        let report = random_hardware_campaign(3, 80, &mut rng, &counters);
        assert_eq!(report.strict_misdelivered, 0);
        assert_eq!(
            report.strict_detected + report.strict_correct,
            report.trials
        );
        assert!(report.strict_detected > 0, "80 random faults, none caught?");
        assert_eq!(
            counters.snapshot().hardware_faults,
            report.strict_detected as u64,
            "every strict detection must surface as a FaultEvent"
        );
    }

    #[test]
    fn healthy_campaign_is_all_correct() {
        let mut rng = StdRng::seed_from_u64(3);
        let report = hardware_campaign(3, &FaultMap::new(), 20, &mut rng, &bnb_obs::NoopObserver);
        assert_eq!(report.strict_correct, 20);
        assert_eq!(report.strict_detected, 0);
        assert_eq!(report.permissive_misdelivered_trials, 0);
    }

    #[test]
    fn degraded_sweep_goodput_is_monotone_in_shape() {
        let mut rng = StdRng::seed_from_u64(7);
        let points = degraded_sweep(4, &[0, 4], 30, &mut rng);
        assert_eq!(points.len(), 2);
        assert_eq!(points[0].faults, 0);
        assert_eq!(points[0].records, 30 * 16);
        assert_eq!(
            points[0].delivered, points[0].records,
            "a fault-free fabric delivers everything"
        );
        assert!((points[0].delivered_fraction - 1.0).abs() < 1e-12);
        assert!(points[1].delivered <= points[1].records);
        assert!(
            points[1].delivered_fraction > 0.0,
            "even a damaged fabric moves records somewhere"
        );
    }

    #[test]
    fn classify_faulted_matches_classify_on_healthy_fabric() {
        let net = BnbNetwork::builder(3).data_width(32).build();
        let records = records_for_permutation(&Permutation::identity(8));
        let baseline = classify(&net, &records);
        let net2 = BnbNetwork::builder(3).data_width(32).build();
        let mut fabric = FaultyFabric::new(net2, FaultMap::new());
        assert_eq!(classify_faulted(&mut fabric, &records), baseline);
    }
}
