//! Permutation workloads from the parallel-processing literature.
//!
//! These are the access patterns an interconnection network in an array
//! processor must realize (paper §1; Lawrie \[2\]): matrix transpose for
//! block algorithms, bit reversal for FFTs, perfect shuffle for
//! shuffle-exchange algorithms, and `p`-ordered vector access with stride.

use bnb_topology::bitops::{bit_reverse, log2_exact, shuffle};
use bnb_topology::perm::Permutation;
use bnb_topology::record::Record;
use rand::seq::SliceRandom;
use rand::{Rng, RngExt};
use serde::{Deserialize, Serialize};

/// A named permutation workload over `n = 2^m` lines.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[non_exhaustive]
pub enum Workload {
    /// The identity (no data movement; baseline for overhead).
    Identity,
    /// Matrix transpose of a `√n × √n` element grid stored row-major:
    /// element `(r, c)` moves to `(c, r)`. Requires even `m`.
    Transpose,
    /// FFT bit-reversal reordering.
    BitReversal,
    /// Perfect-shuffle reordering (one left rotation of the index bits).
    PerfectShuffle,
    /// Lawrie's strided vector access: `i → (stride·i + offset) mod n`.
    /// A permutation iff `stride` is odd (coprime with `2^m`).
    Stride {
        /// Multiplicative stride (must be odd).
        stride: usize,
        /// Additive offset.
        offset: usize,
    },
    /// Full reversal `i → n−1−i` (worst case for locality).
    Reversal,
}

impl Workload {
    /// Materializes the workload as a [`Permutation`] on `n` lines.
    ///
    /// # Panics
    ///
    /// Panics if `n` is not a power of two, if `Transpose` is requested
    /// with odd `log2 n`, or if `Stride` has an even stride.
    pub fn permutation(&self, n: usize) -> Permutation {
        let m = log2_exact(n);
        match *self {
            Workload::Identity => Permutation::identity(n),
            Workload::Transpose => {
                assert!(
                    m.is_multiple_of(2),
                    "transpose needs a square grid (even log2 n)"
                );
                let side = 1usize << (m / 2);
                Permutation::from_fn(n, |i| {
                    let (r, c) = (i / side, i % side);
                    c * side + r
                })
                .expect("transpose is a bijection")
            }
            Workload::BitReversal => {
                Permutation::from_fn(n, |i| bit_reverse(m, i)).expect("bijection")
            }
            Workload::PerfectShuffle => {
                Permutation::from_fn(n, |i| shuffle(m, m, i)).expect("bijection")
            }
            Workload::Stride { stride, offset } => {
                assert!(
                    stride % 2 == 1,
                    "stride must be odd to be a permutation mod 2^m"
                );
                Permutation::from_fn(n, |i| (stride.wrapping_mul(i) + offset) % n)
                    .expect("odd stride is a bijection mod 2^m")
            }
            Workload::Reversal => Permutation::from_fn(n, |i| n - 1 - i).expect("bijection"),
        }
    }

    /// The workload's records: input `i` carries data `i`.
    ///
    /// # Panics
    ///
    /// Same as [`Workload::permutation`].
    pub fn records(&self, n: usize) -> Vec<Record> {
        bnb_topology::record::records_for_permutation(&self.permutation(n))
    }

    /// All workloads applicable at width `n`.
    pub fn all_for(n: usize) -> Vec<Workload> {
        let m = log2_exact(n);
        let mut v = vec![
            Workload::Identity,
            Workload::BitReversal,
            Workload::PerfectShuffle,
            Workload::Stride {
                stride: 3,
                offset: 1,
            },
            Workload::Stride {
                stride: n / 2 + 1,
                offset: 0,
            },
            Workload::Reversal,
        ];
        if m.is_multiple_of(2) {
            v.push(Workload::Transpose);
        }
        v
    }
}

/// A batch of random permutation traffic: `count` uniformly random
/// permutations of `n` lines.
pub fn random_batches<R: Rng + ?Sized>(n: usize, count: usize, rng: &mut R) -> Vec<Permutation> {
    (0..count).map(|_| Permutation::random(n, rng)).collect()
}

/// Partial traffic at load factor `rho`: each input is active with
/// probability `rho`; active inputs receive distinct random destinations.
/// Returns one `Option<Record>` per input.
///
/// # Panics
///
/// Panics if `rho` is not within `0.0..=1.0`.
pub fn partial_traffic<R: Rng + ?Sized>(n: usize, rho: f64, rng: &mut R) -> Vec<Option<Record>> {
    assert!((0.0..=1.0).contains(&rho), "load factor must be in [0, 1]");
    let mut dests: Vec<usize> = (0..n).collect();
    dests.shuffle(rng);
    let mut next_dest = 0usize;
    (0..n)
        .map(|i| {
            if rng.random_bool(rho) {
                let d = dests[next_dest];
                next_dest += 1;
                Some(Record::new(d, i as u64))
            } else {
                None
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn transpose_moves_rows_to_columns() {
        let p = Workload::Transpose.permutation(16);
        // 4x4 grid: element (1, 2) = index 6 goes to (2, 1) = index 9.
        assert_eq!(p.apply(6), 9);
        assert!(p.compose(&p).is_identity(), "transpose is an involution");
    }

    #[test]
    #[should_panic(expected = "square grid")]
    fn transpose_requires_even_m() {
        let _ = Workload::Transpose.permutation(8);
    }

    #[test]
    fn bit_reversal_and_reversal_are_involutions() {
        for wl in [Workload::BitReversal, Workload::Reversal] {
            let p = wl.permutation(32);
            assert!(p.compose(&p).is_identity(), "{wl:?}");
        }
    }

    #[test]
    fn stride_generates_permutations_for_odd_strides() {
        for stride in [1usize, 3, 5, 7, 31] {
            let p = Workload::Stride { stride, offset: 4 }.permutation(32);
            assert_eq!(p.len(), 32);
        }
    }

    #[test]
    #[should_panic(expected = "stride must be odd")]
    fn even_stride_is_rejected() {
        let _ = Workload::Stride {
            stride: 2,
            offset: 0,
        }
        .permutation(16);
    }

    #[test]
    fn perfect_shuffle_rotates_bits_left() {
        let p = Workload::PerfectShuffle.permutation(8);
        assert_eq!(p.apply(0b100), 0b001);
        assert_eq!(p.apply(0b011), 0b110);
    }

    #[test]
    fn all_for_skips_transpose_on_odd_m() {
        assert!(Workload::all_for(8)
            .iter()
            .all(|w| *w != Workload::Transpose));
        assert!(Workload::all_for(16).contains(&Workload::Transpose));
    }

    #[test]
    fn records_tag_sources() {
        let recs = Workload::Reversal.records(4);
        assert_eq!(recs[0], Record::new(3, 0));
        assert_eq!(recs[3], Record::new(0, 3));
    }

    #[test]
    fn partial_traffic_respects_load_and_uniqueness() {
        let mut rng = StdRng::seed_from_u64(8);
        let t = partial_traffic(64, 0.5, &mut rng);
        let active: Vec<&Record> = t.iter().flatten().collect();
        assert!(!active.is_empty() && active.len() < 64);
        let mut dests: Vec<usize> = active.iter().map(|r| r.dest()).collect();
        dests.sort_unstable();
        dests.dedup();
        assert_eq!(dests.len(), active.len(), "destinations must be distinct");
    }

    #[test]
    fn partial_traffic_extremes() {
        let mut rng = StdRng::seed_from_u64(9);
        assert!(partial_traffic(8, 0.0, &mut rng)
            .iter()
            .all(Option::is_none));
        assert!(partial_traffic(8, 1.0, &mut rng)
            .iter()
            .all(Option::is_some));
    }

    #[test]
    fn random_batches_are_valid() {
        let mut rng = StdRng::seed_from_u64(10);
        let batches = random_batches(16, 5, &mut rng);
        assert_eq!(batches.len(), 5);
        for b in &batches {
            assert_eq!(b.len(), 16);
        }
    }
}
