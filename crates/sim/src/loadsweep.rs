//! Open-loop load sweeps: offered load vs throughput and queueing delay.
//!
//! The switch built around the BNB fabric in [`crate::scheduler`] is an
//! input-queued switch, so it inherits the classic input-queueing results:
//! with FIFO queues and uniform traffic, head-of-line blocking saturates
//! throughput near `2 − √2 ≈ 0.586` (Karol/Hluchyj/Morgan 1987), while
//! virtual output queues push saturation toward 1. This module measures
//! those curves *on the actual fabric* — every delivered cell crossed a
//! real self-routed BNB pass — which both stress-tests the network under
//! sustained random traffic and reproduces a known result as an end-to-end
//! sanity check of the whole stack.

use bnb_core::error::RouteError;
use bnb_core::network::BnbNetwork;
use bnb_obs::{FlightRecorder, NoopObserver, Observer, SamplePolicy, Span};
use bnb_topology::record::Record;
use rand::{Rng, RngExt};
use serde::{Deserialize, Serialize};

use crate::scheduler::{QueueDiscipline, VoqSwitch};

/// One measured point of a load sweep.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LoadPoint {
    /// Offered load per input per round (arrival probability).
    pub offered: f64,
    /// Delivered throughput per input per round.
    pub delivered: f64,
    /// Mean queueing + fabric delay of delivered cells, in rounds.
    pub mean_delay: f64,
    /// Cells still queued when the measurement window closed.
    pub final_backlog: usize,
}

/// Runs an open-loop experiment: for `rounds` rounds, every input receives
/// a cell with probability `offered` (uniform random destination), and the
/// switch serves one fabric round. Returns the measured point.
///
/// # Errors
///
/// Propagates fabric errors (none occur for validated uniform traffic).
///
/// # Panics
///
/// Panics if `offered` is not within `0.0..=1.0`.
pub fn measure<R: Rng + ?Sized>(
    m: usize,
    discipline: QueueDiscipline,
    offered: f64,
    rounds: usize,
    rng: &mut R,
) -> Result<LoadPoint, RouteError> {
    measure_observed(m, discipline, offered, rounds, rng, &NoopObserver)
}

/// [`measure`] with an observer receiving one [`bnb_obs::RoundEvent`] per
/// fabric round (occupancy = the event's `backlog`), plus every column and
/// sweep event of the underlying routes.
///
/// # Errors
///
/// Propagates fabric errors (none occur for validated uniform traffic).
///
/// # Panics
///
/// Panics if `offered` is not within `0.0..=1.0`.
pub fn measure_observed<R: Rng + ?Sized, O: Observer>(
    m: usize,
    discipline: QueueDiscipline,
    offered: f64,
    rounds: usize,
    rng: &mut R,
    observer: &O,
) -> Result<LoadPoint, RouteError> {
    assert!(
        (0.0..=1.0).contains(&offered),
        "offered load must be in [0, 1]"
    );
    let n = 1usize << m;
    let mut sw = VoqSwitch::new(BnbNetwork::new(m), discipline);
    let mut enqueue_round: Vec<usize> = Vec::new();
    let mut seen_delivered = 0usize;
    let mut total_delay = 0f64;
    let mut delivered_cells = 0usize;
    for round in 0..rounds {
        for input in 0..n {
            if rng.random_bool(offered) {
                let id = enqueue_round.len() as u64;
                enqueue_round.push(round);
                sw.offer(input, Record::new(rng.random_range(0..n), id))?;
            }
        }
        sw.step_observed(observer)?;
        let delivered = sw.delivered();
        for cell in &delivered[seen_delivered..] {
            let born = enqueue_round[cell.data() as usize];
            total_delay += (round - born) as f64 + 1.0;
            delivered_cells += 1;
        }
        seen_delivered = delivered.len();
    }
    Ok(LoadPoint {
        offered,
        delivered: delivered_cells as f64 / (rounds as f64 * n as f64),
        mean_delay: if delivered_cells == 0 {
            0.0
        } else {
            total_delay / delivered_cells as f64
        },
        final_backlog: sw.backlog(),
    })
}

/// Sweeps a list of offered loads.
///
/// # Errors
///
/// Propagates fabric errors from [`measure`].
pub fn sweep<R: Rng + ?Sized>(
    m: usize,
    discipline: QueueDiscipline,
    loads: &[f64],
    rounds: usize,
    rng: &mut R,
) -> Result<Vec<LoadPoint>, RouteError> {
    sweep_observed(m, discipline, loads, rounds, rng, &NoopObserver)
}

/// [`sweep`] with an observer shared across every measured point.
///
/// # Errors
///
/// Propagates fabric errors from [`measure`].
pub fn sweep_observed<R: Rng + ?Sized, O: Observer>(
    m: usize,
    discipline: QueueDiscipline,
    loads: &[f64],
    rounds: usize,
    rng: &mut R,
    observer: &O,
) -> Result<Vec<LoadPoint>, RouteError> {
    loads
        .iter()
        .map(|&l| measure_observed(m, discipline, l, rounds, rng, observer))
        .collect()
}

/// [`sweep`] with a flight recorder attached: every scheduler round,
/// column, and sweep of the measured loads lands in a bounded ring under
/// `policy`, and the retained spans come back alongside the points —
/// ready for `bnb_obs::render_chrome_trace`. `capacity` bounds the ring
/// per recorder lane; the recorder's drop counter makes any truncation
/// explicit in the returned spans' accounting (see
/// [`FlightRecorder::stats`], reflected here via the span list length vs
/// the sweep's round count).
///
/// # Errors
///
/// Propagates fabric errors from [`measure`].
pub fn sweep_recorded<R: Rng + ?Sized>(
    m: usize,
    discipline: QueueDiscipline,
    loads: &[f64],
    rounds: usize,
    rng: &mut R,
    capacity: usize,
    policy: SamplePolicy,
) -> Result<(Vec<LoadPoint>, Vec<Span>), RouteError> {
    let recorder = FlightRecorder::with_capacity(capacity).policy(policy);
    let points = sweep_observed(m, discipline, loads, rounds, rng, &recorder)?;
    Ok((points, recorder.spans()))
}

/// Estimates the saturation throughput: the delivered rate under
/// overload (offered = 1.0).
///
/// # Errors
///
/// Propagates fabric errors from [`measure`].
pub fn saturation_throughput<R: Rng + ?Sized>(
    m: usize,
    discipline: QueueDiscipline,
    rounds: usize,
    rng: &mut R,
) -> Result<f64, RouteError> {
    Ok(measure(m, discipline, 1.0, rounds, rng)?.delivered)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn light_load_is_delivered_with_small_delay() {
        let mut rng = StdRng::seed_from_u64(1);
        for d in [QueueDiscipline::Fifo, QueueDiscipline::Voq] {
            let p = measure(4, d, 0.1, 800, &mut rng).unwrap();
            assert!(
                (p.delivered - 0.1).abs() < 0.02,
                "{d:?}: light load must pass through, got {}",
                p.delivered
            );
            assert!(
                p.mean_delay < 3.0,
                "{d:?}: delay {} too high at light load",
                p.mean_delay
            );
        }
    }

    #[test]
    fn fifo_saturates_near_the_karol_bound() {
        // Theory: 2 − √2 ≈ 0.586 for N → ∞ under uniform traffic; finite N
        // is a little higher (0.632 at N = 8, 0.61 at N = 16). Accept a
        // generous band around it.
        let mut rng = StdRng::seed_from_u64(2);
        let sat = saturation_throughput(4, QueueDiscipline::Fifo, 1500, &mut rng).unwrap();
        assert!(
            (0.55..0.68).contains(&sat),
            "FIFO saturation should sit near 2-sqrt(2): got {sat}"
        );
    }

    #[test]
    fn voq_saturation_beats_fifo() {
        let mut rng = StdRng::seed_from_u64(3);
        let fifo = saturation_throughput(4, QueueDiscipline::Fifo, 1000, &mut rng).unwrap();
        let voq = saturation_throughput(4, QueueDiscipline::Voq, 1000, &mut rng).unwrap();
        assert!(
            voq > fifo + 0.1,
            "VOQ ({voq}) must clearly out-saturate FIFO ({fifo})"
        );
        assert!(
            voq > 0.8,
            "greedy VOQ matching should exceed 80% on uniform traffic"
        );
    }

    #[test]
    fn delay_grows_with_load_below_saturation() {
        let mut rng = StdRng::seed_from_u64(4);
        let pts = sweep(4, QueueDiscipline::Voq, &[0.2, 0.5, 0.8], 800, &mut rng).unwrap();
        assert!(
            pts[0].mean_delay < pts[2].mean_delay,
            "delay must grow with load: {pts:?}"
        );
        // Below saturation, throughput tracks offered load.
        for p in &pts {
            assert!((p.delivered - p.offered).abs() < 0.05, "{p:?}");
        }
    }

    #[test]
    fn recorded_sweep_returns_points_and_round_spans() {
        use bnb_obs::SpanKind;
        let mut rng = StdRng::seed_from_u64(9);
        let (points, spans) = sweep_recorded(
            3,
            QueueDiscipline::Voq,
            &[0.3, 0.6],
            50,
            &mut rng,
            65536,
            SamplePolicy::All,
        )
        .unwrap();
        assert_eq!(points.len(), 2);
        let round_spans = spans.iter().filter(|s| s.kind == SpanKind::Round).count();
        assert_eq!(
            round_spans,
            2 * 50,
            "one round span per fabric round per load"
        );
        assert!(
            spans.iter().any(|s| s.kind == SpanKind::Column),
            "fabric columns must be visible in the trace"
        );
    }

    #[test]
    fn recorded_sweep_tail_sampling_keeps_only_errors() {
        let mut rng = StdRng::seed_from_u64(10);
        let (points, spans) = sweep_recorded(
            3,
            QueueDiscipline::Fifo,
            &[0.5],
            40,
            &mut rng,
            4096,
            SamplePolicy::Errors,
        )
        .unwrap();
        assert_eq!(points.len(), 1);
        assert!(
            spans.iter().all(|s| s.kind.is_error() || !s.ok),
            "error-only sampling must reject healthy spans"
        );
    }

    #[test]
    fn overload_builds_backlog() {
        let mut rng = StdRng::seed_from_u64(5);
        let p = measure(3, QueueDiscipline::Fifo, 1.0, 400, &mut rng).unwrap();
        assert!(p.final_backlog > 100, "overload must leave a queue: {p:?}");
    }
}
