//! Hot-spot traffic analysis: how throughput degrades when a fraction of
//! all cells targets a single output.
//!
//! A permutation network serializes at a contended output no matter how
//! good the fabric is — the classic hot-spot observation (Pfister & Norton
//! 1985). This module measures the degradation on the real
//! scheduler+fabric stack: with hot-spot fraction `h`, the hot output can
//! serve only one cell per round, so sustainable per-input throughput is
//! bounded by the non-hot offer plus an equal share of the hot service,
//! `(1−h) + 1/N` — which the measurements track from below.

use bnb_core::error::RouteError;
use bnb_core::network::BnbNetwork;
use bnb_topology::record::Record;
use rand::{Rng, RngExt};
use serde::{Deserialize, Serialize};

use crate::scheduler::{QueueDiscipline, VoqSwitch};

/// One measured hot-spot point.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HotspotPoint {
    /// Fraction of cells aimed at the hot output.
    pub fraction: f64,
    /// Delivered throughput per input per round (under saturation offers).
    pub delivered: f64,
    /// The analytic upper bound `(1−h) + 1/N` per input.
    pub bound: f64,
}

/// Measures saturated throughput with hot-spot fraction `fraction` of all
/// cells destined to output 0 (the rest uniform).
///
/// # Errors
///
/// Propagates fabric errors (none occur for validated traffic).
///
/// # Panics
///
/// Panics if `fraction` is not within `0.0..=1.0`.
pub fn measure<R: Rng + ?Sized>(
    m: usize,
    discipline: QueueDiscipline,
    fraction: f64,
    rounds: usize,
    rng: &mut R,
) -> Result<HotspotPoint, RouteError> {
    assert!(
        (0.0..=1.0).contains(&fraction),
        "fraction must be in [0, 1]"
    );
    let n = 1usize << m;
    let mut sw = VoqSwitch::new(BnbNetwork::new(m), discipline);
    let mut delivered_before = 0usize;
    let mut total = 0usize;
    for _ in 0..rounds {
        for input in 0..n {
            let dest = if rng.random_bool(fraction) {
                0
            } else {
                rng.random_range(0..n)
            };
            sw.offer(input, Record::new(dest, 0))?;
        }
        sw.step()?;
        total += sw.delivered().len() - delivered_before;
        delivered_before = sw.delivered().len();
    }
    let nf = n as f64;
    Ok(HotspotPoint {
        fraction,
        delivered: total as f64 / (rounds as f64 * nf),
        bound: ((1.0 - fraction) + 1.0 / nf).min(1.0),
    })
}

/// Sweeps hot-spot fractions.
///
/// # Errors
///
/// Propagates fabric errors from [`measure`].
pub fn sweep<R: Rng + ?Sized>(
    m: usize,
    discipline: QueueDiscipline,
    fractions: &[f64],
    rounds: usize,
    rng: &mut R,
) -> Result<Vec<HotspotPoint>, RouteError> {
    fractions
        .iter()
        .map(|&f| measure(m, discipline, f, rounds, rng))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn throughput_respects_the_hot_spot_bound() {
        let mut rng = StdRng::seed_from_u64(1);
        for f in [0.0, 0.2, 0.5, 1.0] {
            let p = measure(4, QueueDiscipline::Voq, f, 600, &mut rng).unwrap();
            assert!(
                p.delivered <= p.bound * 1.15,
                "fraction {f}: delivered {} exceeds bound {} (+15% slack)",
                p.delivered,
                p.bound
            );
        }
    }

    #[test]
    fn full_hot_spot_serializes_to_one_per_round() {
        // Everything to output 0: exactly one cell per round can leave.
        let mut rng = StdRng::seed_from_u64(2);
        let p = measure(3, QueueDiscipline::Voq, 1.0, 300, &mut rng).unwrap();
        assert!((p.delivered - 1.0 / 8.0).abs() < 0.01, "{p:?}");
        assert!((p.bound - 1.0 / 8.0).abs() < 1e-12, "{p:?}");
    }

    #[test]
    fn degradation_is_monotone_in_the_fraction() {
        let mut rng = StdRng::seed_from_u64(3);
        let pts = sweep(
            4,
            QueueDiscipline::Voq,
            &[0.0, 0.3, 0.7, 1.0],
            500,
            &mut rng,
        )
        .unwrap();
        for w in pts.windows(2) {
            assert!(
                w[1].delivered <= w[0].delivered + 0.03,
                "throughput must not improve with a hotter spot: {w:?}"
            );
        }
        // No hot spot beats heavy hot spot clearly.
        assert!(pts[0].delivered > 2.0 * pts[3].delivered);
    }

    #[test]
    fn fifo_suffers_at_least_as_much_as_voq() {
        let mut rng = StdRng::seed_from_u64(4);
        let voq = measure(4, QueueDiscipline::Voq, 0.3, 500, &mut rng).unwrap();
        let fifo = measure(4, QueueDiscipline::Fifo, 0.3, 500, &mut rng).unwrap();
        assert!(
            fifo.delivered <= voq.delivered + 0.02,
            "fifo {fifo:?} vs voq {voq:?}"
        );
    }
}
