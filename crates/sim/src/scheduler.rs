//! Input-queued switch scheduling on top of the BNB fabric.
//!
//! A permutation network moves at most one record per input and per output
//! each pass. Real traffic is bursty — several records at one input, many
//! records for one output — so a switch wraps the fabric with input queues
//! and a scheduler that decomposes the demand into a sequence of partial
//! permutations (one fabric round each). This module implements that
//! wrapper with two disciplines:
//!
//! - [`QueueDiscipline::Fifo`] — one FIFO per input; only the head-of-line
//!   record may depart, exhibiting classic HOL blocking.
//! - [`QueueDiscipline::Voq`] — virtual output queues (one queue per
//!   input×output pair); the greedy matcher with rotating priority avoids
//!   HOL blocking entirely.
//!
//! Each round is routed through [`BnbNetwork::route_partial`], so every
//! delivery exercises the real self-routing fabric.

use std::collections::VecDeque;

use bnb_core::batch::FrameBatch;
use bnb_core::error::RouteError;
use bnb_core::network::BnbNetwork;
use bnb_obs::{NoopObserver, Observer, RoundEvent};
use bnb_topology::record::Record;
use serde::{Deserialize, Serialize};

/// How pending records are queued at the inputs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum QueueDiscipline {
    /// One FIFO per input; only the head may depart (HOL blocking).
    Fifo,
    /// Virtual output queues: per input×output FIFO, no HOL blocking.
    #[default]
    Voq,
}

/// Result of draining a traffic set through the switch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ScheduleStats {
    /// Fabric rounds used.
    pub rounds: usize,
    /// Records delivered.
    pub delivered: usize,
    /// The congestion lower bound: `max(max input backlog, max output
    /// demand)` — no schedule can beat this many rounds.
    pub lower_bound: usize,
}

impl ScheduleStats {
    /// Scheduling efficiency: `lower_bound / rounds` (1.0 = optimal).
    pub fn efficiency(&self) -> f64 {
        if self.rounds == 0 {
            1.0
        } else {
            self.lower_bound as f64 / self.rounds as f64
        }
    }
}

/// An input-queued switch around a BNB fabric.
///
/// # Example
///
/// ```
/// use bnb_core::network::BnbNetwork;
/// use bnb_sim::scheduler::{QueueDiscipline, VoqSwitch};
/// use bnb_topology::record::Record;
///
/// let mut sw = VoqSwitch::new(BnbNetwork::builder_for(4)?.build(), QueueDiscipline::Voq);
/// // Two records at input 0, for different outputs.
/// sw.offer(0, Record::new(2, 10))?;
/// sw.offer(0, Record::new(1, 11))?;
/// sw.offer(3, Record::new(0, 12))?;
/// let stats = sw.run_to_completion(16)?;
/// assert_eq!(stats.delivered, 3);
/// assert_eq!(stats.rounds, 2); // input 0 needs two rounds
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct VoqSwitch {
    network: BnbNetwork,
    discipline: QueueDiscipline,
    /// queues[input][output] for VOQ; queues[input][0] for FIFO.
    queues: Vec<Vec<VecDeque<Record>>>,
    /// Rotating priority pointer for fairness.
    priority: usize,
    delivered: Vec<Record>,
    /// Fabric rounds committed over this switch's lifetime (the `round`
    /// index reported in [`bnb_obs::RoundEvent`]s).
    rounds_run: u64,
}

impl VoqSwitch {
    /// A switch around `network` with the given discipline.
    pub fn new(network: BnbNetwork, discipline: QueueDiscipline) -> Self {
        let n = network.inputs();
        let per_input = match discipline {
            QueueDiscipline::Fifo => 1,
            QueueDiscipline::Voq => n,
        };
        VoqSwitch {
            network,
            discipline,
            queues: (0..n).map(|_| vec![VecDeque::new(); per_input]).collect(),
            priority: 0,
            delivered: Vec::new(),
            rounds_run: 0,
        }
    }

    /// The wrapped network.
    pub fn network(&self) -> &BnbNetwork {
        &self.network
    }

    /// Enqueues a record at `input`.
    ///
    /// # Errors
    ///
    /// Returns [`RouteError::DestinationTooWide`] /
    /// [`RouteError::WidthMismatch`] for malformed offers.
    pub fn offer(&mut self, input: usize, record: Record) -> Result<(), RouteError> {
        let n = self.network.inputs();
        if input >= n {
            return Err(RouteError::WidthMismatch {
                expected: n,
                actual: input,
            });
        }
        if record.dest() >= n {
            return Err(RouteError::DestinationTooWide {
                dest: record.dest(),
                n,
            });
        }
        let slot = match self.discipline {
            QueueDiscipline::Fifo => 0,
            QueueDiscipline::Voq => record.dest(),
        };
        self.queues[input][slot].push_back(record);
        Ok(())
    }

    /// Records still queued.
    pub fn backlog(&self) -> usize {
        self.queues.iter().flatten().map(VecDeque::len).sum()
    }

    /// Records delivered so far, in delivery order.
    pub fn delivered(&self) -> &[Record] {
        &self.delivered
    }

    /// The congestion lower bound of the *current* backlog.
    pub fn lower_bound(&self) -> usize {
        let n = self.network.inputs();
        let max_in = self
            .queues
            .iter()
            .map(|qs| qs.iter().map(VecDeque::len).sum())
            .fold(0, usize::max);
        let mut out_demand = vec![0usize; n];
        for qs in &self.queues {
            for q in qs {
                for r in q {
                    out_demand[r.dest()] += 1;
                }
            }
        }
        max_in.max(out_demand.into_iter().max().unwrap_or(0))
    }

    /// Runs one fabric round: greedily matches queued records to free
    /// outputs (respecting the discipline), routes the partial permutation
    /// through the BNB network, and dequeues the delivered records.
    ///
    /// Returns the number of records delivered this round.
    ///
    /// # Errors
    ///
    /// Propagates fabric errors (which cannot occur for traffic validated
    /// by [`VoqSwitch::offer`]).
    pub fn step(&mut self) -> Result<usize, RouteError> {
        self.step_observed(&NoopObserver)
    }

    /// [`VoqSwitch::step`] with an observer: after the round commits, one
    /// [`RoundEvent`] reports the round index, the matched (= delivered)
    /// count, and the backlog remaining after the round.
    ///
    /// # Errors
    ///
    /// Same contract as [`VoqSwitch::step`].
    pub fn step_observed<O: Observer>(&mut self, observer: &O) -> Result<usize, RouteError> {
        let (slots, picks) = self.plan_round();
        let outcome = self.network.route_partial_observed(&slots, observer)?;
        let mut count = 0usize;
        for delivered in outcome.outputs.iter().flatten() {
            self.delivered.push(*delivered);
            count += 1;
        }
        let round = self.rounds_run;
        self.commit_round(picks);
        if observer.enabled() {
            observer.scheduler_round(RoundEvent {
                round,
                matched: count,
                backlog: self.backlog(),
            });
        }
        Ok(count)
    }

    /// Greedily matches queued records to free outputs for one round,
    /// without touching the queues. Returns the per-input fabric slots and
    /// the `(input, queue slot)` picks to dequeue once the round is
    /// committed.
    ///
    /// The matching reads only the queue state and the rotating priority —
    /// never a routing result — so an entire drain can be planned up front
    /// and the rounds batch-routed afterwards (see
    /// [`VoqSwitch::run_to_completion_engine`]).
    #[allow(clippy::type_complexity)]
    fn plan_round(&self) -> (Vec<Option<Record>>, Vec<Option<(usize, usize)>>) {
        let n = self.network.inputs();
        let mut claimed = vec![false; n];
        let mut slots: Vec<Option<Record>> = vec![None; n];
        let mut picks: Vec<Option<(usize, usize)>> = vec![None; n]; // (input, queue slot)
        for off in 0..n {
            let input = (self.priority + off) % n;
            match self.discipline {
                QueueDiscipline::Fifo => {
                    if let Some(head) = self.queues[input][0].front() {
                        if !claimed[head.dest()] {
                            claimed[head.dest()] = true;
                            slots[input] = Some(*head);
                            picks[input] = Some((input, 0));
                        }
                        // else: HOL blocked — nothing departs from this
                        // input even if deeper records have free outputs.
                    }
                }
                QueueDiscipline::Voq => {
                    // Pick the first nonempty VOQ whose output is free,
                    // scanning outputs from the rotating pointer too.
                    for doff in 0..n {
                        let dest = (self.priority + doff) % n;
                        if claimed[dest] {
                            continue;
                        }
                        if let Some(head) = self.queues[input][dest].front() {
                            claimed[dest] = true;
                            slots[input] = Some(*head);
                            picks[input] = Some((input, dest));
                            break;
                        }
                    }
                }
            }
        }
        (slots, picks)
    }

    /// Dequeues a planned round's picks and advances the priority pointer.
    ///
    /// Returns the dequeued records with their queue coordinates, in pick
    /// order, so a caller that commits rounds ahead of routing them can
    /// undo the commit if routing later fails (see
    /// [`Self::uncommit_round`]).
    fn commit_round(&mut self, picks: Vec<Option<(usize, usize)>>) -> Vec<(usize, usize, Record)> {
        let mut undo = Vec::new();
        for pick in picks.into_iter().flatten() {
            let (input, slot) = pick;
            let record = self.queues[input][slot]
                .pop_front()
                .expect("planned picks reference queued records");
            undo.push((input, slot, record));
        }
        self.priority = (self.priority + 1) % self.network.inputs();
        self.rounds_run += 1;
        undo
    }

    /// Reverses one [`Self::commit_round`]: pushes the dequeued records
    /// back at their queue fronts and rewinds the priority pointer. Rounds
    /// must be uncommitted in reverse commit order (successive rounds may
    /// pop the same queue).
    fn uncommit_round(&mut self, undo: Vec<(usize, usize, Record)>) {
        for (input, slot, record) in undo.into_iter().rev() {
            self.queues[input][slot].push_front(record);
        }
        let n = self.network.inputs();
        self.priority = (self.priority + n - 1) % n;
        self.rounds_run -= 1;
    }

    /// Steps until the backlog drains or `max_rounds` is reached.
    ///
    /// # Errors
    ///
    /// Propagates fabric errors from [`VoqSwitch::step`].
    pub fn run_to_completion(&mut self, max_rounds: usize) -> Result<ScheduleStats, RouteError> {
        self.run_to_completion_observed(max_rounds, &NoopObserver)
    }

    /// [`VoqSwitch::run_to_completion`] with an observer receiving one
    /// [`RoundEvent`] per fabric round (see [`VoqSwitch::step_observed`]).
    ///
    /// # Errors
    ///
    /// Propagates fabric errors from [`VoqSwitch::step`].
    pub fn run_to_completion_observed<O: Observer>(
        &mut self,
        max_rounds: usize,
        observer: &O,
    ) -> Result<ScheduleStats, RouteError> {
        let lower_bound = self.lower_bound();
        let mut rounds = 0usize;
        let mut delivered = 0usize;
        while self.backlog() > 0 && rounds < max_rounds {
            delivered += self.step_observed(observer)?;
            rounds += 1;
        }
        Ok(ScheduleStats {
            rounds,
            delivered,
            lower_bound,
        })
    }

    /// Drains the backlog by batch-routing every round through the
    /// concurrent [`bnb_engine::Engine`] instead of round-by-round fabric
    /// calls.
    ///
    /// The greedy matching never looks at a routing result, so all rounds
    /// are planned up front, their destination-completed frames (see
    /// [`BnbNetwork::completed_frame`]) are pipelined through the engine's
    /// bounded queue, and deliveries are reconstructed in the same
    /// per-round output order — byte-identical state and `delivered()`
    /// sequence to [`VoqSwitch::run_to_completion`].
    ///
    /// The engine runs on the network's width-64 index sibling
    /// ([`BnbNetwork::index_sibling`]), since planned frames carry input
    /// indices as payloads.
    ///
    /// # Errors
    ///
    /// Propagates fabric errors (which cannot occur for traffic validated
    /// by [`VoqSwitch::offer`]). On error the switch state matches
    /// [`VoqSwitch::run_to_completion`]'s per-round semantics: rounds
    /// before the failing one are committed and delivered, while the
    /// failing round and everything planned after it are rolled back, so
    /// their records remain queued.
    pub fn run_to_completion_engine(
        &mut self,
        max_rounds: usize,
        config: bnb_engine::EngineConfig,
    ) -> Result<ScheduleStats, RouteError> {
        self.run_to_completion_engine_observed(max_rounds, config, &NoopObserver)
    }

    /// [`VoqSwitch::run_to_completion_engine`] with an observer. The
    /// observer is shared with the engine workers (batch submit/drain,
    /// shard hand-off, column and sweep events), and additionally receives
    /// the same per-round [`RoundEvent`] stream the sequential
    /// [`VoqSwitch::run_to_completion_observed`] drain would emit —
    /// reconstructed from the planned rounds, since the engine drain
    /// commits all rounds up front.
    ///
    /// # Errors
    ///
    /// Same contract as [`VoqSwitch::run_to_completion_engine`].
    pub fn run_to_completion_engine_observed<O: Observer>(
        &mut self,
        max_rounds: usize,
        config: bnb_engine::EngineConfig,
        observer: &O,
    ) -> Result<ScheduleStats, RouteError> {
        let lower_bound = self.lower_bound();
        let first_round = self.rounds_run;
        // Phase 1: plan every round (pure queue-state bookkeeping),
        // keeping each commit's undo log so unrouted rounds can be rolled
        // back if a later phase errors.
        let mut planned_slots = Vec::new();
        let mut undo_log = Vec::new();
        while self.backlog() > 0 && planned_slots.len() < max_rounds {
            let (slots, picks) = self.plan_round();
            planned_slots.push(slots);
            undo_log.push(self.commit_round(picks));
        }
        // Phase 2: one engine run routes all rounds; drain preserves
        // submission (= round) order, so `results[k]` is round `k`. A
        // frame-construction error ends submission early: it becomes that
        // round's result and later rounds simply have none.
        let engine =
            bnb_engine::Engine::with_observer(self.network.index_sibling(), config, observer);
        let mut results: Vec<Result<Vec<Record>, RouteError>> =
            Vec::with_capacity(planned_slots.len());
        engine.run(|h| {
            // Rounds are grouped into frame batches so the engine routes
            // them through the batched word-parallel kernel (full SWAR
            // occupancy however small the network); each frame still
            // drains as its own in-order result, so `results[k]` remains
            // round `k`. The group size trades kernel occupancy against
            // pipelining across workers.
            const FRAMES_PER_BATCH: usize = 32;
            let n = self.network.inputs();
            let mut group = FrameBatch::new(n);
            let mut pending = 0usize;
            for slots in &planned_slots {
                match self.network.completed_frame(slots) {
                    Ok(frame) => {
                        group.push_frame(&frame);
                        if group.frames() >= FRAMES_PER_BATCH {
                            pending += group.frames();
                            h.submit_batch(std::mem::replace(&mut group, FrameBatch::new(n)));
                        }
                    }
                    Err(e) => {
                        // Rounds planned before the failing one are
                        // already grouped; they must still route.
                        if !group.is_empty() {
                            pending += group.frames();
                            h.submit_batch(std::mem::replace(&mut group, FrameBatch::new(n)));
                        }
                        for _ in 0..pending {
                            let batch = h.drain().expect("every submitted round completes");
                            results.push(
                                batch
                                    .result
                                    .map_err(bnb_engine::EngineError::into_route_error),
                            );
                        }
                        results.push(Err(e));
                        return;
                    }
                }
                // Opportunistically collect finished rounds so results
                // don't pile up while we keep the queue fed.
                while let Some(batch) = h.try_drain() {
                    results.push(
                        batch
                            .result
                            .map_err(bnb_engine::EngineError::into_route_error),
                    );
                    pending -= 1;
                }
            }
            if !group.is_empty() {
                pending += group.frames();
                h.submit_batch(group);
            }
            for _ in 0..pending {
                let batch = h.drain().expect("every submitted round completes");
                results.push(
                    batch
                        .result
                        .map_err(bnb_engine::EngineError::into_route_error),
                );
            }
        });
        // Phase 3: reconstruct deliveries in per-round output order. The
        // first failed round stops delivery; it and every later planned
        // round are uncommitted (in reverse order) before propagating.
        let total = planned_slots.len();
        // Round events are reconstructed to match the sequential drain:
        // every planned slot delivers, so round `k`'s matched count is its
        // slot count and its post-round backlog is the committed backlog
        // plus everything still waiting in later planned rounds.
        let observing = observer.enabled();
        let matched_per_round: Vec<usize> = if observing {
            planned_slots
                .iter()
                .map(|s| s.iter().flatten().count())
                .collect()
        } else {
            Vec::new()
        };
        let mut later_matched: usize = matched_per_round.iter().sum();
        let committed_backlog = self.backlog();
        let mut delivered = 0usize;
        let mut applied = 0usize;
        let mut error = None;
        for (slots, result) in planned_slots.iter().zip(results) {
            match result {
                Ok(lines) => {
                    let outcome = bnb_core::partial::resolve_completed(slots, &lines);
                    for record in outcome.outputs.iter().flatten() {
                        self.delivered.push(*record);
                        delivered += 1;
                    }
                    if observing {
                        later_matched -= matched_per_round[applied];
                        observer.scheduler_round(RoundEvent {
                            round: first_round + applied as u64,
                            matched: matched_per_round[applied],
                            backlog: committed_backlog + later_matched,
                        });
                    }
                    applied += 1;
                }
                Err(e) => {
                    error = Some(e);
                    break;
                }
            }
        }
        if let Some(e) = error {
            for round_undo in undo_log.drain(applied..).rev() {
                self.uncommit_round(round_undo);
            }
            return Err(e);
        }
        Ok(ScheduleStats {
            rounds: total,
            delivered,
            lower_bound,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bnb_topology::perm::Permutation;
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    fn switch(m: usize, d: QueueDiscipline) -> VoqSwitch {
        VoqSwitch::new(BnbNetwork::new(m), d)
    }

    #[test]
    fn permutation_traffic_drains_in_one_round() {
        for d in [QueueDiscipline::Fifo, QueueDiscipline::Voq] {
            let mut sw = switch(3, d);
            let p = Permutation::try_from(vec![4, 2, 6, 0, 7, 1, 5, 3]).unwrap();
            for i in 0..8 {
                sw.offer(i, Record::new(p.apply(i), i as u64)).unwrap();
            }
            let stats = sw.run_to_completion(10).unwrap();
            assert_eq!(stats.rounds, 1, "{d:?}");
            assert_eq!(stats.delivered, 8);
            assert_eq!(stats.lower_bound, 1);
            assert!((stats.efficiency() - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn all_to_one_takes_exactly_n_rounds() {
        for d in [QueueDiscipline::Fifo, QueueDiscipline::Voq] {
            let mut sw = switch(3, d);
            for i in 0..8 {
                sw.offer(i, Record::new(5, i as u64)).unwrap();
            }
            let stats = sw.run_to_completion(100).unwrap();
            assert_eq!(stats.rounds, 8, "{d:?}: output 5 serializes");
            assert_eq!(stats.lower_bound, 8);
            assert_eq!(stats.delivered, 8);
        }
    }

    #[test]
    fn voq_avoids_hol_blocking_fifo_suffers() {
        // Classic HOL pattern at N = 4:
        //   input 0 queue: [dest 0, dest 1]
        //   input 1 queue: [dest 0, dest 2]
        // FIFO: round 1 delivers only one "dest 0" head; input 1 (or 0) is
        // blocked although dest 2 (or 1) is idle. VOQ delivers two records
        // per round by reaching past the blocked head.
        let build = |d| {
            let mut sw = switch(2, d);
            sw.offer(0, Record::new(0, 1)).unwrap();
            sw.offer(0, Record::new(1, 2)).unwrap();
            sw.offer(1, Record::new(0, 3)).unwrap();
            sw.offer(1, Record::new(2, 4)).unwrap();
            sw
        };
        let fifo = build(QueueDiscipline::Fifo).run_to_completion(100).unwrap();
        let voq = build(QueueDiscipline::Voq).run_to_completion(100).unwrap();
        assert_eq!(fifo.delivered, 4);
        assert_eq!(voq.delivered, 4);
        assert!(
            voq.rounds < fifo.rounds,
            "VOQ ({}) must beat FIFO ({}) on the HOL pattern",
            voq.rounds,
            fifo.rounds
        );
        assert_eq!(voq.rounds, voq.lower_bound);
    }

    #[test]
    fn random_traffic_drains_and_conserves() {
        let mut rng = StdRng::seed_from_u64(12);
        for d in [QueueDiscipline::Fifo, QueueDiscipline::Voq] {
            let mut sw = switch(4, d);
            let mut offered = Vec::new();
            for k in 0..200u64 {
                let input = rng.random_range(0..16);
                let r = Record::new(rng.random_range(0..16), k);
                sw.offer(input, r).unwrap();
                offered.push(r);
            }
            let stats = sw.run_to_completion(10_000).unwrap();
            assert_eq!(stats.delivered, 200, "{d:?}");
            assert_eq!(sw.backlog(), 0);
            assert!(stats.rounds >= stats.lower_bound);
            let mut got: Vec<Record> = sw.delivered().to_vec();
            got.sort();
            offered.sort();
            assert_eq!(got, offered, "{d:?}: traffic must be conserved");
        }
    }

    #[test]
    fn voq_efficiency_is_near_optimal_on_uniform_traffic() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut sw = switch(4, QueueDiscipline::Voq);
        for k in 0..400u64 {
            sw.offer(
                rng.random_range(0..16),
                Record::new(rng.random_range(0..16), k),
            )
            .unwrap();
        }
        let stats = sw.run_to_completion(10_000).unwrap();
        assert!(
            stats.efficiency() > 0.5,
            "VOQ greedy matching should stay within 2x of the bound, got {}",
            stats.efficiency()
        );
    }

    #[test]
    fn rotating_priority_is_starvation_free() {
        // All inputs compete for one output forever; the rotating pointer
        // must serve every input before any input is served twice.
        let mut sw = switch(3, QueueDiscipline::Voq);
        for i in 0..8 {
            for k in 0..3u64 {
                sw.offer(i, Record::new(0, (i as u64) * 10 + k)).unwrap();
            }
        }
        let stats = sw.run_to_completion(1000).unwrap();
        assert_eq!(stats.delivered, 24);
        // Group deliveries into rounds of 8: each group of 8 consecutive
        // deliveries must contain every input exactly once.
        let delivered = sw.delivered();
        for window in 0..3 {
            let mut sources: Vec<u64> = delivered[window * 8..(window + 1) * 8]
                .iter()
                .map(|r| r.data() / 10)
                .collect();
            sources.sort_unstable();
            assert_eq!(
                sources,
                (0..8).collect::<Vec<u64>>(),
                "window {window} starved someone"
            );
        }
    }

    #[test]
    fn engine_drain_matches_sequential_drain() {
        use bnb_engine::EngineConfig;
        let mut rng = StdRng::seed_from_u64(21);
        for d in [QueueDiscipline::Fifo, QueueDiscipline::Voq] {
            for workers in [1usize, 2, 4] {
                let mut seq = switch(3, d);
                for k in 0..60u64 {
                    let input = rng.random_range(0..8);
                    let r = Record::new(rng.random_range(0..8), k);
                    seq.offer(input, r).unwrap();
                }
                let mut eng = seq.clone();
                let seq_stats = seq.run_to_completion(1000).unwrap();
                let eng_stats = eng
                    .run_to_completion_engine(1000, EngineConfig::with_workers(workers))
                    .unwrap();
                assert_eq!(eng_stats, seq_stats, "{d:?} workers={workers}");
                assert_eq!(
                    eng.delivered(),
                    seq.delivered(),
                    "{d:?} workers={workers}: delivery order must be identical"
                );
                assert_eq!(eng.backlog(), 0);
            }
        }
    }

    /// The engine drain's reconstructed round events aggregate exactly
    /// like the sequential drain's live ones.
    #[test]
    fn observed_round_events_match_between_drains() {
        use bnb_engine::EngineConfig;
        use bnb_obs::Counters;
        let mut rng = StdRng::seed_from_u64(41);
        let mut seq = switch(3, QueueDiscipline::Voq);
        for k in 0..60u64 {
            seq.offer(
                rng.random_range(0..8),
                Record::new(rng.random_range(0..8), k),
            )
            .unwrap();
        }
        let mut eng = seq.clone();
        let seq_counters = Counters::new();
        let eng_counters = Counters::new();
        seq.run_to_completion_observed(1000, &seq_counters).unwrap();
        eng.run_to_completion_engine_observed(1000, EngineConfig::with_workers(2), &eng_counters)
            .unwrap();
        let a = seq_counters.snapshot();
        let b = eng_counters.snapshot();
        assert_eq!(a.scheduler_rounds, b.scheduler_rounds);
        assert_eq!(a.records_matched, b.records_matched);
        assert_eq!(a.max_round_backlog, b.max_round_backlog);
        assert!(
            b.batches_drained == b.scheduler_rounds,
            "the shared sink also sees one engine batch per round"
        );
    }

    #[test]
    fn engine_drain_respects_max_rounds() {
        use bnb_engine::EngineConfig;
        let mut sw = switch(2, QueueDiscipline::Voq);
        for i in 0..4 {
            sw.offer(i, Record::new(0, i as u64)).unwrap(); // all-to-one
        }
        let stats = sw
            .run_to_completion_engine(2, EngineConfig::with_workers(2))
            .unwrap();
        assert_eq!(stats.rounds, 2);
        assert_eq!(stats.delivered, 2);
        assert_eq!(sw.backlog(), 2);
    }

    /// Committing rounds ahead of routing (as the engine drain does) and
    /// rolling them back must restore the switch byte-for-byte, so an
    /// error mid-drain leaves undelivered records queued instead of lost.
    #[test]
    fn commit_round_undo_restores_switch_state() {
        let mut rng = StdRng::seed_from_u64(31);
        for d in [QueueDiscipline::Fifo, QueueDiscipline::Voq] {
            let mut sw = switch(3, d);
            for i in 0..8 {
                for k in 0..3u64 {
                    sw.offer(i, Record::new(rng.random_range(0..8), (i as u64) * 10 + k))
                        .unwrap();
                }
            }
            let reference = sw.clone();
            let mut undo_log = Vec::new();
            for _ in 0..3 {
                let (_slots, picks) = sw.plan_round();
                undo_log.push(sw.commit_round(picks));
            }
            assert!(sw.backlog() < reference.backlog(), "{d:?}: rounds dequeued");
            for undo in undo_log.into_iter().rev() {
                sw.uncommit_round(undo);
            }
            assert_eq!(sw.priority, reference.priority, "{d:?}");
            assert_eq!(sw.queues, reference.queues, "{d:?}");
            // The restored switch drains exactly like the untouched one.
            let mut restored = sw;
            let mut pristine = reference;
            let a = restored.run_to_completion(1000).unwrap();
            let b = pristine.run_to_completion(1000).unwrap();
            assert_eq!(a, b, "{d:?}");
            assert_eq!(restored.delivered(), pristine.delivered(), "{d:?}");
        }
    }

    #[test]
    fn offer_validates() {
        let mut sw = switch(2, QueueDiscipline::Voq);
        assert!(sw.offer(9, Record::new(0, 0)).is_err());
        assert!(sw.offer(0, Record::new(9, 0)).is_err());
    }

    #[test]
    fn empty_switch_completes_immediately() {
        let mut sw = switch(2, QueueDiscipline::Fifo);
        let stats = sw.run_to_completion(10).unwrap();
        assert_eq!(stats.rounds, 0);
        assert_eq!(stats.delivered, 0);
        assert!((stats.efficiency() - 1.0).abs() < 1e-12);
    }
}
