//! The classic baseline network: a GBN built from plain 2×2 switches with
//! destination-tag self-routing.
//!
//! This is the paper's *starting point* (§2, ref \[12\]), not its
//! contribution: the plain baseline network is **blocking** — destination-tag
//! routing fails for most permutations because two packets can demand the
//! same output of one 2×2 switch. The BNB network exists precisely to fix
//! this; this module exists to demonstrate the problem and to validate the
//! shared GBN wiring against an independent implementation.

use std::error::Error;
use std::fmt;

use crate::bitops::paper_bit;
use crate::error::TopologyError;
use crate::gbn::Gbn;
use crate::perm::Permutation;
use crate::record::{records_for_permutation, Record};

/// A destination-tag routing conflict inside a 2×2 switch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Blocked {
    /// Stage at which the conflict occurred.
    pub stage: usize,
    /// Switch index (from the top) within the stage.
    pub switch: usize,
    /// Destination of the packet on the upper input.
    pub upper_dest: usize,
    /// Destination of the packet on the lower input.
    pub lower_dest: usize,
}

impl fmt::Display for Blocked {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "destination-tag conflict at stage {}, switch {}: packets for {} and {} demand the same output",
            self.stage, self.switch, self.upper_dest, self.lower_dest
        )
    }
}

impl Error for Blocked {}

/// An `N = 2^m`-input baseline network of 2×2 switches.
///
/// # Example
///
/// ```
/// use bnb_topology::baseline::BaselineNetwork;
/// use bnb_topology::perm::Permutation;
///
/// let net = BaselineNetwork::with_inputs(8)?;
/// // The identity is destination-tag routable...
/// assert!(net.route(&Permutation::identity(8)).is_ok());
/// // ...but the baseline network is blocking: most permutations are not.
/// let swap = Permutation::try_from(vec![1, 0, 2, 3, 4, 5, 6, 7])?;
/// let _ = net.route(&swap); // may or may not block — see `is_admissible`
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BaselineNetwork {
    gbn: Gbn,
}

impl BaselineNetwork {
    /// A baseline network with `2^m` inputs.
    pub fn new(m: usize) -> Self {
        BaselineNetwork { gbn: Gbn::new(m) }
    }

    /// A baseline network with `n` inputs.
    ///
    /// # Errors
    ///
    /// Returns [`TopologyError::NotPowerOfTwo`] if `n` is not a power of two.
    pub fn with_inputs(n: usize) -> Result<Self, TopologyError> {
        Ok(BaselineNetwork {
            gbn: Gbn::with_inputs(n)?,
        })
    }

    /// The underlying GBN topology.
    pub fn gbn(&self) -> &Gbn {
        &self.gbn
    }

    /// Number of input lines.
    pub fn inputs(&self) -> usize {
        self.gbn.inputs()
    }

    /// Attempts to route `perm` by destination tags.
    ///
    /// At stage `i`, the packet destined for `d` demands the switch output
    /// whose parity equals paper address bit `i` of `d` (0 = even/upper).
    ///
    /// # Errors
    ///
    /// Returns [`Blocked`] describing the first conflicting switch, or —
    /// wrapped in the outer `Result` — a [`TopologyError::SizeMismatch`] if
    /// the permutation length differs from the network width.
    ///
    /// On success the returned records satisfy `out[j].dest() == j`.
    #[allow(clippy::type_complexity)]
    pub fn route(&self, perm: &Permutation) -> Result<Result<Vec<Record>, Blocked>, TopologyError> {
        let n = self.inputs();
        if perm.len() != n {
            return Err(TopologyError::SizeMismatch {
                expected: n,
                actual: perm.len(),
            });
        }
        let mut lines = records_for_permutation(perm);
        let m = self.gbn.m();
        for stage in 0..m {
            let mut next = vec![Record::new(0, 0); n];
            for sw in 0..n / 2 {
                let upper = lines[2 * sw];
                let lower = lines[2 * sw + 1];
                let want_upper = paper_bit(m, upper.dest(), stage);
                let want_lower = paper_bit(m, lower.dest(), stage);
                if want_upper == want_lower {
                    return Ok(Err(Blocked {
                        stage,
                        switch: sw,
                        upper_dest: upper.dest(),
                        lower_dest: lower.dest(),
                    }));
                }
                // bit 0 -> even (upper) output, bit 1 -> odd (lower) output.
                if want_upper {
                    next[2 * sw] = lower;
                    next[2 * sw + 1] = upper;
                } else {
                    next[2 * sw] = upper;
                    next[2 * sw + 1] = lower;
                }
            }
            if stage + 1 < m {
                let mut wired = vec![Record::new(0, 0); n];
                for (j, rec) in next.iter().enumerate() {
                    wired[self.gbn.next_line(stage, j)] = *rec;
                }
                lines = wired;
            } else {
                lines = next;
            }
        }
        Ok(Ok(lines))
    }

    /// `true` if `perm` is destination-tag routable on this network.
    ///
    /// # Panics
    ///
    /// Panics if the permutation length differs from the network width.
    pub fn is_admissible(&self, perm: &Permutation) -> bool {
        self.route(perm).expect("size checked by caller").is_ok()
    }

    /// The unique path of a *single* packet from input `src` to output
    /// `dst`, as the line index occupied at the entry of every stage plus
    /// the final output line. A lone packet never blocks — the baseline
    /// network has full single-path accessibility.
    ///
    /// # Panics
    ///
    /// Panics if `src` or `dst` is out of range.
    pub fn trace_path(&self, src: usize, dst: usize) -> Vec<usize> {
        let n = self.inputs();
        assert!(src < n && dst < n, "line indices must be < N");
        let m = self.gbn.m();
        let mut path = vec![src];
        let mut line = src;
        for stage in 0..m {
            let exit_parity = paper_bit(m, dst, stage);
            let switch_base = line & !1;
            let out = switch_base | usize::from(exit_parity);
            line = if stage + 1 < m {
                self.gbn.next_line(stage, out)
            } else {
                out
            };
            path.push(line);
        }
        path
    }

    /// Counts how many of the `n!` permutations are admissible. Intended
    /// for tiny networks (`n <= 8`) in tests and reports.
    ///
    /// # Panics
    ///
    /// Panics if `n! > u64::MAX` would overflow (n > 20).
    pub fn count_admissible(&self) -> u64 {
        let n = self.inputs();
        let total: u64 = (1..=n as u64).product();
        (0..total)
            .filter(|&k| self.is_admissible(&Permutation::nth_lexicographic(n, k)))
            .count() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_packets_always_route() {
        let net = BaselineNetwork::with_inputs(16).unwrap();
        for src in 0..16 {
            for dst in 0..16 {
                let path = net.trace_path(src, dst);
                assert_eq!(path.len(), 5); // m = 4 stages + source
                assert_eq!(
                    *path.last().unwrap(),
                    dst,
                    "packet {src}->{dst} misdelivered"
                );
            }
        }
    }

    #[test]
    fn bit_reversal_is_admissible() {
        // The baseline network's "natural" permutation: with all switches
        // straight it realizes the bit-reversal, so destination tags for the
        // bit-reversal never conflict. (The identity, by contrast, blocks
        // for m >= 2 — see `identity_blocks_for_m_at_least_2`.)
        for m in 1..=6 {
            let net = BaselineNetwork::new(m);
            let n = net.inputs();
            let rev = Permutation::from_fn(n, |i| crate::bitops::bit_reverse(m, i)).unwrap();
            let out = net.route(&rev).unwrap().unwrap();
            assert!(crate::record::all_delivered(&out));
        }
    }

    #[test]
    fn identity_blocks_for_m_at_least_2() {
        // Inputs 0 and 1 share a stage-0 switch but both have MSB 0, so both
        // demand the even output: the plain baseline cannot even route the
        // identity. This is the motivating deficiency the BNB network fixes.
        for m in 2..=5 {
            let net = BaselineNetwork::new(m);
            let res = net.route(&Permutation::identity(net.inputs())).unwrap();
            let b = res.unwrap_err();
            assert_eq!(b.stage, 0);
            assert_eq!(b.switch, 0);
            assert_eq!((b.upper_dest, b.lower_dest), (0, 1));
        }
    }

    #[test]
    fn successful_routes_deliver_correctly() {
        let net = BaselineNetwork::with_inputs(8).unwrap();
        let mut delivered = 0;
        for k in 0..40_320 {
            let p = Permutation::nth_lexicographic(8, k);
            if let Ok(out) = net.route(&p).unwrap() {
                delivered += 1;
                assert!(crate::record::all_delivered(&out), "perm {p} mis-delivered");
            }
        }
        assert!(delivered > 0);
    }

    #[test]
    fn baseline_is_blocking() {
        // The whole point: the plain baseline network cannot route all
        // permutations. For N = 4 there are 4 switches, so at most
        // 2^4 = 16 < 24 switch settings — at least 8 permutations block.
        let net = BaselineNetwork::with_inputs(4).unwrap();
        let admissible = net.count_admissible();
        assert!(admissible < 24, "baseline must be blocking");
        assert!(admissible > 0);
        // In fact exactly 2^(m*N/2) distinct settings each realize a distinct
        // permutation here: every setting of the 4 switches yields a
        // permutation, so exactly 16 are admissible.
        assert_eq!(admissible, 16);
    }

    #[test]
    fn blocked_error_identifies_conflict() {
        let net = BaselineNetwork::with_inputs(4).unwrap();
        // Find a blocked permutation and check the error payload.
        let mut found = false;
        for k in 0..24 {
            let p = Permutation::nth_lexicographic(4, k);
            if let Err(b) = net.route(&p).unwrap() {
                found = true;
                assert!(b.stage < 2);
                assert!(b.switch < 2);
                let msg = b.to_string();
                assert!(msg.contains("conflict"));
                break;
            }
        }
        assert!(found, "some permutation must block on N=4 baseline");
    }

    #[test]
    fn route_rejects_wrong_size() {
        let net = BaselineNetwork::with_inputs(8).unwrap();
        let err = net.route(&Permutation::identity(4)).unwrap_err();
        assert_eq!(
            err,
            TopologyError::SizeMismatch {
                expected: 8,
                actual: 4
            }
        );
    }

    #[test]
    fn admissible_count_matches_switch_settings_for_n8() {
        // For the baseline network every switch-setting vector realizes a
        // distinct permutation, so admissible = 2^(#switches) when
        // 2^(#switches) <= n!. For N = 8: 12 switches -> 4096.
        let net = BaselineNetwork::with_inputs(8).unwrap();
        assert_eq!(net.count_admissible(), 4096);
    }
}
