//! The Generalized Baseline Network (GBN) topology of Definition 2.
//!
//! An `N = 2^m`-input GBN has `m` stages; stage `i` holds `2^i` switching
//! boxes of size `2^{m-i} × 2^{m-i}`, and the wiring between stage `i` and
//! stage `i+1` is the `2^{m-i}`-unshuffle `U_{m-i}^m`. The switching boxes
//! are left abstract here — the BNB core instantiates them as nested
//! networks or splitters, the plain baseline network as 2×2 switches.
//!
//! [`Gbn`] is a *pure topology descriptor*: it answers structural questions
//! (which box does line `j` of stage `i` belong to? where does output `j`
//! go?) and never allocates per-line state, so it is cheap to construct for
//! any `m`.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::connection::{baseline_connection, require_power_of_two, Connection};
use crate::error::TopologyError;

/// Position of a switching box inside a GBN: stage and index from the top.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct BoxId {
    /// Stage (column) of the main network, `0..m`.
    pub stage: usize,
    /// Index of the box from the top of its stage, `0..2^stage`.
    pub index: usize,
}

impl fmt::Display for BoxId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "NB({},{})", self.stage, self.index)
    }
}

/// Topology descriptor for an `N = 2^m`-input Generalized Baseline Network.
///
/// # Example
///
/// ```
/// use bnb_topology::gbn::Gbn;
///
/// let g = Gbn::with_inputs(8)?; // the B(3, SB) of paper Fig. 1
/// assert_eq!(g.stages(), 3);
/// assert_eq!(g.boxes_in_stage(0), 1);  // one SB(3)
/// assert_eq!(g.boxes_in_stage(1), 2);  // two SB(2)'s
/// assert_eq!(g.box_size(1), 4);
/// # Ok::<(), bnb_topology::TopologyError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Gbn {
    m: usize,
}

impl Gbn {
    /// A GBN with `2^m` inputs and `m` stages.
    pub fn new(m: usize) -> Self {
        Gbn { m }
    }

    /// A GBN with `n` inputs.
    ///
    /// # Errors
    ///
    /// Returns [`TopologyError::NotPowerOfTwo`] if `n` is not a power of two.
    pub fn with_inputs(n: usize) -> Result<Self, TopologyError> {
        Ok(Gbn {
            m: require_power_of_two(n)?,
        })
    }

    /// `log2` of the input count.
    pub fn m(&self) -> usize {
        self.m
    }

    /// Number of input (and output) lines, `N = 2^m`.
    pub fn inputs(&self) -> usize {
        1 << self.m
    }

    /// Number of stages (`m`).
    pub fn stages(&self) -> usize {
        self.m
    }

    /// Number of switching boxes in stage `i` (`2^i`).
    ///
    /// # Panics
    ///
    /// Panics if `i >= m`.
    pub fn boxes_in_stage(&self, i: usize) -> usize {
        assert!(i < self.m, "stage must be < m");
        1 << i
    }

    /// Line count of each box in stage `i` (`2^{m-i}`).
    ///
    /// # Panics
    ///
    /// Panics if `i >= m`.
    pub fn box_size(&self, i: usize) -> usize {
        assert!(i < self.m, "stage must be < m");
        1 << (self.m - i)
    }

    /// `log2` of the box size in stage `i` (`m - i`).
    ///
    /// # Panics
    ///
    /// Panics if `i >= m`.
    pub fn box_size_log(&self, i: usize) -> usize {
        assert!(i < self.m, "stage must be < m");
        self.m - i
    }

    /// The box that line `j` of stage `i` belongs to, together with the
    /// line's local index within the box.
    ///
    /// Lines are numbered top-to-bottom; box `b` of stage `i` owns the
    /// contiguous lines `b·2^{m-i} .. (b+1)·2^{m-i}`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= m` or `j >= 2^m`.
    pub fn locate(&self, i: usize, j: usize) -> (BoxId, usize) {
        assert!(i < self.m, "stage must be < m");
        assert!(j < self.inputs(), "line must be < N");
        let size_log = self.m - i;
        (
            BoxId {
                stage: i,
                index: j >> size_log,
            },
            j & ((1 << size_log) - 1),
        )
    }

    /// The global line index of local line `local` of box `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range or `local >= box size`.
    pub fn line_of(&self, id: BoxId, local: usize) -> usize {
        assert!(id.stage < self.m, "stage must be < m");
        assert!(
            id.index < self.boxes_in_stage(id.stage),
            "box index out of range"
        );
        let size_log = self.m - id.stage;
        assert!(local < (1 << size_log), "local line out of range");
        (id.index << size_log) | local
    }

    /// The wiring between stage `i` and stage `i+1`: `U_{m-i}^m`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= m - 1` (there is no wiring after the last stage).
    pub fn connection_after(&self, i: usize) -> Connection {
        assert!(i + 1 < self.m, "no inter-stage wiring after the last stage");
        baseline_connection(self.m, i)
    }

    /// Where output line `j` of stage `i` enters stage `i+1`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= m - 1` or `j >= 2^m`.
    pub fn next_line(&self, i: usize, j: usize) -> usize {
        self.connection_after(i).apply(self.m, j)
    }

    /// The two child boxes of `id` in the next stage. Box `NB(i,l)` feeds
    /// `NB(i+1, 2l)` (its even outputs) and `NB(i+1, 2l+1)` (its odd
    /// outputs) — the recursion of paper §3.3.
    ///
    /// Returns `None` for boxes in the last stage.
    pub fn children(&self, id: BoxId) -> Option<(BoxId, BoxId)> {
        if id.stage + 1 >= self.m {
            return None;
        }
        Some((
            BoxId {
                stage: id.stage + 1,
                index: 2 * id.index,
            },
            BoxId {
                stage: id.stage + 1,
                index: 2 * id.index + 1,
            },
        ))
    }

    /// Iterator over every box in the network, stage-major, top-to-bottom.
    pub fn boxes(&self) -> impl Iterator<Item = BoxId> + '_ {
        (0..self.m).flat_map(move |stage| {
            (0..self.boxes_in_stage(stage)).map(move |index| BoxId { stage, index })
        })
    }

    /// Total number of switching boxes (`2^m - 1`).
    pub fn box_count(&self) -> usize {
        (1 << self.m) - 1
    }

    /// Total 2×2 switches if every box is built from 2×2 primitives,
    /// `sw(k)` containing `2^{k-1}` switches per internal stage × `k`
    /// stages... for the *flat* baseline instantiation this is simply
    /// `m · N/2` (each stage is one column of `N/2` switches).
    pub fn flat_switch_count(&self) -> usize {
        self.m * (self.inputs() / 2)
    }

    /// Verifies the defining structural property: the wiring after stage `i`
    /// sends the even local outputs of each box to its upper child and the
    /// odd local outputs to its lower child. Used by tests and debug builds.
    pub fn verify_structure(&self) -> Result<(), TopologyError> {
        for i in 0..self.m.saturating_sub(1) {
            for j in 0..self.inputs() {
                let (src_box, local) = self.locate(i, j);
                let nj = self.next_line(i, j);
                let (dst_box, _) = self.locate(i + 1, nj);
                let (upper, lower) = self.children(src_box).expect("not last stage");
                let expected = if local % 2 == 0 { upper } else { lower };
                if dst_box != expected {
                    return Err(TopologyError::IndexOutOfBounds {
                        what: "misrouted line",
                        index: j,
                        bound: self.inputs(),
                    });
                }
            }
        }
        Ok(())
    }
}

impl fmt::Display for Gbn {
    /// The paper's notation, e.g. `B(3, SB)` for 8 inputs.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "B({}, SB)", self.m)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eight_input_gbn_matches_fig1() {
        // Fig. 1: B(3, SB) — stage 0 has 1 SB(3), stage 1 has 2 SB(2)'s,
        // stage 2 has 4 SB(1)'s.
        let g = Gbn::with_inputs(8).unwrap();
        assert_eq!(g.stages(), 3);
        assert_eq!(g.boxes_in_stage(0), 1);
        assert_eq!(g.box_size(0), 8);
        assert_eq!(g.boxes_in_stage(1), 2);
        assert_eq!(g.box_size(1), 4);
        assert_eq!(g.boxes_in_stage(2), 4);
        assert_eq!(g.box_size(2), 2);
        assert_eq!(g.box_count(), 7);
    }

    #[test]
    fn with_inputs_rejects_non_powers() {
        assert!(Gbn::with_inputs(12).is_err());
        assert!(Gbn::with_inputs(16).is_ok());
    }

    #[test]
    fn locate_and_line_of_roundtrip() {
        let g = Gbn::new(4);
        for i in 0..g.stages() {
            for j in 0..g.inputs() {
                let (id, local) = g.locate(i, j);
                assert_eq!(g.line_of(id, local), j);
            }
        }
    }

    #[test]
    fn structure_verifies_for_many_sizes() {
        for m in 1..=8 {
            Gbn::new(m).verify_structure().unwrap();
        }
    }

    #[test]
    fn children_follow_even_odd_split() {
        let g = Gbn::new(3);
        let root = BoxId { stage: 0, index: 0 };
        let (u, l) = g.children(root).unwrap();
        assert_eq!(u, BoxId { stage: 1, index: 0 });
        assert_eq!(l, BoxId { stage: 1, index: 1 });
        // last stage has no children
        assert!(g.children(BoxId { stage: 2, index: 0 }).is_none());
    }

    #[test]
    fn even_outputs_reach_upper_child() {
        let g = Gbn::new(3);
        // Box NB(0,0) local output 0 (even) must land in NB(1,0).
        let j = g.line_of(BoxId { stage: 0, index: 0 }, 0);
        let nj = g.next_line(0, j);
        let (dst, _) = g.locate(1, nj);
        assert_eq!(dst, BoxId { stage: 1, index: 0 });
        // local output 1 (odd) must land in NB(1,1).
        let j = g.line_of(BoxId { stage: 0, index: 0 }, 1);
        let nj = g.next_line(0, j);
        let (dst, _) = g.locate(1, nj);
        assert_eq!(dst, BoxId { stage: 1, index: 1 });
    }

    #[test]
    fn boxes_iterator_counts_all() {
        let g = Gbn::new(4);
        assert_eq!(g.boxes().count(), g.box_count());
        // First box is the root, last is the bottom box of the last stage.
        let all: Vec<BoxId> = g.boxes().collect();
        assert_eq!(all[0], BoxId { stage: 0, index: 0 });
        assert_eq!(*all.last().unwrap(), BoxId { stage: 3, index: 7 });
    }

    #[test]
    fn flat_switch_count_is_m_times_half_n() {
        let g = Gbn::new(5);
        assert_eq!(g.flat_switch_count(), 5 * 16);
    }

    #[test]
    fn display_matches_paper_notation() {
        assert_eq!(Gbn::new(3).to_string(), "B(3, SB)");
        assert_eq!(BoxId { stage: 1, index: 0 }.to_string(), "NB(1,0)");
    }

    #[test]
    #[should_panic(expected = "no inter-stage wiring")]
    fn connection_after_last_stage_panics() {
        let g = Gbn::new(3);
        let _ = g.connection_after(2);
    }
}
