//! Index/bit transforms underlying baseline-class networks.
//!
//! The central operation is the paper's `2^k`-unshuffle (Definition 1): for
//! an `m`-bit line index `i = (b_{m-1} … b_k  b_{k-1} … b_1 b_0)`,
//!
//! ```text
//! U_k^m(i) = (b_{m-1} … b_k  b_0  b_{k-1} … b_1)
//! ```
//!
//! i.e. the low `k` bits are rotated **right** by one position while the high
//! `m-k` bits stay put. Between stage `i` and stage `i+1` of a baseline
//! network the wiring is `U_{m-i}^m`, which keeps the top `i` bits (the
//! sub-network identifier) fixed and unshuffles within each `2^{m-i}`-line
//! block — this is what confines traffic to recursively smaller sub-networks.
//!
//! The paper indexes address bits MSB-first (`b^0(I)` is the most significant
//! address bit). [`paper_bit`] translates that convention to machine bit
//! positions.

/// The `2^k`-unshuffle of the `m`-bit index `i` (paper Definition 1):
/// rotates the low `k` bits of `i` right by one.
///
/// # Panics
///
/// Panics if `k == 0`, `k > m`, `m > usize::BITS as usize`, or
/// `i >= 2^m`.
///
/// # Example
///
/// ```
/// use bnb_topology::bitops::unshuffle;
/// // m = 3, k = 3: 011 -> 101 (b0=1 moves to the top of the low field)
/// assert_eq!(unshuffle(3, 3, 0b011), 0b101);
/// // k = 2 leaves bit 2 alone: 110 -> 101
/// assert_eq!(unshuffle(2, 3, 0b110), 0b101);
/// ```
pub fn unshuffle(k: usize, m: usize, i: usize) -> usize {
    check_args(k, m, i);
    let low_mask = (1usize << k) - 1;
    let high = i & !low_mask;
    let low = i & low_mask;
    let rotated = (low >> 1) | ((low & 1) << (k - 1));
    high | rotated
}

/// The `2^k`-shuffle of the `m`-bit index `i`: the inverse of
/// [`unshuffle`], rotating the low `k` bits left by one.
///
/// # Panics
///
/// Panics under the same conditions as [`unshuffle`].
///
/// # Example
///
/// ```
/// use bnb_topology::bitops::{shuffle, unshuffle};
/// for i in 0..8 {
///     assert_eq!(shuffle(3, 3, unshuffle(3, 3, i)), i);
/// }
/// ```
pub fn shuffle(k: usize, m: usize, i: usize) -> usize {
    check_args(k, m, i);
    let low_mask = (1usize << k) - 1;
    let high = i & !low_mask;
    let low = i & low_mask;
    let rotated = ((low << 1) & low_mask) | (low >> (k - 1));
    high | rotated
}

/// Reverses the low `m` bits of `i` (the bit-reversal permutation used by
/// FFT data layouts and as an adversarial wiring in ablation A2).
///
/// # Panics
///
/// Panics if `m > usize::BITS as usize` or `i >= 2^m`.
///
/// # Example
///
/// ```
/// use bnb_topology::bitops::bit_reverse;
/// assert_eq!(bit_reverse(3, 0b001), 0b100);
/// assert_eq!(bit_reverse(3, 0b110), 0b011);
/// ```
pub fn bit_reverse(m: usize, i: usize) -> usize {
    assert!(m <= usize::BITS as usize, "m must fit in usize");
    assert!(
        m == usize::BITS as usize || i < (1usize << m),
        "index must be < 2^m"
    );
    let mut out = 0usize;
    for b in 0..m {
        if i & (1 << b) != 0 {
            out |= 1 << (m - 1 - b);
        }
    }
    out
}

/// The butterfly (cube) exchange on dimension `d`: flips bit `d` of `i`.
///
/// # Panics
///
/// Panics if `d >= m` or `i >= 2^m`.
pub fn cube_exchange(d: usize, m: usize, i: usize) -> usize {
    assert!(d < m, "dimension must be < m");
    assert!(i < (1usize << m), "index must be < 2^m");
    i ^ (1 << d)
}

/// Paper address bit `k` of `addr`, where bit 0 is the **most significant**
/// of `m` address bits (the paper's `b^k_{i,j}(I)` convention, §3.2).
///
/// # Panics
///
/// Panics if `k >= m` or `addr >= 2^m`.
///
/// # Example
///
/// ```
/// use bnb_topology::bitops::paper_bit;
/// // addr 0b110 with m = 3: paper bit 0 (MSB) is 1, bit 2 (LSB) is 0.
/// assert_eq!(paper_bit(3, 0b110, 0), true);
/// assert_eq!(paper_bit(3, 0b110, 2), false);
/// ```
pub fn paper_bit(m: usize, addr: usize, k: usize) -> bool {
    assert!(k < m, "paper bit index must be < m");
    assert!(addr < (1usize << m), "address must be < 2^m");
    (addr >> (m - 1 - k)) & 1 == 1
}

/// Base-2 logarithm of a power of two.
///
/// # Panics
///
/// Panics if `n` is not a power of two.
pub fn log2_exact(n: usize) -> usize {
    assert!(n.is_power_of_two(), "{n} is not a power of two");
    n.trailing_zeros() as usize
}

fn check_args(k: usize, m: usize, i: usize) {
    assert!(k >= 1, "k must be at least 1");
    assert!(k <= m, "k must be <= m");
    assert!(m <= usize::BITS as usize, "m must fit in usize");
    assert!(
        m == usize::BITS as usize || i < (1usize << m),
        "index must be < 2^m"
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::perm::Permutation;

    #[test]
    fn unshuffle_matches_paper_definition() {
        // Paper: U_k^m(b_{m-1}..b_k b_{k-1}..b_0) = (b_{m-1}..b_k b_0 b_{k-1}..b_1).
        // m = 4, k = 3, i = 0b1_011: high bit 1 kept; low 011 -> 101.
        assert_eq!(unshuffle(3, 4, 0b1011), 0b1101);
        // k = m = 4: 0001 -> 1000 (even/odd split: odd lines go to top half? no:
        // b0 becomes the MSB of the rotated field).
        assert_eq!(unshuffle(4, 4, 0b0001), 0b1000);
        assert_eq!(unshuffle(4, 4, 0b0010), 0b0001);
    }

    #[test]
    fn unshuffle_is_a_permutation_for_all_k() {
        for m in 1..=6 {
            for k in 1..=m {
                let images: Vec<usize> = (0..(1 << m)).map(|i| unshuffle(k, m, i)).collect();
                assert!(
                    Permutation::try_from(images).is_ok(),
                    "U_{k}^{m} must be a bijection"
                );
            }
        }
    }

    #[test]
    fn shuffle_inverts_unshuffle() {
        for m in 1..=6 {
            for k in 1..=m {
                for i in 0..(1usize << m) {
                    assert_eq!(shuffle(k, m, unshuffle(k, m, i)), i);
                    assert_eq!(unshuffle(k, m, shuffle(k, m, i)), i);
                }
            }
        }
    }

    #[test]
    fn unshuffle_preserves_high_bits() {
        // U_{m-i}^m must keep the top i bits fixed: sub-network confinement.
        let m = 5;
        for stage in 0..m {
            let k = m - stage;
            for i in 0..(1usize << m) {
                let j = unshuffle(k, m, i);
                assert_eq!(i >> k, j >> k, "top bits must be preserved");
            }
        }
    }

    #[test]
    fn full_unshuffle_sends_even_to_top_half() {
        // Even-indexed lines land in the top half, odd in the bottom half:
        // this is what routes bit-sorted outputs into the two sub-networks.
        let m = 4;
        for i in 0..(1usize << m) {
            let j = unshuffle(m, m, i);
            if i % 2 == 0 {
                assert!(j < (1 << (m - 1)), "even line {i} must go to top half");
            } else {
                assert!(j >= (1 << (m - 1)), "odd line {i} must go to bottom half");
            }
        }
    }

    #[test]
    fn unshuffle_k1_is_identity() {
        for i in 0..16 {
            assert_eq!(unshuffle(1, 4, i), i);
        }
    }

    #[test]
    fn bit_reverse_is_involution() {
        for m in 1..=8 {
            for i in 0..(1usize << m) {
                assert_eq!(bit_reverse(m, bit_reverse(m, i)), i);
            }
        }
    }

    #[test]
    fn cube_exchange_flips_one_bit() {
        assert_eq!(cube_exchange(0, 3, 0b010), 0b011);
        assert_eq!(cube_exchange(2, 3, 0b010), 0b110);
        // involution
        for d in 0..3 {
            for i in 0..8 {
                assert_eq!(cube_exchange(d, 3, cube_exchange(d, 3, i)), i);
            }
        }
    }

    #[test]
    fn paper_bit_is_msb_first() {
        let addr = 0b0110;
        assert!(!paper_bit(4, addr, 0));
        assert!(paper_bit(4, addr, 1));
        assert!(paper_bit(4, addr, 2));
        assert!(!paper_bit(4, addr, 3));
    }

    #[test]
    fn log2_exact_works_on_powers() {
        assert_eq!(log2_exact(1), 0);
        assert_eq!(log2_exact(2), 1);
        assert_eq!(log2_exact(1024), 10);
    }

    #[test]
    #[should_panic(expected = "not a power of two")]
    fn log2_exact_rejects_non_powers() {
        let _ = log2_exact(12);
    }

    #[test]
    #[should_panic(expected = "k must be at least 1")]
    fn unshuffle_rejects_k_zero() {
        let _ = unshuffle(0, 3, 1);
    }

    #[test]
    #[should_panic(expected = "index must be < 2^m")]
    fn unshuffle_rejects_large_index() {
        let _ = unshuffle(2, 3, 8);
    }
}
