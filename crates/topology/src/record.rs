//! The `(address, data)` words that flow through every network in this
//! workspace.
//!
//! Paper §3.2: each input word has `q = m + w` bits — an `m`-bit destination
//! address (paper bit 0 = MSB) followed by a `w`-bit data word. [`Record`]
//! models that word with the address kept as a `usize` and up to 64 data
//! bits; the networks route records and the tests then check that every
//! record arrived at `dest`.

use std::cmp::Ordering;
use std::fmt;

use serde::{Deserialize, Serialize};

use crate::bitops::paper_bit;

/// One routable word: destination address plus data payload.
///
/// Records order by destination address (then data), which is exactly the
/// order a sorting network must realize to deliver them.
///
/// # Example
///
/// ```
/// use bnb_topology::record::Record;
///
/// let r = Record::new(5, 0xBEEF);
/// assert_eq!(r.dest(), 5);
/// assert_eq!(r.data(), 0xBEEF);
/// // paper bit 0 is the MSB of a 3-bit address: 5 = 0b101.
/// assert!(r.address_bit(3, 0));
/// assert!(!r.address_bit(3, 1));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Record {
    dest: usize,
    data: u64,
}

impl Record {
    /// A record destined for output `dest` carrying `data`.
    pub fn new(dest: usize, data: u64) -> Self {
        Record { dest, data }
    }

    /// The destination output line.
    pub fn dest(&self) -> usize {
        self.dest
    }

    /// The data payload.
    pub fn data(&self) -> u64 {
        self.data
    }

    /// Paper address bit `k` (bit 0 = MSB of the `m`-bit address).
    ///
    /// # Panics
    ///
    /// Panics if `k >= m` or the destination does not fit in `m` bits.
    pub fn address_bit(&self, m: usize, k: usize) -> bool {
        paper_bit(m, self.dest, k)
    }
}

impl PartialOrd for Record {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Record {
    /// Orders by destination, then by data — the delivery order.
    fn cmp(&self, other: &Self) -> Ordering {
        self.dest.cmp(&other.dest).then(self.data.cmp(&other.data))
    }
}

impl fmt::Display for Record {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}←{:#x}", self.dest, self.data)
    }
}

impl From<(usize, u64)> for Record {
    fn from((dest, data): (usize, u64)) -> Self {
        Record::new(dest, data)
    }
}

/// Builds the input record vector for a permutation: input `i` carries a
/// record destined for `perm.apply(i)`, with `data = i` so tests can check
/// *which* record arrived, not just *that* one arrived.
///
/// # Example
///
/// ```
/// use bnb_topology::perm::Permutation;
/// use bnb_topology::record::records_for_permutation;
///
/// let p = Permutation::try_from(vec![1, 0])?;
/// let recs = records_for_permutation(&p);
/// assert_eq!(recs[0].dest(), 1);
/// assert_eq!(recs[0].data(), 0);
/// # Ok::<(), bnb_topology::TopologyError>(())
/// ```
pub fn records_for_permutation(perm: &crate::perm::Permutation) -> Vec<Record> {
    (0..perm.len())
        .map(|i| Record::new(perm.apply(i), i as u64))
        .collect()
}

/// Checks that `outputs[j].dest() == j` for all `j` — every record landed on
/// its destination line. This is the success criterion shared by all
/// permutation-network tests.
pub fn all_delivered(outputs: &[Record]) -> bool {
    outputs.iter().enumerate().all(|(j, r)| r.dest() == j)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::perm::Permutation;

    #[test]
    fn accessors_return_constructor_values() {
        let r = Record::new(3, 99);
        assert_eq!(r.dest(), 3);
        assert_eq!(r.data(), 99);
    }

    #[test]
    fn ordering_is_by_destination_then_data() {
        let a = Record::new(1, 50);
        let b = Record::new(2, 0);
        let c = Record::new(1, 60);
        assert!(a < b);
        assert!(a < c);
        assert!(c < b);
    }

    #[test]
    fn address_bit_uses_paper_convention() {
        let r = Record::new(0b011, 0);
        assert!(!r.address_bit(3, 0)); // MSB
        assert!(r.address_bit(3, 1));
        assert!(r.address_bit(3, 2)); // LSB
    }

    #[test]
    fn records_for_permutation_tags_data_with_source() {
        let p = Permutation::try_from(vec![2, 0, 1]).unwrap();
        let recs = records_for_permutation(&p);
        for (i, r) in recs.iter().enumerate() {
            assert_eq!(r.data(), i as u64);
            assert_eq!(r.dest(), p.apply(i));
        }
    }

    #[test]
    fn all_delivered_detects_misrouting() {
        let good = vec![Record::new(0, 9), Record::new(1, 8)];
        let bad = vec![Record::new(1, 9), Record::new(0, 8)];
        assert!(all_delivered(&good));
        assert!(!all_delivered(&bad));
    }

    #[test]
    fn sorting_records_realizes_delivery_order() {
        let p = Permutation::try_from(vec![3, 1, 0, 2]).unwrap();
        let mut recs = records_for_permutation(&p);
        recs.sort();
        assert!(all_delivered(&recs));
    }

    #[test]
    fn display_shows_dest_and_data() {
        assert_eq!(Record::new(2, 255).to_string(), "2←0xff");
    }

    #[test]
    fn from_tuple_conversion() {
        let r: Record = (4, 7).into();
        assert_eq!(r, Record::new(4, 7));
    }
}
