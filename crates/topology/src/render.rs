//! Text renderers for the structural figures of the paper.
//!
//! These regenerate Fig. 1 (the recursive GBN structure) and the wiring
//! diagrams as ASCII art and Graphviz DOT. The renderers draw from the
//! *constructed* topology objects, so the output is evidence of what the
//! code actually builds, not a hand-drawn picture.

use std::fmt::Write as _;

use crate::connection::Connection;
use crate::gbn::Gbn;

/// Renders the stage/box structure of a GBN as ASCII art — the content of
/// paper Fig. 1 for `m = 3`.
///
/// Each column is one stage; each cell names the switching box exactly as
/// the paper does (`SB(k)` is a `2^k × 2^k` box).
///
/// # Example
///
/// ```
/// use bnb_topology::gbn::Gbn;
/// use bnb_topology::render::render_gbn_ascii;
///
/// let art = render_gbn_ascii(&Gbn::new(3));
/// assert!(art.contains("SB(3)"));
/// assert!(art.contains("2^3-unshuffle"));
/// ```
pub fn render_gbn_ascii(gbn: &Gbn) -> String {
    let m = gbn.m();
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{} — {}-input generalized baseline network",
        gbn,
        gbn.inputs()
    );
    let _ = writeln!(out);
    for stage in 0..m {
        let boxes = gbn.boxes_in_stage(stage);
        let k = gbn.box_size_log(stage);
        let _ = writeln!(
            out,
            "stage-{stage}: {boxes} x SB({k})  [{0} lines each]",
            1usize << k
        );
        for b in 0..boxes {
            let first = gbn.line_of(crate::gbn::BoxId { stage, index: b }, 0);
            let last = first + gbn.box_size(stage) - 1;
            let _ = writeln!(out, "  NB({stage},{b})  lines {first}..={last}");
        }
        if stage + 1 < m {
            let conn = gbn.connection_after(stage);
            let _ = writeln!(out, "  --- {conn} ---");
        }
    }
    out
}

/// Renders a GBN as a Graphviz digraph: one node per switching box, one
/// edge per line between consecutive stages, plus input/output terminals.
pub fn render_gbn_dot(gbn: &Gbn) -> String {
    let m = gbn.m();
    let n = gbn.inputs();
    let mut out = String::new();
    let _ = writeln!(out, "digraph gbn {{");
    let _ = writeln!(out, "  rankdir=LR;");
    let _ = writeln!(out, "  node [shape=box];");
    for id in gbn.boxes() {
        let k = gbn.box_size_log(id.stage);
        let _ = writeln!(
            out,
            "  \"s{}b{}\" [label=\"{} : SB({})\"];",
            id.stage, id.index, id, k
        );
    }
    for j in 0..n {
        let _ = writeln!(out, "  \"in{j}\" [shape=plaintext, label=\"I({j})\"];");
        let (id, _) = gbn.locate(0, j);
        let _ = writeln!(out, "  \"in{j}\" -> \"s{}b{}\";", id.stage, id.index);
        let _ = writeln!(out, "  \"out{j}\" [shape=plaintext, label=\"O({j})\"];");
        let (id, _) = gbn.locate(m - 1, j);
        let _ = writeln!(out, "  \"s{}b{}\" -> \"out{j}\";", id.stage, id.index);
    }
    for stage in 0..m.saturating_sub(1) {
        for j in 0..n {
            let (src, _) = gbn.locate(stage, j);
            let nj = gbn.next_line(stage, j);
            let (dst, _) = gbn.locate(stage + 1, nj);
            let _ = writeln!(
                out,
                "  \"s{}b{}\" -> \"s{}b{}\" [label=\"{j}~{nj}\"];",
                src.stage, src.index, dst.stage, dst.index
            );
        }
    }
    let _ = writeln!(out, "}}");
    out
}

/// Renders a wiring pattern as a two-row mapping table for `2^m` lines.
///
/// # Example
///
/// ```
/// use bnb_topology::connection::Connection;
/// use bnb_topology::render::render_wiring;
///
/// let t = render_wiring(&Connection::Unshuffle { k: 3 }, 3);
/// assert!(t.starts_with("2^3-unshuffle"));
/// ```
pub fn render_wiring(conn: &Connection, m: usize) -> String {
    let n = 1usize << m;
    let mut out = String::new();
    let _ = writeln!(out, "{conn} on {n} lines:");
    let width = format!("{}", n - 1).len().max(2);
    let _ = write!(out, "  from:");
    for j in 0..n {
        let _ = write!(out, " {j:>width$}");
    }
    let _ = writeln!(out);
    let _ = write!(out, "  to:  ");
    for j in 0..n {
        let _ = write!(out, " {:>width$}", conn.apply(m, j));
    }
    let _ = writeln!(out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ascii_render_of_fig1_structure() {
        let art = render_gbn_ascii(&Gbn::new(3));
        // Fig. 1 content: one SB(3), two SB(2), four SB(1).
        assert!(art.contains("stage-0: 1 x SB(3)"));
        assert!(art.contains("stage-1: 2 x SB(2)"));
        assert!(art.contains("stage-2: 4 x SB(1)"));
        assert!(art.contains("NB(1,1)"));
        assert!(art.contains("2^3-unshuffle"));
        assert!(art.contains("2^2-unshuffle"));
    }

    #[test]
    fn dot_render_contains_all_boxes_and_edges() {
        let g = Gbn::new(3);
        let dot = render_gbn_dot(&g);
        assert!(dot.starts_with("digraph gbn {"));
        assert!(dot.trim_end().ends_with('}'));
        for id in g.boxes() {
            assert!(dot.contains(&format!("s{}b{}", id.stage, id.index)));
        }
        // 8 inputs + 8 outputs + 2 stages x 8 wires
        assert_eq!(dot.matches("->").count(), 8 + 8 + 16);
    }

    #[test]
    fn wiring_table_shows_mapping() {
        let t = render_wiring(&Connection::Unshuffle { k: 2 }, 2);
        assert!(t.contains("from:"));
        assert!(t.contains("to:"));
        // U_2^2: 0->0, 1->2, 2->1, 3->3
        assert!(t.contains(" 0  2  1  3"));
    }

    #[test]
    fn render_single_stage_network() {
        // m = 1: no inter-stage wiring, must not panic.
        let art = render_gbn_ascii(&Gbn::new(1));
        assert!(art.contains("stage-0: 1 x SB(1)"));
        assert!(!art.contains("unshuffle"));
    }
}
