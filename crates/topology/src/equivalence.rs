//! Functional-equivalence utilities for multistage networks.
//!
//! Wu & Feng (paper ref \[12\], "On a class of multistage interconnection
//! networks") showed that the baseline, omega, flip and related networks
//! are *topologically equivalent*: each realizes the same set of
//! permutations up to fixed relabelings of the input and output terminals.
//! This module provides the machinery to verify such claims
//! computationally: collect a network's admissible set, and test whether
//! two sets are related by given terminal relabelings. The integration
//! tests use it to confirm `omega = baseline ∘ bit-reversal` at N = 8 —
//! the classic result, reproduced from our own implementations.

use std::collections::HashSet;

use crate::perm::Permutation;

/// The set of permutations a (blocking) network admits, as one-line
/// vectors — produced by exhaustively enumerating all `n!` candidates.
/// Feasible for `n ≤ 8`.
pub fn admissible_set<F>(n: usize, mut admits: F) -> HashSet<Vec<usize>>
where
    F: FnMut(&Permutation) -> bool,
{
    let total: u64 = (1..=n as u64).product();
    (0..total)
        .filter_map(|k| {
            let p = Permutation::nth_lexicographic(n, k);
            admits(&p).then(|| p.as_slice().to_vec())
        })
        .collect()
}

/// `true` if `target = { sigma ∘ p ∘ pi : p ∈ source }` — i.e. the two
/// admissible sets are identical after relabeling inputs by `pi` and
/// outputs by `sigma`.
///
/// # Panics
///
/// Panics if the relabelings' lengths disagree with the sets' element
/// lengths.
pub fn related_by_relabeling(
    source: &HashSet<Vec<usize>>,
    target: &HashSet<Vec<usize>>,
    pi: &Permutation,
    sigma: &Permutation,
) -> bool {
    if source.len() != target.len() {
        return false;
    }
    source.iter().all(|p| {
        assert_eq!(p.len(), pi.len(), "relabeling length mismatch");
        let mapped: Vec<usize> = (0..p.len()).map(|x| sigma.apply(p[pi.apply(x)])).collect();
        target.contains(&mapped)
    })
}

/// Searches a list of candidate relabelings for a pair `(pi, sigma)`
/// relating `source` to `target`; returns the first match's indices into
/// `candidates`.
pub fn find_relabeling(
    source: &HashSet<Vec<usize>>,
    target: &HashSet<Vec<usize>>,
    candidates: &[Permutation],
) -> Option<(usize, usize)> {
    for (i, pi) in candidates.iter().enumerate() {
        for (j, sigma) in candidates.iter().enumerate() {
            if related_by_relabeling(source, target, pi, sigma) {
                return Some((i, j));
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baseline::BaselineNetwork;
    use crate::bitops::bit_reverse;

    #[test]
    fn admissible_set_counts_switch_settings() {
        let net = BaselineNetwork::with_inputs(4).unwrap();
        let set = admissible_set(4, |p| net.is_admissible(p));
        assert_eq!(set.len(), 16);
    }

    #[test]
    fn a_set_is_related_to_itself_by_identity() {
        let net = BaselineNetwork::with_inputs(4).unwrap();
        let set = admissible_set(4, |p| net.is_admissible(p));
        let id = Permutation::identity(4);
        assert!(related_by_relabeling(&set, &set, &id, &id));
    }

    #[test]
    fn relabeling_by_bit_reversal_changes_the_baseline_set() {
        // Baseline relabeled on inputs by bit-reversal is NOT the baseline
        // set itself (it is the omega set — checked in the integration
        // test that has access to the omega implementation).
        let net = BaselineNetwork::with_inputs(8).unwrap();
        let set = admissible_set(8, |p| net.is_admissible(p));
        let rev = Permutation::from_fn(8, |i| bit_reverse(3, i)).unwrap();
        let id = Permutation::identity(8);
        assert!(!related_by_relabeling(&set, &set, &rev, &id));
    }

    #[test]
    fn size_mismatch_is_never_related() {
        let a: HashSet<Vec<usize>> = [vec![0, 1]].into_iter().collect();
        let b: HashSet<Vec<usize>> = HashSet::new();
        let id = Permutation::identity(2);
        assert!(!related_by_relabeling(&a, &b, &id, &id));
    }

    #[test]
    fn find_relabeling_returns_indices() {
        let net = BaselineNetwork::with_inputs(4).unwrap();
        let set = admissible_set(4, |p| net.is_admissible(p));
        // The (0,1) transposition is a network automorphism (both lines
        // share a switch at each end), so it relates the set to itself,
        // as does the identity; the search finds *some* pair.
        let cands = vec![
            Permutation::transposition(4, 0, 1),
            Permutation::identity(4),
        ];
        assert!(find_relabeling(&set, &set, &cands).is_some());
        // An impossible target finds nothing.
        let empty = HashSet::new();
        assert_eq!(find_relabeling(&set, &empty, &cands), None);
    }
}
