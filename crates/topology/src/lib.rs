//! Interconnection-topology substrate for the BNB self-routing permutation
//! network reproduction (Lee & Lu, ICDCS 1991).
//!
//! This crate contains everything about *where wires go*, independent of any
//! switching logic:
//!
//! - [`perm::Permutation`] — validated permutations of `0..n`, the objects a
//!   permutation network routes.
//! - [`bitops`] — the paper's `2^k`-unshuffle `U_k^m` (Definition 1) and the
//!   related shuffle / bit-reversal index transforms.
//! - [`connection::Connection`] — inter-stage wiring patterns as first-class
//!   values that can be applied, inverted and converted to permutations.
//! - [`gbn::Gbn`] — the Generalized Baseline Network topology of
//!   Definition 2: `2^i` switching boxes of size `2^{m-i}` in stage `i`, with
//!   `2^{m-i}`-unshuffle wiring between stages.
//! - [`baseline::BaselineNetwork`] — the classic baseline network
//!   (a GBN built from 2×2 switches) with destination-tag routing, used to
//!   demonstrate that the *plain* baseline network is blocking and therefore
//!   not a permutation network on its own.
//! - [`record::Record`] — the `(address, data)` words that flow through every
//!   network in this workspace.
//! - [`render`] — ASCII and Graphviz renderers used to regenerate the
//!   structural figures of the paper (Figs. 1–3).
//!
//! # Example
//!
//! ```
//! use bnb_topology::perm::Permutation;
//! use bnb_topology::bitops::unshuffle;
//!
//! // U_3^3 on 8 lines: rotate the low 3 bits right by one.
//! let wiring: Vec<usize> = (0..8).map(|j| unshuffle(3, 3, j)).collect();
//! let p = Permutation::try_from(wiring).expect("unshuffle is a bijection");
//! assert_eq!(p.apply(1), 4); // 001 -> 100
//! ```

pub mod baseline;
pub mod bitops;
pub mod connection;
pub mod equivalence;
pub mod error;
pub mod gbn;
pub mod paths;
pub mod perm;
pub mod record;
pub mod render;

pub use baseline::BaselineNetwork;
pub use connection::Connection;
pub use error::TopologyError;
pub use gbn::Gbn;
pub use perm::Permutation;
pub use record::Record;
