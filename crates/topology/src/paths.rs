//! Path counting in layered 2×2-switch networks.
//!
//! Destination-tag self-routing (and hence the whole GBN/baseline family)
//! rests on the **banyan property**: exactly one path connects every
//! input/output pair, so local decisions can never "choose the wrong way".
//! Rearrangeable networks like Benes instead offer `2^{log N − 1}` paths
//! per pair, which is why they need a global algorithm to pick among them.
//! This module counts paths exactly by dynamic programming over a
//! [`LayeredNetwork`] description and verifies both facts on our own
//! wirings.

use serde::{Deserialize, Serialize};

use crate::connection::Connection;
use crate::error::TopologyError;

/// A multistage network of 2×2-switch columns described purely by its
/// wiring: an optional pre-wiring in front of the first column and one
/// wiring between each pair of consecutive columns.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LayeredNetwork {
    m: usize,
    pre: Connection,
    between: Vec<Connection>,
}

impl LayeredNetwork {
    /// A network over `2^m` lines with `between.len() + 1` switch columns.
    pub fn new(m: usize, pre: Connection, between: Vec<Connection>) -> Self {
        assert!(m >= 1, "need at least 2 lines");
        LayeredNetwork { m, pre, between }
    }

    /// The baseline network: no pre-wiring, `U_{m-i}^m` after column `i`.
    pub fn baseline(m: usize) -> Self {
        let between = (0..m.saturating_sub(1))
            .map(|i| Connection::Unshuffle { k: m - i })
            .collect();
        Self::new(m, Connection::Identity, between)
    }

    /// The omega network: a full shuffle in front of every column.
    pub fn omega(m: usize) -> Self {
        let between = vec![Connection::Shuffle { k: m }; m.saturating_sub(1)];
        Self::new(m, Connection::Shuffle { k: m }, between)
    }

    /// The Benes network: a baseline first half mirrored by a shuffle
    /// second half, `2m − 1` columns in total.
    pub fn benes(m: usize) -> Self {
        let mut between: Vec<Connection> = (0..m.saturating_sub(1))
            .map(|i| Connection::Unshuffle { k: m - i })
            .collect();
        between.extend((0..m.saturating_sub(1)).map(|j| Connection::Shuffle { k: j + 2 }));
        Self::new(m, Connection::Identity, between)
    }

    /// Line count.
    pub fn inputs(&self) -> usize {
        1 << self.m
    }

    /// Switch-column count.
    pub fn columns(&self) -> usize {
        self.between.len() + 1
    }

    /// Number of distinct switch-setting paths from `src` to each output.
    ///
    /// # Errors
    ///
    /// Returns [`TopologyError::IndexOutOfBounds`] if `src` is out of
    /// range.
    pub fn paths_from(&self, src: usize) -> Result<Vec<u64>, TopologyError> {
        let n = self.inputs();
        if src >= n {
            return Err(TopologyError::IndexOutOfBounds {
                what: "input line",
                index: src,
                bound: n,
            });
        }
        let mut ways = vec![0u64; n];
        ways[self.pre.apply(self.m, src)] = 1;
        for col in 0..self.columns() {
            let mut out = vec![0u64; n];
            for t in 0..n / 2 {
                let through = ways[2 * t] + ways[2 * t + 1];
                out[2 * t] = through;
                out[2 * t + 1] = through;
            }
            if col < self.between.len() {
                let mut wired = vec![0u64; n];
                for (j, &w) in out.iter().enumerate() {
                    wired[self.between[col].apply(self.m, j)] = w;
                }
                ways = wired;
            } else {
                ways = out;
            }
        }
        Ok(ways)
    }

    /// The full `N × N` path-count matrix (`matrix[i][o]`).
    ///
    /// # Panics
    ///
    /// Never panics; inputs are enumerated internally.
    pub fn path_matrix(&self) -> Vec<Vec<u64>> {
        (0..self.inputs())
            .map(|src| self.paths_from(src).expect("src < n by construction"))
            .collect()
    }

    /// `true` if every input/output pair is connected by exactly one path
    /// — the banyan property underlying destination-tag self-routing.
    pub fn is_banyan(&self) -> bool {
        self.path_matrix()
            .iter()
            .all(|row| row.iter().all(|&w| w == 1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_and_omega_are_banyan() {
        for m in 1..=6 {
            assert!(LayeredNetwork::baseline(m).is_banyan(), "baseline m = {m}");
            assert!(LayeredNetwork::omega(m).is_banyan(), "omega m = {m}");
        }
    }

    #[test]
    fn benes_has_two_to_the_m_minus_1_paths() {
        for m in 1..=6 {
            let net = LayeredNetwork::benes(m);
            assert_eq!(net.columns(), 2 * m - 1);
            let expected = 1u64 << (m - 1);
            for row in net.path_matrix() {
                for w in row {
                    assert_eq!(w, expected, "m = {m}");
                }
            }
        }
    }

    #[test]
    fn identity_wiring_partitions_reachability() {
        // With identity wirings, a packet can never leave its switch pair:
        // two outputs reachable per input, the rest zero — precisely why
        // the ablation A2 wiring misroutes.
        let net = LayeredNetwork::new(3, Connection::Identity, vec![Connection::Identity; 2]);
        let rows = net.path_matrix();
        for (i, row) in rows.iter().enumerate() {
            for (o, &w) in row.iter().enumerate() {
                if o >> 1 == i >> 1 {
                    assert!(w > 0, "{i} -> {o} must be reachable");
                } else {
                    assert_eq!(w, 0, "{i} -> {o} must be unreachable");
                }
            }
        }
    }

    #[test]
    fn total_paths_are_conserved() {
        // Each column doubles the total path count (every switch has two
        // settings per incoming path): sum over outputs = 2^columns.
        let net = LayeredNetwork::baseline(4);
        let total: u64 = net.paths_from(5).unwrap().iter().sum();
        assert_eq!(total, 1 << net.columns());
    }

    #[test]
    fn out_of_range_src_is_rejected() {
        let net = LayeredNetwork::baseline(2);
        assert!(net.paths_from(4).is_err());
    }

    #[test]
    fn gbn_wiring_matches_the_gbn_module() {
        // The baseline LayeredNetwork and the Gbn topology agree on where
        // each line goes between stages.
        use crate::gbn::Gbn;
        let m = 4;
        let net = LayeredNetwork::baseline(m);
        let gbn = Gbn::new(m);
        for stage in 0..m - 1 {
            for j in 0..(1usize << m) {
                assert_eq!(net.between[stage].apply(m, j), gbn.next_line(stage, j));
            }
        }
    }
}
