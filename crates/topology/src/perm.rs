//! Validated permutations of `0..n`.
//!
//! A permutation network routes *permutations*: bijections from its input
//! lines onto its output lines. [`Permutation`] is the workspace-wide
//! representation of such a bijection, with the invariant (every value in
//! `0..n` appears exactly once) enforced at construction.

use std::fmt;
use std::ops::Index;

use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::error::TopologyError;

/// A permutation of `0..n`, stored in one-line notation.
///
/// `p.apply(i)` is the image of `i`; in network terms, the packet entering
/// input `i` is destined for output `p.apply(i)`.
///
/// # Example
///
/// ```
/// use bnb_topology::perm::Permutation;
///
/// let p = Permutation::try_from(vec![2, 0, 3, 1])?;
/// assert_eq!(p.apply(0), 2);
/// assert_eq!(p.inverse().apply(2), 0);
/// assert!(p.compose(&p.inverse()).is_identity());
/// # Ok::<(), bnb_topology::TopologyError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[serde(try_from = "Vec<usize>", into = "Vec<usize>")]
pub struct Permutation {
    images: Vec<usize>,
}

impl Permutation {
    /// The identity permutation on `0..n`.
    ///
    /// # Example
    ///
    /// ```
    /// use bnb_topology::perm::Permutation;
    /// assert!(Permutation::identity(8).is_identity());
    /// ```
    pub fn identity(n: usize) -> Self {
        Permutation {
            images: (0..n).collect(),
        }
    }

    /// A permutation swapping `a` and `b` and fixing everything else.
    ///
    /// # Panics
    ///
    /// Panics if `a` or `b` is not less than `n`.
    pub fn transposition(n: usize, a: usize, b: usize) -> Self {
        assert!(a < n && b < n, "transposition indices must be < n");
        let mut images: Vec<usize> = (0..n).collect();
        images.swap(a, b);
        Permutation { images }
    }

    /// Builds the permutation `i -> f(i)` on `0..n`, validating bijectivity.
    ///
    /// # Errors
    ///
    /// Returns [`TopologyError::ImageOutOfRange`] or
    /// [`TopologyError::DuplicateImage`] if `f` is not a bijection on `0..n`.
    pub fn from_fn<F: FnMut(usize) -> usize>(n: usize, f: F) -> Result<Self, TopologyError> {
        Self::try_from((0..n).map(f).collect::<Vec<_>>())
    }

    /// A uniformly random permutation of `0..n` (Fisher–Yates).
    pub fn random<R: Rng + ?Sized>(n: usize, rng: &mut R) -> Self {
        let mut images: Vec<usize> = (0..n).collect();
        images.shuffle(rng);
        Permutation { images }
    }

    /// The `k`-th permutation of `0..n` in lexicographic order,
    /// `0 <= k < n!`. Useful for exhaustively enumerating all `n!`
    /// permutations (Theorem 2 tests).
    ///
    /// # Panics
    ///
    /// Panics if `k >= n!` (for `n` small enough that `n!` fits in `u64`).
    pub fn nth_lexicographic(n: usize, mut k: u64) -> Self {
        let mut factorials = vec![1u64; n + 1];
        for i in 1..=n {
            factorials[i] = factorials[i - 1] * i as u64;
        }
        assert!(k < factorials[n], "k must be < n!");
        let mut pool: Vec<usize> = (0..n).collect();
        let mut images = Vec::with_capacity(n);
        for i in (1..=n).rev() {
            let f = factorials[i - 1];
            let idx = (k / f) as usize;
            k %= f;
            images.push(pool.remove(idx));
        }
        Permutation { images }
    }

    /// Number of elements the permutation acts on.
    pub fn len(&self) -> usize {
        self.images.len()
    }

    /// `true` if the permutation acts on the empty set.
    pub fn is_empty(&self) -> bool {
        self.images.is_empty()
    }

    /// The image of `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.len()`.
    pub fn apply(&self, i: usize) -> usize {
        self.images[i]
    }

    /// The images in one-line notation, as a slice.
    pub fn as_slice(&self) -> &[usize] {
        &self.images
    }

    /// The inverse permutation: `self.inverse().apply(self.apply(i)) == i`.
    pub fn inverse(&self) -> Self {
        let mut inv = vec![0usize; self.images.len()];
        for (i, &v) in self.images.iter().enumerate() {
            inv[v] = i;
        }
        Permutation { images: inv }
    }

    /// Function composition `self ∘ other`: first apply `other`, then `self`.
    ///
    /// # Panics
    ///
    /// Panics if the two permutations have different lengths.
    pub fn compose(&self, other: &Permutation) -> Self {
        assert_eq!(
            self.len(),
            other.len(),
            "composed permutations must have equal length"
        );
        let images = (0..self.len())
            .map(|i| self.images[other.images[i]])
            .collect();
        Permutation { images }
    }

    /// `true` if every element maps to itself.
    pub fn is_identity(&self) -> bool {
        self.images.iter().enumerate().all(|(i, &v)| i == v)
    }

    /// The cycle decomposition, each cycle starting at its smallest element,
    /// cycles ordered by their smallest element. Fixed points appear as
    /// singleton cycles.
    ///
    /// # Example
    ///
    /// ```
    /// use bnb_topology::perm::Permutation;
    /// let p = Permutation::try_from(vec![1, 0, 2, 4, 3])?;
    /// assert_eq!(p.cycles(), vec![vec![0, 1], vec![2], vec![3, 4]]);
    /// # Ok::<(), bnb_topology::TopologyError>(())
    /// ```
    pub fn cycles(&self) -> Vec<Vec<usize>> {
        let n = self.len();
        let mut seen = vec![false; n];
        let mut cycles = Vec::new();
        for start in 0..n {
            if seen[start] {
                continue;
            }
            let mut cycle = vec![start];
            seen[start] = true;
            let mut cur = self.images[start];
            while cur != start {
                seen[cur] = true;
                cycle.push(cur);
                cur = self.images[cur];
            }
            cycles.push(cycle);
        }
        cycles
    }

    /// The sign of the permutation: `+1` for even, `-1` for odd.
    pub fn sign(&self) -> i8 {
        let transpositions: usize = self.cycles().iter().map(|c| c.len() - 1).sum();
        if transpositions.is_multiple_of(2) {
            1
        } else {
            -1
        }
    }

    /// Applies the permutation to a slice of items, returning a new vector
    /// `out` with `out[self.apply(i)] = items[i]` — i.e. item `i` is
    /// *delivered to* position `apply(i)`, matching network semantics where
    /// `apply(i)` is the destination of input `i`.
    ///
    /// # Panics
    ///
    /// Panics if `items.len() != self.len()`.
    pub fn route<T: Clone>(&self, items: &[T]) -> Vec<T> {
        assert_eq!(
            items.len(),
            self.len(),
            "item count must match permutation length"
        );
        let mut out: Vec<Option<T>> = vec![None; items.len()];
        for (i, item) in items.iter().enumerate() {
            out[self.images[i]] = Some(item.clone());
        }
        out.into_iter()
            .map(|o| o.expect("bijection fills every slot"))
            .collect()
    }

    /// Iterator over the images in one-line notation.
    pub fn iter(&self) -> std::iter::Copied<std::slice::Iter<'_, usize>> {
        self.images.iter().copied()
    }

    /// Builds a permutation from disjoint cycles over `0..n`; elements not
    /// mentioned are fixed points.
    ///
    /// # Errors
    ///
    /// Returns an error if a cycle element is out of range or appears
    /// twice.
    ///
    /// # Example
    ///
    /// ```
    /// use bnb_topology::perm::Permutation;
    /// let p = Permutation::from_cycles(5, &[vec![0, 2, 4], vec![1, 3]])?;
    /// assert_eq!(p.apply(0), 2);
    /// assert_eq!(p.apply(4), 0);
    /// assert_eq!(p.apply(3), 1);
    /// # Ok::<(), bnb_topology::TopologyError>(())
    /// ```
    pub fn from_cycles(n: usize, cycles: &[Vec<usize>]) -> Result<Self, TopologyError> {
        let mut images: Vec<usize> = (0..n).collect();
        let mut seen = vec![false; n];
        for cycle in cycles {
            for (idx, &e) in cycle.iter().enumerate() {
                if e >= n {
                    return Err(TopologyError::ImageOutOfRange {
                        value: e,
                        index: idx,
                        len: n,
                    });
                }
                if seen[e] {
                    return Err(TopologyError::DuplicateImage {
                        value: e,
                        first_index: 0,
                        second_index: idx,
                    });
                }
                seen[e] = true;
                images[e] = cycle[(idx + 1) % cycle.len()];
            }
        }
        Ok(Permutation { images })
    }

    /// The `e`-th power of the permutation under composition (`e = 0` is
    /// the identity).
    pub fn pow(&self, mut e: u64) -> Self {
        let mut result = Permutation::identity(self.len());
        let mut base = self.clone();
        while e > 0 {
            if e & 1 == 1 {
                result = base.compose(&result);
            }
            base = base.compose(&base);
            e >>= 1;
        }
        result
    }

    /// The order of the permutation: the least `e ≥ 1` with `pᵉ = id`
    /// (the LCM of the cycle lengths).
    pub fn order(&self) -> u64 {
        fn gcd(a: u64, b: u64) -> u64 {
            if b == 0 {
                a
            } else {
                gcd(b, a % b)
            }
        }
        self.cycles()
            .iter()
            .map(|c| c.len() as u64)
            .fold(1u64, |acc, l| acc / gcd(acc, l) * l)
    }

    /// `true` if `p² = id` (every cycle has length ≤ 2) — the transpose,
    /// reversal and bit-complement workloads are all involutions.
    pub fn is_involution(&self) -> bool {
        self.compose(self).is_identity()
    }

    /// The conjugate `q ∘ self ∘ q⁻¹` — the same cycle structure acting on
    /// relabeled elements.
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ.
    pub fn conjugate_by(&self, q: &Permutation) -> Self {
        q.compose(self).compose(&q.inverse())
    }
}

impl TryFrom<Vec<usize>> for Permutation {
    type Error = TopologyError;

    /// Validates that `images` is a bijection on `0..images.len()`.
    fn try_from(images: Vec<usize>) -> Result<Self, Self::Error> {
        let n = images.len();
        let mut first_seen: Vec<Option<usize>> = vec![None; n];
        for (i, &v) in images.iter().enumerate() {
            if v >= n {
                return Err(TopologyError::ImageOutOfRange {
                    value: v,
                    index: i,
                    len: n,
                });
            }
            if let Some(first) = first_seen[v] {
                return Err(TopologyError::DuplicateImage {
                    value: v,
                    first_index: first,
                    second_index: i,
                });
            }
            first_seen[v] = Some(i);
        }
        Ok(Permutation { images })
    }
}

impl From<Permutation> for Vec<usize> {
    fn from(p: Permutation) -> Self {
        p.images
    }
}

impl Index<usize> for Permutation {
    type Output = usize;

    fn index(&self, i: usize) -> &usize {
        &self.images[i]
    }
}

impl<'a> IntoIterator for &'a Permutation {
    type Item = usize;
    type IntoIter = std::iter::Copied<std::slice::Iter<'a, usize>>;

    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

impl fmt::Display for Permutation {
    /// One-line notation, e.g. `(2 0 3 1)`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, v) in self.images.iter().enumerate() {
            if i > 0 {
                write!(f, " ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn identity_maps_each_to_itself() {
        let p = Permutation::identity(5);
        for i in 0..5 {
            assert_eq!(p.apply(i), i);
        }
        assert!(p.is_identity());
        assert_eq!(p.len(), 5);
    }

    #[test]
    fn empty_permutation_is_identity() {
        let p = Permutation::identity(0);
        assert!(p.is_empty());
        assert!(p.is_identity());
    }

    #[test]
    fn try_from_rejects_duplicates() {
        let err = Permutation::try_from(vec![0, 1, 1, 3]).unwrap_err();
        assert_eq!(
            err,
            TopologyError::DuplicateImage {
                value: 1,
                first_index: 1,
                second_index: 2
            }
        );
    }

    #[test]
    fn try_from_rejects_out_of_range() {
        let err = Permutation::try_from(vec![0, 4, 2, 3]).unwrap_err();
        assert_eq!(
            err,
            TopologyError::ImageOutOfRange {
                value: 4,
                index: 1,
                len: 4
            }
        );
    }

    #[test]
    fn inverse_composes_to_identity() {
        let p = Permutation::try_from(vec![3, 1, 4, 0, 2]).unwrap();
        assert!(p.compose(&p.inverse()).is_identity());
        assert!(p.inverse().compose(&p).is_identity());
    }

    #[test]
    fn compose_applies_right_then_left() {
        // other = (1 2 0), self = (2 0 1); self∘other maps 0 -> other 1 -> self 0... wait:
        // compose(other)(i) = self(other(i)). other(0)=1, self(1)=0 => 0.
        let other = Permutation::try_from(vec![1, 2, 0]).unwrap();
        let this = Permutation::try_from(vec![2, 0, 1]).unwrap();
        let c = this.compose(&other);
        assert!(c.is_identity());
    }

    #[test]
    fn transposition_swaps_exactly_two() {
        let p = Permutation::transposition(6, 1, 4);
        assert_eq!(p.apply(1), 4);
        assert_eq!(p.apply(4), 1);
        assert_eq!(p.apply(0), 0);
        assert_eq!(p.sign(), -1);
    }

    #[test]
    #[should_panic(expected = "transposition indices")]
    fn transposition_panics_out_of_range() {
        let _ = Permutation::transposition(4, 1, 4);
    }

    #[test]
    fn cycles_of_known_permutation() {
        let p = Permutation::try_from(vec![1, 0, 2, 4, 3]).unwrap();
        assert_eq!(p.cycles(), vec![vec![0, 1], vec![2], vec![3, 4]]);
        assert_eq!(p.sign(), 1); // two transpositions
    }

    #[test]
    fn sign_of_identity_is_positive() {
        assert_eq!(Permutation::identity(7).sign(), 1);
    }

    #[test]
    fn route_delivers_to_destinations() {
        let p = Permutation::try_from(vec![2, 0, 1]).unwrap();
        let routed = p.route(&["a", "b", "c"]);
        // input 0 goes to output 2, etc.
        assert_eq!(routed, vec!["b", "c", "a"]);
    }

    #[test]
    fn nth_lexicographic_enumerates_all() {
        let mut seen = std::collections::HashSet::new();
        for k in 0..24 {
            let p = Permutation::nth_lexicographic(4, k);
            seen.insert(p.as_slice().to_vec());
        }
        assert_eq!(seen.len(), 24);
        // k = 0 is the identity; k = n!-1 is the reversal.
        assert!(Permutation::nth_lexicographic(4, 0).is_identity());
        assert_eq!(
            Permutation::nth_lexicographic(4, 23).as_slice(),
            &[3, 2, 1, 0]
        );
    }

    #[test]
    fn random_is_valid_and_deterministic_per_seed() {
        let mut rng1 = StdRng::seed_from_u64(42);
        let mut rng2 = StdRng::seed_from_u64(42);
        let p1 = Permutation::random(64, &mut rng1);
        let p2 = Permutation::random(64, &mut rng2);
        assert_eq!(p1, p2);
        assert!(Permutation::try_from(p1.as_slice().to_vec()).is_ok());
    }

    #[test]
    fn display_uses_one_line_notation() {
        let p = Permutation::try_from(vec![2, 0, 1]).unwrap();
        assert_eq!(p.to_string(), "(2 0 1)");
    }

    #[test]
    fn from_fn_builds_bit_complement() {
        let p = Permutation::from_fn(8, |i| i ^ 0b111).unwrap();
        assert_eq!(p.apply(0), 7);
        assert_eq!(p.apply(5), 2);
        assert!(p.compose(&p).is_identity());
    }

    #[test]
    fn index_operator_matches_apply() {
        let p = Permutation::try_from(vec![1, 2, 0]).unwrap();
        assert_eq!(p[0], p.apply(0));
    }

    #[test]
    fn from_cycles_builds_and_validates() {
        let p = Permutation::from_cycles(6, &[vec![0, 1, 2], vec![4, 5]]).unwrap();
        assert_eq!(p.apply(2), 0);
        assert_eq!(p.apply(3), 3);
        assert_eq!(p.apply(5), 4);
        assert!(Permutation::from_cycles(4, &[vec![0, 4]]).is_err());
        assert!(Permutation::from_cycles(4, &[vec![0, 1], vec![1, 2]]).is_err());
        assert!(Permutation::from_cycles(3, &[]).unwrap().is_identity());
    }

    #[test]
    fn pow_and_order_agree() {
        let p = Permutation::from_cycles(7, &[vec![0, 1, 2], vec![3, 4]]).unwrap();
        assert_eq!(p.order(), 6);
        assert!(p.pow(6).is_identity());
        assert!(!p.pow(3).is_identity());
        assert_eq!(p.pow(0), Permutation::identity(7));
        assert_eq!(p.pow(1), p);
        // pow(a+b) = pow(a) ∘ pow(b)
        assert_eq!(p.pow(5), p.pow(2).compose(&p.pow(3)));
    }

    #[test]
    fn involutions_are_detected() {
        assert!(Permutation::transposition(6, 1, 4).is_involution());
        assert!(Permutation::identity(4).is_involution());
        let three_cycle = Permutation::from_cycles(3, &[vec![0, 1, 2]]).unwrap();
        assert!(!three_cycle.is_involution());
    }

    #[test]
    fn conjugation_preserves_cycle_structure() {
        let p = Permutation::from_cycles(5, &[vec![0, 1, 2]]).unwrap();
        let q = Permutation::try_from(vec![4, 3, 2, 1, 0]).unwrap();
        let c = p.conjugate_by(&q);
        let mut a: Vec<usize> = p.cycles().iter().map(Vec::len).collect();
        let mut b: Vec<usize> = c.cycles().iter().map(Vec::len).collect();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
        assert_eq!(c.order(), p.order());
    }

    #[test]
    fn iteration_yields_one_line_images() {
        let p = Permutation::try_from(vec![1, 2, 0]).unwrap();
        let v: Vec<usize> = p.iter().collect();
        assert_eq!(v, vec![1, 2, 0]);
        let w: Vec<usize> = (&p).into_iter().collect();
        assert_eq!(w, v);
    }
}
