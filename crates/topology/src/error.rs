//! Error types for topology construction and validation.

use std::error::Error;
use std::fmt;

/// Errors raised while constructing or validating topological objects.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum TopologyError {
    /// The mapping is not a bijection on `0..len`: `value` appears at least
    /// twice (first at `first_index`, again at `second_index`).
    DuplicateImage {
        /// The repeated image value.
        value: usize,
        /// Index of the first occurrence.
        first_index: usize,
        /// Index of the repeated occurrence.
        second_index: usize,
    },
    /// The mapping contains `value` at `index`, which is outside `0..len`.
    ImageOutOfRange {
        /// The out-of-range image value.
        value: usize,
        /// Index at which it occurs.
        index: usize,
        /// The domain size.
        len: usize,
    },
    /// A size that must be a power of two was not.
    NotPowerOfTwo {
        /// The offending size.
        size: usize,
    },
    /// A stage or line index was outside the network bounds.
    IndexOutOfBounds {
        /// Human-readable name of the index ("stage", "line", ...).
        what: &'static str,
        /// The offending index.
        index: usize,
        /// The exclusive upper bound.
        bound: usize,
    },
    /// Two sizes that must agree (e.g. permutation length vs network width)
    /// did not.
    SizeMismatch {
        /// What was expected.
        expected: usize,
        /// What was provided.
        actual: usize,
    },
}

impl fmt::Display for TopologyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            TopologyError::DuplicateImage { value, first_index, second_index } => write!(
                f,
                "mapping is not a permutation: value {value} appears at indices {first_index} and {second_index}"
            ),
            TopologyError::ImageOutOfRange { value, index, len } => write!(
                f,
                "mapping is not a permutation: value {value} at index {index} is outside 0..{len}"
            ),
            TopologyError::NotPowerOfTwo { size } => {
                write!(f, "size {size} is not a power of two")
            }
            TopologyError::IndexOutOfBounds { what, index, bound } => {
                write!(f, "{what} index {index} is out of bounds (must be < {bound})")
            }
            TopologyError::SizeMismatch { expected, actual } => {
                write!(f, "size mismatch: expected {expected}, got {actual}")
            }
        }
    }
}

impl Error for TopologyError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_specific() {
        let e = TopologyError::DuplicateImage {
            value: 3,
            first_index: 0,
            second_index: 2,
        };
        let s = e.to_string();
        assert!(s.contains("value 3"));
        assert!(s.contains("indices 0 and 2"));

        let e = TopologyError::ImageOutOfRange {
            value: 9,
            index: 1,
            len: 8,
        };
        assert!(e.to_string().contains("outside 0..8"));

        let e = TopologyError::NotPowerOfTwo { size: 12 };
        assert!(e.to_string().contains("12"));

        let e = TopologyError::IndexOutOfBounds {
            what: "stage",
            index: 5,
            bound: 3,
        };
        assert!(e.to_string().contains("stage index 5"));

        let e = TopologyError::SizeMismatch {
            expected: 8,
            actual: 4,
        };
        assert!(e.to_string().contains("expected 8"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<TopologyError>();
    }
}
