//! Inter-stage wiring patterns as first-class values.
//!
//! A [`Connection`] maps output line `j` of one stage to an input line of
//! the next. Baseline-class networks are entirely described by which
//! connection sits between consecutive stages; making the pattern a value
//! lets the BNB core swap wirings for the ablation experiment A2
//! (replace unshuffle by identity/shuffle and watch routing break).

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::bitops::{bit_reverse, cube_exchange, log2_exact, shuffle, unshuffle};
use crate::error::TopologyError;
use crate::perm::Permutation;

/// A wiring pattern between two columns of `2^m` lines.
///
/// # Example
///
/// ```
/// use bnb_topology::connection::Connection;
///
/// let c = Connection::Unshuffle { k: 3 };
/// assert_eq!(c.apply(3, 0b011), 0b101);
/// assert!(c.inverse().compose_check(3, &c));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[non_exhaustive]
pub enum Connection {
    /// Straight-through wiring.
    Identity,
    /// The `2^k`-unshuffle `U_k^m` of Definition 1 (rotate low `k` bits
    /// right). The baseline network uses `k = m - i` after stage `i`.
    Unshuffle {
        /// Width of the rotated low-bit field.
        k: usize,
    },
    /// The `2^k`-shuffle (rotate low `k` bits left); inverse of `Unshuffle`.
    Shuffle {
        /// Width of the rotated low-bit field.
        k: usize,
    },
    /// Full bit reversal of the `m`-bit line index.
    BitReversal,
    /// Butterfly/cube wiring on dimension `d` (flip bit `d`).
    Butterfly {
        /// The flipped bit position.
        d: usize,
    },
    /// An arbitrary fixed permutation of the lines.
    Fixed(Permutation),
}

impl Connection {
    /// Destination line of output `j` in a column of `2^m` lines.
    ///
    /// # Panics
    ///
    /// Panics if `j >= 2^m`, if a field width exceeds `m`, or if a
    /// `Fixed` permutation has length other than `2^m`.
    pub fn apply(&self, m: usize, j: usize) -> usize {
        let n = 1usize << m;
        assert!(j < n, "line index must be < 2^m");
        match self {
            Connection::Identity => j,
            Connection::Unshuffle { k } => unshuffle(*k, m, j),
            Connection::Shuffle { k } => shuffle(*k, m, j),
            Connection::BitReversal => bit_reverse(m, j),
            Connection::Butterfly { d } => cube_exchange(*d, m, j),
            Connection::Fixed(p) => {
                assert_eq!(p.len(), n, "fixed connection must cover all lines");
                p.apply(j)
            }
        }
    }

    /// The inverse wiring.
    pub fn inverse(&self) -> Connection {
        match self {
            Connection::Identity => Connection::Identity,
            Connection::Unshuffle { k } => Connection::Shuffle { k: *k },
            Connection::Shuffle { k } => Connection::Unshuffle { k: *k },
            Connection::BitReversal => Connection::BitReversal,
            Connection::Butterfly { d } => Connection::Butterfly { d: *d },
            Connection::Fixed(p) => Connection::Fixed(p.inverse()),
        }
    }

    /// Materializes the wiring as a [`Permutation`] on `2^m` lines.
    ///
    /// # Errors
    ///
    /// Returns [`TopologyError::SizeMismatch`] if a `Fixed` permutation has
    /// the wrong length.
    pub fn to_permutation(&self, m: usize) -> Result<Permutation, TopologyError> {
        let n = 1usize << m;
        if let Connection::Fixed(p) = self {
            if p.len() != n {
                return Err(TopologyError::SizeMismatch {
                    expected: n,
                    actual: p.len(),
                });
            }
        }
        Permutation::from_fn(n, |j| self.apply(m, j))
    }

    /// `true` if `other` composed with `self` is the identity on `2^m`
    /// lines — a self-check helper used in doctests and debugging.
    pub fn compose_check(&self, m: usize, other: &Connection) -> bool {
        (0..(1usize << m)).all(|j| self.apply(m, other.apply(m, j)) == j)
    }
}

impl Default for Connection {
    /// The identity wiring.
    fn default() -> Self {
        Connection::Identity
    }
}

impl fmt::Display for Connection {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Connection::Identity => write!(f, "identity"),
            Connection::Unshuffle { k } => write!(f, "2^{k}-unshuffle"),
            Connection::Shuffle { k } => write!(f, "2^{k}-shuffle"),
            Connection::BitReversal => write!(f, "bit-reversal"),
            Connection::Butterfly { d } => write!(f, "butterfly(d={d})"),
            Connection::Fixed(p) => write!(f, "fixed{p}"),
        }
    }
}

impl From<Permutation> for Connection {
    fn from(p: Permutation) -> Self {
        Connection::Fixed(p)
    }
}

/// The baseline inter-stage wiring after stage `i` of an `m`-stage network:
/// `U_{m-i}^m` (paper §2).
///
/// # Panics
///
/// Panics if `i >= m`.
pub fn baseline_connection(m: usize, i: usize) -> Connection {
    assert!(i < m, "stage must be < m");
    Connection::Unshuffle { k: m - i }
}

/// The omega-network wiring: a full `2^m`-shuffle before every stage.
pub fn omega_connection(m: usize) -> Connection {
    Connection::Shuffle { k: m }
}

/// Sanity check used by constructors: `n` must be a power of two, and
/// returns `log2(n)`.
///
/// # Errors
///
/// Returns [`TopologyError::NotPowerOfTwo`] otherwise.
pub fn require_power_of_two(n: usize) -> Result<usize, TopologyError> {
    if !n.is_power_of_two() {
        return Err(TopologyError::NotPowerOfTwo { size: n });
    }
    Ok(log2_exact(n))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_variant_is_a_bijection() {
        let m = 4;
        let conns = [
            Connection::Identity,
            Connection::Unshuffle { k: 3 },
            Connection::Shuffle { k: 2 },
            Connection::BitReversal,
            Connection::Butterfly { d: 1 },
            Connection::Fixed(Permutation::transposition(16, 2, 9)),
        ];
        for c in &conns {
            assert!(c.to_permutation(m).is_ok(), "{c} must be a bijection");
        }
    }

    #[test]
    fn inverse_really_inverts() {
        let m = 4;
        let conns = [
            Connection::Identity,
            Connection::Unshuffle { k: 4 },
            Connection::Shuffle { k: 3 },
            Connection::BitReversal,
            Connection::Butterfly { d: 2 },
            Connection::Fixed(Permutation::try_from(vec![1, 2, 3, 0]).unwrap()),
        ];
        for c in &conns {
            let m_eff = if matches!(c, Connection::Fixed(_)) {
                2
            } else {
                m
            };
            assert!(c.inverse().compose_check(m_eff, c), "{c} inverse failed");
        }
    }

    #[test]
    fn baseline_connection_shrinks_with_stage() {
        assert_eq!(baseline_connection(4, 0), Connection::Unshuffle { k: 4 });
        assert_eq!(baseline_connection(4, 3), Connection::Unshuffle { k: 1 });
    }

    #[test]
    #[should_panic(expected = "stage must be < m")]
    fn baseline_connection_rejects_large_stage() {
        let _ = baseline_connection(3, 3);
    }

    #[test]
    fn fixed_connection_size_is_checked() {
        let c = Connection::Fixed(Permutation::identity(4));
        let err = c.to_permutation(3).unwrap_err();
        assert_eq!(
            err,
            TopologyError::SizeMismatch {
                expected: 8,
                actual: 4
            }
        );
    }

    #[test]
    fn require_power_of_two_accepts_and_rejects() {
        assert_eq!(require_power_of_two(8), Ok(3));
        assert_eq!(
            require_power_of_two(12),
            Err(TopologyError::NotPowerOfTwo { size: 12 })
        );
    }

    #[test]
    fn display_is_informative() {
        assert_eq!(Connection::Unshuffle { k: 3 }.to_string(), "2^3-unshuffle");
        assert_eq!(Connection::Identity.to_string(), "identity");
    }

    #[test]
    fn omega_connection_is_full_shuffle() {
        let c = omega_connection(3);
        // shuffle: rotate low 3 bits left: 100 -> 001
        assert_eq!(c.apply(3, 0b100), 0b001);
    }

    #[test]
    fn default_is_identity() {
        assert_eq!(Connection::default(), Connection::Identity);
    }
}
