//! bnb-obs: observability for the BNB network stack.
//!
//! The paper's complexity model is *per column*: eq. (7) counts the
//! `m(m+1)/2` switching columns of an `N = 2^m`-input network, and
//! eqs. (8)–(9) charge every column's arbiter sweep to the propagation
//! delay. This crate makes those quantities measurable on the running
//! system without taxing the hot path:
//!
//! - [`event`] — typed events for everything the routing layers can
//!   report: a column routed, an arbiter sweep, a splitter conflict, a
//!   subnetwork shard enqueued or stolen, a batch submitted or completed,
//!   a scheduler round.
//! - [`observer`] — the object-safe [`Observer`] trait the layers emit
//!   events through, and the [`NoopObserver`] whose empty inlined methods
//!   (plus `enabled() == false`) let the compiler erase every
//!   instrumentation site when observation is off.
//! - [`counters`] — [`Counters`], a lock-free sharded sink implementing
//!   [`Observer`]: per-thread shards of relaxed atomics, aggregated on
//!   demand into a serializable [`MetricsSnapshot`] with per-main-stage
//!   breakdowns.
//! - [`histogram`] — the fixed-bucket [`LatencyHistogram`] (moved here
//!   from `bnb-engine`, which re-exports it) plus a lock-free
//!   [`AtomicHistogram`] for concurrent recording.
//! - [`timer`] — [`SpanTimer`], a span-style stopwatch that feeds
//!   histograms.
//! - [`recorder`] — the [`FlightRecorder`], a fixed-capacity lock-free
//!   ring of [`Span`]s with head/tail sampling ([`SamplePolicy`]) and a
//!   drop counter, sharded into per-thread lanes merged at drain.
//! - [`telemetry`] — [`Telemetry`], the serving path's request-lifecycle
//!   sink: per-stage latency histograms (decode → admission → queue wait
//!   → route → drain → response write) that partition the wire-to-wire
//!   latency, plus per-tenant sliding-window aggregates.
//! - [`export`] — text, JSON, and Prometheus exposition renderings of a
//!   [`MetricsSnapshot`], plus the labelled per-stage/per-tenant
//!   exposition of a [`TelemetrySnapshot`].
//! - [`chrome`] — Chrome trace-event JSON ([`render_chrome_trace`]) for
//!   recorded spans, loadable in `chrome://tracing` or Perfetto, with
//!   recorder lanes mapped to `tid` tracks.
//!
//! # Zero cost when disabled
//!
//! Instrumented code paths are generic over `O: Observer` and hoist one
//! `observer.enabled()` check before any per-event bookkeeping. With
//! [`NoopObserver`] (the default everywhere) that check is a constant
//! `false`, so the event construction and counting fold away entirely —
//! the workspace's zero-allocation test and the `engine_throughput` bench
//! guard this.
//!
//! # Example
//!
//! ```
//! use bnb_obs::{Counters, Observer};
//! use bnb_obs::event::ColumnEvent;
//!
//! let counters = Counters::new();
//! counters.column_routed(ColumnEvent {
//!     main_stage: 0,
//!     internal_stage: 0,
//!     first_line: 0,
//!     width: 8,
//!     exchanges: 3,
//! });
//! let snapshot = counters.snapshot();
//! assert_eq!(snapshot.columns, 1);
//! assert_eq!(snapshot.exchanges, 3);
//! assert_eq!(snapshot.per_stage[0].main_stage, 0);
//! ```

pub mod chrome;
pub mod counters;
pub mod event;
pub mod export;
pub mod histogram;
pub mod observer;
pub mod recorder;
pub mod telemetry;
pub mod timer;

pub use chrome::render_chrome_trace;
pub use counters::{Counters, MetricsSnapshot, StageMetrics};
pub use event::{
    AcceptEvent, AuthEvent, ColumnEvent, ConflictEvent, DrainEvent, FaultEvent, HopEvent,
    RepairEvent, RetryEvent, RoundEvent, ScrubEvent, ServeEvent, ShardEvent, SubmitEvent,
    SweepEvent, ThrottleEvent, WakeEvent, WindowEvent,
};
pub use export::{
    render_json, render_json_pretty, render_prometheus, render_prometheus_telemetry, render_text,
};
pub use histogram::{AtomicHistogram, LatencyHistogram, LatencySummary, HISTOGRAM_BUCKETS};
pub use observer::{Fanout, NoopObserver, Observer};
pub use recorder::{FlightRecorder, RecorderStats, SamplePolicy, Span, SpanKind, RECORDER_LANES};
pub use telemetry::{
    Stage, StageSnapshot, Telemetry, TelemetrySnapshot, TenantSnapshot, STAGE_COUNT, WINDOW_SLOTS,
};
pub use timer::SpanTimer;
