//! [`SpanTimer`]: a span-style stopwatch feeding latency histograms.

use crate::counters::Counters;
use crate::histogram::LatencyHistogram;
use std::time::Instant;

/// Measures one span of work and records it into a histogram.
///
/// ```
/// use bnb_obs::{LatencyHistogram, SpanTimer};
///
/// let mut hist = LatencyHistogram::new();
/// let span = SpanTimer::start();
/// // ... the work being measured ...
/// span.record_into(&mut hist);
/// assert_eq!(hist.count(), 1);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct SpanTimer {
    start: Instant,
}

impl SpanTimer {
    /// Starts timing now.
    #[inline]
    pub fn start() -> Self {
        SpanTimer {
            start: Instant::now(),
        }
    }

    /// Nanoseconds elapsed since [`start`](SpanTimer::start), saturating
    /// at `u64::MAX` (≈ 584 years).
    #[inline]
    pub fn elapsed_ns(&self) -> u64 {
        u64::try_from(self.start.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }

    /// Ends the span into a plain histogram; returns the elapsed ns.
    #[inline]
    pub fn record_into(self, histogram: &mut LatencyHistogram) -> u64 {
        let ns = self.elapsed_ns();
        histogram.record(ns);
        ns
    }

    /// Ends the span into a shared [`Counters`] sink's histogram;
    /// returns the elapsed ns.
    #[inline]
    pub fn record(self, counters: &Counters) -> u64 {
        let ns = self.elapsed_ns();
        counters.record_latency(ns);
        ns
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_records_into_plain_histogram() {
        let mut hist = LatencyHistogram::new();
        let span = SpanTimer::start();
        let ns = span.record_into(&mut hist);
        assert_eq!(hist.count(), 1);
        assert!(hist.max_ns() >= hist.min_ns());
        assert_eq!(hist.buckets()[LatencyHistogram::bucket_index(ns)], 1);
    }

    #[test]
    fn span_records_into_counters() {
        let counters = Counters::new();
        let span = SpanTimer::start();
        span.record(&counters);
        assert_eq!(counters.histogram().count(), 1);
        assert_eq!(counters.snapshot().histogram.count(), 1);
    }

    #[test]
    fn elapsed_is_monotone() {
        let span = SpanTimer::start();
        let a = span.elapsed_ns();
        let b = span.elapsed_ns();
        assert!(b >= a);
    }
}
