//! Chrome trace-event JSON export for recorded [`Span`]s.
//!
//! The output is the "JSON Array Format with metadata" flavour of the
//! trace-event spec: an object with a `traceEvents` array, loadable
//! directly into `chrome://tracing` or <https://ui.perfetto.dev>. Spans
//! with a duration (batch drains) become complete events (`"ph": "X"`);
//! everything else becomes a thread-scoped instant (`"ph": "i"`).
//!
//! Lane mapping: the whole recorder is one process (`pid` 1, named
//! `"bnb"`), and each recorder lane — one per writer thread, so engine
//! worker `i` lands in lane `i` — is a thread (`tid` = lane). Metadata
//! events name the lanes so Perfetto shows "lane 0", "lane 1", … tracks.
//!
//! Timestamps: the spec counts in *microseconds*; span clocks are
//! nanoseconds, so values are emitted with three decimal places to keep
//! full precision.
//!
//! The JSON is built by hand (the vendored serde stack has no
//! `json!`-style ad-hoc composition), which also keeps the field layout
//! byte-for-byte what the CI schema check expects.

use crate::recorder::{Span, SpanKind};

/// Human-readable event name per span kind.
fn kind_name(kind: SpanKind) -> &'static str {
    match kind {
        SpanKind::Column => "column",
        SpanKind::Sweep => "sweep",
        SpanKind::Conflict => "conflict",
        SpanKind::Hop => "hop",
        SpanKind::Shard => "shard",
        SpanKind::Steal => "steal",
        SpanKind::Submit => "submit",
        SpanKind::Drain => "drain",
        SpanKind::Round => "round",
        SpanKind::Fault => "fault",
        SpanKind::Retry => "retry",
        SpanKind::Request => "request",
    }
}

/// Trace-viewer category per span kind (one lane of the category filter
/// per subsystem: core routing, engine batches, scheduler, faults).
fn kind_category(kind: SpanKind) -> &'static str {
    match kind {
        SpanKind::Column | SpanKind::Sweep | SpanKind::Hop => "route",
        SpanKind::Shard | SpanKind::Steal | SpanKind::Submit | SpanKind::Drain => "engine",
        SpanKind::Round => "scheduler",
        SpanKind::Request => "serve",
        SpanKind::Conflict | SpanKind::Fault | SpanKind::Retry => "error",
    }
}

/// Nanoseconds as a microsecond decimal literal (`1234` → `1.234`).
fn micros(ns: u64) -> String {
    format!("{}.{:03}", ns / 1_000, ns % 1_000)
}

fn push_args(out: &mut String, span: &Span) {
    out.push_str(&format!(
        "{{\"seq\":{},\"a\":{},\"b\":{},\"c\":{},\"ok\":{}}}",
        span.seq, span.a, span.b, span.c, span.ok
    ));
}

/// Renders spans as Chrome trace-event JSON (see the [module docs](self)).
///
/// # Example
///
/// ```
/// use bnb_obs::{render_chrome_trace, Span, SpanKind};
///
/// let spans = [Span {
///     kind: SpanKind::Drain,
///     ts_ns: 5_000,
///     dur_ns: 2_000,
///     lane: 1,
///     seq: 3,
///     a: 64,
///     b: 0,
///     c: 0,
///     ok: true,
/// }];
/// let json = render_chrome_trace(&spans);
/// assert!(json.contains("\"ph\":\"X\""));
/// assert!(json.contains("\"dur\":2.000"));
/// ```
pub fn render_chrome_trace(spans: &[Span]) -> String {
    let mut out = String::new();
    out.push_str("{\"displayTimeUnit\":\"ns\",\"traceEvents\":[\n");

    // Process/thread naming metadata, one thread_name per lane in use.
    out.push_str(
        "{\"ph\":\"M\",\"pid\":1,\"tid\":0,\"name\":\"process_name\",\
         \"args\":{\"name\":\"bnb\"}}",
    );
    let mut lanes: Vec<u32> = spans.iter().map(|s| s.lane).collect();
    lanes.sort_unstable();
    lanes.dedup();
    for lane in &lanes {
        out.push_str(&format!(
            ",\n{{\"ph\":\"M\",\"pid\":1,\"tid\":{lane},\"name\":\"thread_name\",\
             \"args\":{{\"name\":\"lane {lane}\"}}}}"
        ));
    }

    for span in spans {
        out.push_str(",\n{");
        out.push_str(&format!(
            "\"name\":\"{}\",\"cat\":\"{}\",\"pid\":1,\"tid\":{},\"ts\":{}",
            kind_name(span.kind),
            kind_category(span.kind),
            span.lane,
            micros(span.ts_ns),
        ));
        if span.dur_ns > 0 {
            out.push_str(&format!(",\"ph\":\"X\",\"dur\":{}", micros(span.dur_ns)));
        } else {
            out.push_str(",\"ph\":\"i\",\"s\":\"t\"");
        }
        out.push_str(",\"args\":");
        push_args(&mut out, span);
        out.push('}');
    }

    out.push_str("\n]}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(kind: SpanKind, ts_ns: u64, dur_ns: u64, lane: u32) -> Span {
        Span {
            kind,
            ts_ns,
            dur_ns,
            lane,
            seq: 1,
            a: 2,
            b: 3,
            c: 4,
            ok: true,
        }
    }

    /// Minimal structural check: one top-level JSON value with balanced
    /// braces/brackets outside string literals. (CI re-validates the
    /// output against the trace-event schema with a real JSON parser.)
    fn assert_balanced_json(s: &str) {
        let (mut depth, mut in_str, mut escaped) = (0i64, false, false);
        for c in s.chars() {
            if in_str {
                match (escaped, c) {
                    (true, _) => escaped = false,
                    (false, '\\') => escaped = true,
                    (false, '"') => in_str = false,
                    _ => {}
                }
                continue;
            }
            match c {
                '"' => in_str = true,
                '{' | '[' => depth += 1,
                '}' | ']' => {
                    depth -= 1;
                    assert!(depth >= 0, "unbalanced close in {s}");
                }
                _ => {}
            }
        }
        assert!(!in_str, "unterminated string in {s}");
        assert_eq!(depth, 0, "unbalanced braces in {s}");
    }

    #[test]
    fn trace_has_one_event_per_span_plus_metadata() {
        let spans = [
            span(SpanKind::Submit, 1_000, 0, 0),
            span(SpanKind::Drain, 1_500, 2_500, 1),
            span(SpanKind::Retry, 9_999, 0, 1),
        ];
        let json = render_chrome_trace(&spans);
        assert_balanced_json(&json);
        assert!(json.starts_with("{\"displayTimeUnit\":\"ns\",\"traceEvents\":["));
        // 1 process_name + 2 lane thread_names + 3 spans.
        assert_eq!(json.matches("\"ph\":").count(), 6);
        assert_eq!(json.matches("\"pid\":1").count(), 6);
    }

    #[test]
    fn durations_become_complete_events_instants_otherwise() {
        let json = render_chrome_trace(&[
            span(SpanKind::Drain, 5_000, 2_000, 0),
            span(SpanKind::Column, 6_000, 0, 0),
        ]);
        assert!(json.contains("\"ph\":\"X\",\"dur\":2.000"));
        assert!(json.contains("\"ph\":\"i\",\"s\":\"t\""));
    }

    #[test]
    fn timestamps_are_microseconds_with_ns_precision() {
        let json = render_chrome_trace(&[span(SpanKind::Round, 1_234_567, 0, 0)]);
        assert!(json.contains("\"ts\":1234.567"), "{json}");
    }

    #[test]
    fn lanes_map_to_tids_with_names() {
        let json = render_chrome_trace(&[
            span(SpanKind::Shard, 0, 0, 2),
            span(SpanKind::Steal, 1, 0, 5),
        ]);
        assert!(json.contains("\"name\":\"process_name\""));
        assert!(json.contains("\"name\":\"lane 2\""));
        assert!(json.contains("\"name\":\"lane 5\""));
        assert!(json.contains("\"tid\":5"));
    }

    #[test]
    fn empty_input_still_renders_valid_json() {
        let json = render_chrome_trace(&[]);
        assert_balanced_json(&json);
        assert_eq!(
            json.matches("\"ph\":").count(),
            1,
            "just the process_name metadata event"
        );
    }
}
