//! Latency histograms: the serializable fixed-bucket [`LatencyHistogram`]
//! (moved here from `bnb-engine`, which re-exports it) and the lock-free
//! [`AtomicHistogram`] used for concurrent recording.
//!
//! Latency is tracked in a fixed array of 64 power-of-two nanosecond
//! buckets — constant memory, no per-sample allocation, and quantiles in
//! one pass. Bucket `0` covers `[0, 2)` ns and bucket `i ≥ 1` covers
//! `[2^i, 2^(i+1))` ns, so the full `u64` nanosecond range is always
//! representable. Quantiles report the bucket's inclusive upper edge,
//! clamped to the observed `[min, max]` range, which bounds the error at
//! one octave while keeping the histogram mergeable and serializable.

use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering};

/// Fixed-bucket latency histogram over power-of-two nanosecond ranges.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LatencyHistogram {
    /// Sample counts; bucket `i` covers `[2^i, 2^(i+1))` ns (`[0, 2)` for
    /// `i = 0`).
    buckets: Vec<u64>,
    count: u64,
    min_ns: u64,
    max_ns: u64,
    sum_ns: u64,
}

/// Number of histogram buckets (one per `u64` bit).
pub const HISTOGRAM_BUCKETS: usize = 64;

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        LatencyHistogram {
            buckets: vec![0; HISTOGRAM_BUCKETS],
            count: 0,
            min_ns: u64::MAX,
            max_ns: 0,
            sum_ns: 0,
        }
    }

    /// The bucket index for a sample: `floor(log2(ns))`, with `0` and `1`
    /// ns folded into bucket `0`.
    #[inline]
    pub fn bucket_index(ns: u64) -> usize {
        if ns < 2 {
            0
        } else {
            63 - ns.leading_zeros() as usize
        }
    }

    /// Records one latency sample.
    pub fn record(&mut self, ns: u64) {
        self.buckets[Self::bucket_index(ns)] += 1;
        self.count += 1;
        self.min_ns = self.min_ns.min(ns);
        self.max_ns = self.max_ns.max(ns);
        self.sum_ns = self.sum_ns.saturating_add(ns);
    }

    /// Samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Smallest sample, or `0` when empty.
    pub fn min_ns(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min_ns
        }
    }

    /// Largest sample, or `0` when empty.
    pub fn max_ns(&self) -> u64 {
        self.max_ns
    }

    /// Mean sample, or `0` when empty.
    pub fn mean_ns(&self) -> u64 {
        self.sum_ns.checked_div(self.count).unwrap_or(0)
    }

    /// Sum of all recorded samples (the Prometheus `_sum` series).
    pub fn sum_ns(&self) -> u64 {
        self.sum_ns
    }

    /// The `q`-quantile (e.g. `0.5`, `0.99`) as the covering bucket's
    /// inclusive upper edge, clamped to the observed range. `0` when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target {
                let edge = if i >= 63 { u64::MAX } else { (2u64 << i) - 1 };
                return edge.clamp(self.min_ns, self.max_ns);
            }
        }
        self.max_ns
    }

    /// The raw bucket counts (length [`HISTOGRAM_BUCKETS`]).
    pub fn buckets(&self) -> &[u64] {
        &self.buckets
    }

    /// Folds another histogram into this one.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (b, o) in self.buckets.iter_mut().zip(&other.buckets) {
            *b += o;
        }
        self.count += other.count;
        self.min_ns = self.min_ns.min(other.min_ns);
        self.max_ns = self.max_ns.max(other.max_ns);
        self.sum_ns = self.sum_ns.saturating_add(other.sum_ns);
    }
}

/// Headline latency quantiles, precomputed from the histogram.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct LatencySummary {
    /// Smallest per-batch latency observed.
    pub min_ns: u64,
    /// Median (bucket upper edge).
    pub p50_ns: u64,
    /// 99th percentile (bucket upper edge).
    pub p99_ns: u64,
    /// Largest per-batch latency observed.
    pub max_ns: u64,
    /// Mean per-batch latency.
    pub mean_ns: u64,
}

impl LatencySummary {
    /// Summarizes a histogram.
    pub fn from_histogram(h: &LatencyHistogram) -> Self {
        LatencySummary {
            min_ns: h.min_ns(),
            p50_ns: h.quantile(0.50),
            p99_ns: h.quantile(0.99),
            max_ns: h.max_ns(),
            mean_ns: h.mean_ns(),
        }
    }
}

/// Lock-free histogram sharing [`LatencyHistogram`]'s bucket layout.
///
/// `record` is a handful of relaxed atomic RMWs, safe to call from any
/// thread concurrently; [`snapshot`](AtomicHistogram::snapshot) folds the
/// state into a plain [`LatencyHistogram`] for quantiles and serde.
/// Snapshots taken while writers are active are per-field consistent
/// (each counter is atomically read) but not a point-in-time cut — fine
/// for monitoring, which is all this is for.
#[derive(Debug)]
pub struct AtomicHistogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    min_ns: AtomicU64,
    max_ns: AtomicU64,
    sum_ns: AtomicU64,
}

impl Default for AtomicHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl AtomicHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        AtomicHistogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            min_ns: AtomicU64::new(u64::MAX),
            max_ns: AtomicU64::new(0),
            sum_ns: AtomicU64::new(0),
        }
    }

    /// Records one latency sample; lock-free and allocation-free.
    #[inline]
    pub fn record(&self, ns: u64) {
        self.buckets[LatencyHistogram::bucket_index(ns)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.min_ns.fetch_min(ns, Ordering::Relaxed);
        self.max_ns.fetch_max(ns, Ordering::Relaxed);
        self.sum_ns.fetch_add(ns, Ordering::Relaxed);
    }

    /// Samples recorded so far.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Zeroes the histogram back to its empty state. Not atomic with
    /// respect to concurrent `record` calls — reset between measurement
    /// sessions, not during one.
    pub fn reset(&self) {
        for bucket in &self.buckets {
            bucket.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.min_ns.store(u64::MAX, Ordering::Relaxed);
        self.max_ns.store(0, Ordering::Relaxed);
        self.sum_ns.store(0, Ordering::Relaxed);
    }

    /// Folds the current state into a plain [`LatencyHistogram`].
    pub fn snapshot(&self) -> LatencyHistogram {
        let count = self.count.load(Ordering::Relaxed);
        if count == 0 {
            return LatencyHistogram::new();
        }
        let mut h = LatencyHistogram {
            buckets: vec![0; HISTOGRAM_BUCKETS],
            count,
            min_ns: self.min_ns.load(Ordering::Relaxed),
            max_ns: self.max_ns.load(Ordering::Relaxed),
            sum_ns: self.sum_ns.load(Ordering::Relaxed),
        };
        for (dst, src) in h.buckets.iter_mut().zip(self.buckets.iter()) {
            *dst = src.load(Ordering::Relaxed);
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries_are_powers_of_two() {
        assert_eq!(LatencyHistogram::bucket_index(0), 0);
        assert_eq!(LatencyHistogram::bucket_index(1), 0);
        assert_eq!(LatencyHistogram::bucket_index(2), 1);
        assert_eq!(LatencyHistogram::bucket_index(3), 1);
        assert_eq!(LatencyHistogram::bucket_index(4), 2);
        assert_eq!(LatencyHistogram::bucket_index(7), 2);
        assert_eq!(LatencyHistogram::bucket_index(8), 3);
        assert_eq!(LatencyHistogram::bucket_index(1 << 20), 20);
        assert_eq!(LatencyHistogram::bucket_index((1 << 21) - 1), 20);
        assert_eq!(LatencyHistogram::bucket_index(u64::MAX), 63);
    }

    #[test]
    fn records_land_in_their_buckets() {
        let mut h = LatencyHistogram::new();
        for ns in [1u64, 2, 3, 1000, 1024, u64::MAX] {
            h.record(ns);
        }
        assert_eq!(h.count(), 6);
        assert_eq!(h.buckets()[0], 1); // 1
        assert_eq!(h.buckets()[1], 2); // 2, 3
        assert_eq!(h.buckets()[9], 1); // 1000 in [512, 1024)
        assert_eq!(h.buckets()[10], 1); // 1024
        assert_eq!(h.buckets()[63], 1); // u64::MAX
        assert_eq!(h.min_ns(), 1);
        assert_eq!(h.max_ns(), u64::MAX);
    }

    #[test]
    fn empty_histogram_reports_zeros() {
        let h = LatencyHistogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.min_ns(), 0);
        assert_eq!(h.max_ns(), 0);
        assert_eq!(h.mean_ns(), 0);
        assert_eq!(h.quantile(0.5), 0);
        let s = LatencySummary::from_histogram(&h);
        assert_eq!(s, LatencySummary::default());
    }

    #[test]
    fn p99_separates_the_tail() {
        let mut h = LatencyHistogram::new();
        // 99 fast samples around 1 µs, one slow outlier around 1 ms.
        for _ in 0..99 {
            h.record(1_000);
        }
        h.record(1_000_000);
        // p50 stays in the fast bucket: upper edge of [512, 1024) * 2 - 1.
        let p50 = h.quantile(0.50);
        assert!(p50 < 2_048, "p50 = {p50}");
        // p99 still lands on a fast sample (ceil(0.99 * 100) = 99th).
        assert!(h.quantile(0.99) < 2_048);
        // The full quantile catches the outlier, clamped to max.
        assert_eq!(h.quantile(1.0), 1_000_000);
    }

    #[test]
    fn quantiles_clamp_to_observed_range() {
        let mut h = LatencyHistogram::new();
        h.record(700);
        // Single sample: every quantile is exactly it (edges clamp to
        // [700, 700]).
        assert_eq!(h.quantile(0.01), 700);
        assert_eq!(h.quantile(0.50), 700);
        assert_eq!(h.quantile(0.99), 700);
    }

    #[test]
    fn merge_is_additive() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        a.record(10);
        a.record(100);
        b.record(1_000);
        let mut merged = a.clone();
        merged.merge(&b);
        assert_eq!(merged.count(), 3);
        assert_eq!(merged.min_ns(), 10);
        assert_eq!(merged.max_ns(), 1_000);
        assert_eq!(
            merged.buckets().iter().sum::<u64>(),
            a.buckets().iter().sum::<u64>() + b.buckets().iter().sum::<u64>()
        );
    }

    #[test]
    fn histogram_serde_round_trips() {
        let mut h = LatencyHistogram::new();
        for ns in [5u64, 50, 500, 5_000] {
            h.record(ns);
        }
        let json = serde_json::to_string(&h).unwrap();
        let back: LatencyHistogram = serde_json::from_str(&json).unwrap();
        assert_eq!(back, h);
        assert_eq!(back.quantile(0.5), h.quantile(0.5));
    }

    #[test]
    fn atomic_snapshot_matches_sequential() {
        let atomic = AtomicHistogram::new();
        let mut plain = LatencyHistogram::new();
        for ns in [1u64, 2, 3, 1000, 1024, 70_000, u64::MAX] {
            atomic.record(ns);
            plain.record(ns);
        }
        let snap = atomic.snapshot();
        // sum saturates in `plain` for u64::MAX but wraps in the atomic;
        // compare the non-sum-derived fields and bucket layout.
        assert_eq!(snap.count(), plain.count());
        assert_eq!(snap.min_ns(), plain.min_ns());
        assert_eq!(snap.max_ns(), plain.max_ns());
        assert_eq!(snap.buckets(), plain.buckets());
        assert_eq!(snap.quantile(0.5), plain.quantile(0.5));
    }

    #[test]
    fn atomic_empty_snapshot_is_empty() {
        let snap = AtomicHistogram::new().snapshot();
        assert_eq!(snap, LatencyHistogram::new());
        assert_eq!(snap.min_ns(), 0);
    }

    #[test]
    fn atomic_reset_returns_to_empty() {
        let atomic = AtomicHistogram::new();
        atomic.record(42);
        atomic.record(9_000);
        assert_eq!(atomic.count(), 2);
        atomic.reset();
        assert_eq!(atomic.count(), 0);
        assert_eq!(atomic.snapshot(), LatencyHistogram::new());
        // Still usable after reset.
        atomic.record(7);
        assert_eq!(atomic.snapshot().min_ns(), 7);
    }

    #[test]
    fn atomic_records_concurrently() {
        let atomic = AtomicHistogram::new();
        std::thread::scope(|scope| {
            for t in 0..4 {
                let h = &atomic;
                scope.spawn(move || {
                    for i in 0..1_000u64 {
                        h.record(t * 1_000 + i + 1);
                    }
                });
            }
        });
        let snap = atomic.snapshot();
        assert_eq!(snap.count(), 4_000);
        assert_eq!(snap.min_ns(), 1);
        assert_eq!(snap.max_ns(), 4_000);
        assert_eq!(snap.buckets().iter().sum::<u64>(), 4_000);
    }
}
