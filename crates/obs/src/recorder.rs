//! The [`FlightRecorder`]: a fixed-capacity, lock-free ring buffer of
//! timestamped [`Span`]s with sampling and a drop counter.
//!
//! A flight recorder answers "what happened just before things went
//! wrong?" without unbounded logs: it keeps the *last* `capacity` spans
//! per writer lane, overwrites the oldest on overflow, and counts every
//! overwrite in [`dropped`](FlightRecorder::dropped) so sampling and
//! eviction are never silent. Recording is wait-free per span — one
//! `fetch_add` to claim a slot plus a seqlock-versioned write of a few
//! relaxed atomics — and allocation-free after construction, so it can sit
//! on the routing hot path next to [`crate::Counters`].
//!
//! # Lanes
//!
//! The recorder is sharded into [`RECORDER_LANES`] per-thread lanes (the
//! same thread-ordinal trick as [`crate::Counters`]): each engine worker
//! writes its own ring with no cross-thread contention, and
//! [`spans`](FlightRecorder::spans) merges the lanes back into one
//! timestamp-ordered sequence — the "per-worker shards merged at drain"
//! model. The lane index is stamped into every span and becomes the `tid`
//! lane in the Chrome trace export ([`crate::render_chrome_trace`]).
//!
//! # Sampling
//!
//! Head sampling ([`SamplePolicy::Rate`]) keeps one span in `n`; tail
//! sampling ([`SamplePolicy::Errors`] or a custom
//! [`SamplePolicy::Predicate`]) keeps only frames that hit a conflict,
//! retry, or hardware fault. Spans rejected by the policy are tallied in
//! [`sampled_out`](FlightRecorder::sampled_out).

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::time::Instant;

use serde::{Deserialize, Serialize};

use crate::event::{
    ColumnEvent, ConflictEvent, DrainEvent, FaultEvent, HopEvent, RetryEvent, RoundEvent,
    ShardEvent, SubmitEvent, SweepEvent,
};
use crate::observer::Observer;

/// Writer lanes (per-thread rings). A power of two; more threads than
/// lanes share lanes — still correct, mildly contended.
pub const RECORDER_LANES: usize = 8;

/// The per-thread lane, assigned in thread-creation order (mirrors
/// `Counters`' shard assignment so engine worker `i` tends to lane `i`).
fn lane_index() -> usize {
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    thread_local! {
        static LANE: usize = NEXT.fetch_add(1, Ordering::Relaxed) % RECORDER_LANES;
    }
    LANE.with(|i| *i)
}

/// What a recorded [`Span`] describes. Mirrors the [`Observer`] event
/// vocabulary one-to-one.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SpanKind {
    /// A switching column routed ([`ColumnEvent`]).
    Column,
    /// An arbiter-tree sweep ([`SweepEvent`]).
    Sweep,
    /// A splitter balance violation ([`ConflictEvent`]).
    Conflict,
    /// One cell crossing one column ([`HopEvent`]).
    Hop,
    /// A subnetwork slice published to the work queue ([`ShardEvent`]).
    Shard,
    /// A queued slice taken by a worker ([`ShardEvent`]).
    Steal,
    /// A batch entering the submission queue ([`SubmitEvent`]).
    Submit,
    /// A batch completed, successfully or not ([`DrainEvent`]).
    Drain,
    /// An input-queued-switch scheduler round ([`RoundEvent`]).
    Round,
    /// A hardware fault detection ([`FaultEvent`]).
    Fault,
    /// A batch retried on another fabric shard ([`RetryEvent`]).
    Retry,
    /// A served wire request that crossed the slow-capture threshold:
    /// `seq` is the request id, `dur_ns` the wire-to-wire latency, `a`
    /// the tenant, `b` the record count. Recorded directly by the serve
    /// layer, not via an [`Observer`] event.
    Request,
}

impl SpanKind {
    fn from_tag(tag: u64) -> SpanKind {
        match tag {
            0 => SpanKind::Column,
            1 => SpanKind::Sweep,
            2 => SpanKind::Conflict,
            3 => SpanKind::Hop,
            4 => SpanKind::Shard,
            5 => SpanKind::Steal,
            6 => SpanKind::Submit,
            7 => SpanKind::Drain,
            8 => SpanKind::Round,
            9 => SpanKind::Fault,
            10 => SpanKind::Retry,
            _ => SpanKind::Request,
        }
    }

    fn tag(self) -> u64 {
        match self {
            SpanKind::Column => 0,
            SpanKind::Sweep => 1,
            SpanKind::Conflict => 2,
            SpanKind::Hop => 3,
            SpanKind::Shard => 4,
            SpanKind::Steal => 5,
            SpanKind::Submit => 6,
            SpanKind::Drain => 7,
            SpanKind::Round => 8,
            SpanKind::Fault => 9,
            SpanKind::Retry => 10,
            SpanKind::Request => 11,
        }
    }

    /// Whether spans of this kind describe an error-path event.
    pub fn is_error(self) -> bool {
        matches!(self, SpanKind::Conflict | SpanKind::Fault | SpanKind::Retry)
    }
}

/// One recorded event: a `Copy` struct small enough to land in a
/// preallocated ring slot with no heap traffic.
///
/// `a`/`b`/`c` carry the kind-specific payload (documented per arm in
/// [`FlightRecorder`]'s `Observer` impl; e.g. for [`SpanKind::Column`]
/// they are main stage, internal stage, and exchange count). `seq` is the
/// trace id threading engine spans together: the batch sequence number
/// for submit/drain/retry, the round number for scheduler rounds, `0`
/// elsewhere.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Span {
    /// What happened.
    pub kind: SpanKind,
    /// Nanoseconds since the recorder's epoch (its construction).
    pub ts_ns: u64,
    /// Duration, when the event carries one (drain latency); else 0.
    pub dur_ns: u64,
    /// Writer lane (per-thread; the Chrome trace `tid`).
    pub lane: u32,
    /// Trace id: batch seq / round number for engine and scheduler spans.
    pub seq: u64,
    /// First kind-specific payload word.
    pub a: u64,
    /// Second kind-specific payload word.
    pub b: u64,
    /// Third kind-specific payload word.
    pub c: u64,
    /// False for error-path spans (conflict, fault, retry, failed drain).
    pub ok: bool,
}

/// `Span` packs into this many `u64` ring-slot words.
const SLOT_WORDS: usize = 7;

impl Span {
    fn pack(&self) -> [u64; SLOT_WORDS] {
        let head = self.kind.tag() | (u64::from(self.ok) << 8) | (u64::from(self.lane) << 32);
        [
            head,
            self.ts_ns,
            self.dur_ns,
            self.seq,
            self.a,
            self.b,
            self.c,
        ]
    }

    fn unpack(words: [u64; SLOT_WORDS]) -> Span {
        Span {
            kind: SpanKind::from_tag(words[0] & 0xff),
            ok: (words[0] >> 8) & 1 == 1,
            lane: (words[0] >> 32) as u32,
            ts_ns: words[1],
            dur_ns: words[2],
            seq: words[3],
            a: words[4],
            b: words[5],
            c: words[6],
        }
    }
}

/// Which spans the recorder keeps (head/tail sampling).
#[derive(Clone, Copy, Default)]
pub enum SamplePolicy {
    /// Keep every span.
    #[default]
    All,
    /// Head sampling: keep one span in `n` (per lane, deterministic).
    Rate(u64),
    /// Tail sampling: keep only error-path spans — conflicts, hardware
    /// faults, retries, and failed drains.
    Errors,
    /// Keep spans the predicate accepts. The predicate must be cheap and
    /// allocation-free; it runs on the recording thread.
    Predicate(fn(&Span) -> bool),
}

impl std::fmt::Debug for SamplePolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SamplePolicy::All => write!(f, "All"),
            SamplePolicy::Rate(n) => write!(f, "Rate({n})"),
            SamplePolicy::Errors => write!(f, "Errors"),
            SamplePolicy::Predicate(_) => write!(f, "Predicate(..)"),
        }
    }
}

impl SamplePolicy {
    fn keeps(&self, span: &Span, tick: u64) -> bool {
        match self {
            SamplePolicy::All => true,
            SamplePolicy::Rate(n) => tick.is_multiple_of((*n).max(1)),
            SamplePolicy::Errors => span.kind.is_error() || !span.ok,
            SamplePolicy::Predicate(p) => p(span),
        }
    }
}

/// Accounting snapshot of a recorder ([`FlightRecorder::stats`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RecorderStats {
    /// Spans accepted into a ring (retained or later evicted).
    pub accepted: u64,
    /// Accepted spans overwritten by newer ones (ring overflow).
    pub dropped: u64,
    /// Spans rejected by the sampling policy.
    pub sampled_out: u64,
    /// Ring capacity per writer lane.
    pub capacity: usize,
}

/// One ring slot: a seqlock version word plus the packed span words.
///
/// A writer claims a ticket, stores `2·ticket + 1` (odd = in progress),
/// writes the words, then stores `2·ticket + 2` (even, unique per
/// ticket). A reader accepts a slot only if it sees the same even version
/// before and after reading the words, so half-written or wrapped slots
/// are skipped, never misread — and everything is plain relaxed atomics,
/// no unsafe.
struct Slot {
    version: AtomicU64,
    words: [AtomicU64; SLOT_WORDS],
}

/// One writer lane's ring.
struct Lane {
    /// Spans ever accepted into this lane (the next ticket).
    head: AtomicU64,
    slots: Box<[Slot]>,
}

impl Lane {
    fn new(capacity: usize) -> Self {
        Lane {
            head: AtomicU64::new(0),
            slots: (0..capacity)
                .map(|_| Slot {
                    version: AtomicU64::new(0),
                    words: std::array::from_fn(|_| AtomicU64::new(0)),
                })
                .collect(),
        }
    }

    fn push(&self, words: [u64; SLOT_WORDS]) -> bool {
        let ticket = self.head.fetch_add(1, Ordering::Relaxed);
        let slot = &self.slots[(ticket % self.slots.len() as u64) as usize];
        slot.version.store(2 * ticket + 1, Ordering::Release);
        for (w, v) in slot.words.iter().zip(words) {
            w.store(v, Ordering::Relaxed);
        }
        slot.version.store(2 * ticket + 2, Ordering::Release);
        ticket >= self.slots.len() as u64
    }

    /// Reads the retained spans (oldest first), skipping slots a
    /// concurrent writer is touching.
    fn collect(&self, out: &mut Vec<Span>) {
        let head = self.head.load(Ordering::Acquire);
        let cap = self.slots.len() as u64;
        for ticket in head.saturating_sub(cap)..head {
            let slot = &self.slots[(ticket % cap) as usize];
            if slot.version.load(Ordering::Acquire) != 2 * ticket + 2 {
                continue;
            }
            let mut words = [0u64; SLOT_WORDS];
            for (v, w) in words.iter_mut().zip(slot.words.iter()) {
                *v = w.load(Ordering::Relaxed);
            }
            if slot.version.load(Ordering::Acquire) != 2 * ticket + 2 {
                continue;
            }
            out.push(Span::unpack(words));
        }
    }
}

/// Fixed-capacity, lock-free ring buffer of [`Span`]s; see the
/// [module docs](self).
///
/// # Example
///
/// ```
/// use bnb_obs::{FlightRecorder, SamplePolicy, Span, SpanKind};
///
/// let rec = FlightRecorder::with_capacity(2).policy(SamplePolicy::All);
/// for i in 0..3 {
///     rec.record(Span {
///         kind: SpanKind::Round,
///         ts_ns: i,
///         dur_ns: 0,
///         lane: 0,
///         seq: i,
///         a: 0,
///         b: 0,
///         c: 0,
///         ok: true,
///     });
/// }
/// let spans = rec.spans();
/// assert_eq!(spans.len(), 2, "capacity bounds retention");
/// assert_eq!(spans[0].seq, 1, "the oldest span was evicted");
/// assert_eq!(rec.dropped(), 1, "and the eviction was counted");
/// ```
#[derive(Debug)]
pub struct FlightRecorder {
    lanes: Box<[Lane]>,
    policy: SamplePolicy,
    record_hops: bool,
    seen: AtomicU64,
    accepted: AtomicU64,
    dropped: AtomicU64,
    sampled_out: AtomicU64,
    epoch: Instant,
}

impl std::fmt::Debug for Lane {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Lane")
            .field("head", &self.head.load(Ordering::Relaxed))
            .field("capacity", &self.slots.len())
            .finish()
    }
}

impl Default for FlightRecorder {
    fn default() -> Self {
        Self::new()
    }
}

impl FlightRecorder {
    /// Default capacity per lane.
    pub const DEFAULT_CAPACITY: usize = 4096;

    /// A recorder keeping the last [`Self::DEFAULT_CAPACITY`] spans per
    /// lane, no sampling.
    pub fn new() -> Self {
        Self::with_capacity(Self::DEFAULT_CAPACITY)
    }

    /// A recorder keeping the last `capacity` spans *per writer lane*
    /// (total memory: [`RECORDER_LANES`]` × capacity × 64 B`, allocated
    /// here, never after).
    pub fn with_capacity(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        FlightRecorder {
            lanes: (0..RECORDER_LANES).map(|_| Lane::new(capacity)).collect(),
            policy: SamplePolicy::All,
            record_hops: false,
            seen: AtomicU64::new(0),
            accepted: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
            sampled_out: AtomicU64::new(0),
            epoch: Instant::now(),
        }
    }

    /// Replaces the sampling policy (builder style).
    pub fn policy(mut self, policy: SamplePolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Opts into per-cell [`HopEvent`] spans (off by default — see
    /// [`Observer::wants_hops`]).
    pub fn record_hops(mut self, yes: bool) -> Self {
        self.record_hops = yes;
        self
    }

    /// Nanoseconds since this recorder's construction (the `ts_ns` clock).
    pub fn now_ns(&self) -> u64 {
        self.epoch.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64
    }

    /// Records one span through the sampling policy. Wait-free and
    /// allocation-free.
    pub fn record(&self, span: Span) {
        let tick = self.seen.fetch_add(1, Ordering::Relaxed);
        if !self.policy.keeps(&span, tick) {
            self.sampled_out.fetch_add(1, Ordering::Relaxed);
            return;
        }
        self.accepted.fetch_add(1, Ordering::Relaxed);
        if self.lanes[span.lane as usize % RECORDER_LANES].push(span.pack()) {
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Builds and records a span for the calling thread's lane.
    #[allow(clippy::too_many_arguments)]
    fn emit(&self, kind: SpanKind, seq: u64, dur_ns: u64, ok: bool, a: u64, b: u64, c: u64) {
        let lane = lane_index() as u32;
        let ts_ns = self.now_ns().saturating_sub(dur_ns);
        self.record(Span {
            kind,
            ts_ns,
            dur_ns,
            lane,
            seq,
            a,
            b,
            c,
            ok,
        });
    }

    /// Spans currently retained, merged across lanes, oldest first.
    /// (Allocates; call at drain/exit, not on the hot path.)
    pub fn spans(&self) -> Vec<Span> {
        let mut out = Vec::new();
        for lane in self.lanes.iter() {
            lane.collect(&mut out);
        }
        out.sort_by_key(|s| (s.ts_ns, s.lane, s.seq));
        out
    }

    /// Spans currently retained across all lanes.
    pub fn len(&self) -> usize {
        let cap = self.lanes[0].slots.len() as u64;
        self.lanes
            .iter()
            .map(|l| l.head.load(Ordering::Relaxed).min(cap) as usize)
            .sum()
    }

    /// True when nothing has been retained.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Accepted spans overwritten by newer ones (ring overflow). Non-zero
    /// means [`spans`](Self::spans) is a *suffix* of the run, not all of
    /// it.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Spans rejected by the sampling policy.
    pub fn sampled_out(&self) -> u64 {
        self.sampled_out.load(Ordering::Relaxed)
    }

    /// Spans accepted into a ring (retained or since evicted).
    pub fn accepted(&self) -> u64 {
        self.accepted.load(Ordering::Relaxed)
    }

    /// The accounting snapshot.
    pub fn stats(&self) -> RecorderStats {
        RecorderStats {
            accepted: self.accepted(),
            dropped: self.dropped(),
            sampled_out: self.sampled_out(),
            capacity: self.lanes[0].slots.len(),
        }
    }
}

/// Every observer event becomes one span; the `a`/`b`/`c` payload per
/// kind is documented on each arm.
impl Observer for FlightRecorder {
    #[inline]
    fn wants_hops(&self) -> bool {
        self.record_hops
    }

    /// `a` = main stage, `b` = internal stage, `c` = exchanges.
    fn column_routed(&self, e: ColumnEvent) {
        self.emit(
            SpanKind::Column,
            0,
            0,
            true,
            e.main_stage as u64,
            e.internal_stage as u64,
            e.exchanges,
        );
    }

    /// `a` = destination, `b` = entry port, `c` = exchanged; `seq` packs
    /// the column as `main_stage << 8 | internal_stage`.
    fn cell_hop(&self, e: HopEvent) {
        self.emit(
            SpanKind::Hop,
            ((e.main_stage as u64) << 8) | e.internal_stage as u64,
            0,
            true,
            e.dest as u64,
            e.port as u64,
            u64::from(e.exchanged),
        );
    }

    /// `a` = main stage, `b` = internal stage, `c` = tree depth.
    fn arbiter_sweep(&self, e: SweepEvent) {
        self.emit(
            SpanKind::Sweep,
            0,
            0,
            true,
            e.main_stage as u64,
            e.internal_stage as u64,
            e.depth as u64,
        );
    }

    /// `a` = main stage, `b` = first line, `c` = ones observed.
    fn splitter_conflict(&self, e: ConflictEvent) {
        self.emit(
            SpanKind::Conflict,
            0,
            0,
            false,
            e.main_stage as u64,
            e.first_line as u64,
            e.ones as u64,
        );
    }

    /// `a` = first line, `b` = slice length, `c` = start stage.
    fn shard_enqueued(&self, e: ShardEvent) {
        self.emit(
            SpanKind::Shard,
            0,
            0,
            true,
            e.first_line as u64,
            e.len as u64,
            e.start_stage as u64,
        );
    }

    /// `a` = first line, `b` = slice length, `c` = start stage.
    fn shard_stolen(&self, e: ShardEvent) {
        self.emit(
            SpanKind::Steal,
            0,
            0,
            true,
            e.first_line as u64,
            e.len as u64,
            e.start_stage as u64,
        );
    }

    /// `seq` = batch seq, `a` = records.
    fn batch_submitted(&self, e: SubmitEvent) {
        self.emit(SpanKind::Submit, e.seq, 0, true, e.records as u64, 0, 0);
    }

    /// `seq` = batch seq, `a` = records, `dur_ns` = submit-to-completion
    /// latency (the span covers the batch's life, not an instant).
    fn batch_drained(&self, e: DrainEvent) {
        self.emit(
            SpanKind::Drain,
            e.seq,
            e.latency_ns,
            e.ok,
            e.records as u64,
            0,
            0,
        );
    }

    /// `seq` = round, `a` = matched, `b` = backlog.
    fn scheduler_round(&self, e: RoundEvent) {
        self.emit(
            SpanKind::Round,
            e.round,
            0,
            true,
            e.matched as u64,
            e.backlog as u64,
            0,
        );
    }

    /// `a` = main stage, `b` = internal stage, `c` = first line.
    fn hardware_fault(&self, e: FaultEvent) {
        self.emit(
            SpanKind::Fault,
            0,
            0,
            false,
            e.main_stage as u64,
            e.internal_stage as u64,
            e.first_line as u64,
        );
    }

    /// `seq` = batch seq, `a` = attempt, `b` = fabric shard — the trace
    /// id (`seq`) ties every retry and the eventual drain (or
    /// quarantine) of a batch into one thread of spans.
    fn batch_retried(&self, e: RetryEvent) {
        self.emit(
            SpanKind::Retry,
            e.seq,
            0,
            false,
            e.attempt as u64,
            e.shard as u64,
            0,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(seq: u64) -> Span {
        Span {
            kind: SpanKind::Round,
            ts_ns: seq,
            dur_ns: 0,
            lane: 0,
            seq,
            a: 0,
            b: 0,
            c: 0,
            ok: true,
        }
    }

    #[test]
    fn pack_round_trips_every_kind() {
        for kind in [
            SpanKind::Column,
            SpanKind::Sweep,
            SpanKind::Conflict,
            SpanKind::Hop,
            SpanKind::Shard,
            SpanKind::Steal,
            SpanKind::Submit,
            SpanKind::Drain,
            SpanKind::Round,
            SpanKind::Fault,
            SpanKind::Retry,
            SpanKind::Request,
        ] {
            let s = Span {
                kind,
                ts_ns: 123,
                dur_ns: 45,
                lane: 3,
                seq: 9,
                a: 1,
                b: 2,
                c: 3,
                ok: kind != SpanKind::Fault,
            };
            assert_eq!(Span::unpack(s.pack()), s);
        }
    }

    #[test]
    fn overflow_evicts_oldest_and_counts_drops() {
        let rec = FlightRecorder::with_capacity(4);
        for i in 0..10 {
            rec.record(span(i));
        }
        assert_eq!(rec.accepted(), 10);
        assert_eq!(rec.dropped(), 6);
        assert_eq!(rec.len(), 4);
        let seqs: Vec<u64> = rec.spans().iter().map(|s| s.seq).collect();
        assert_eq!(seqs, vec![6, 7, 8, 9], "only the newest survive");
    }

    #[test]
    fn rate_sampling_counts_rejections() {
        let rec = FlightRecorder::with_capacity(16).policy(SamplePolicy::Rate(3));
        for i in 0..9 {
            rec.record(span(i));
        }
        assert_eq!(rec.accepted(), 3);
        assert_eq!(rec.sampled_out(), 6);
        assert_eq!(rec.dropped(), 0);
        assert_eq!(rec.spans().len(), 3);
    }

    #[test]
    fn error_sampling_keeps_only_error_paths() {
        let rec = FlightRecorder::with_capacity(16).policy(SamplePolicy::Errors);
        rec.record(span(0));
        let mut fault = span(1);
        fault.kind = SpanKind::Fault;
        fault.ok = false;
        rec.record(fault);
        let mut failed_drain = span(2);
        failed_drain.kind = SpanKind::Drain;
        failed_drain.ok = false;
        rec.record(failed_drain);
        assert_eq!(rec.accepted(), 2);
        assert_eq!(rec.sampled_out(), 1);
        let kinds: Vec<SpanKind> = rec.spans().iter().map(|s| s.kind).collect();
        assert_eq!(kinds, vec![SpanKind::Fault, SpanKind::Drain]);
    }

    #[test]
    fn predicate_sampling_filters() {
        let rec =
            FlightRecorder::with_capacity(16).policy(SamplePolicy::Predicate(|s| s.seq % 2 == 0));
        for i in 0..6 {
            rec.record(span(i));
        }
        let seqs: Vec<u64> = rec.spans().iter().map(|s| s.seq).collect();
        assert_eq!(seqs, vec![0, 2, 4]);
        assert_eq!(rec.sampled_out(), 3);
    }

    #[test]
    fn observer_events_land_as_spans() {
        let rec = FlightRecorder::with_capacity(16);
        rec.column_routed(ColumnEvent {
            main_stage: 1,
            internal_stage: 2,
            first_line: 0,
            width: 8,
            exchanges: 3,
        });
        rec.batch_drained(DrainEvent {
            seq: 7,
            records: 64,
            latency_ns: 1_000,
            ok: true,
        });
        rec.batch_retried(RetryEvent {
            seq: 7,
            attempt: 1,
            shard: 1,
        });
        let spans = rec.spans();
        assert_eq!(spans.len(), 3);
        let col = spans.iter().find(|s| s.kind == SpanKind::Column).unwrap();
        assert_eq!((col.a, col.b, col.c), (1, 2, 3));
        let drain = spans.iter().find(|s| s.kind == SpanKind::Drain).unwrap();
        assert_eq!(drain.seq, 7, "the batch seq is the trace id");
        assert_eq!(drain.dur_ns, 1_000);
        let retry = spans.iter().find(|s| s.kind == SpanKind::Retry).unwrap();
        assert_eq!(retry.seq, drain.seq, "retries thread the same trace id");
        assert!(!retry.ok);
    }

    #[test]
    fn hops_are_opt_in() {
        let off = FlightRecorder::with_capacity(4);
        assert!(!off.wants_hops());
        let on = FlightRecorder::with_capacity(4).record_hops(true);
        assert!(on.wants_hops());
        on.cell_hop(HopEvent {
            dest: 3,
            main_stage: 0,
            internal_stage: 1,
            first_line: 0,
            port: 2,
            exchanged: true,
            sweep: 0,
        });
        let spans = on.spans();
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].kind, SpanKind::Hop);
        assert_eq!((spans[0].a, spans[0].b, spans[0].c), (3, 2, 1));
    }

    #[test]
    fn concurrent_writers_never_corrupt_spans() {
        let rec = FlightRecorder::with_capacity(32);
        std::thread::scope(|scope| {
            for t in 0..4u64 {
                let r = &rec;
                scope.spawn(move || {
                    for i in 0..1_000 {
                        let mut s = span(t * 10_000 + i);
                        s.a = s.seq;
                        r.record(s);
                    }
                });
            }
        });
        assert_eq!(rec.accepted(), 4_000);
        for s in rec.spans() {
            assert_eq!(s.kind, SpanKind::Round);
            assert_eq!(s.a, s.seq, "slot words must be from one write");
        }
        assert_eq!(
            rec.accepted() - rec.dropped(),
            rec.spans().len() as u64,
            "retained + dropped = accepted"
        );
    }

    #[test]
    fn stats_snapshot_is_consistent() {
        let rec = FlightRecorder::with_capacity(2).policy(SamplePolicy::Rate(2));
        for i in 0..8 {
            rec.record(span(i));
        }
        let st = rec.stats();
        assert_eq!(st.accepted, 4);
        assert_eq!(st.sampled_out, 4);
        assert_eq!(st.dropped, 2);
        assert_eq!(st.capacity, 2);
        let json = serde_json::to_string(&st).unwrap();
        let back: RecorderStats = serde_json::from_str(&json).unwrap();
        assert_eq!(back, st);
    }
}
