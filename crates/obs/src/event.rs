//! Typed events emitted by the routing layers.
//!
//! Every event is a small `Copy` struct so emitting one is a register
//! move, never an allocation. Field vocabulary follows the paper:
//! `main_stage` indexes the GBN's `m` main stages, `internal_stage` the
//! columns of the nested network at that stage, and `first_line` is the
//! *global* input-line coordinate of the reporting site — identical to the
//! coordinates in `RouteError::UnbalancedSplitter` and the route trace.

use serde::{Deserialize, Serialize};

/// One switching column routed over a (slice of a) frame.
///
/// A full-frame route of an `N = 2^m` network emits exactly
/// `m(m+1)/2` of these (eq. (7)); a sharded engine route emits one per
/// column *per slice*, which still sums to the same per-column totals.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ColumnEvent {
    /// Main-network stage (`0..m`).
    pub main_stage: usize,
    /// Column within the stage's nested networks (`0..m - main_stage`).
    pub internal_stage: usize,
    /// Global line coordinate of the first line this event covers.
    pub first_line: usize,
    /// Number of lines covered (the whole frame, or one engine slice).
    pub width: usize,
    /// 2×2 switches in this column that exchanged their pair.
    pub exchanges: u64,
}

/// One splitter's arbiter tree sweep (Definition 6).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SweepEvent {
    /// Main-network stage.
    pub main_stage: usize,
    /// Column within the stage's nested networks.
    pub internal_stage: usize,
    /// Global line coordinate of the splitter's first line.
    pub first_line: usize,
    /// Splitter width `2^p`.
    pub width: usize,
    /// Tree depth `p` swept up and down — the per-splitter term the
    /// paper's delay model charges in eq. (8).
    pub depth: usize,
}

/// A splitter whose §4 balance assumption was violated.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ConflictEvent {
    /// Main-network stage.
    pub main_stage: usize,
    /// Column within the stage's nested networks.
    pub internal_stage: usize,
    /// Global line coordinate of the splitter's first line.
    pub first_line: usize,
    /// Splitter width.
    pub width: usize,
    /// One-bits observed (odd for `width ≥ 4`, `≠ 1` for `width == 2`).
    pub ones: usize,
}

/// A subnetwork slice of an in-flight batch handed to the work queue
/// (`shard_enqueued`) or taken from it by a worker (`shard_stolen`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ShardEvent {
    /// Global line coordinate of the slice's first line.
    pub first_line: usize,
    /// Lines in the slice.
    pub len: usize,
    /// First main stage the slice still has to route.
    pub start_stage: usize,
}

/// One cell crossing one switching column: the per-cell companion to
/// [`ColumnEvent`], emitted only when
/// [`Observer::wants_hops`](crate::Observer::wants_hops) is true (path
/// tracing is opt-in because a frame of `N` cells emits `N` of these per
/// column — `N·m(m+1)/2` per route).
///
/// A cell's ordered hop list reconstructs its entire route: `port` is the
/// global line the cell occupied *entering* the column, `exchanged` the
/// switch setting applied to its pair, so the exit line is `port ^ 1` when
/// exchanged and `port` otherwise, and the next column's entry line
/// follows from the wiring. The hop with `internal_stage == 0` is the
/// cell's *main-stage hop* for that stage — exactly `m` of them per cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct HopEvent {
    /// Destination address of the cell (its identity under permutation
    /// traffic).
    pub dest: usize,
    /// Main-network stage.
    pub main_stage: usize,
    /// Column within the stage's nested networks (the nested BSN slice).
    pub internal_stage: usize,
    /// Global line coordinate of the splitter's first line (the splitter
    /// site, matching [`SweepEvent::first_line`]).
    pub first_line: usize,
    /// Global line the cell occupied entering the column.
    pub port: usize,
    /// Whether the cell's 2×2 switch exchanged its pair.
    pub exchanged: bool,
    /// Arbiter-sweep ordinal: the splitter's index within its column
    /// (`first_line / width`), identical however the frame is sharded.
    pub sweep: usize,
}

/// A batch entering the engine's bounded submission queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SubmitEvent {
    /// Submission sequence number.
    pub seq: u64,
    /// Records in the batch.
    pub records: usize,
}

/// A batch fully routed (or failed) and ready to drain.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DrainEvent {
    /// Submission sequence number.
    pub seq: u64,
    /// Records in the batch.
    pub records: usize,
    /// Submit-to-completion latency in nanoseconds.
    pub latency_ns: u64,
    /// Whether the batch routed successfully.
    pub ok: bool,
}

/// A hardware fault detected mid-route: a splitter in a faulted column
/// produced an unbalanced *output* (`M_e != M_o`), which healthy hardware
/// cannot do on a checked input (Theorem 3). Accompanies every
/// `RouteError::HardwareFault`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultEvent {
    /// Main-network stage of the faulty splitter.
    pub main_stage: usize,
    /// Column within the stage's nested networks.
    pub internal_stage: usize,
    /// Global line coordinate of the splitter's first line.
    pub first_line: usize,
    /// Splitter width.
    pub width: usize,
    /// One-bits observed on even output lines (`M_e`).
    pub even_ones: usize,
    /// One-bits observed on odd output lines (`M_o`).
    pub odd_ones: usize,
}

/// A batch being retried on another fabric shard after a hardware fault
/// (the engine's retry-with-quarantine path).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RetryEvent {
    /// Submission sequence number of the retried batch.
    pub seq: u64,
    /// Retry attempt number (1 = first retry).
    pub attempt: usize,
    /// Fabric shard the attempt runs on.
    pub shard: usize,
}

/// One input-queued-switch scheduler round.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RoundEvent {
    /// Rounds run so far on this switch (this event is round `round`).
    pub round: u64,
    /// Records matched to outputs and routed this round (occupancy).
    pub matched: usize,
    /// Records still queued after the round.
    pub backlog: usize,
}

/// A client connection accepted by the serving front door.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AcceptEvent {
    /// Server-local connection ordinal (monotone per serving session).
    pub conn: u64,
}

/// A permutation frame routed and delivered back to its client.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ServeEvent {
    /// Tenant that submitted the frame.
    pub tenant: u16,
    /// Client-chosen request id echoed back on the response.
    pub request_id: u64,
    /// Records in the frame.
    pub records: usize,
    /// Admission-to-delivery latency in nanoseconds.
    pub latency_ns: u64,
}

/// A frame refused with an explicit `RETRY` response instead of being
/// queued — the server's bounded-buffering guarantee made visible.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ThrottleEvent {
    /// Tenant whose frame was pushed back.
    pub tenant: u16,
    /// Wire-level retry reason code (queue full, tenant quota, draining).
    pub reason: u8,
}

/// A SUBMIT refused by tenant authentication: missing or invalid
/// SipHash tag on a keyed server. Answered with a typed `ERROR(Auth)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AuthEvent {
    /// Tenant id the frame asserted.
    pub tenant: u16,
    /// Client-chosen request id of the refused frame.
    pub request_id: u64,
}

/// A connection's pipelining window deepened: one more SUBMIT admitted
/// while earlier ones are still in flight on the same connection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct WindowEvent {
    /// Server-local connection token.
    pub conn: u64,
    /// In-flight frames on the connection after this admission.
    pub depth: usize,
}

/// A reactor lane woken through its wake pipe (registration or
/// completion mail arrived while the lane was in `epoll_wait`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct WakeEvent {
    /// Reactor lane that was woken.
    pub lane: u32,
}

/// One background scrubber probe of a fabric shard: a seeded test
/// permutation routed through the shard's fault map to check whether a
/// previously detected fault is still present.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ScrubEvent {
    /// Fabric shard probed.
    pub shard: usize,
    /// Whether the probe routed cleanly (no fault detected).
    pub clean: bool,
    /// Consecutive clean probes on this shard so far (including this one;
    /// 0 when the probe tripped detection).
    pub streak: usize,
}

/// A fabric shard changing repair state: quarantined after the scrubber
/// confirmed a fault, or restored to service after a transient cleared.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RepairEvent {
    /// Fabric shard whose state changed.
    pub shard: usize,
    /// `true`: the shard re-entered service (capacity restored).
    /// `false`: the shard was confirmed dead and quarantined.
    pub restored: bool,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_are_small_and_copy() {
        fn assert_copy<T: Copy + Send + Sync>() {}
        assert_copy::<ColumnEvent>();
        assert_copy::<HopEvent>();
        assert_copy::<SweepEvent>();
        assert_copy::<ConflictEvent>();
        assert_copy::<ShardEvent>();
        assert_copy::<SubmitEvent>();
        assert_copy::<DrainEvent>();
        assert_copy::<RoundEvent>();
        assert_copy::<FaultEvent>();
        assert_copy::<RetryEvent>();
        assert_copy::<AcceptEvent>();
        assert_copy::<ServeEvent>();
        assert_copy::<ThrottleEvent>();
        assert_copy::<AuthEvent>();
        assert_copy::<WindowEvent>();
        assert_copy::<WakeEvent>();
        assert_copy::<ScrubEvent>();
        assert_copy::<RepairEvent>();
        assert!(std::mem::size_of::<ColumnEvent>() <= 48);
    }

    #[test]
    fn events_serde_roundtrip() {
        let e = ColumnEvent {
            main_stage: 1,
            internal_stage: 2,
            first_line: 8,
            width: 4,
            exchanges: 2,
        };
        let back: ColumnEvent = serde_json::from_str(&serde_json::to_string(&e).unwrap()).unwrap();
        assert_eq!(back, e);
        let r = RoundEvent {
            round: 7,
            matched: 3,
            backlog: 12,
        };
        let back: RoundEvent = serde_json::from_str(&serde_json::to_string(&r).unwrap()).unwrap();
        assert_eq!(back, r);
        let h = HopEvent {
            dest: 5,
            main_stage: 0,
            internal_stage: 2,
            first_line: 4,
            port: 6,
            exchanged: true,
            sweep: 1,
        };
        let back: HopEvent = serde_json::from_str(&serde_json::to_string(&h).unwrap()).unwrap();
        assert_eq!(back, h);
        let s = ScrubEvent {
            shard: 2,
            clean: true,
            streak: 3,
        };
        let back: ScrubEvent = serde_json::from_str(&serde_json::to_string(&s).unwrap()).unwrap();
        assert_eq!(back, s);
        let r = RepairEvent {
            shard: 2,
            restored: false,
        };
        let back: RepairEvent = serde_json::from_str(&serde_json::to_string(&r).unwrap()).unwrap();
        assert_eq!(back, r);
    }
}
