//! Request-lifecycle telemetry for the serving path: per-stage latency
//! accounting and per-tenant sliding-window aggregates.
//!
//! The paper's self-routing claim is a *latency* claim — no central
//! control computation between a frame arriving and its cells moving —
//! so the serving layer needs to show where each nanosecond of a served
//! request actually goes. A [`Telemetry`] sink holds one
//! [`AtomicHistogram`] per lifecycle [`Stage`] (decode → admission →
//! queue wait → route → drain → response write), a wire-to-wire
//! histogram the stage sums must reconcile against, and a sliding window
//! of per-tenant aggregates (request count, payload bytes, RETRYs,
//! errors, latency quantiles).
//!
//! # Stage accounting invariant
//!
//! Stages are recorded once per *served* request, all six at delivery
//! time, from timestamps taken at adjacent points of one request's
//! timeline. The stage sums therefore partition the wire-to-wire
//! latency by construction: `Σ stage.sum_ns ≈ wire.sum_ns` up to the
//! instants between adjacent stamps. CI asserts this reconciliation on
//! the serve soak.
//!
//! # Sliding windows
//!
//! Per-tenant state is a ring of [`WINDOW_SLOTS`] slots, each covering
//! one slot period. A recording thread that lands in a slot whose
//! period tag is stale swaps the tag and resets the slot's counters;
//! concurrent recorders racing that reset may smear a handful of counts
//! across the period boundary — acceptable for operator telemetry, and
//! the snapshot only merges slots still inside the window. Stage and
//! wire histograms are cumulative (process lifetime), not windowed, so
//! they reconcile exactly.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use serde::{Deserialize, Serialize};

use crate::histogram::AtomicHistogram;

/// One lifecycle stage of a served request, in timeline order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stage {
    /// Reading and parsing the frame off the wire (after the length
    /// prefix arrives; idle time between frames is not charged).
    Decode = 0,
    /// Admission control: draining check, tenant quota, global cap.
    Admission = 1,
    /// Waiting for engine capacity: dispatcher hand-off plus the
    /// engine's bounded submission queue.
    QueueWait = 2,
    /// Routing proper: worker pop to batch publish.
    Route = 3,
    /// Sitting routed in the completion buffer until the dispatcher
    /// delivers it.
    Drain = 4,
    /// Response write: reply-channel wait plus the socket write.
    Write = 5,
}

/// Number of lifecycle stages.
pub const STAGE_COUNT: usize = 6;

impl Stage {
    /// Every stage, in timeline order.
    pub const ALL: [Stage; STAGE_COUNT] = [
        Stage::Decode,
        Stage::Admission,
        Stage::QueueWait,
        Stage::Route,
        Stage::Drain,
        Stage::Write,
    ];

    /// The stage's label (used for Prometheus `stage=` labels and JSON).
    pub fn name(self) -> &'static str {
        match self {
            Stage::Decode => "decode",
            Stage::Admission => "admission",
            Stage::QueueWait => "queue_wait",
            Stage::Route => "route",
            Stage::Drain => "drain",
            Stage::Write => "write",
        }
    }
}

/// Slots in a tenant's sliding window ring.
pub const WINDOW_SLOTS: usize = 6;

/// One slot of a tenant's sliding window.
struct WindowSlot {
    /// Which slot period these counters describe; stale tags are
    /// reset-on-write when a new period claims the slot.
    period: AtomicU64,
    count: AtomicU64,
    bytes: AtomicU64,
    retries: AtomicU64,
    errors: AtomicU64,
    hist: AtomicHistogram,
}

impl WindowSlot {
    fn new() -> Self {
        WindowSlot {
            period: AtomicU64::new(u64::MAX),
            count: AtomicU64::new(0),
            bytes: AtomicU64::new(0),
            retries: AtomicU64::new(0),
            errors: AtomicU64::new(0),
            hist: AtomicHistogram::new(),
        }
    }

    fn reset(&self) {
        self.count.store(0, Ordering::Relaxed);
        self.bytes.store(0, Ordering::Relaxed);
        self.retries.store(0, Ordering::Relaxed);
        self.errors.store(0, Ordering::Relaxed);
        self.hist.reset();
    }
}

/// One tenant's sliding-window ring. Shared behind an [`Arc`] so readers
/// cache the handle and skip the registry lock on the hot path.
pub struct TenantWindow {
    slots: [WindowSlot; WINDOW_SLOTS],
}

impl TenantWindow {
    fn new() -> Self {
        TenantWindow {
            slots: std::array::from_fn(|_| WindowSlot::new()),
        }
    }

    /// The slot for `period`, reset if it still holds an older period.
    fn slot(&self, period: u64) -> &WindowSlot {
        let slot = &self.slots[(period % WINDOW_SLOTS as u64) as usize];
        if slot.period.load(Ordering::Acquire) != period
            && slot.period.swap(period, Ordering::AcqRel) != period
        {
            slot.reset();
        }
        slot
    }

    /// Merges the slots still inside the window ending at `now_period`.
    fn merged(&self, now_period: u64) -> (u64, u64, u64, u64, crate::LatencyHistogram) {
        let oldest = now_period.saturating_sub(WINDOW_SLOTS as u64 - 1);
        let (mut count, mut bytes, mut retries, mut errors) = (0, 0, 0, 0);
        let mut hist = crate::LatencyHistogram::new();
        for slot in &self.slots {
            let period = slot.period.load(Ordering::Acquire);
            if period < oldest || period > now_period {
                continue;
            }
            count += slot.count.load(Ordering::Relaxed);
            bytes += slot.bytes.load(Ordering::Relaxed);
            retries += slot.retries.load(Ordering::Relaxed);
            errors += slot.errors.load(Ordering::Relaxed);
            hist.merge(&slot.hist.snapshot());
        }
        (count, bytes, retries, errors, hist)
    }
}

/// The serving path's telemetry sink; see the [module docs](self).
pub struct Telemetry {
    started: Instant,
    slot: Duration,
    stages: [AtomicHistogram; STAGE_COUNT],
    wire: AtomicHistogram,
    slow_threshold_ns: AtomicU64,
    slow_captured: AtomicU64,
    tenants: Mutex<HashMap<u16, Arc<TenantWindow>>>,
}

impl Default for Telemetry {
    fn default() -> Self {
        Self::new()
    }
}

impl Telemetry {
    /// The default sliding-window slot width (window = slot × slots).
    pub const DEFAULT_SLOT: Duration = Duration::from_secs(10);

    /// A telemetry sink with the default 60-second sliding window.
    pub fn new() -> Self {
        Self::with_slot(Self::DEFAULT_SLOT)
    }

    /// A sink whose tenant windows cover `slot × WINDOW_SLOTS` of wall
    /// clock (minimum 1 ms per slot).
    pub fn with_slot(slot: Duration) -> Self {
        Telemetry {
            started: Instant::now(),
            slot: slot.max(Duration::from_millis(1)),
            stages: std::array::from_fn(|_| AtomicHistogram::new()),
            wire: AtomicHistogram::new(),
            slow_threshold_ns: AtomicU64::new(0),
            slow_captured: AtomicU64::new(0),
            tenants: Mutex::new(HashMap::new()),
        }
    }

    /// Sets the slow-request threshold (None disables capture).
    pub fn set_slow_threshold(&self, threshold: Option<Duration>) {
        let ns = threshold
            .map(|d| d.as_nanos().min(u128::from(u64::MAX)) as u64)
            .unwrap_or(0);
        self.slow_threshold_ns.store(ns, Ordering::Relaxed);
    }

    /// The slow threshold in ns, 0 when capture is off.
    pub fn slow_threshold_ns(&self) -> u64 {
        self.slow_threshold_ns.load(Ordering::Relaxed)
    }

    /// True when `wire_ns` crosses the slow threshold; counts the hit.
    pub fn note_if_slow(&self, wire_ns: u64) -> bool {
        let threshold = self.slow_threshold_ns();
        if threshold == 0 || wire_ns < threshold {
            return false;
        }
        self.slow_captured.fetch_add(1, Ordering::Relaxed);
        true
    }

    /// Milliseconds since this sink was constructed.
    pub fn uptime_ms(&self) -> u64 {
        self.started.elapsed().as_millis().min(u128::from(u64::MAX)) as u64
    }

    fn now_period(&self) -> u64 {
        (self.started.elapsed().as_nanos() / self.slot.as_nanos().max(1)) as u64
    }

    /// Records one lifecycle stage duration (cumulative, not windowed).
    pub fn record_stage(&self, stage: Stage, ns: u64) {
        self.stages[stage as usize].record(ns);
    }

    /// The tenant's window handle; cache it to skip the registry lock.
    pub fn tenant(&self, tenant: u16) -> Arc<TenantWindow> {
        Arc::clone(
            self.tenants
                .lock()
                .unwrap()
                .entry(tenant)
                .or_insert_with(|| Arc::new(TenantWindow::new())),
        )
    }

    /// Records one served request: wire-to-wire latency plus the
    /// tenant's window count/bytes/latency.
    pub fn record_request(&self, tenant: u16, bytes: u64, wire_ns: u64) {
        self.wire.record(wire_ns);
        let window = self.tenant(tenant);
        let slot = window.slot(self.now_period());
        slot.count.fetch_add(1, Ordering::Relaxed);
        slot.bytes.fetch_add(bytes, Ordering::Relaxed);
        slot.hist.record(wire_ns);
    }

    /// Records one RETRY pushed back to the tenant.
    pub fn record_retry(&self, tenant: u16) {
        let window = self.tenant(tenant);
        window
            .slot(self.now_period())
            .retries
            .fetch_add(1, Ordering::Relaxed);
    }

    /// Records one ERROR answered to the tenant.
    pub fn record_error(&self, tenant: u16) {
        let window = self.tenant(tenant);
        window
            .slot(self.now_period())
            .errors
            .fetch_add(1, Ordering::Relaxed);
    }

    /// A point-in-time snapshot: cumulative stage/wire quantiles plus
    /// every tenant's current window, sorted by tenant id.
    pub fn snapshot(&self) -> TelemetrySnapshot {
        let stages = Stage::ALL
            .iter()
            .map(|&s| StageSnapshot::from_histogram(s.name(), &self.stages[s as usize].snapshot()))
            .collect();
        let wire = StageSnapshot::from_histogram("wire", &self.wire.snapshot());
        let now_period = self.now_period();
        let mut tenants: Vec<TenantSnapshot> = self
            .tenants
            .lock()
            .unwrap()
            .iter()
            .map(|(&tenant, window)| {
                let (count, bytes, retries, errors, hist) = window.merged(now_period);
                TenantSnapshot {
                    tenant,
                    count,
                    bytes,
                    retries,
                    errors,
                    p50_ns: hist.quantile(0.50),
                    p95_ns: hist.quantile(0.95),
                    p99_ns: hist.quantile(0.99),
                }
            })
            .collect();
        tenants.sort_by_key(|t| t.tenant);
        TelemetrySnapshot {
            uptime_ms: self.uptime_ms(),
            window_ms: (self.slot.as_millis() as u64) * WINDOW_SLOTS as u64,
            slow_threshold_ns: self.slow_threshold_ns(),
            slow_captured: self.slow_captured.load(Ordering::Relaxed),
            stages,
            wire,
            tenants,
        }
    }
}

impl std::fmt::Debug for Telemetry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Telemetry")
            .field("uptime_ms", &self.uptime_ms())
            .field("slot", &self.slot)
            .finish()
    }
}

/// One stage's cumulative latency aggregate.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct StageSnapshot {
    /// Stage label ([`Stage::name`], or `"wire"` for wire-to-wire).
    pub stage: String,
    /// Requests measured.
    pub count: u64,
    /// Total nanoseconds spent in this stage across all requests.
    pub sum_ns: u64,
    /// Median.
    pub p50_ns: u64,
    /// 95th percentile.
    pub p95_ns: u64,
    /// 99th percentile.
    pub p99_ns: u64,
    /// Slowest observation.
    pub max_ns: u64,
}

impl StageSnapshot {
    fn from_histogram(stage: &str, hist: &crate::LatencyHistogram) -> Self {
        StageSnapshot {
            stage: stage.to_string(),
            count: hist.count(),
            sum_ns: hist.sum_ns(),
            p50_ns: hist.quantile(0.50),
            p95_ns: hist.quantile(0.95),
            p99_ns: hist.quantile(0.99),
            max_ns: hist.max_ns(),
        }
    }
}

/// One tenant's sliding-window aggregate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TenantSnapshot {
    /// Tenant id.
    pub tenant: u16,
    /// Requests served inside the window.
    pub count: u64,
    /// Payload bytes served inside the window.
    pub bytes: u64,
    /// RETRYs pushed back inside the window.
    pub retries: u64,
    /// ERRORs answered inside the window.
    pub errors: u64,
    /// Median wire-to-wire latency inside the window.
    pub p50_ns: u64,
    /// 95th percentile.
    pub p95_ns: u64,
    /// 99th percentile.
    pub p99_ns: u64,
}

/// Everything [`Telemetry::snapshot`] reports; serde-serializable for
/// the `/status` endpoint and `bnb top`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TelemetrySnapshot {
    /// Milliseconds since the sink was constructed.
    pub uptime_ms: u64,
    /// Width of the tenant sliding window.
    pub window_ms: u64,
    /// Slow-request threshold in ns (0 = capture off).
    pub slow_threshold_ns: u64,
    /// Requests that crossed the slow threshold.
    pub slow_captured: u64,
    /// Cumulative per-stage aggregates, timeline order.
    pub stages: Vec<StageSnapshot>,
    /// Cumulative wire-to-wire aggregate the stage sums reconcile with.
    pub wire: StageSnapshot,
    /// Per-tenant sliding windows, sorted by tenant id.
    pub tenants: Vec<TenantSnapshot>,
}

impl TelemetrySnapshot {
    /// Sum of the per-stage `sum_ns` — reconciles with `wire.sum_ns`.
    pub fn stage_sum_ns(&self) -> u64 {
        self.stages.iter().map(|s| s.sum_ns).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stages_accumulate_and_snapshot_in_order() {
        let t = Telemetry::new();
        for (i, &stage) in Stage::ALL.iter().enumerate() {
            t.record_stage(stage, (i as u64 + 1) * 100);
        }
        let snap = t.snapshot();
        assert_eq!(snap.stages.len(), STAGE_COUNT);
        let names: Vec<&str> = snap.stages.iter().map(|s| s.stage.as_str()).collect();
        assert_eq!(
            names,
            vec![
                "decode",
                "admission",
                "queue_wait",
                "route",
                "drain",
                "write"
            ]
        );
        for (i, s) in snap.stages.iter().enumerate() {
            assert_eq!(s.count, 1);
            assert_eq!(s.sum_ns, (i as u64 + 1) * 100);
        }
        assert_eq!(snap.stage_sum_ns(), 2100);
    }

    #[test]
    fn served_requests_land_in_the_tenant_window() {
        let t = Telemetry::new();
        t.record_request(3, 256, 1_000);
        t.record_request(3, 256, 3_000);
        t.record_request(9, 64, 2_000);
        t.record_retry(3);
        t.record_error(9);
        let snap = t.snapshot();
        assert_eq!(snap.wire.count, 3);
        assert_eq!(snap.wire.sum_ns, 6_000);
        assert_eq!(snap.tenants.len(), 2);
        let t3 = &snap.tenants[0];
        assert_eq!((t3.tenant, t3.count, t3.bytes, t3.retries), (3, 2, 512, 1));
        assert!(t3.p50_ns >= 1_000);
        let t9 = &snap.tenants[1];
        assert_eq!((t9.tenant, t9.count, t9.errors), (9, 1, 1));
    }

    #[test]
    fn window_slots_expire_old_periods() {
        // A 1 ms slot: after sleeping past the whole window, old counts
        // must no longer be visible.
        let t = Telemetry::with_slot(Duration::from_millis(1));
        t.record_request(0, 8, 100);
        std::thread::sleep(Duration::from_millis(WINDOW_SLOTS as u64 + 5));
        let snap = t.snapshot();
        assert_eq!(
            snap.tenants[0].count, 0,
            "window expired, counts must age out"
        );
        // Cumulative wire stats are not windowed.
        assert_eq!(snap.wire.count, 1);
    }

    #[test]
    fn slow_threshold_counts_only_past_threshold() {
        let t = Telemetry::new();
        assert!(!t.note_if_slow(u64::MAX), "capture off by default");
        t.set_slow_threshold(Some(Duration::from_millis(5)));
        assert!(!t.note_if_slow(4_999_999));
        assert!(t.note_if_slow(5_000_000));
        assert!(t.note_if_slow(u64::MAX));
        assert_eq!(t.snapshot().slow_captured, 2);
        t.set_slow_threshold(None);
        assert!(!t.note_if_slow(u64::MAX));
    }

    #[test]
    fn snapshot_round_trips_through_serde() {
        let t = Telemetry::new();
        t.record_stage(Stage::Route, 500);
        t.record_request(1, 32, 900);
        let snap = t.snapshot();
        let json = serde_json::to_string(&snap).unwrap();
        let back: TelemetrySnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(back, snap);
    }

    #[test]
    fn concurrent_recording_is_consistent() {
        let t = Telemetry::new();
        std::thread::scope(|s| {
            for tenant in 0..4u16 {
                let t = &t;
                s.spawn(move || {
                    for i in 0..500 {
                        t.record_request(tenant, 16, 100 + i);
                        t.record_stage(Stage::Decode, 10);
                    }
                });
            }
        });
        let snap = t.snapshot();
        assert_eq!(snap.wire.count, 2_000);
        assert_eq!(snap.stages[0].count, 2_000);
        let total: u64 = snap.tenants.iter().map(|w| w.count).sum();
        assert_eq!(total, 2_000, "every request lands in exactly one window");
    }
}
