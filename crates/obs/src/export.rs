//! Text and JSON renderings of a [`MetricsSnapshot`].

use crate::counters::MetricsSnapshot;
use std::fmt::Write as _;

/// Renders a snapshot as aligned human-readable text.
///
/// ```
/// use bnb_obs::{export, Counters, Observer};
/// use bnb_obs::event::ColumnEvent;
///
/// let counters = Counters::new();
/// counters.column_routed(ColumnEvent {
///     main_stage: 0,
///     internal_stage: 0,
///     first_line: 0,
///     width: 4,
///     exchanges: 1,
/// });
/// let text = export::render_text(&counters.snapshot());
/// assert!(text.contains("columns"));
/// assert!(text.contains("stage 0"));
/// ```
pub fn render_text(snapshot: &MetricsSnapshot) -> String {
    let mut out = String::new();
    let mut line = |name: &str, value: u64| {
        let _ = writeln!(out, "{name:<22} {value}");
    };
    line("columns", snapshot.columns);
    line("exchanges", snapshot.exchanges);
    line("arbiter_sweeps", snapshot.arbiter_sweeps);
    line("max_sweep_depth", snapshot.max_sweep_depth);
    line("conflicts", snapshot.conflicts);
    line("shards_enqueued", snapshot.shards_enqueued);
    line("shards_stolen", snapshot.shards_stolen);
    line("batches_submitted", snapshot.batches_submitted);
    line("batches_drained", snapshot.batches_drained);
    line("batch_errors", snapshot.batch_errors);
    line("scheduler_rounds", snapshot.scheduler_rounds);
    line("records_matched", snapshot.records_matched);
    line("max_round_backlog", snapshot.max_round_backlog);
    line("hardware_faults", snapshot.hardware_faults);
    line("fault_retries", snapshot.fault_retries);
    if !snapshot.per_stage.is_empty() {
        let _ = writeln!(
            out,
            "{:<10} {:>10} {:>10} {:>10} {:>10}",
            "per-stage", "columns", "exchanges", "sweeps", "conflicts"
        );
        for stage in &snapshot.per_stage {
            let _ = writeln!(
                out,
                "{:<10} {:>10} {:>10} {:>10} {:>10}",
                format!("stage {}", stage.main_stage),
                stage.columns,
                stage.exchanges,
                stage.sweeps,
                stage.conflicts
            );
        }
    }
    if snapshot.histogram.count() > 0 {
        let l = &snapshot.latency;
        let _ = writeln!(
            out,
            "latency_ns             min={} p50={} p99={} max={} mean={} (n={})",
            l.min_ns,
            l.p50_ns,
            l.p99_ns,
            l.max_ns,
            l.mean_ns,
            snapshot.histogram.count()
        );
    }
    out
}

/// Renders a snapshot as a JSON object.
pub fn render_json(snapshot: &MetricsSnapshot) -> Result<String, serde_json::Error> {
    serde_json::to_string(snapshot)
}

/// Renders a snapshot as pretty-printed JSON.
pub fn render_json_pretty(snapshot: &MetricsSnapshot) -> Result<String, serde_json::Error> {
    serde_json::to_string_pretty(snapshot)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{ColumnEvent, DrainEvent, SweepEvent};
    use crate::{Counters, Observer};

    fn sample() -> MetricsSnapshot {
        let c = Counters::new();
        c.column_routed(ColumnEvent {
            main_stage: 0,
            internal_stage: 0,
            first_line: 0,
            width: 8,
            exchanges: 3,
        });
        c.arbiter_sweep(SweepEvent {
            main_stage: 1,
            internal_stage: 0,
            first_line: 0,
            width: 4,
            depth: 2,
        });
        c.batch_drained(DrainEvent {
            seq: 0,
            records: 8,
            latency_ns: 512,
            ok: true,
        });
        c.snapshot()
    }

    #[test]
    fn text_lists_totals_stages_and_latency() {
        let text = render_text(&sample());
        assert!(text.contains("columns                1"));
        assert!(text.contains("arbiter_sweeps         1"));
        assert!(text.contains("hardware_faults        0"));
        assert!(text.contains("fault_retries          0"));
        assert!(text.contains("stage 0"));
        assert!(text.contains("stage 1"));
        assert!(text.contains("latency_ns"));
        assert!(text.contains("(n=1)"));
    }

    #[test]
    fn text_omits_empty_sections() {
        let text = render_text(&Counters::new().snapshot());
        assert!(!text.contains("per-stage"));
        assert!(!text.contains("latency_ns"));
    }

    #[test]
    fn json_round_trips() {
        let snap = sample();
        let json = render_json(&snap).unwrap();
        let back: MetricsSnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(back, snap);
        let pretty = render_json_pretty(&snap).unwrap();
        let back: MetricsSnapshot = serde_json::from_str(&pretty).unwrap();
        assert_eq!(back, snap);
    }
}
