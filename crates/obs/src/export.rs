//! Text and JSON renderings of a [`MetricsSnapshot`], plus the labelled
//! Prometheus exposition of a request-lifecycle [`TelemetrySnapshot`].

use crate::counters::MetricsSnapshot;
use crate::telemetry::TelemetrySnapshot;
use std::fmt::Write as _;

/// Renders a snapshot as aligned human-readable text.
///
/// ```
/// use bnb_obs::{export, Counters, Observer};
/// use bnb_obs::event::ColumnEvent;
///
/// let counters = Counters::new();
/// counters.column_routed(ColumnEvent {
///     main_stage: 0,
///     internal_stage: 0,
///     first_line: 0,
///     width: 4,
///     exchanges: 1,
/// });
/// let text = export::render_text(&counters.snapshot());
/// assert!(text.contains("columns"));
/// assert!(text.contains("stage 0"));
/// ```
pub fn render_text(snapshot: &MetricsSnapshot) -> String {
    let mut out = String::new();
    let mut line = |name: &str, value: u64| {
        let _ = writeln!(out, "{name:<22} {value}");
    };
    line("columns", snapshot.columns);
    line("exchanges", snapshot.exchanges);
    line("arbiter_sweeps", snapshot.arbiter_sweeps);
    line("max_sweep_depth", snapshot.max_sweep_depth);
    line("conflicts", snapshot.conflicts);
    line("shards_enqueued", snapshot.shards_enqueued);
    line("shards_stolen", snapshot.shards_stolen);
    line("batches_submitted", snapshot.batches_submitted);
    line("batches_drained", snapshot.batches_drained);
    line("batch_errors", snapshot.batch_errors);
    line("scheduler_rounds", snapshot.scheduler_rounds);
    line("records_matched", snapshot.records_matched);
    line("max_round_backlog", snapshot.max_round_backlog);
    line("hardware_faults", snapshot.hardware_faults);
    line("fault_retries", snapshot.fault_retries);
    line("connections_accepted", snapshot.connections_accepted);
    line("frames_served", snapshot.frames_served);
    line("retries_issued", snapshot.retries_issued);
    line("auth_failures", snapshot.auth_failures);
    line("reactor_wakeups", snapshot.reactor_wakeups);
    line("max_window_depth", snapshot.max_window_depth);
    line("scrub_probes", snapshot.scrub_probes);
    line("shards_quarantined", snapshot.shards_quarantined);
    line("shards_restored", snapshot.shards_restored);
    if !snapshot.per_stage.is_empty() {
        // Column widths grow with the data so counters past the headers'
        // widths (10+ digits) stay aligned instead of shearing the table.
        let headers = ["per-stage", "columns", "exchanges", "sweeps", "conflicts"];
        let rows: Vec<[String; 5]> = snapshot
            .per_stage
            .iter()
            .map(|stage| {
                [
                    format!("stage {}", stage.main_stage),
                    stage.columns.to_string(),
                    stage.exchanges.to_string(),
                    stage.sweeps.to_string(),
                    stage.conflicts.to_string(),
                ]
            })
            .collect();
        let mut widths = [10usize; 5];
        for (i, h) in headers.iter().enumerate() {
            widths[i] = widths[i].max(h.len());
        }
        for row in &rows {
            for (w, cell) in widths.iter_mut().zip(row.iter()) {
                *w = (*w).max(cell.len());
            }
        }
        let _ = writeln!(
            out,
            "{:<w0$} {:>w1$} {:>w2$} {:>w3$} {:>w4$}",
            headers[0],
            headers[1],
            headers[2],
            headers[3],
            headers[4],
            w0 = widths[0],
            w1 = widths[1],
            w2 = widths[2],
            w3 = widths[3],
            w4 = widths[4],
        );
        for row in &rows {
            let _ = writeln!(
                out,
                "{:<w0$} {:>w1$} {:>w2$} {:>w3$} {:>w4$}",
                row[0],
                row[1],
                row[2],
                row[3],
                row[4],
                w0 = widths[0],
                w1 = widths[1],
                w2 = widths[2],
                w3 = widths[3],
                w4 = widths[4],
            );
        }
    }
    if snapshot.histogram.count() > 0 {
        let l = &snapshot.latency;
        let _ = writeln!(
            out,
            "latency_ns             min={} p50={} p99={} max={} mean={} (n={})",
            l.min_ns,
            l.p50_ns,
            l.p99_ns,
            l.max_ns,
            l.mean_ns,
            snapshot.histogram.count()
        );
    }
    out
}

/// Renders a snapshot in the Prometheus text exposition format
/// (version 0.0.4): `# HELP`/`# TYPE` comments, `bnb_`-prefixed counter
/// families, per-stage series labelled `{stage="s"}`, and the batch
/// latency as a native histogram family with power-of-two `le` edges
/// matching [`crate::LatencyHistogram`]'s inclusive bucket bounds.
///
/// ```
/// use bnb_obs::{export, Counters, Observer};
/// use bnb_obs::event::ColumnEvent;
///
/// let counters = Counters::new();
/// counters.column_routed(ColumnEvent {
///     main_stage: 0,
///     internal_stage: 0,
///     first_line: 0,
///     width: 4,
///     exchanges: 1,
/// });
/// let text = export::render_prometheus(&counters.snapshot());
/// assert!(text.contains("bnb_columns_total 1"));
/// assert!(text.contains("bnb_stage_columns_total{stage=\"0\"} 1"));
/// ```
pub fn render_prometheus(snapshot: &MetricsSnapshot) -> String {
    let mut out = String::new();
    let mut family = |name: &str, kind: &str, help: &str, value: u64| {
        let _ = writeln!(out, "# HELP {name} {help}");
        let _ = writeln!(out, "# TYPE {name} {kind}");
        let _ = writeln!(out, "{name} {value}");
    };
    family(
        "bnb_columns_total",
        "counter",
        "Switching columns routed.",
        snapshot.columns,
    );
    family(
        "bnb_exchanges_total",
        "counter",
        "2x2 switches that exchanged their pair.",
        snapshot.exchanges,
    );
    family(
        "bnb_arbiter_sweeps_total",
        "counter",
        "Splitter arbiter-tree sweeps completed.",
        snapshot.arbiter_sweeps,
    );
    family(
        "bnb_max_sweep_depth",
        "gauge",
        "Deepest arbiter tree swept.",
        snapshot.max_sweep_depth,
    );
    family(
        "bnb_conflicts_total",
        "counter",
        "Splitter balance violations observed.",
        snapshot.conflicts,
    );
    family(
        "bnb_shards_enqueued_total",
        "counter",
        "Subnetwork slices published to the engine work queue.",
        snapshot.shards_enqueued,
    );
    family(
        "bnb_shards_stolen_total",
        "counter",
        "Queued slices taken by engine workers.",
        snapshot.shards_stolen,
    );
    family(
        "bnb_batches_submitted_total",
        "counter",
        "Batches submitted to the engine.",
        snapshot.batches_submitted,
    );
    family(
        "bnb_batches_drained_total",
        "counter",
        "Batches drained from the engine.",
        snapshot.batches_drained,
    );
    family(
        "bnb_batch_errors_total",
        "counter",
        "Batches that finished in error.",
        snapshot.batch_errors,
    );
    family(
        "bnb_scheduler_rounds_total",
        "counter",
        "Input-queued-switch scheduler rounds.",
        snapshot.scheduler_rounds,
    );
    family(
        "bnb_records_matched_total",
        "counter",
        "Records matched to outputs by the scheduler.",
        snapshot.records_matched,
    );
    family(
        "bnb_max_round_backlog",
        "gauge",
        "Deepest post-round scheduler backlog.",
        snapshot.max_round_backlog,
    );
    family(
        "bnb_hardware_faults_total",
        "counter",
        "Hardware faults detected by the output balance check.",
        snapshot.hardware_faults,
    );
    family(
        "bnb_fault_retries_total",
        "counter",
        "Batches retried on another fabric shard.",
        snapshot.fault_retries,
    );
    family(
        "bnb_connections_accepted_total",
        "counter",
        "Client connections accepted by the serving front door.",
        snapshot.connections_accepted,
    );
    family(
        "bnb_frames_served_total",
        "counter",
        "Frames routed and delivered back to clients.",
        snapshot.frames_served,
    );
    family(
        "bnb_retries_issued_total",
        "counter",
        "Frames pushed back with an explicit RETRY response.",
        snapshot.retries_issued,
    );
    family(
        "bnb_auth_failures_total",
        "counter",
        "Submits rejected because their authentication tag failed to verify.",
        snapshot.auth_failures,
    );
    family(
        "bnb_reactor_wakeups_total",
        "counter",
        "Times a reactor lane was nudged awake through its wake pipe.",
        snapshot.reactor_wakeups,
    );
    family(
        "bnb_max_window_depth",
        "gauge",
        "Deepest per-connection pipeline window observed.",
        snapshot.max_window_depth,
    );
    family(
        "bnb_scrub_probes_total",
        "counter",
        "Background scrubber probes of fabric shards.",
        snapshot.scrub_probes,
    );
    family(
        "bnb_shards_quarantined_total",
        "counter",
        "Fabric shards confirmed faulty and quarantined.",
        snapshot.shards_quarantined,
    );
    family(
        "bnb_shards_restored_total",
        "counter",
        "Quarantined fabric shards restored to service.",
        snapshot.shards_restored,
    );

    if !snapshot.per_stage.is_empty() {
        let mut stage_family = |name: &str, help: &str, pick: fn(&crate::StageMetrics) -> u64| {
            let _ = writeln!(out, "# HELP {name} {help}");
            let _ = writeln!(out, "# TYPE {name} counter");
            for stage in &snapshot.per_stage {
                let _ = writeln!(
                    out,
                    "{name}{{stage=\"{}\"}} {}",
                    stage.main_stage,
                    pick(stage)
                );
            }
        };
        stage_family(
            "bnb_stage_columns_total",
            "Columns routed, by main stage.",
            |s| s.columns,
        );
        stage_family(
            "bnb_stage_exchanges_total",
            "Pair exchanges, by main stage.",
            |s| s.exchanges,
        );
        stage_family(
            "bnb_stage_sweeps_total",
            "Arbiter sweeps, by main stage.",
            |s| s.sweeps,
        );
        stage_family(
            "bnb_stage_conflicts_total",
            "Balance violations, by main stage.",
            |s| s.conflicts,
        );
    }

    let hist = &snapshot.histogram;
    if hist.count() > 0 {
        let _ = writeln!(
            out,
            "# HELP bnb_batch_latency_ns Submit-to-drain batch latency."
        );
        let _ = writeln!(out, "# TYPE bnb_batch_latency_ns histogram");
        let mut cumulative = 0u64;
        let last = hist.buckets().iter().rposition(|&c| c > 0).unwrap_or(0);
        for (i, &c) in hist.buckets().iter().enumerate().take(last + 1) {
            cumulative += c;
            let edge = if i >= 63 { u64::MAX } else { (2u64 << i) - 1 };
            let _ = writeln!(
                out,
                "bnb_batch_latency_ns_bucket{{le=\"{edge}\"}} {cumulative}"
            );
        }
        let _ = writeln!(
            out,
            "bnb_batch_latency_ns_bucket{{le=\"+Inf\"}} {}",
            hist.count()
        );
        let _ = writeln!(out, "bnb_batch_latency_ns_sum {}", hist.sum_ns());
        let _ = writeln!(out, "bnb_batch_latency_ns_count {}", hist.count());
    }
    out
}

/// Renders a request-lifecycle [`TelemetrySnapshot`] in the Prometheus
/// text exposition format: per-stage latency series labelled
/// `{stage="decode"}` … `{stage="write"}`, the wire-to-wire aggregate the
/// stage sums reconcile with, and per-tenant sliding-window series
/// labelled `{tenant="n"}`. Every family carries `# HELP`/`# TYPE`.
/// Appended after [`render_prometheus`] on the `/metrics` endpoint.
pub fn render_prometheus_telemetry(snapshot: &TelemetrySnapshot) -> String {
    let mut out = String::new();
    let mut family = |name: &str, kind: &str, help: &str, value: u64| {
        let _ = writeln!(out, "# HELP {name} {help}");
        let _ = writeln!(out, "# TYPE {name} {kind}");
        let _ = writeln!(out, "{name} {value}");
    };
    family(
        "bnb_serve_uptime_ms",
        "gauge",
        "Milliseconds since the serving telemetry sink started.",
        snapshot.uptime_ms,
    );
    family(
        "bnb_serve_slow_requests_total",
        "counter",
        "Served requests that crossed the --slow-ms capture threshold.",
        snapshot.slow_captured,
    );

    let mut stage_family =
        |name: &str, help: &str, pick: fn(&crate::telemetry::StageSnapshot) -> u64| {
            let _ = writeln!(out, "# HELP {name} {help}");
            let _ = writeln!(out, "# TYPE {name} gauge");
            for stage in &snapshot.stages {
                let _ = writeln!(out, "{name}{{stage=\"{}\"}} {}", stage.stage, pick(stage));
            }
            let _ = writeln!(out, "{name}{{stage=\"wire\"}} {}", pick(&snapshot.wire));
        };
    stage_family(
        "bnb_serve_stage_requests",
        "Requests measured per lifecycle stage (wire = end to end).",
        |s| s.count,
    );
    stage_family(
        "bnb_serve_stage_sum_ns",
        "Total nanoseconds spent per lifecycle stage; stage sums partition the wire sum.",
        |s| s.sum_ns,
    );
    stage_family(
        "bnb_serve_stage_p50_ns",
        "Median latency per lifecycle stage.",
        |s| s.p50_ns,
    );
    stage_family(
        "bnb_serve_stage_p95_ns",
        "95th-percentile latency per lifecycle stage.",
        |s| s.p95_ns,
    );
    stage_family(
        "bnb_serve_stage_p99_ns",
        "99th-percentile latency per lifecycle stage.",
        |s| s.p99_ns,
    );
    stage_family(
        "bnb_serve_stage_max_ns",
        "Slowest observation per lifecycle stage.",
        |s| s.max_ns,
    );

    if !snapshot.tenants.is_empty() {
        let mut tenant_family =
            |name: &str, help: &str, pick: fn(&crate::telemetry::TenantSnapshot) -> u64| {
                let _ = writeln!(out, "# HELP {name} {help}");
                let _ = writeln!(out, "# TYPE {name} gauge");
                for tenant in &snapshot.tenants {
                    let _ = writeln!(
                        out,
                        "{name}{{tenant=\"{}\"}} {}",
                        tenant.tenant,
                        pick(tenant)
                    );
                }
            };
        tenant_family(
            "bnb_tenant_window_requests",
            "Requests served per tenant inside the sliding window.",
            |t| t.count,
        );
        tenant_family(
            "bnb_tenant_window_bytes",
            "Payload bytes served per tenant inside the sliding window.",
            |t| t.bytes,
        );
        tenant_family(
            "bnb_tenant_window_retries",
            "RETRY responses per tenant inside the sliding window.",
            |t| t.retries,
        );
        tenant_family(
            "bnb_tenant_window_errors",
            "ERROR responses per tenant inside the sliding window.",
            |t| t.errors,
        );
        tenant_family(
            "bnb_tenant_window_p50_ns",
            "Median wire-to-wire latency per tenant inside the sliding window.",
            |t| t.p50_ns,
        );
        tenant_family(
            "bnb_tenant_window_p95_ns",
            "95th-percentile wire-to-wire latency per tenant inside the sliding window.",
            |t| t.p95_ns,
        );
        tenant_family(
            "bnb_tenant_window_p99_ns",
            "99th-percentile wire-to-wire latency per tenant inside the sliding window.",
            |t| t.p99_ns,
        );
    }
    out
}

/// Renders a snapshot as a JSON object.
pub fn render_json(snapshot: &MetricsSnapshot) -> Result<String, serde_json::Error> {
    serde_json::to_string(snapshot)
}

/// Renders a snapshot as pretty-printed JSON.
pub fn render_json_pretty(snapshot: &MetricsSnapshot) -> Result<String, serde_json::Error> {
    serde_json::to_string_pretty(snapshot)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{ColumnEvent, DrainEvent, SweepEvent};
    use crate::{Counters, Observer};

    fn sample() -> MetricsSnapshot {
        let c = Counters::new();
        c.column_routed(ColumnEvent {
            main_stage: 0,
            internal_stage: 0,
            first_line: 0,
            width: 8,
            exchanges: 3,
        });
        c.arbiter_sweep(SweepEvent {
            main_stage: 1,
            internal_stage: 0,
            first_line: 0,
            width: 4,
            depth: 2,
        });
        c.batch_drained(DrainEvent {
            seq: 0,
            records: 8,
            latency_ns: 512,
            ok: true,
        });
        c.snapshot()
    }

    #[test]
    fn text_lists_totals_stages_and_latency() {
        let text = render_text(&sample());
        assert!(text.contains("columns                1"));
        assert!(text.contains("arbiter_sweeps         1"));
        assert!(text.contains("hardware_faults        0"));
        assert!(text.contains("fault_retries          0"));
        assert!(text.contains("connections_accepted   0"));
        assert!(text.contains("frames_served          0"));
        assert!(text.contains("retries_issued         0"));
        assert!(text.contains("auth_failures          0"));
        assert!(text.contains("reactor_wakeups        0"));
        assert!(text.contains("max_window_depth       0"));
        assert!(text.contains("scrub_probes           0"));
        assert!(text.contains("shards_quarantined     0"));
        assert!(text.contains("shards_restored        0"));
        assert!(text.contains("stage 0"));
        assert!(text.contains("stage 1"));
        assert!(text.contains("latency_ns"));
        assert!(text.contains("(n=1)"));
    }

    #[test]
    fn text_omits_empty_sections() {
        let text = render_text(&Counters::new().snapshot());
        assert!(!text.contains("per-stage"));
        assert!(!text.contains("latency_ns"));
    }

    #[test]
    fn text_stage_table_stays_aligned_past_eight_digits() {
        let mut snap = sample();
        snap.per_stage[0].exchanges = 123_456_789_012; // 12 digits > the old fixed width
        let text = render_text(&snap);
        let lines: Vec<&str> = text
            .lines()
            .skip_while(|l| !l.starts_with("per-stage"))
            .take_while(|l| l.starts_with("per-stage") || l.starts_with("stage "))
            .collect();
        assert!(lines.len() >= 3, "header + two stage rows in {text}");
        // Every column's right edge must line up across header and rows.
        let right_edges = |line: &str| -> Vec<usize> {
            let mut edges = Vec::new();
            let mut in_field = false;
            for (i, c) in line.char_indices() {
                if c == ' ' {
                    if in_field {
                        edges.push(i);
                        in_field = false;
                    }
                } else {
                    in_field = true;
                }
            }
            edges.push(line.len());
            edges
        };
        // Skip the header's first (left-aligned) column; compare the four
        // numeric columns' right edges.
        let header_edges = right_edges(lines[0]);
        for row in &lines[1..] {
            let row_edges = right_edges(row);
            assert_eq!(
                &row_edges[row_edges.len() - 4..],
                &header_edges[header_edges.len() - 4..],
                "misaligned row {row:?} in\n{text}"
            );
        }
    }

    #[test]
    fn prometheus_lists_counters_stages_and_histogram() {
        let text = render_prometheus(&sample());
        assert!(text.contains("# TYPE bnb_columns_total counter"));
        assert!(text.contains("bnb_columns_total 1"));
        assert!(text.contains("bnb_arbiter_sweeps_total 1"));
        assert!(text.contains("# TYPE bnb_frames_served_total counter"));
        assert!(text.contains("bnb_connections_accepted_total 0"));
        assert!(text.contains("bnb_retries_issued_total 0"));
        assert!(text.contains("# TYPE bnb_auth_failures_total counter"));
        assert!(text.contains("bnb_auth_failures_total 0"));
        assert!(text.contains("bnb_reactor_wakeups_total 0"));
        assert!(text.contains("# TYPE bnb_max_window_depth gauge"));
        assert!(text.contains("bnb_max_window_depth 0"));
        assert!(text.contains("# TYPE bnb_scrub_probes_total counter"));
        assert!(text.contains("bnb_scrub_probes_total 0"));
        assert!(text.contains("bnb_shards_quarantined_total 0"));
        assert!(text.contains("bnb_shards_restored_total 0"));
        assert!(text.contains("bnb_stage_columns_total{stage=\"0\"} 1"));
        assert!(text.contains("bnb_stage_sweeps_total{stage=\"1\"} 1"));
        assert!(text.contains("# TYPE bnb_batch_latency_ns histogram"));
        // 512 ns lands in bucket 9 (edge 1023); the cumulative count and
        // +Inf totals must agree.
        assert!(text.contains("bnb_batch_latency_ns_bucket{le=\"1023\"} 1"));
        assert!(text.contains("bnb_batch_latency_ns_bucket{le=\"+Inf\"} 1"));
        assert!(text.contains("bnb_batch_latency_ns_sum 512"));
        assert!(text.contains("bnb_batch_latency_ns_count 1"));
    }

    #[test]
    fn prometheus_buckets_are_cumulative_and_end_at_last_nonempty() {
        let c = Counters::new();
        for ns in [1, 2, 900, 1000] {
            c.batch_drained(DrainEvent {
                seq: 0,
                records: 1,
                latency_ns: ns,
                ok: true,
            });
        }
        let text = render_prometheus(&c.snapshot());
        assert!(text.contains("bnb_batch_latency_ns_bucket{le=\"1\"} 1"));
        assert!(text.contains("bnb_batch_latency_ns_bucket{le=\"3\"} 2"));
        assert!(text.contains("bnb_batch_latency_ns_bucket{le=\"1023\"} 4"));
        assert!(
            !text.contains("le=\"2047\""),
            "series stops at the last non-empty bucket"
        );
        assert!(text.contains("bnb_batch_latency_ns_bucket{le=\"+Inf\"} 4"));
    }

    #[test]
    fn prometheus_omits_empty_sections() {
        let text = render_prometheus(&Counters::new().snapshot());
        assert!(text.contains("bnb_columns_total 0"));
        assert!(!text.contains("bnb_stage_columns_total{"));
        assert!(!text.contains("bnb_batch_latency_ns"));
    }

    fn telemetry_sample() -> TelemetrySnapshot {
        use crate::telemetry::{Stage, Telemetry};
        let t = Telemetry::new();
        for &stage in &Stage::ALL {
            t.record_stage(stage, 200);
        }
        t.record_request(0, 128, 1_200);
        t.record_request(7, 64, 2_400);
        t.record_retry(7);
        t.record_error(0);
        t.set_slow_threshold(Some(std::time::Duration::from_nanos(1)));
        t.note_if_slow(2_400);
        t.snapshot()
    }

    #[test]
    fn telemetry_exposition_labels_stages_and_tenants() {
        let text = render_prometheus_telemetry(&telemetry_sample());
        assert!(text.contains("# TYPE bnb_serve_uptime_ms gauge"));
        assert!(text.contains("bnb_serve_slow_requests_total 1"));
        assert!(text.contains("bnb_serve_stage_requests{stage=\"decode\"} 1"));
        assert!(text.contains("bnb_serve_stage_sum_ns{stage=\"route\"} 200"));
        assert!(text.contains("bnb_serve_stage_requests{stage=\"wire\"} 2"));
        assert!(text.contains("bnb_serve_stage_sum_ns{stage=\"wire\"} 3600"));
        assert!(text.contains("bnb_tenant_window_requests{tenant=\"0\"} 1"));
        assert!(text.contains("bnb_tenant_window_bytes{tenant=\"7\"} 64"));
        assert!(text.contains("bnb_tenant_window_retries{tenant=\"7\"} 1"));
        assert!(text.contains("bnb_tenant_window_errors{tenant=\"0\"} 1"));
        assert!(text.contains("bnb_tenant_window_p99_ns{tenant=\"7\"}"));
    }

    #[test]
    fn telemetry_exposition_omits_tenants_when_empty() {
        let text = render_prometheus_telemetry(&crate::telemetry::Telemetry::new().snapshot());
        // Stage families always render (all zero), tenant families only
        // once a tenant exists.
        assert!(text.contains("bnb_serve_stage_requests{stage=\"decode\"} 0"));
        assert!(!text.contains("bnb_tenant_window_requests{"));
    }

    /// Every sample line's family must be introduced by `# HELP` and
    /// `# TYPE` comments before its first sample — the exposition is
    /// self-describing end to end, including the telemetry families.
    #[test]
    fn full_exposition_parses_and_is_self_describing() {
        use std::collections::HashSet;
        let mut text = render_prometheus(&sample());
        text.push_str(&render_prometheus_telemetry(&telemetry_sample()));

        let mut helped: HashSet<String> = HashSet::new();
        let mut typed: HashSet<String> = HashSet::new();
        let mut samples = 0usize;
        for line in text.lines() {
            assert!(!line.trim().is_empty(), "no blank lines in exposition");
            if let Some(rest) = line.strip_prefix("# HELP ") {
                let name = rest.split_whitespace().next().expect("HELP names a family");
                assert!(helped.insert(name.to_string()), "duplicate HELP for {name}");
                continue;
            }
            if let Some(rest) = line.strip_prefix("# TYPE ") {
                let mut parts = rest.split_whitespace();
                let name = parts.next().expect("TYPE names a family");
                let kind = parts.next().expect("TYPE has a kind");
                assert!(
                    matches!(kind, "counter" | "gauge" | "histogram"),
                    "unknown TYPE kind {kind} for {name}"
                );
                assert!(typed.insert(name.to_string()), "duplicate TYPE for {name}");
                continue;
            }
            assert!(!line.starts_with('#'), "unexpected comment: {line}");
            // Sample line: `name{labels} value` or `name value`.
            let name_end = line
                .find(['{', ' '])
                .unwrap_or_else(|| panic!("malformed sample line: {line}"));
            let mut name = &line[..name_end];
            // Histogram child series belong to their parent family.
            for suffix in ["_bucket", "_sum", "_count"] {
                if let Some(base) = name.strip_suffix(suffix) {
                    if typed.contains(base) {
                        name = base;
                        break;
                    }
                }
            }
            assert!(helped.contains(name), "sample {name} missing # HELP");
            assert!(typed.contains(name), "sample {name} missing # TYPE");
            let value = line.rsplit(' ').next().unwrap();
            assert!(
                value == "+Inf" || value.parse::<f64>().is_ok(),
                "unparseable sample value in {line}"
            );
            samples += 1;
        }
        assert!(
            samples > 40,
            "expected a populated exposition, got {samples}"
        );
        assert_eq!(helped, typed, "HELP and TYPE must cover the same families");
    }

    #[test]
    fn json_round_trips() {
        let snap = sample();
        let json = render_json(&snap).unwrap();
        let back: MetricsSnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(back, snap);
        let pretty = render_json_pretty(&snap).unwrap();
        let back: MetricsSnapshot = serde_json::from_str(&pretty).unwrap();
        assert_eq!(back, snap);
    }
}
