//! [`Counters`]: a lock-free sharded metrics sink implementing
//! [`Observer`].
//!
//! Writers pick a shard by thread (round-robin at first touch, cached in
//! a thread-local) and bump relaxed atomics; with up to [`SHARDS`]
//! concurrent writer threads there is no cross-thread cache-line
//! contention on the counter words. [`Counters::snapshot`] folds all
//! shards into a serializable [`MetricsSnapshot`]. Snapshots taken while
//! writers are active are monotone but not a point-in-time cut — fine for
//! monitoring.

use crate::event::{
    AcceptEvent, AuthEvent, ColumnEvent, ConflictEvent, DrainEvent, FaultEvent, RepairEvent,
    RetryEvent, RoundEvent, ScrubEvent, ServeEvent, ShardEvent, SubmitEvent, SweepEvent,
    ThrottleEvent, WakeEvent, WindowEvent,
};
use crate::histogram::{AtomicHistogram, LatencyHistogram, LatencySummary};
use crate::observer::Observer;
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// Writer shards. A power of two; more concurrent writer threads than
/// this simply share shards (still correct, mildly contended).
pub const SHARDS: usize = 8;

/// Main stages tracked with a per-stage breakdown (`N = 2^32` inputs —
/// far past anything constructible). Deeper stages clamp into the last
/// slot.
pub const MAX_STAGES: usize = 32;

fn shard_index() -> usize {
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    thread_local! {
        static INDEX: usize = NEXT.fetch_add(1, Ordering::Relaxed) % SHARDS;
    }
    INDEX.with(|i| *i)
}

/// One writer shard, padded to its own cache lines.
#[repr(align(128))]
#[derive(Debug)]
struct Shard {
    columns: AtomicU64,
    exchanges: AtomicU64,
    sweeps: AtomicU64,
    max_sweep_depth: AtomicU64,
    conflicts: AtomicU64,
    shards_enqueued: AtomicU64,
    shards_stolen: AtomicU64,
    batches_submitted: AtomicU64,
    batches_drained: AtomicU64,
    batch_errors: AtomicU64,
    scheduler_rounds: AtomicU64,
    records_matched: AtomicU64,
    max_round_backlog: AtomicU64,
    hardware_faults: AtomicU64,
    fault_retries: AtomicU64,
    connections_accepted: AtomicU64,
    frames_served: AtomicU64,
    retries_issued: AtomicU64,
    auth_failures: AtomicU64,
    reactor_wakeups: AtomicU64,
    max_window_depth: AtomicU64,
    scrub_probes: AtomicU64,
    shards_quarantined: AtomicU64,
    shards_restored: AtomicU64,
    stage_columns: [AtomicU64; MAX_STAGES],
    stage_exchanges: [AtomicU64; MAX_STAGES],
    stage_sweeps: [AtomicU64; MAX_STAGES],
    stage_conflicts: [AtomicU64; MAX_STAGES],
}

impl Shard {
    fn new() -> Self {
        let zeroes = || std::array::from_fn(|_| AtomicU64::new(0));
        Shard {
            columns: AtomicU64::new(0),
            exchanges: AtomicU64::new(0),
            sweeps: AtomicU64::new(0),
            max_sweep_depth: AtomicU64::new(0),
            conflicts: AtomicU64::new(0),
            shards_enqueued: AtomicU64::new(0),
            shards_stolen: AtomicU64::new(0),
            batches_submitted: AtomicU64::new(0),
            batches_drained: AtomicU64::new(0),
            batch_errors: AtomicU64::new(0),
            scheduler_rounds: AtomicU64::new(0),
            records_matched: AtomicU64::new(0),
            max_round_backlog: AtomicU64::new(0),
            hardware_faults: AtomicU64::new(0),
            fault_retries: AtomicU64::new(0),
            connections_accepted: AtomicU64::new(0),
            frames_served: AtomicU64::new(0),
            retries_issued: AtomicU64::new(0),
            auth_failures: AtomicU64::new(0),
            reactor_wakeups: AtomicU64::new(0),
            max_window_depth: AtomicU64::new(0),
            scrub_probes: AtomicU64::new(0),
            shards_quarantined: AtomicU64::new(0),
            shards_restored: AtomicU64::new(0),
            stage_columns: zeroes(),
            stage_exchanges: zeroes(),
            stage_sweeps: zeroes(),
            stage_conflicts: zeroes(),
        }
    }

    fn reset(&self) {
        let scalars = [
            &self.columns,
            &self.exchanges,
            &self.sweeps,
            &self.max_sweep_depth,
            &self.conflicts,
            &self.shards_enqueued,
            &self.shards_stolen,
            &self.batches_submitted,
            &self.batches_drained,
            &self.batch_errors,
            &self.scheduler_rounds,
            &self.records_matched,
            &self.max_round_backlog,
            &self.hardware_faults,
            &self.fault_retries,
            &self.connections_accepted,
            &self.frames_served,
            &self.retries_issued,
            &self.auth_failures,
            &self.reactor_wakeups,
            &self.max_window_depth,
            &self.scrub_probes,
            &self.shards_quarantined,
            &self.shards_restored,
        ];
        for counter in scalars {
            counter.store(0, Ordering::Relaxed);
        }
        for stage in 0..MAX_STAGES {
            self.stage_columns[stage].store(0, Ordering::Relaxed);
            self.stage_exchanges[stage].store(0, Ordering::Relaxed);
            self.stage_sweeps[stage].store(0, Ordering::Relaxed);
            self.stage_conflicts[stage].store(0, Ordering::Relaxed);
        }
    }
}

#[inline]
fn stage_slot(main_stage: usize) -> usize {
    main_stage.min(MAX_STAGES - 1)
}

/// Lock-free sharded counter sink.
///
/// Share one `Counters` across every layer of a run (router, engine
/// workers, scheduler) by reference — `&Counters` implements [`Observer`]
/// through the blanket reference impl. Batch-drain latencies feed the
/// embedded [`AtomicHistogram`], so a snapshot carries the same latency
/// distribution the engine's own stats report.
#[derive(Debug)]
pub struct Counters {
    shards: [Shard; SHARDS],
    histogram: AtomicHistogram,
}

impl Default for Counters {
    fn default() -> Self {
        Self::new()
    }
}

impl Counters {
    /// A zeroed sink.
    pub fn new() -> Self {
        Counters {
            shards: std::array::from_fn(|_| Shard::new()),
            histogram: AtomicHistogram::new(),
        }
    }

    #[inline]
    fn shard(&self) -> &Shard {
        &self.shards[shard_index()]
    }

    /// The embedded latency histogram (fed by batch-drain events).
    pub fn histogram(&self) -> &AtomicHistogram {
        &self.histogram
    }

    /// Records one span latency directly (see [`crate::SpanTimer`]).
    #[inline]
    pub fn record_latency(&self, ns: u64) {
        self.histogram.record(ns);
    }

    /// Zeroes every counter, per-stage slot, and the latency histogram —
    /// the per-serving-session reset (high-water marks included). Not a
    /// point-in-time cut under concurrent writers; call it between
    /// sessions, not during one.
    pub fn reset(&self) {
        for shard in &self.shards {
            shard.reset();
        }
        self.histogram.reset();
    }

    fn sum(&self, field: impl Fn(&Shard) -> &AtomicU64) -> u64 {
        self.shards
            .iter()
            .map(|s| field(s).load(Ordering::Relaxed))
            .sum()
    }

    fn max(&self, field: impl Fn(&Shard) -> &AtomicU64) -> u64 {
        self.shards
            .iter()
            .map(|s| field(s).load(Ordering::Relaxed))
            .max()
            .unwrap_or(0)
    }

    /// Folds every shard into a serializable snapshot.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let mut per_stage = Vec::new();
        for stage in 0..MAX_STAGES {
            let metrics = StageMetrics {
                main_stage: stage,
                columns: self.sum(|s| &s.stage_columns[stage]),
                exchanges: self.sum(|s| &s.stage_exchanges[stage]),
                sweeps: self.sum(|s| &s.stage_sweeps[stage]),
                conflicts: self.sum(|s| &s.stage_conflicts[stage]),
            };
            per_stage.push(metrics);
        }
        // Drop trailing all-zero stages so the snapshot stays readable.
        while per_stage
            .last()
            .is_some_and(|m| m.columns == 0 && m.sweeps == 0 && m.conflicts == 0)
        {
            per_stage.pop();
        }
        let histogram = self.histogram.snapshot();
        MetricsSnapshot {
            columns: self.sum(|s| &s.columns),
            exchanges: self.sum(|s| &s.exchanges),
            arbiter_sweeps: self.sum(|s| &s.sweeps),
            max_sweep_depth: self.max(|s| &s.max_sweep_depth),
            conflicts: self.sum(|s| &s.conflicts),
            shards_enqueued: self.sum(|s| &s.shards_enqueued),
            shards_stolen: self.sum(|s| &s.shards_stolen),
            batches_submitted: self.sum(|s| &s.batches_submitted),
            batches_drained: self.sum(|s| &s.batches_drained),
            batch_errors: self.sum(|s| &s.batch_errors),
            scheduler_rounds: self.sum(|s| &s.scheduler_rounds),
            records_matched: self.sum(|s| &s.records_matched),
            max_round_backlog: self.max(|s| &s.max_round_backlog),
            hardware_faults: self.sum(|s| &s.hardware_faults),
            fault_retries: self.sum(|s| &s.fault_retries),
            connections_accepted: self.sum(|s| &s.connections_accepted),
            frames_served: self.sum(|s| &s.frames_served),
            retries_issued: self.sum(|s| &s.retries_issued),
            auth_failures: self.sum(|s| &s.auth_failures),
            reactor_wakeups: self.sum(|s| &s.reactor_wakeups),
            max_window_depth: self.max(|s| &s.max_window_depth),
            scrub_probes: self.sum(|s| &s.scrub_probes),
            shards_quarantined: self.sum(|s| &s.shards_quarantined),
            shards_restored: self.sum(|s| &s.shards_restored),
            per_stage,
            latency: LatencySummary::from_histogram(&histogram),
            histogram,
        }
    }
}

impl Observer for Counters {
    #[inline]
    fn column_routed(&self, event: ColumnEvent) {
        let shard = self.shard();
        shard.columns.fetch_add(1, Ordering::Relaxed);
        shard
            .exchanges
            .fetch_add(event.exchanges, Ordering::Relaxed);
        let slot = stage_slot(event.main_stage);
        shard.stage_columns[slot].fetch_add(1, Ordering::Relaxed);
        shard.stage_exchanges[slot].fetch_add(event.exchanges, Ordering::Relaxed);
    }

    #[inline]
    fn arbiter_sweep(&self, event: SweepEvent) {
        let shard = self.shard();
        shard.sweeps.fetch_add(1, Ordering::Relaxed);
        shard
            .max_sweep_depth
            .fetch_max(event.depth as u64, Ordering::Relaxed);
        shard.stage_sweeps[stage_slot(event.main_stage)].fetch_add(1, Ordering::Relaxed);
    }

    #[inline]
    fn splitter_conflict(&self, event: ConflictEvent) {
        let shard = self.shard();
        shard.conflicts.fetch_add(1, Ordering::Relaxed);
        shard.stage_conflicts[stage_slot(event.main_stage)].fetch_add(1, Ordering::Relaxed);
    }

    #[inline]
    fn shard_enqueued(&self, _event: ShardEvent) {
        self.shard().shards_enqueued.fetch_add(1, Ordering::Relaxed);
    }

    #[inline]
    fn shard_stolen(&self, _event: ShardEvent) {
        self.shard().shards_stolen.fetch_add(1, Ordering::Relaxed);
    }

    #[inline]
    fn batch_submitted(&self, _event: SubmitEvent) {
        self.shard()
            .batches_submitted
            .fetch_add(1, Ordering::Relaxed);
    }

    #[inline]
    fn batch_drained(&self, event: DrainEvent) {
        let shard = self.shard();
        shard.batches_drained.fetch_add(1, Ordering::Relaxed);
        if !event.ok {
            shard.batch_errors.fetch_add(1, Ordering::Relaxed);
        }
        self.histogram.record(event.latency_ns);
    }

    #[inline]
    fn scheduler_round(&self, event: RoundEvent) {
        let shard = self.shard();
        shard.scheduler_rounds.fetch_add(1, Ordering::Relaxed);
        shard
            .records_matched
            .fetch_add(event.matched as u64, Ordering::Relaxed);
        shard
            .max_round_backlog
            .fetch_max(event.backlog as u64, Ordering::Relaxed);
    }

    #[inline]
    fn hardware_fault(&self, _event: FaultEvent) {
        self.shard().hardware_faults.fetch_add(1, Ordering::Relaxed);
    }

    #[inline]
    fn batch_retried(&self, _event: RetryEvent) {
        self.shard().fault_retries.fetch_add(1, Ordering::Relaxed);
    }

    #[inline]
    fn connection_accepted(&self, _event: AcceptEvent) {
        self.shard()
            .connections_accepted
            .fetch_add(1, Ordering::Relaxed);
    }

    #[inline]
    fn frame_served(&self, event: ServeEvent) {
        self.shard().frames_served.fetch_add(1, Ordering::Relaxed);
        self.histogram.record(event.latency_ns);
    }

    #[inline]
    fn retry_issued(&self, _event: ThrottleEvent) {
        self.shard().retries_issued.fetch_add(1, Ordering::Relaxed);
    }

    #[inline]
    fn auth_failed(&self, _event: AuthEvent) {
        self.shard().auth_failures.fetch_add(1, Ordering::Relaxed);
    }

    #[inline]
    fn window_observed(&self, event: WindowEvent) {
        self.shard()
            .max_window_depth
            .fetch_max(event.depth as u64, Ordering::Relaxed);
    }

    #[inline]
    fn reactor_woken(&self, _event: WakeEvent) {
        self.shard().reactor_wakeups.fetch_add(1, Ordering::Relaxed);
    }

    #[inline]
    fn shard_scrubbed(&self, _event: ScrubEvent) {
        self.shard().scrub_probes.fetch_add(1, Ordering::Relaxed);
    }

    #[inline]
    fn shard_repaired(&self, event: RepairEvent) {
        let shard = self.shard();
        if event.restored {
            shard.shards_restored.fetch_add(1, Ordering::Relaxed);
        } else {
            shard.shards_quarantined.fetch_add(1, Ordering::Relaxed);
        }
    }
}

/// Per-main-stage counter totals.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct StageMetrics {
    /// Main-network stage index.
    pub main_stage: usize,
    /// Switching columns routed at this stage.
    pub columns: u64,
    /// 2×2 exchanges performed at this stage.
    pub exchanges: u64,
    /// Arbiter sweeps completed at this stage.
    pub sweeps: u64,
    /// Splitter conflicts detected at this stage.
    pub conflicts: u64,
}

/// Aggregated counter totals, serializable for the CLI's `--metrics`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    /// Switching columns routed (eq. (7): `m(m+1)/2` per full frame).
    pub columns: u64,
    /// 2×2 switch exchanges performed.
    pub exchanges: u64,
    /// Splitter arbiter sweeps completed.
    pub arbiter_sweeps: u64,
    /// Deepest arbiter tree swept (the `p` of the widest splitter hit).
    pub max_sweep_depth: u64,
    /// Splitter balance violations observed.
    pub conflicts: u64,
    /// Engine subnetwork slices published to the work queue.
    pub shards_enqueued: u64,
    /// Published slices taken off the queue by workers.
    pub shards_stolen: u64,
    /// Batches submitted to the engine.
    pub batches_submitted: u64,
    /// Batches fully routed (including failed ones).
    pub batches_drained: u64,
    /// Drained batches that failed validation or routing.
    pub batch_errors: u64,
    /// Input-queued-switch scheduler rounds run.
    pub scheduler_rounds: u64,
    /// Records matched to outputs across all scheduler rounds.
    pub records_matched: u64,
    /// Largest post-round backlog observed.
    pub max_round_backlog: u64,
    /// Hardware faults detected by the output balance check.
    pub hardware_faults: u64,
    /// Batch retries on alternate fabric shards after a fault.
    pub fault_retries: u64,
    /// Client connections accepted by the serving front door.
    pub connections_accepted: u64,
    /// Frames routed and delivered back to clients.
    pub frames_served: u64,
    /// Frames pushed back with an explicit `RETRY` response.
    pub retries_issued: u64,
    /// Submits rejected because their authentication tag failed to verify.
    pub auth_failures: u64,
    /// Times a reactor lane was nudged awake through its wake pipe.
    pub reactor_wakeups: u64,
    /// Deepest per-connection pipeline window observed.
    pub max_window_depth: u64,
    /// Background scrubber probes of suspect/quarantined fabric shards.
    pub scrub_probes: u64,
    /// Fabric shards confirmed faulty and quarantined by the scrubber.
    pub shards_quarantined: u64,
    /// Quarantined fabric shards restored to service after clearing.
    pub shards_restored: u64,
    /// Per-main-stage breakdown (trailing all-zero stages trimmed).
    pub per_stage: Vec<StageMetrics>,
    /// Latency quantiles over all recorded spans/batch drains.
    pub latency: LatencySummary,
    /// Full latency histogram (power-of-two ns buckets).
    pub histogram: LatencyHistogram,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn column(main_stage: usize, exchanges: u64) -> ColumnEvent {
        ColumnEvent {
            main_stage,
            internal_stage: 0,
            first_line: 0,
            width: 8,
            exchanges,
        }
    }

    #[test]
    fn counters_aggregate_across_events() {
        let c = Counters::new();
        c.column_routed(column(0, 3));
        c.column_routed(column(0, 1));
        c.column_routed(column(1, 2));
        c.arbiter_sweep(SweepEvent {
            main_stage: 0,
            internal_stage: 0,
            first_line: 0,
            width: 8,
            depth: 3,
        });
        c.splitter_conflict(ConflictEvent {
            main_stage: 1,
            internal_stage: 0,
            first_line: 0,
            width: 4,
            ones: 3,
        });
        let snap = c.snapshot();
        assert_eq!(snap.columns, 3);
        assert_eq!(snap.exchanges, 6);
        assert_eq!(snap.arbiter_sweeps, 1);
        assert_eq!(snap.max_sweep_depth, 3);
        assert_eq!(snap.conflicts, 1);
        assert_eq!(snap.per_stage.len(), 2);
        assert_eq!(snap.per_stage[0].columns, 2);
        assert_eq!(snap.per_stage[0].exchanges, 4);
        assert_eq!(snap.per_stage[1].columns, 1);
        assert_eq!(snap.per_stage[1].conflicts, 1);
    }

    #[test]
    fn batch_events_feed_histogram() {
        let c = Counters::new();
        c.batch_submitted(SubmitEvent { seq: 0, records: 8 });
        c.batch_drained(DrainEvent {
            seq: 0,
            records: 8,
            latency_ns: 1_000,
            ok: true,
        });
        c.batch_drained(DrainEvent {
            seq: 1,
            records: 8,
            latency_ns: 9_000,
            ok: false,
        });
        let snap = c.snapshot();
        assert_eq!(snap.batches_submitted, 1);
        assert_eq!(snap.batches_drained, 2);
        assert_eq!(snap.batch_errors, 1);
        assert_eq!(snap.histogram.count(), 2);
        assert_eq!(snap.latency.min_ns, 1_000);
        assert_eq!(snap.latency.max_ns, 9_000);
    }

    #[test]
    fn scheduler_rounds_track_occupancy() {
        let c = Counters::new();
        c.scheduler_round(RoundEvent {
            round: 0,
            matched: 5,
            backlog: 11,
        });
        c.scheduler_round(RoundEvent {
            round: 1,
            matched: 7,
            backlog: 4,
        });
        let snap = c.snapshot();
        assert_eq!(snap.scheduler_rounds, 2);
        assert_eq!(snap.records_matched, 12);
        assert_eq!(snap.max_round_backlog, 11);
    }

    #[test]
    fn fault_events_are_counted() {
        let c = Counters::new();
        c.hardware_fault(FaultEvent {
            main_stage: 1,
            internal_stage: 0,
            first_line: 4,
            width: 4,
            even_ones: 2,
            odd_ones: 0,
        });
        c.batch_retried(RetryEvent {
            seq: 3,
            attempt: 1,
            shard: 1,
        });
        c.batch_retried(RetryEvent {
            seq: 3,
            attempt: 2,
            shard: 0,
        });
        let snap = c.snapshot();
        assert_eq!(snap.hardware_faults, 1);
        assert_eq!(snap.fault_retries, 2);
    }

    #[test]
    fn serve_events_are_counted() {
        let c = Counters::new();
        c.connection_accepted(AcceptEvent { conn: 0 });
        c.connection_accepted(AcceptEvent { conn: 1 });
        c.frame_served(ServeEvent {
            tenant: 3,
            request_id: 9,
            records: 16,
            latency_ns: 2_000,
        });
        c.retry_issued(ThrottleEvent {
            tenant: 3,
            reason: 1,
        });
        c.retry_issued(ThrottleEvent {
            tenant: 4,
            reason: 2,
        });
        c.retry_issued(ThrottleEvent {
            tenant: 3,
            reason: 3,
        });
        c.auth_failed(AuthEvent {
            tenant: 4,
            request_id: 11,
        });
        c.reactor_woken(WakeEvent { lane: 0 });
        c.reactor_woken(WakeEvent { lane: 1 });
        c.window_observed(WindowEvent { conn: 7, depth: 5 });
        c.window_observed(WindowEvent { conn: 9, depth: 3 });
        let snap = c.snapshot();
        assert_eq!(snap.connections_accepted, 2);
        assert_eq!(snap.frames_served, 1);
        assert_eq!(snap.retries_issued, 3);
        assert_eq!(snap.auth_failures, 1);
        assert_eq!(snap.reactor_wakeups, 2);
        assert_eq!(snap.max_window_depth, 5);
        assert_eq!(snap.histogram.count(), 1, "served frames feed latency");
    }

    #[test]
    fn scrub_and_repair_events_are_counted() {
        let c = Counters::new();
        c.shard_scrubbed(ScrubEvent {
            shard: 1,
            clean: false,
            streak: 0,
        });
        c.shard_scrubbed(ScrubEvent {
            shard: 1,
            clean: true,
            streak: 1,
        });
        c.shard_scrubbed(ScrubEvent {
            shard: 1,
            clean: true,
            streak: 2,
        });
        c.shard_repaired(RepairEvent {
            shard: 1,
            restored: false,
        });
        c.shard_repaired(RepairEvent {
            shard: 1,
            restored: true,
        });
        let snap = c.snapshot();
        assert_eq!(snap.scrub_probes, 3);
        assert_eq!(snap.shards_quarantined, 1);
        assert_eq!(snap.shards_restored, 1);
        c.reset();
        assert_eq!(c.snapshot(), Counters::new().snapshot());
    }

    #[test]
    fn reset_zeroes_counters_high_waters_and_histogram() {
        let c = Counters::new();
        c.column_routed(column(2, 5));
        c.arbiter_sweep(SweepEvent {
            main_stage: 0,
            internal_stage: 0,
            first_line: 0,
            width: 8,
            depth: 3,
        });
        c.scheduler_round(RoundEvent {
            round: 0,
            matched: 2,
            backlog: 40,
        });
        c.connection_accepted(AcceptEvent { conn: 0 });
        c.frame_served(ServeEvent {
            tenant: 0,
            request_id: 0,
            records: 8,
            latency_ns: 777,
        });
        c.retry_issued(ThrottleEvent {
            tenant: 0,
            reason: 1,
        });
        c.auth_failed(AuthEvent {
            tenant: 0,
            request_id: 0,
        });
        c.reactor_woken(WakeEvent { lane: 0 });
        c.window_observed(WindowEvent { conn: 1, depth: 9 });
        assert_ne!(c.snapshot(), Counters::new().snapshot());
        c.reset();
        let snap = c.snapshot();
        assert_eq!(snap, Counters::new().snapshot());
        assert_eq!(snap.max_sweep_depth, 0, "high-water marks reset too");
        assert_eq!(snap.max_round_backlog, 0);
        assert_eq!(snap.max_window_depth, 0);
        assert_eq!(snap.histogram.count(), 0);
        assert!(snap.per_stage.is_empty());
    }

    #[test]
    fn concurrent_writers_lose_nothing() {
        let c = Counters::new();
        std::thread::scope(|scope| {
            for _ in 0..8 {
                let c = &c;
                scope.spawn(move || {
                    for _ in 0..1_000 {
                        c.column_routed(column(0, 1));
                    }
                });
            }
        });
        let snap = c.snapshot();
        assert_eq!(snap.columns, 8_000);
        assert_eq!(snap.exchanges, 8_000);
        assert_eq!(snap.per_stage[0].columns, 8_000);
    }

    #[test]
    fn deep_stages_clamp_into_last_slot() {
        let c = Counters::new();
        c.column_routed(column(MAX_STAGES + 5, 1));
        let snap = c.snapshot();
        assert_eq!(snap.per_stage.len(), MAX_STAGES);
        assert_eq!(snap.per_stage[MAX_STAGES - 1].columns, 1);
    }

    #[test]
    fn snapshot_serde_round_trips() {
        let c = Counters::new();
        c.column_routed(column(0, 2));
        c.batch_drained(DrainEvent {
            seq: 0,
            records: 4,
            latency_ns: 128,
            ok: true,
        });
        let snap = c.snapshot();
        let json = serde_json::to_string(&snap).unwrap();
        let back: MetricsSnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(back, snap);
    }

    #[test]
    fn shards_are_cache_line_padded() {
        assert_eq!(std::mem::align_of::<Shard>(), 128);
    }
}
