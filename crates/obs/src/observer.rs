//! The [`Observer`] trait and the zero-cost [`NoopObserver`].

use crate::event::{
    ColumnEvent, ConflictEvent, DrainEvent, FaultEvent, RetryEvent, RoundEvent, ShardEvent,
    SubmitEvent, SweepEvent,
};

/// Sink for routing-layer events.
///
/// Instrumented code is generic over `O: Observer` with [`NoopObserver`]
/// as the default, and hoists a single [`enabled`](Observer::enabled)
/// check before any per-event bookkeeping:
///
/// ```
/// use bnb_obs::{NoopObserver, Observer};
/// use bnb_obs::event::ColumnEvent;
///
/// fn route_column<O: Observer>(obs: &O) {
///     let observing = obs.enabled();
///     // ... hot loop; only tally `exchanges` when `observing` ...
///     if observing {
///         obs.column_routed(ColumnEvent {
///             main_stage: 0,
///             internal_stage: 0,
///             first_line: 0,
///             width: 8,
///             exchanges: 3,
///         });
///     }
/// }
/// route_column(&NoopObserver);
/// ```
///
/// With `NoopObserver` the check is a constant `false`, so the branch and
/// the event construction fold away — the instrumented binary is the
/// uninstrumented one.
///
/// The trait is object-safe (`&dyn Observer` works for heterogeneous
/// sinks) and every method takes `&self`, so implementations must handle
/// their own synchronization; [`crate::Counters`] uses relaxed atomics.
pub trait Observer: Send + Sync {
    /// Whether this observer wants events at all. Instrumented paths
    /// hoist this out of their hot loops; return `false` only if *every*
    /// event method is a no-op.
    #[inline]
    fn enabled(&self) -> bool {
        true
    }

    /// A switching column was routed over `event.width` lines.
    #[inline]
    fn column_routed(&self, event: ColumnEvent) {
        let _ = event;
    }

    /// A splitter's arbiter tree completed a sweep of `event.depth`.
    #[inline]
    fn arbiter_sweep(&self, event: SweepEvent) {
        let _ = event;
    }

    /// A splitter saw an unbalanced request pattern.
    #[inline]
    fn splitter_conflict(&self, event: ConflictEvent) {
        let _ = event;
    }

    /// An engine worker published a subnetwork slice to the work queue.
    #[inline]
    fn shard_enqueued(&self, event: ShardEvent) {
        let _ = event;
    }

    /// A worker took a published slice off the queue (possibly its own).
    #[inline]
    fn shard_stolen(&self, event: ShardEvent) {
        let _ = event;
    }

    /// A batch entered the engine's submission queue.
    #[inline]
    fn batch_submitted(&self, event: SubmitEvent) {
        let _ = event;
    }

    /// A batch finished routing (successfully or not).
    #[inline]
    fn batch_drained(&self, event: DrainEvent) {
        let _ = event;
    }

    /// An input-queued switch completed a scheduler round.
    #[inline]
    fn scheduler_round(&self, event: RoundEvent) {
        let _ = event;
    }

    /// A hardware fault was detected by the output balance check.
    #[inline]
    fn hardware_fault(&self, event: FaultEvent) {
        let _ = event;
    }

    /// A batch is being retried on another fabric shard after a fault.
    #[inline]
    fn batch_retried(&self, event: RetryEvent) {
        let _ = event;
    }
}

/// The default observer: observes nothing, costs nothing.
///
/// `enabled()` is a constant `false` and every event method is an empty
/// `#[inline]` body, so instrumentation sites compile to nothing.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NoopObserver;

impl Observer for NoopObserver {
    #[inline]
    fn enabled(&self) -> bool {
        false
    }
}

/// Forwarding impl so instrumented layers can borrow a shared sink
/// (e.g. one [`crate::Counters`] across engine workers) without wrappers.
impl<O: Observer + ?Sized> Observer for &O {
    #[inline]
    fn enabled(&self) -> bool {
        (**self).enabled()
    }

    #[inline]
    fn column_routed(&self, event: ColumnEvent) {
        (**self).column_routed(event);
    }

    #[inline]
    fn arbiter_sweep(&self, event: SweepEvent) {
        (**self).arbiter_sweep(event);
    }

    #[inline]
    fn splitter_conflict(&self, event: ConflictEvent) {
        (**self).splitter_conflict(event);
    }

    #[inline]
    fn shard_enqueued(&self, event: ShardEvent) {
        (**self).shard_enqueued(event);
    }

    #[inline]
    fn shard_stolen(&self, event: ShardEvent) {
        (**self).shard_stolen(event);
    }

    #[inline]
    fn batch_submitted(&self, event: SubmitEvent) {
        (**self).batch_submitted(event);
    }

    #[inline]
    fn batch_drained(&self, event: DrainEvent) {
        (**self).batch_drained(event);
    }

    #[inline]
    fn scheduler_round(&self, event: RoundEvent) {
        (**self).scheduler_round(event);
    }

    #[inline]
    fn hardware_fault(&self, event: FaultEvent) {
        (**self).hardware_fault(event);
    }

    #[inline]
    fn batch_retried(&self, event: RetryEvent) {
        (**self).batch_retried(event);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn noop_is_disabled() {
        assert!(!NoopObserver.enabled());
        assert!(!Observer::enabled(&&NoopObserver));
    }

    #[test]
    fn trait_is_object_safe() {
        let obs: &dyn Observer = &NoopObserver;
        assert!(!obs.enabled());
        obs.column_routed(ColumnEvent {
            main_stage: 0,
            internal_stage: 0,
            first_line: 0,
            width: 2,
            exchanges: 0,
        });
    }

    #[test]
    fn reference_forwards_events() {
        #[derive(Default)]
        struct Tally(AtomicU64);
        impl Observer for Tally {
            fn column_routed(&self, _event: ColumnEvent) {
                self.0.fetch_add(1, Ordering::Relaxed);
            }
        }
        let tally = Tally::default();
        let by_ref: &Tally = &tally;
        assert!(by_ref.enabled());
        by_ref.column_routed(ColumnEvent {
            main_stage: 0,
            internal_stage: 0,
            first_line: 0,
            width: 2,
            exchanges: 1,
        });
        assert_eq!(tally.0.load(Ordering::Relaxed), 1);
    }
}
