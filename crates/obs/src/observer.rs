//! The [`Observer`] trait, the zero-cost [`NoopObserver`], and the
//! [`Fanout`] combinator for feeding two sinks at once.

use crate::event::{
    AcceptEvent, AuthEvent, ColumnEvent, ConflictEvent, DrainEvent, FaultEvent, HopEvent,
    RepairEvent, RetryEvent, RoundEvent, ScrubEvent, ServeEvent, ShardEvent, SubmitEvent,
    SweepEvent, ThrottleEvent, WakeEvent, WindowEvent,
};

/// Sink for routing-layer events.
///
/// Instrumented code is generic over `O: Observer` with [`NoopObserver`]
/// as the default, and hoists a single [`enabled`](Observer::enabled)
/// check before any per-event bookkeeping:
///
/// ```
/// use bnb_obs::{NoopObserver, Observer};
/// use bnb_obs::event::ColumnEvent;
///
/// fn route_column<O: Observer>(obs: &O) {
///     let observing = obs.enabled();
///     // ... hot loop; only tally `exchanges` when `observing` ...
///     if observing {
///         obs.column_routed(ColumnEvent {
///             main_stage: 0,
///             internal_stage: 0,
///             first_line: 0,
///             width: 8,
///             exchanges: 3,
///         });
///     }
/// }
/// route_column(&NoopObserver);
/// ```
///
/// With `NoopObserver` the check is a constant `false`, so the branch and
/// the event construction fold away — the instrumented binary is the
/// uninstrumented one.
///
/// The trait is object-safe (`&dyn Observer` works for heterogeneous
/// sinks) and every method takes `&self`, so implementations must handle
/// their own synchronization; [`crate::Counters`] uses relaxed atomics.
pub trait Observer: Send + Sync {
    /// Whether this observer wants events at all. Instrumented paths
    /// hoist this out of their hot loops; return `false` only if *every*
    /// event method is a no-op.
    #[inline]
    fn enabled(&self) -> bool {
        true
    }

    /// Whether this observer wants per-cell [`HopEvent`]s. Off by default
    /// — a frame of `N` cells emits `N` hops per column, so aggregate
    /// sinks like counters must not pay for them. Hoisted alongside
    /// [`enabled`](Observer::enabled); return `true` only from
    /// path-tracing sinks.
    #[inline]
    fn wants_hops(&self) -> bool {
        false
    }

    /// A switching column was routed over `event.width` lines.
    #[inline]
    fn column_routed(&self, event: ColumnEvent) {
        let _ = event;
    }

    /// One cell crossed one switching column (only emitted when
    /// [`wants_hops`](Observer::wants_hops) is true).
    #[inline]
    fn cell_hop(&self, event: HopEvent) {
        let _ = event;
    }

    /// A splitter's arbiter tree completed a sweep of `event.depth`.
    #[inline]
    fn arbiter_sweep(&self, event: SweepEvent) {
        let _ = event;
    }

    /// A splitter saw an unbalanced request pattern.
    #[inline]
    fn splitter_conflict(&self, event: ConflictEvent) {
        let _ = event;
    }

    /// An engine worker published a subnetwork slice to the work queue.
    #[inline]
    fn shard_enqueued(&self, event: ShardEvent) {
        let _ = event;
    }

    /// A worker took a published slice off the queue (possibly its own).
    #[inline]
    fn shard_stolen(&self, event: ShardEvent) {
        let _ = event;
    }

    /// A batch entered the engine's submission queue.
    #[inline]
    fn batch_submitted(&self, event: SubmitEvent) {
        let _ = event;
    }

    /// A batch finished routing (successfully or not).
    #[inline]
    fn batch_drained(&self, event: DrainEvent) {
        let _ = event;
    }

    /// An input-queued switch completed a scheduler round.
    #[inline]
    fn scheduler_round(&self, event: RoundEvent) {
        let _ = event;
    }

    /// A hardware fault was detected by the output balance check.
    #[inline]
    fn hardware_fault(&self, event: FaultEvent) {
        let _ = event;
    }

    /// A batch is being retried on another fabric shard after a fault.
    #[inline]
    fn batch_retried(&self, event: RetryEvent) {
        let _ = event;
    }

    /// The serving front door accepted a client connection.
    #[inline]
    fn connection_accepted(&self, event: AcceptEvent) {
        let _ = event;
    }

    /// A frame was routed and its response delivered to the client.
    #[inline]
    fn frame_served(&self, event: ServeEvent) {
        let _ = event;
    }

    /// A frame was pushed back with an explicit `RETRY` response.
    #[inline]
    fn retry_issued(&self, event: ThrottleEvent) {
        let _ = event;
    }

    /// A SUBMIT was refused by tenant authentication.
    #[inline]
    fn auth_failed(&self, event: AuthEvent) {
        let _ = event;
    }

    /// A connection's pipelining window deepened by one admission.
    #[inline]
    fn window_observed(&self, event: WindowEvent) {
        let _ = event;
    }

    /// A reactor lane was woken through its wake pipe.
    #[inline]
    fn reactor_woken(&self, event: WakeEvent) {
        let _ = event;
    }

    /// The background scrubber probed a fabric shard.
    #[inline]
    fn shard_scrubbed(&self, event: ScrubEvent) {
        let _ = event;
    }

    /// A fabric shard was quarantined or restored by the repair loop.
    #[inline]
    fn shard_repaired(&self, event: RepairEvent) {
        let _ = event;
    }
}

/// The default observer: observes nothing, costs nothing.
///
/// `enabled()` is a constant `false` and every event method is an empty
/// `#[inline]` body, so instrumentation sites compile to nothing.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NoopObserver;

impl Observer for NoopObserver {
    #[inline]
    fn enabled(&self) -> bool {
        false
    }
}

/// Forwarding impl so instrumented layers can borrow a shared sink
/// (e.g. one [`crate::Counters`] across engine workers) without wrappers.
impl<O: Observer + ?Sized> Observer for &O {
    #[inline]
    fn enabled(&self) -> bool {
        (**self).enabled()
    }

    #[inline]
    fn wants_hops(&self) -> bool {
        (**self).wants_hops()
    }

    #[inline]
    fn column_routed(&self, event: ColumnEvent) {
        (**self).column_routed(event);
    }

    #[inline]
    fn cell_hop(&self, event: HopEvent) {
        (**self).cell_hop(event);
    }

    #[inline]
    fn arbiter_sweep(&self, event: SweepEvent) {
        (**self).arbiter_sweep(event);
    }

    #[inline]
    fn splitter_conflict(&self, event: ConflictEvent) {
        (**self).splitter_conflict(event);
    }

    #[inline]
    fn shard_enqueued(&self, event: ShardEvent) {
        (**self).shard_enqueued(event);
    }

    #[inline]
    fn shard_stolen(&self, event: ShardEvent) {
        (**self).shard_stolen(event);
    }

    #[inline]
    fn batch_submitted(&self, event: SubmitEvent) {
        (**self).batch_submitted(event);
    }

    #[inline]
    fn batch_drained(&self, event: DrainEvent) {
        (**self).batch_drained(event);
    }

    #[inline]
    fn scheduler_round(&self, event: RoundEvent) {
        (**self).scheduler_round(event);
    }

    #[inline]
    fn hardware_fault(&self, event: FaultEvent) {
        (**self).hardware_fault(event);
    }

    #[inline]
    fn batch_retried(&self, event: RetryEvent) {
        (**self).batch_retried(event);
    }

    #[inline]
    fn connection_accepted(&self, event: AcceptEvent) {
        (**self).connection_accepted(event);
    }

    #[inline]
    fn frame_served(&self, event: ServeEvent) {
        (**self).frame_served(event);
    }

    #[inline]
    fn retry_issued(&self, event: ThrottleEvent) {
        (**self).retry_issued(event);
    }

    #[inline]
    fn auth_failed(&self, event: AuthEvent) {
        (**self).auth_failed(event);
    }

    #[inline]
    fn window_observed(&self, event: WindowEvent) {
        (**self).window_observed(event);
    }

    #[inline]
    fn reactor_woken(&self, event: WakeEvent) {
        (**self).reactor_woken(event);
    }

    #[inline]
    fn shard_scrubbed(&self, event: ScrubEvent) {
        (**self).shard_scrubbed(event);
    }

    #[inline]
    fn shard_repaired(&self, event: RepairEvent) {
        (**self).shard_repaired(event);
    }
}

/// Fans every event out to two observers (nest for more).
///
/// `enabled()`/`wants_hops()` are the ORs of the two sinks', so a pair
/// stays zero-cost only when both halves are noops — and a hop-hungry
/// tracer can ride alongside an aggregate counter without either knowing
/// about the other:
///
/// ```
/// use bnb_obs::{Counters, Fanout, FlightRecorder, Observer};
/// use bnb_obs::event::ColumnEvent;
///
/// let counters = Counters::new();
/// let recorder = FlightRecorder::with_capacity(64);
/// let both = Fanout::new(&counters, &recorder);
/// both.column_routed(ColumnEvent {
///     main_stage: 0,
///     internal_stage: 0,
///     first_line: 0,
///     width: 4,
///     exchanges: 1,
/// });
/// assert_eq!(counters.snapshot().columns, 1);
/// assert_eq!(recorder.len(), 1);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct Fanout<A, B> {
    a: A,
    b: B,
}

impl<A: Observer, B: Observer> Fanout<A, B> {
    /// A fanout over the two sinks (take references to share them).
    pub fn new(a: A, b: B) -> Self {
        Fanout { a, b }
    }
}

impl<A: Observer, B: Observer> Observer for Fanout<A, B> {
    #[inline]
    fn enabled(&self) -> bool {
        self.a.enabled() || self.b.enabled()
    }

    #[inline]
    fn wants_hops(&self) -> bool {
        self.a.wants_hops() || self.b.wants_hops()
    }

    #[inline]
    fn column_routed(&self, event: ColumnEvent) {
        self.a.column_routed(event);
        self.b.column_routed(event);
    }

    #[inline]
    fn cell_hop(&self, event: HopEvent) {
        self.a.cell_hop(event);
        self.b.cell_hop(event);
    }

    #[inline]
    fn arbiter_sweep(&self, event: SweepEvent) {
        self.a.arbiter_sweep(event);
        self.b.arbiter_sweep(event);
    }

    #[inline]
    fn splitter_conflict(&self, event: ConflictEvent) {
        self.a.splitter_conflict(event);
        self.b.splitter_conflict(event);
    }

    #[inline]
    fn shard_enqueued(&self, event: ShardEvent) {
        self.a.shard_enqueued(event);
        self.b.shard_enqueued(event);
    }

    #[inline]
    fn shard_stolen(&self, event: ShardEvent) {
        self.a.shard_stolen(event);
        self.b.shard_stolen(event);
    }

    #[inline]
    fn batch_submitted(&self, event: SubmitEvent) {
        self.a.batch_submitted(event);
        self.b.batch_submitted(event);
    }

    #[inline]
    fn batch_drained(&self, event: DrainEvent) {
        self.a.batch_drained(event);
        self.b.batch_drained(event);
    }

    #[inline]
    fn scheduler_round(&self, event: RoundEvent) {
        self.a.scheduler_round(event);
        self.b.scheduler_round(event);
    }

    #[inline]
    fn hardware_fault(&self, event: FaultEvent) {
        self.a.hardware_fault(event);
        self.b.hardware_fault(event);
    }

    #[inline]
    fn batch_retried(&self, event: RetryEvent) {
        self.a.batch_retried(event);
        self.b.batch_retried(event);
    }

    #[inline]
    fn connection_accepted(&self, event: AcceptEvent) {
        self.a.connection_accepted(event);
        self.b.connection_accepted(event);
    }

    #[inline]
    fn frame_served(&self, event: ServeEvent) {
        self.a.frame_served(event);
        self.b.frame_served(event);
    }

    #[inline]
    fn retry_issued(&self, event: ThrottleEvent) {
        self.a.retry_issued(event);
        self.b.retry_issued(event);
    }

    #[inline]
    fn auth_failed(&self, event: AuthEvent) {
        self.a.auth_failed(event);
        self.b.auth_failed(event);
    }

    #[inline]
    fn window_observed(&self, event: WindowEvent) {
        self.a.window_observed(event);
        self.b.window_observed(event);
    }

    #[inline]
    fn reactor_woken(&self, event: WakeEvent) {
        self.a.reactor_woken(event);
        self.b.reactor_woken(event);
    }

    #[inline]
    fn shard_scrubbed(&self, event: ScrubEvent) {
        self.a.shard_scrubbed(event);
        self.b.shard_scrubbed(event);
    }

    #[inline]
    fn shard_repaired(&self, event: RepairEvent) {
        self.a.shard_repaired(event);
        self.b.shard_repaired(event);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn noop_is_disabled() {
        assert!(!NoopObserver.enabled());
        assert!(!Observer::enabled(&&NoopObserver));
        assert!(!NoopObserver.wants_hops());
        assert!(!Observer::wants_hops(&&NoopObserver));
    }

    #[test]
    fn fanout_feeds_both_sinks_and_ors_the_guards() {
        #[derive(Default)]
        struct HopTally(AtomicU64);
        impl Observer for HopTally {
            fn wants_hops(&self) -> bool {
                true
            }
            fn cell_hop(&self, _event: HopEvent) {
                self.0.fetch_add(1, Ordering::Relaxed);
            }
        }
        let tally = HopTally::default();
        let pair = Fanout::new(&NoopObserver, &tally);
        assert!(pair.enabled(), "one live sink enables the pair");
        assert!(pair.wants_hops(), "one hop-hungry sink is enough");
        pair.cell_hop(HopEvent {
            dest: 0,
            main_stage: 0,
            internal_stage: 0,
            first_line: 0,
            port: 0,
            exchanged: false,
            sweep: 0,
        });
        assert_eq!(tally.0.load(Ordering::Relaxed), 1);
        let noops = Fanout::new(&NoopObserver, &NoopObserver);
        assert!(!noops.enabled(), "two noops stay a noop");
        assert!(!noops.wants_hops());
    }

    #[test]
    fn trait_is_object_safe() {
        let obs: &dyn Observer = &NoopObserver;
        assert!(!obs.enabled());
        obs.column_routed(ColumnEvent {
            main_stage: 0,
            internal_stage: 0,
            first_line: 0,
            width: 2,
            exchanges: 0,
        });
    }

    #[test]
    fn reference_forwards_events() {
        #[derive(Default)]
        struct Tally(AtomicU64);
        impl Observer for Tally {
            fn column_routed(&self, _event: ColumnEvent) {
                self.0.fetch_add(1, Ordering::Relaxed);
            }
        }
        let tally = Tally::default();
        let by_ref: &Tally = &tally;
        assert!(by_ref.enabled());
        by_ref.column_routed(ColumnEvent {
            main_stage: 0,
            internal_stage: 0,
            first_line: 0,
            width: 2,
            exchanges: 1,
        });
        assert_eq!(tally.0.load(Ordering::Relaxed), 1);
    }
}
