//! bnb-engine: a concurrent batched routing engine for the BNB network.
//!
//! The paper's self-routing property makes the control plane *local*: every
//! splitter sets its switches from its own inputs. This crate exploits the
//! structural consequence — after main stage `i`, the GBN's unshuffle
//! partitions the frame into independent subnetworks — to route disjoint
//! slices of one batch on different workers, on top of a classic bounded
//! submit/drain pipeline:
//!
//! - [`Engine::run`] spawns a [`std::thread::scope`]d worker pool (no
//!   external dependencies, no detached threads).
//! - [`EngineHandle::submit`] enqueues a batch into a **bounded** queue and
//!   blocks when it is full — backpressure, not unbounded buffering.
//! - Each batch is recursively split into `2^depth` independent subnetwork
//!   slices ([`ShardDepth`]), routed concurrently with per-worker reusable
//!   scratch (zero per-batch allocation in steady state), byte-identical
//!   to the sequential route.
//! - [`EngineHandle::drain`] returns routed batches in submission order;
//!   [`EngineHandle::stats`] snapshots throughput, a fixed-bucket latency
//!   histogram, queue high-water marks, and per-worker activity
//!   ([`EngineStats`], serde-serializable). Failed batches carry an
//!   [`EngineError`] whose `source()` chain reaches the underlying
//!   [`bnb_core::RouteError`].
//! - The engine is generic over a [`bnb_obs::Observer`] (defaulting to the
//!   zero-cost noop): [`Engine::with_observer`] streams submit/drain,
//!   shard hand-off, column and arbiter-sweep events to any sink, e.g. a
//!   lock-free `bnb_obs::Counters`.
//! - [`Engine::run_faulted`] routes through damaged hardware: a
//!   [`FaultPlan`] assigns a `bnb_core::fault::FaultMap` to each fabric
//!   shard, batches hitting a detected fault are retried on the next
//!   shard with exponential backoff ([`RetryPolicy`]), and exhausted
//!   retries drain as [`EngineError::Quarantined`] with the fault site in
//!   the `source()` chain.
//! - [`Engine::run_scrubbed`] adds *live* repair on top: a
//!   [`LiveFaultPlan`]'s fault maps may change while the engine routes,
//!   workers steer traffic onto healthy fabric shards
//!   ([`ShardHealth`]), and a background scrubber thread probes suspect
//!   shards between drains — quarantining confirmed faults and restoring
//!   capacity when transients clear — without pausing submit/drain.
//!
//! See [`bnb_core::stages`] for the slice-independence argument and
//! `DESIGN.md` for how this mirrors the paper's arbiter locality.

pub mod engine;
pub mod error;
mod hub;
pub mod live;
pub mod stats;

pub use engine::{
    BatchSubmitError, Engine, EngineConfig, EngineHandle, FaultPlan, RetryPolicy, RoutedBatch,
    ShardDepth, SubmitError,
};
pub use error::EngineError;
pub use live::{LiveFaultPlan, PlanStatus, ShardHealth, ShardStatus};
pub use stats::{EngineStats, LatencyHistogram, LatencySummary, WorkerMetrics, HISTOGRAM_BUCKETS};
