//! The engine's shared work hub: a bounded batch queue, an unbounded
//! slice-task queue, and the in-order completion buffer.
//!
//! Two kinds of work flow through the hub:
//!
//! - **Jobs** — whole submitted batches. The queue is bounded, so
//!   [`Hub::submit`] blocks when full (backpressure). A worker that pops a
//!   job becomes its *owner* and is responsible for publishing its result.
//! - **Slice tasks** — disjoint subnetwork slices of an in-flight batch,
//!   produced by the recursive split in [`crate::engine`]. The queue is
//!   unbounded (at most `2^depth` tasks per in-flight job) and always
//!   served before jobs, so helping never starves an in-flight batch.
//!
//! Owners waiting for their slices to land only ever *help with tasks*,
//! never pop nested jobs — job processing therefore never recurses and the
//! number of in-flight batches is bounded by `workers + queue capacity`.

use std::collections::BTreeMap;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use bnb_core::batch::FrameBatch;
use bnb_core::error::RouteError;
use bnb_core::network::BnbNetwork;
use bnb_topology::record::Record;

use crate::error::EngineError;
use crate::stats::LatencyHistogram;

/// What a submitted job carries: one frame (the classic path, sharded
/// across workers by the recursive split) or a whole [`FrameBatch`]
/// (routed by its owning worker through the batched kernel, one frame
/// result per reserved sequence number).
pub(crate) enum JobPayload {
    Frame(Vec<Record>),
    Batch(FrameBatch),
}

/// A submitted batch awaiting an owner. `seq` is the job's first sequence
/// number; a [`JobPayload::Batch`] of `B` frames owns `seq .. seq + B`.
pub(crate) struct Job {
    pub seq: u64,
    pub payload: JobPayload,
    pub submitted_at: Instant,
}

/// One routed batch, as returned by [`crate::engine::EngineHandle::drain`].
#[derive(Debug, Clone, PartialEq)]
pub struct RoutedBatch {
    /// Submission sequence number (as returned by `submit`).
    pub seq: u64,
    /// The routed lines, or the validation/routing failure for this batch
    /// (walk [`std::error::Error::source`] for the underlying
    /// [`RouteError`]).
    pub result: Result<Vec<Record>, EngineError>,
    /// Nanoseconds the batch sat in the bounded submission queue before a
    /// worker picked it up.
    pub queue_ns: u64,
    /// Nanoseconds from worker pickup to result publication (routing
    /// proper). `queue_ns + route_ns` is the submit-to-publish latency
    /// recorded in the engine histogram.
    pub route_ns: u64,
    /// Opaque caller token attached at submission (see
    /// [`Hub::try_submit_tagged`] / [`Hub::try_submit_batch`]). Serving
    /// front-ends key completion routing by connection with it; plain
    /// submissions carry `0`.
    pub token: u64,
}

/// Queue-wait bookkeeping for one in-flight job, keyed by the job's first
/// sequence number; a batch job of `frames` frames finishes `frames`
/// times against the same entry.
struct JobMeta {
    frames: u64,
    queue_ns: u64,
    remaining: u64,
}

/// Why [`crate::engine::EngineHandle::try_submit`] refused a batch. The
/// rejected records ride back inside the variant so callers (admission
/// layers issuing `RETRY`, queues re-offering later) keep the allocation.
#[derive(Debug, Clone, PartialEq)]
pub enum SubmitError {
    /// The bounded queue is full right now; re-offer later.
    Full(Vec<Record>),
    /// The engine is past [`drain_and_close`]
    /// (`crate::engine::EngineHandle::drain_and_close`) and accepts
    /// nothing more.
    Closed(Vec<Record>),
}

impl SubmitError {
    /// The rejected batch, returned to the caller unrouted.
    pub fn into_lines(self) -> Vec<Record> {
        match self {
            SubmitError::Full(lines) | SubmitError::Closed(lines) => lines,
        }
    }

    /// Whether the rejection is permanent (engine closed) rather than
    /// transient backpressure.
    pub fn is_closed(&self) -> bool {
        matches!(self, SubmitError::Closed(_))
    }
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::Full(lines) => {
                write!(
                    f,
                    "submission queue full ({} records rejected)",
                    lines.len()
                )
            }
            SubmitError::Closed(lines) => write!(
                f,
                "engine closed to new submissions ({} records rejected)",
                lines.len()
            ),
        }
    }
}

impl std::error::Error for SubmitError {}

/// Why [`Hub::try_submit_batch`] refused a whole [`FrameBatch`]. The
/// rejected batch rides back inside the variant, mirroring
/// [`SubmitError`], so dispatchers keep the SoA allocation for a later
/// re-offer or per-frame RETRY fan-out.
#[derive(Debug)]
pub enum BatchSubmitError {
    /// The bounded queue is full right now; re-offer later.
    Full(FrameBatch),
    /// The engine is past `drain_and_close` and accepts nothing more.
    Closed(FrameBatch),
}

impl BatchSubmitError {
    /// The rejected batch, returned to the caller unrouted.
    pub fn into_batch(self) -> FrameBatch {
        match self {
            BatchSubmitError::Full(batch) | BatchSubmitError::Closed(batch) => batch,
        }
    }

    /// Whether the rejection is permanent (engine closed) rather than
    /// transient backpressure.
    pub fn is_closed(&self) -> bool {
        matches!(self, BatchSubmitError::Closed(_))
    }
}

impl std::fmt::Display for BatchSubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BatchSubmitError::Full(batch) => {
                write!(f, "submission queue full ({} frames rejected)", batch.frames())
            }
            BatchSubmitError::Closed(batch) => write!(
                f,
                "engine closed to new submissions ({} frames rejected)",
                batch.frames()
            ),
        }
    }
}

impl std::error::Error for BatchSubmitError {}

/// Completion latch for one in-flight batch.
///
/// Shared behind an [`Arc`]: every [`SliceTask`] clones the handle, so the
/// latch stays alive until the last helper has fully finished its
/// `complete_one` — no matter how that final decrement races with the
/// owner observing `is_done` and returning. (A stack-allocated latch would
/// be freed by the returning owner while the last helper still touches the
/// notify `Mutex`/`Condvar`.) Each worker keeps one latch and
/// [`reset`](Self::reset)s it per owned job, so steady state allocates
/// nothing per batch.
pub(crate) struct JobLatch {
    remaining: AtomicUsize,
    lock: Mutex<()>,
    cv: Condvar,
    error: Mutex<Option<RouteError>>,
}

/// The position of a routing error in the sequential route's scan order:
/// stage-span routing visits `(main_stage, internal_stage, first_line)`
/// lexicographically, so the least-ranked error across all slices is
/// exactly the one `BnbNetwork::route` reports.
fn site_rank(e: &RouteError) -> (usize, usize, usize) {
    match e {
        RouteError::UnbalancedSplitter {
            main_stage,
            internal_stage,
            first_line,
            ..
        }
        | RouteError::HardwareFault {
            main_stage,
            internal_stage,
            first_line,
            ..
        } => (*main_stage, *internal_stage, *first_line),
        // Other variants are caught by validation before any slice runs;
        // rank them first defensively.
        _ => (0, 0, 0),
    }
}

impl JobLatch {
    /// A latch with `count` outstanding slices.
    pub fn new(count: usize) -> Self {
        JobLatch {
            remaining: AtomicUsize::new(count),
            lock: Mutex::new(()),
            cv: Condvar::new(),
            error: Mutex::new(None),
        }
    }

    /// Rearms a drained latch for the owner's next job. Only sound once
    /// [`Self::is_done`] holds (stale helpers may still *drop* their
    /// `Arc` clone, but never call methods after their `complete_one`).
    pub fn reset(&self, count: usize) {
        debug_assert!(self.is_done(), "resetting a latch with slices in flight");
        self.remaining.store(count, Ordering::Relaxed);
        *self.error.lock().unwrap() = None;
    }

    /// Registers one more outstanding slice (called before pushing a split
    /// half to the hub).
    pub fn add_one(&self) {
        self.remaining.fetch_add(1, Ordering::Relaxed);
    }

    /// Marks one slice complete. The `Release` ordering publishes the
    /// slice's routed lines to the owner's `Acquire` load in
    /// [`Self::is_done`].
    pub fn complete_one(&self) {
        if self.remaining.fetch_sub(1, Ordering::Release) == 1 {
            let _guard = self.lock.lock().unwrap();
            self.cv.notify_all();
        }
    }

    /// Marks one slice complete with an error. The error at the earliest
    /// sequential-scan site wins (not the first to *arrive*), so a failed
    /// batch reports the same site as `BnbNetwork::route` regardless of
    /// how slices were scheduled.
    pub fn fail(&self, e: RouteError) {
        let mut slot = self.error.lock().unwrap();
        match slot.as_ref() {
            Some(prev) if site_rank(prev) <= site_rank(&e) => {}
            _ => *slot = Some(e),
        }
        drop(slot);
        self.complete_one();
    }

    /// True once every outstanding slice has completed.
    pub fn is_done(&self) -> bool {
        self.remaining.load(Ordering::Acquire) == 0
    }

    /// Sleeps briefly unless the latch completes first. The short timeout
    /// is insurance against the (benign) race between the done-check and
    /// the notify.
    pub fn wait_brief(&self) {
        let guard = self.lock.lock().unwrap();
        if !self.is_done() {
            let _ = self
                .cv
                .wait_timeout(guard, Duration::from_micros(100))
                .unwrap();
        }
    }

    /// The first recorded slice error, if any.
    pub fn take_error(&self) -> Option<RouteError> {
        self.error.lock().unwrap().take()
    }
}

/// A disjoint subnetwork slice of an in-flight batch.
///
/// The `lines` raw pointer is sound to send because (a) sibling tasks
/// cover disjoint ranges produced by `split_at_mut`, (b) the owning worker
/// keeps the batch vector alive until the latch reports every slice done,
/// and (c) `complete_one` is the last touch of the pointer, with
/// `Release`/`Acquire` ordering handing the written lines back to the
/// owner. The latch itself needs no such argument: the `Arc` keeps it
/// alive for as long as any task (or the owner) holds a handle.
pub(crate) struct SliceTask {
    pub net: BnbNetwork,
    pub lines: *mut Record,
    pub len: usize,
    pub first_line: usize,
    pub start_stage: usize,
    pub split_until: usize,
    pub latch: Arc<JobLatch>,
}

unsafe impl Send for SliceTask {}

/// Everything guarded by the hub mutex.
pub(crate) struct HubState {
    pub jobs: VecDeque<Job>,
    pub tasks: VecDeque<SliceTask>,
    completed: BTreeMap<u64, RoutedBatch>,
    submitted: u64,
    next_drain: u64,
    closed: bool,
    /// Cleared by [`Hub::stop_accepting`]: new submissions are rejected
    /// while in-flight batches keep draining (graceful shutdown).
    accepting: bool,
    // Stats counters (updated at batch completion).
    pub batches: u64,
    pub records: u64,
    pub errors: u64,
    pub queue_high_water: usize,
    pub task_queue_high_water: usize,
    pub histogram: LatencyHistogram,
    /// Queue-wait latency (submit to worker pickup), one sample per job.
    pub wait_histogram: LatencyHistogram,
    /// Queue-wait metadata for in-flight jobs, keyed by first seq.
    meta: BTreeMap<u64, JobMeta>,
    /// Caller completion-routing tokens keyed by frame seq. Sparse: only
    /// tagged submissions insert here; `finish` removes as it publishes.
    tokens: BTreeMap<u64, u64>,
}

/// The shared coordination hub (one per [`crate::engine::Engine::run`]
/// scope).
pub(crate) struct Hub {
    capacity: usize,
    state: Mutex<HubState>,
    /// Workers wait here for jobs, tasks, or close.
    work_cv: Condvar,
    /// Submitters wait here for queue space.
    space_cv: Condvar,
    /// Drainers wait here for completions.
    done_cv: Condvar,
}

impl Hub {
    pub fn new(capacity: usize) -> Self {
        Hub {
            capacity: capacity.max(1),
            state: Mutex::new(HubState {
                jobs: VecDeque::new(),
                tasks: VecDeque::new(),
                completed: BTreeMap::new(),
                submitted: 0,
                next_drain: 0,
                closed: false,
                accepting: true,
                batches: 0,
                records: 0,
                errors: 0,
                queue_high_water: 0,
                task_queue_high_water: 0,
                histogram: LatencyHistogram::new(),
                wait_histogram: LatencyHistogram::new(),
                meta: BTreeMap::new(),
                tokens: BTreeMap::new(),
            }),
            work_cv: Condvar::new(),
            space_cv: Condvar::new(),
            done_cv: Condvar::new(),
        }
    }

    /// Enqueues a batch, blocking while the bounded queue is full.
    /// Returns the batch's sequence number.
    ///
    /// # Panics
    ///
    /// Panics if the hub is past [`Hub::stop_accepting`]; callers that
    /// may race a shutdown must use [`Hub::try_submit`].
    pub fn submit(&self, lines: Vec<Record>) -> u64 {
        let mut st = self.state.lock().unwrap();
        assert!(st.accepting, "submit after drain_and_close");
        while st.jobs.len() >= self.capacity {
            st = self.space_cv.wait(st).unwrap();
            assert!(st.accepting, "submit after drain_and_close");
        }
        self.enqueue_locked(st, JobPayload::Frame(lines), 1)
    }

    /// Enqueues a whole frame batch as one job, blocking while the bounded
    /// queue is full. Reserves one sequence number per frame and returns
    /// the first; frame `f` completes as `seq + f`.
    ///
    /// # Panics
    ///
    /// Panics if the batch is empty or the hub is past
    /// [`Hub::stop_accepting`].
    pub fn submit_batch(&self, batch: FrameBatch) -> u64 {
        assert!(!batch.is_empty(), "cannot submit an empty batch");
        let frames = batch.frames() as u64;
        let mut st = self.state.lock().unwrap();
        assert!(st.accepting, "submit after drain_and_close");
        while st.jobs.len() >= self.capacity {
            st = self.space_cv.wait(st).unwrap();
            assert!(st.accepting, "submit after drain_and_close");
        }
        self.enqueue_locked(st, JobPayload::Batch(batch), frames)
    }

    /// Non-blocking [`Hub::submit`]: rejects instead of waiting when the
    /// queue is full or the hub no longer accepts submissions, handing
    /// the batch back inside the error.
    pub fn try_submit(&self, lines: Vec<Record>) -> Result<u64, SubmitError> {
        let st = self.state.lock().unwrap();
        if !st.accepting {
            return Err(SubmitError::Closed(lines));
        }
        if st.jobs.len() >= self.capacity {
            return Err(SubmitError::Full(lines));
        }
        Ok(self.enqueue_locked(st, JobPayload::Frame(lines), 1))
    }

    /// [`Hub::try_submit`] with a caller completion-routing token: the
    /// frame's [`RoutedBatch`] carries `token` back verbatim, so a
    /// serving dispatcher can fan the completion to the owning
    /// connection without a side table. `0` means "untagged".
    pub fn try_submit_tagged(&self, lines: Vec<Record>, token: u64) -> Result<u64, SubmitError> {
        let mut st = self.state.lock().unwrap();
        if !st.accepting {
            return Err(SubmitError::Closed(lines));
        }
        if st.jobs.len() >= self.capacity {
            return Err(SubmitError::Full(lines));
        }
        let seq = st.submitted;
        if token != 0 {
            st.tokens.insert(seq, token);
        }
        Ok(self.enqueue_locked(st, JobPayload::Frame(lines), 1))
    }

    /// Non-blocking [`Hub::submit_batch`] with per-frame completion
    /// tokens: frame `f` (seq `first + f`) completes carrying
    /// `tokens[f]`. `tokens` must be empty (all untagged) or exactly
    /// `batch.frames()` long. Rejection hands the whole batch back.
    ///
    /// # Panics
    ///
    /// Panics if the batch is empty or `tokens` has the wrong length.
    pub fn try_submit_batch(
        &self,
        batch: FrameBatch,
        tokens: &[u64],
    ) -> Result<u64, BatchSubmitError> {
        assert!(!batch.is_empty(), "cannot submit an empty batch");
        assert!(
            tokens.is_empty() || tokens.len() == batch.frames(),
            "token slice must be empty or match the batch frame count"
        );
        let frames = batch.frames() as u64;
        let mut st = self.state.lock().unwrap();
        if !st.accepting {
            return Err(BatchSubmitError::Closed(batch));
        }
        if st.jobs.len() >= self.capacity {
            return Err(BatchSubmitError::Full(batch));
        }
        let seq = st.submitted;
        for (f, &token) in tokens.iter().enumerate() {
            if token != 0 {
                st.tokens.insert(seq + f as u64, token);
            }
        }
        Ok(self.enqueue_locked(st, JobPayload::Batch(batch), frames))
    }

    fn enqueue_locked(
        &self,
        mut st: std::sync::MutexGuard<'_, HubState>,
        payload: JobPayload,
        seqs: u64,
    ) -> u64 {
        // A submit into a fully idle hub (everything previously submitted
        // already drained) starts a fresh wave: reset the slice-task high
        // water so `EngineStats` reports the current wave's depth, not a
        // stale maximum from an earlier burst on a reused engine.
        if st.next_drain == st.submitted {
            st.task_queue_high_water = 0;
        }
        let seq = st.submitted;
        st.submitted += seqs;
        st.jobs.push_back(Job {
            seq,
            payload,
            submitted_at: Instant::now(),
        });
        st.queue_high_water = st.queue_high_water.max(st.jobs.len());
        drop(st);
        self.work_cv.notify_one();
        seq
    }

    /// Rejects all future submissions while letting in-flight work drain.
    /// Wakes any submitter blocked on queue space (it will hit the
    /// `submit` contract panic rather than deadlock).
    pub fn stop_accepting(&self) {
        let mut st = self.state.lock().unwrap();
        st.accepting = false;
        drop(st);
        self.space_cv.notify_all();
    }

    /// Pops the next routed batch in submission order, blocking while one
    /// is outstanding. Returns `None` when every submitted batch has been
    /// drained.
    pub fn drain(&self) -> Option<RoutedBatch> {
        let mut st = self.state.lock().unwrap();
        loop {
            let next = st.next_drain;
            if let Some(batch) = st.completed.remove(&next) {
                st.next_drain += 1;
                return Some(batch);
            }
            if st.next_drain == st.submitted {
                return None;
            }
            st = self.done_cv.wait(st).unwrap();
        }
    }

    /// Non-blocking [`Self::drain`]: `None` if the next batch in order is
    /// not finished yet (or nothing is outstanding).
    pub fn try_drain(&self) -> Option<RoutedBatch> {
        let mut st = self.state.lock().unwrap();
        let next = st.next_drain;
        let batch = st.completed.remove(&next)?;
        st.next_drain += 1;
        Some(batch)
    }

    /// Publishes a finished batch and updates the counters. The caller
    /// wraps routing failures into the appropriate [`EngineError`]
    /// variant ([`EngineError::batch`] on the normal path,
    /// [`EngineError::quarantined`] on the faulted-retry path), so the
    /// drained batch carries the full batch-level cause chain.
    pub fn finish(
        &self,
        seq: u64,
        submitted_at: Instant,
        result: Result<Vec<Record>, EngineError>,
    ) {
        let latency_ns = submitted_at.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64;
        let mut st = self.state.lock().unwrap();
        st.batches += 1;
        match &result {
            Ok(lines) => st.records += lines.len() as u64,
            Err(_) => st.errors += 1,
        }
        st.histogram.record(latency_ns);
        // Split the latency at the worker-pickup stamp taken in
        // `next_work`. Batch jobs finish once per frame against one meta
        // entry keyed by the job's first seq, hence the range lookup.
        let (queue_ns, drained_meta) = match st.meta.range_mut(..=seq).next_back() {
            Some((&first, m)) if seq < first + m.frames => {
                m.remaining -= 1;
                (m.queue_ns, (m.remaining == 0).then_some(first))
            }
            _ => (0, None),
        };
        if let Some(first) = drained_meta {
            st.meta.remove(&first);
        }
        let queue_ns = queue_ns.min(latency_ns);
        let token = st.tokens.remove(&seq).unwrap_or(0);
        st.completed.insert(
            seq,
            RoutedBatch {
                seq,
                result,
                queue_ns,
                route_ns: latency_ns - queue_ns,
                token,
            },
        );
        drop(st);
        self.done_cv.notify_all();
    }

    /// Pushes slice tasks produced by a split and wakes helpers.
    pub fn push_task(&self, task: SliceTask) {
        let mut st = self.state.lock().unwrap();
        st.tasks.push_back(task);
        st.task_queue_high_water = st.task_queue_high_water.max(st.tasks.len());
        drop(st);
        self.work_cv.notify_one();
    }

    /// Pops a task if one is queued (used by owners helping while they
    /// wait on their latch).
    pub fn try_pop_task(&self) -> Option<SliceTask> {
        self.state.lock().unwrap().tasks.pop_front()
    }

    /// Blocks until work (task preferred, then job) or close-with-empty-
    /// queues. `None` means the worker should exit.
    pub fn next_work(&self) -> Option<Work> {
        let mut st = self.state.lock().unwrap();
        loop {
            if let Some(t) = st.tasks.pop_front() {
                return Some(Work::Task(t));
            }
            if let Some(j) = st.jobs.pop_front() {
                // The job leaves the queue here: stamp its queue wait and
                // park it in the meta table so `finish` can split the
                // submit-to-publish latency into wait + route.
                let queue_ns = j
                    .submitted_at
                    .elapsed()
                    .as_nanos()
                    .min(u128::from(u64::MAX)) as u64;
                st.wait_histogram.record(queue_ns);
                let frames = match &j.payload {
                    JobPayload::Frame(_) => 1,
                    JobPayload::Batch(b) => b.frames() as u64,
                };
                st.meta.insert(
                    j.seq,
                    JobMeta {
                        frames,
                        queue_ns,
                        remaining: frames,
                    },
                );
                drop(st);
                self.space_cv.notify_one();
                return Some(Work::Job(j));
            }
            if st.closed {
                return None;
            }
            st = self.work_cv.wait(st).unwrap();
        }
    }

    /// Closes the hub: workers drain all queued work, then exit. Blocked
    /// submitters are not expected (close happens after the user closure
    /// returns).
    pub fn close(&self) {
        let mut st = self.state.lock().unwrap();
        st.closed = true;
        drop(st);
        self.work_cv.notify_all();
        self.space_cv.notify_all();
        self.done_cv.notify_all();
    }

    /// Runs `f` with the locked state (stats snapshots).
    pub fn with_state<R>(&self, f: impl FnOnce(&HubState) -> R) -> R {
        f(&self.state.lock().unwrap())
    }
}

/// One unit of work handed to a worker.
pub(crate) enum Work {
    Task(SliceTask),
    Job(Job),
}

/// Closes the hub on drop, so worker threads exit even if the user
/// closure panics (otherwise the surrounding `thread::scope` would never
/// join).
pub(crate) struct CloseGuard<'a>(pub &'a Hub);

impl Drop for CloseGuard<'_> {
    fn drop(&mut self) {
        self.0.close();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unbalanced_at(main_stage: usize, internal_stage: usize, first_line: usize) -> RouteError {
        RouteError::UnbalancedSplitter {
            main_stage,
            internal_stage,
            first_line,
            width: 2,
            ones: 2,
        }
    }

    /// `fail` keeps the earliest sequential-scan site regardless of the
    /// order slice errors arrive in.
    #[test]
    fn fail_keeps_lowest_ranked_site_not_first_arrival() {
        let latch = JobLatch::new(4);
        latch.fail(unbalanced_at(2, 0, 0));
        latch.fail(unbalanced_at(1, 3, 12));
        latch.fail(unbalanced_at(1, 3, 4));
        latch.fail(unbalanced_at(1, 3, 4)); // tie: first stays
        assert!(latch.is_done());
        assert_eq!(latch.take_error(), Some(unbalanced_at(1, 3, 4)));
    }

    /// `finish` splits the submit-to-publish latency at the worker-pickup
    /// stamp taken in `next_work`, and the pickup records one queue-wait
    /// sample.
    #[test]
    fn finish_splits_latency_at_worker_pickup() {
        let hub = Hub::new(4);
        let seq = hub.submit(Vec::new());
        std::thread::sleep(Duration::from_millis(2));
        let Some(Work::Job(job)) = hub.next_work() else {
            panic!("submitted job must be next");
        };
        assert_eq!(job.seq, seq);
        std::thread::sleep(Duration::from_millis(1));
        hub.finish(job.seq, job.submitted_at, Ok(Vec::new()));
        let batch = hub.try_drain().expect("finished batch drains");
        assert!(
            batch.queue_ns >= 2_000_000,
            "queue wait covers the pre-pickup sleep, got {}",
            batch.queue_ns
        );
        assert!(
            batch.route_ns >= 1_000_000,
            "route covers the post-pickup sleep, got {}",
            batch.route_ns
        );
        hub.with_state(|st| {
            assert_eq!(st.wait_histogram.count(), 1);
            assert_eq!(st.histogram.count(), 1);
            assert!(st.wait_histogram.max_ns() <= st.histogram.max_ns());
        });
    }

    /// A batch job's frames all inherit the job's single queue-wait
    /// stamp, and the meta table empties once the last frame finishes.
    #[test]
    fn batch_frames_share_one_queue_stamp() {
        use bnb_core::batch::FrameBatch;
        let hub = Hub::new(4);
        let mut batch = FrameBatch::new(2);
        batch.push_frame(&[Record::new(0, 0), Record::new(1, 1)]);
        batch.push_frame(&[Record::new(1, 0), Record::new(0, 1)]);
        let seq = hub.submit_batch(batch);
        std::thread::sleep(Duration::from_millis(2));
        let Some(Work::Job(job)) = hub.next_work() else {
            panic!("submitted batch must be next");
        };
        for f in 0..2 {
            hub.finish(seq + f, job.submitted_at, Ok(Vec::new()));
        }
        let first = hub.try_drain().expect("frame 0 drains");
        let second = hub.try_drain().expect("frame 1 drains");
        assert!(first.queue_ns >= 2_000_000);
        assert_eq!(first.queue_ns, second.queue_ns, "one stamp per job");
        hub.with_state(|st| {
            assert_eq!(st.wait_histogram.count(), 1, "one sample per job");
            assert!(st.meta.is_empty(), "meta drained with the last frame");
        });
    }

    /// A reset latch behaves like a fresh one (per-worker reuse).
    #[test]
    fn reset_rearms_a_drained_latch() {
        let latch = JobLatch::new(1);
        latch.fail(unbalanced_at(0, 0, 0));
        assert!(latch.is_done());
        latch.reset(2);
        assert!(!latch.is_done());
        assert_eq!(latch.take_error(), None, "reset clears the stored error");
        latch.complete_one();
        latch.add_one();
        latch.complete_one();
        assert!(!latch.is_done());
        latch.complete_one();
        assert!(latch.is_done());
    }
}
