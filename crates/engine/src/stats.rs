//! Engine throughput and latency accounting.
//!
//! The latency histogram types live in `bnb-obs` (shared with the
//! observability sinks) and are re-exported here for compatibility:
//! latency is tracked in a fixed array of 64 power-of-two nanosecond
//! buckets — constant memory, no per-sample allocation, and quantiles in
//! one pass.

use serde::{Deserialize, Serialize};

pub use bnb_obs::{LatencyHistogram, LatencySummary, HISTOGRAM_BUCKETS};

/// Per-worker activity counters, one entry per pool thread.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct WorkerMetrics {
    /// Worker index within the pool.
    pub worker: usize,
    /// Time spent routing (task + batch processing), in ns.
    pub busy_ns: u64,
    /// Busy fraction of the engine's wall-clock lifetime.
    pub utilization: f64,
    /// Batches this worker owned end-to-end.
    pub jobs_owned: u64,
    /// Subnetwork slice tasks this worker took off the shared queue
    /// (its own batches' or another owner's).
    pub tasks_stolen: u64,
}

/// A snapshot of engine counters, taken by
/// [`crate::engine::EngineHandle::stats`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EngineStats {
    /// Worker threads in the pool.
    pub workers: usize,
    /// Subnetwork sharding depth actually used (`2^depth` slices per
    /// batch).
    pub shard_depth: usize,
    /// Batches fully routed (including failed ones).
    pub batches: u64,
    /// Records in successfully routed batches.
    pub records: u64,
    /// Batches that failed validation or routing.
    pub errors: u64,
    /// Wall-clock time since the engine started.
    pub elapsed_ns: u64,
    /// Completed batches per wall-clock second.
    pub batches_per_sec: f64,
    /// Routed records per wall-clock second.
    pub records_per_sec: f64,
    /// Submit-to-completion latency quantiles.
    pub latency: LatencySummary,
    /// Full latency histogram (power-of-two ns buckets).
    pub histogram: LatencyHistogram,
    /// Batches sitting in the bounded submission queue right now.
    pub queue_depth: usize,
    /// Deepest the bounded submission queue ever got.
    pub queue_high_water: usize,
    /// Queue-wait latency quantiles (submit to worker pickup), one
    /// sample per job; subtracting it from [`Self::latency`] isolates
    /// routing proper.
    pub wait_latency: LatencySummary,
    /// Deepest the shared slice-task queue got during the current
    /// submission wave (reset when a batch is submitted into a fully
    /// idle engine, so reused engines report per-wave depth).
    pub task_queue_high_water: usize,
    /// Per-worker time spent routing (task + batch processing), in ns.
    pub worker_busy_ns: Vec<u64>,
    /// Per-worker busy fraction of the engine's wall-clock lifetime.
    pub worker_utilization: Vec<f64>,
    /// Per-worker activity breakdown (busy time, jobs owned, slice tasks
    /// taken from the shared queue).
    pub worker_metrics: Vec<WorkerMetrics>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_types_are_the_obs_types() {
        // The re-export must stay pointed at bnb-obs so engine stats and
        // observability sinks share one histogram layout.
        let mut from_engine: LatencyHistogram = bnb_obs::LatencyHistogram::new();
        from_engine.record(42);
        let summary: bnb_obs::LatencySummary = LatencySummary::from_histogram(&from_engine);
        assert_eq!(summary.min_ns, 42);
        assert_eq!(HISTOGRAM_BUCKETS, bnb_obs::HISTOGRAM_BUCKETS);
    }

    #[test]
    fn worker_metrics_serde_round_trips() {
        let w = WorkerMetrics {
            worker: 1,
            busy_ns: 12_345,
            utilization: 0.75,
            jobs_owned: 10,
            tasks_stolen: 3,
        };
        let json = serde_json::to_string(&w).unwrap();
        let back: WorkerMetrics = serde_json::from_str(&json).unwrap();
        assert_eq!(back, w);
    }
}
