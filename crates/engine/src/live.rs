//! Live fabric repair: mutable per-shard fault state and the background
//! scrubber behind [`Engine::run_scrubbed`](crate::Engine::run_scrubbed).
//!
//! A [`LiveFaultPlan`] is the mutable sibling of
//! [`FaultPlan`](crate::FaultPlan): each fabric shard owns a
//! [`FaultMap`] behind a lock plus a [`ShardHealth`] word, and faults can
//! be injected or cleared *while the engine is routing* — the chaos
//! campaign's core primitive. Workers prefer healthy shards, demote a
//! shard to [`ShardHealth::Suspect`] the moment traffic trips its output
//! balance check (Theorem 3's built-in detector), and fall back to
//! round-robin when no healthy shard remains so submit/drain never
//! pauses.
//!
//! The scrubber thread probes every non-healthy shard between drains with
//! seeded test permutations: a dirty probe confirms the fault and
//! quarantines the shard ([`RepairEvent`] with `restored: false`); enough
//! consecutive clean probes (a cleared transient) restore it to service
//! ([`RepairEvent`] with `restored: true`). Every probe emits a
//! [`ScrubEvent`], so counters and flight recorders see the repair loop
//! breathing. All probe permutations derive from the plan's seed — a
//! campaign re-run with the same seed probes identically.

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, AtomicUsize, Ordering};
use std::sync::RwLock;
use std::time::Duration;

use bnb_core::error::RouteError;
use bnb_core::fault::{FaultKind, FaultMap, FaultSite, FaultyFabric, HardwareFault};
use bnb_core::network::BnbNetwork;
use bnb_obs::{Observer, RepairEvent, ScrubEvent};
use bnb_topology::perm::Permutation;
use bnb_topology::record::records_for_permutation;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use crate::engine::RetryPolicy;

/// A fabric shard's place in the repair state machine.
///
/// ```text
/// Healthy --traffic detects fault--> Suspect --dirty probe--> Quarantined
///    ^                                  |                         |
///    +----- clean-probe streak ---------+-------------------------+
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum ShardHealth {
    /// In service: workers route traffic through it.
    Healthy = 0,
    /// Traffic detected a hardware fault; workers avoid it while the
    /// scrubber decides.
    Suspect = 1,
    /// The scrubber confirmed the fault; out of service until a
    /// clean-probe streak restores it.
    Quarantined = 2,
}

impl ShardHealth {
    fn from_u8(v: u8) -> Self {
        match v {
            0 => ShardHealth::Healthy,
            1 => ShardHealth::Suspect,
            _ => ShardHealth::Quarantined,
        }
    }

    /// The state's operator-facing label (used by `/status` and `bnb top`).
    pub fn name(self) -> &'static str {
        match self {
            ShardHealth::Healthy => "healthy",
            ShardHealth::Suspect => "suspect",
            ShardHealth::Quarantined => "quarantined",
        }
    }
}

/// One fabric shard's live state.
#[derive(Debug)]
struct ShardState {
    faults: RwLock<FaultMap>,
    health: AtomicU8,
    clean_streak: AtomicUsize,
    probe_round: AtomicU64,
}

impl ShardState {
    fn new(faults: FaultMap) -> Self {
        ShardState {
            faults: RwLock::new(faults),
            health: AtomicU8::new(ShardHealth::Healthy as u8),
            clean_streak: AtomicUsize::new(0),
            probe_round: AtomicU64::new(0),
        }
    }
}

/// Mutable per-shard fault assignment for
/// [`Engine::run_scrubbed`](crate::Engine::run_scrubbed).
///
/// Unlike [`FaultPlan`](crate::FaultPlan), which is fixed for the run, a
/// `LiveFaultPlan` is shared by reference between the routing workers,
/// the scrubber thread, and any chaos driver injecting or clearing
/// faults concurrently. All mutation is internally synchronized; the
/// plan itself is `Sync`.
#[derive(Debug)]
pub struct LiveFaultPlan {
    shards: Vec<ShardState>,
    retry: RetryPolicy,
    probe_seed: u64,
    probe_perms: usize,
    restore_after: usize,
    scrub_interval: Duration,
}

impl LiveFaultPlan {
    /// A plan with `shards` healthy fabric shards (minimum 1) and the
    /// default retry policy, probe seed 0, 4 permutations per probe, 3
    /// consecutive clean probes to restore, and a 50µs scrub interval.
    pub fn healthy(shards: usize) -> Self {
        LiveFaultPlan {
            shards: (0..shards.max(1))
                .map(|_| ShardState::new(FaultMap::new()))
                .collect(),
            retry: RetryPolicy::default(),
            probe_seed: 0,
            probe_perms: 4,
            restore_after: 3,
            scrub_interval: Duration::from_micros(50),
        }
    }

    /// Replaces the retry policy.
    pub fn with_retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// Seeds every scrubber probe permutation (same seed, same probes —
    /// campaigns replay deterministically).
    pub fn with_probe_seed(mut self, seed: u64) -> Self {
        self.probe_seed = seed;
        self
    }

    /// Test permutations routed per probe (minimum 1). More permutations
    /// catch faults that only some traffic patterns excite.
    pub fn with_probe_perms(mut self, perms: usize) -> Self {
        self.probe_perms = perms.max(1);
        self
    }

    /// Consecutive clean probes required to restore a shard (minimum 1).
    pub fn with_restore_after(mut self, probes: usize) -> Self {
        self.restore_after = probes.max(1);
        self
    }

    /// Sleep between scrubber sweeps over the shards.
    pub fn with_scrub_interval(mut self, interval: Duration) -> Self {
        self.scrub_interval = interval;
        self
    }

    /// Number of fabric shards.
    pub fn shards(&self) -> usize {
        self.shards.len()
    }

    /// The retry policy.
    pub fn retry(&self) -> &RetryPolicy {
        &self.retry
    }

    /// The probe seed.
    pub fn probe_seed(&self) -> u64 {
        self.probe_seed
    }

    /// Injects one fault into shard `i`'s live fault map (wrapping).
    /// Routing picks it up on the next attempt; detection is left to
    /// traffic and the scrubber, exactly like real hardware.
    pub fn inject(&self, i: usize, site: FaultSite, kind: FaultKind) {
        let shard = &self.shards[i % self.shards.len()];
        shard
            .faults
            .write()
            .expect("fault map lock")
            .insert(site, kind);
    }

    /// Clears every fault on shard `i` (a transient passing). The shard
    /// stays quarantined until the scrubber's clean-probe streak restores
    /// it.
    pub fn clear(&self, i: usize) {
        let shard = &self.shards[i % self.shards.len()];
        shard.faults.write().expect("fault map lock").clear();
    }

    /// Replaces shard `i`'s fault map wholesale.
    pub fn set_faults(&self, i: usize, faults: FaultMap) {
        let shard = &self.shards[i % self.shards.len()];
        *shard.faults.write().expect("fault map lock") = faults;
    }

    /// A point-in-time copy of shard `i`'s fault map.
    pub fn faults_snapshot(&self, i: usize) -> FaultMap {
        self.shards[i % self.shards.len()]
            .faults
            .read()
            .expect("fault map lock")
            .clone()
    }

    /// Shard `i`'s current repair state.
    pub fn health(&self, i: usize) -> ShardHealth {
        ShardHealth::from_u8(
            self.shards[i % self.shards.len()]
                .health
                .load(Ordering::Acquire),
        )
    }

    /// Shards currently in service.
    pub fn healthy_shards(&self) -> usize {
        (0..self.shards.len())
            .filter(|&i| self.health(i) == ShardHealth::Healthy)
            .count()
    }

    /// Whether any shard is out of service.
    pub fn is_degraded(&self) -> bool {
        self.healthy_shards() < self.shards.len()
    }

    /// A serializable point-in-time snapshot of every shard's health and
    /// fault map, for the serving layer's `/status` endpoint and any
    /// other operator surface.
    pub fn status(&self) -> PlanStatus {
        let shards: Vec<ShardStatus> = (0..self.shards.len())
            .map(|i| ShardStatus {
                shard: i,
                health: self.health(i).name().to_string(),
                clean_streak: self.shards[i].clean_streak.load(Ordering::Acquire),
                faults: self.faults_snapshot(i).iter().copied().collect(),
            })
            .collect();
        PlanStatus {
            healthy: self.healthy_shards(),
            degraded: self.is_degraded(),
            shards,
        }
    }

    /// The shard attempt `attempt` of `worker`'s batch routes on: the
    /// first healthy shard in round-robin order from `worker + attempt`,
    /// or plain round-robin when nothing is healthy (the engine keeps
    /// trying rather than stalling — a later attempt or a repair may
    /// still land).
    pub(crate) fn pick_shard(&self, worker: usize, attempt: usize) -> usize {
        let count = self.shards.len();
        for offset in 0..count {
            let i = (worker + attempt + offset) % count;
            if self.health(i) == ShardHealth::Healthy {
                return i;
            }
        }
        (worker + attempt) % count
    }

    /// Traffic hit a hardware fault on shard `i`: demote `Healthy` to
    /// `Suspect` (the scrubber takes it from there) and void any clean
    /// streak. Quarantined shards stay quarantined.
    pub(crate) fn mark_suspect(&self, i: usize) {
        let shard = &self.shards[i % self.shards.len()];
        shard.clean_streak.store(0, Ordering::Release);
        let _ = shard.health.compare_exchange(
            ShardHealth::Healthy as u8,
            ShardHealth::Suspect as u8,
            Ordering::AcqRel,
            Ordering::Acquire,
        );
    }

    /// A dirty probe on shard `i`: quarantine it. Returns `true` on the
    /// transition into `Quarantined` (emit the repair event exactly once).
    fn quarantine(&self, i: usize) -> bool {
        let shard = &self.shards[i];
        shard.clean_streak.store(0, Ordering::Release);
        shard
            .health
            .swap(ShardHealth::Quarantined as u8, Ordering::AcqRel)
            != ShardHealth::Quarantined as u8
    }

    /// A clean probe on shard `i`: bump and return the streak.
    fn record_clean(&self, i: usize) -> usize {
        self.shards[i].clean_streak.fetch_add(1, Ordering::AcqRel) + 1
    }

    /// The streak reached the restore threshold: return shard `i` to
    /// service. Returns `true` if it was out of service.
    fn restore(&self, i: usize) -> bool {
        let shard = &self.shards[i];
        shard.clean_streak.store(0, Ordering::Release);
        shard
            .health
            .swap(ShardHealth::Healthy as u8, Ordering::AcqRel)
            != ShardHealth::Healthy as u8
    }

    fn next_probe_round(&self, i: usize) -> u64 {
        self.shards[i].probe_round.fetch_add(1, Ordering::Relaxed)
    }
}

/// One shard's entry in a [`PlanStatus`] snapshot.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ShardStatus {
    /// Shard index.
    pub shard: usize,
    /// Health label: `"healthy"`, `"suspect"`, or `"quarantined"`.
    pub health: String,
    /// Consecutive clean scrubber probes so far.
    pub clean_streak: usize,
    /// The shard's live fault map.
    pub faults: Vec<HardwareFault>,
}

/// A serializable snapshot of a [`LiveFaultPlan`], from
/// [`LiveFaultPlan::status`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlanStatus {
    /// Shards currently in service.
    pub healthy: usize,
    /// Whether any shard is out of service.
    pub degraded: bool,
    /// Per-shard health and fault maps, in shard order.
    pub shards: Vec<ShardStatus>,
}

/// The scrubber: sweeps every non-healthy shard, probing it with seeded
/// test permutations on a private [`FaultyFabric`] (probes never touch
/// the traffic path and their detections do not count as traffic faults).
/// Runs until `stop` is set by the engine scope winding down.
pub(crate) fn scrubber_loop<O: Observer>(
    stop: &AtomicBool,
    net: BnbNetwork,
    plan: &LiveFaultPlan,
    observer: &O,
) {
    let observing = observer.enabled();
    let n = net.inputs();
    let mut fabric = FaultyFabric::new(net, FaultMap::new());
    let mut lines = Vec::with_capacity(n);
    while !stop.load(Ordering::Acquire) {
        for shard in 0..plan.shards() {
            if plan.health(shard) == ShardHealth::Healthy {
                continue;
            }
            fabric.set_faults(plan.faults_snapshot(shard));
            let round = plan.next_probe_round(shard);
            // Distinct, reproducible stream per (seed, shard, round).
            let mut rng = StdRng::seed_from_u64(
                plan.probe_seed()
                    ^ (shard as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15)
                    ^ round.wrapping_mul(0x2545_f491_4f6c_dd1d),
            );
            let mut clean = true;
            for _ in 0..plan.probe_perms {
                lines.clear();
                lines.extend(records_for_permutation(&Permutation::random(n, &mut rng)));
                if matches!(
                    fabric.route_in_place(&mut lines),
                    Err(RouteError::HardwareFault { .. })
                ) {
                    clean = false;
                    break;
                }
            }
            if clean {
                let streak = plan.record_clean(shard);
                if observing {
                    observer.shard_scrubbed(ScrubEvent {
                        shard,
                        clean: true,
                        streak,
                    });
                }
                if streak >= plan.restore_after && plan.restore(shard) && observing {
                    observer.shard_repaired(RepairEvent {
                        shard,
                        restored: true,
                    });
                }
            } else {
                if observing {
                    observer.shard_scrubbed(ScrubEvent {
                        shard,
                        clean: false,
                        streak: 0,
                    });
                }
                if plan.quarantine(shard) && observing {
                    observer.shard_repaired(RepairEvent {
                        shard,
                        restored: false,
                    });
                }
            }
        }
        if plan.scrub_interval.is_zero() {
            std::thread::yield_now();
        } else {
            std::thread::sleep(plan.scrub_interval);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bnb_obs::Counters;

    fn stuck(site: (usize, usize, usize)) -> (FaultSite, FaultKind) {
        (
            FaultSite::new(site.0, site.1, site.2),
            FaultKind::StuckExchange,
        )
    }

    #[test]
    fn health_state_machine_transitions() {
        let plan = LiveFaultPlan::healthy(3);
        assert_eq!(plan.healthy_shards(), 3);
        assert!(!plan.is_degraded());
        plan.mark_suspect(1);
        assert_eq!(plan.health(1), ShardHealth::Suspect);
        assert_eq!(plan.healthy_shards(), 2);
        assert!(plan.is_degraded());
        assert!(plan.quarantine(1), "first quarantine is a transition");
        assert!(!plan.quarantine(1), "re-quarantine is not");
        assert_eq!(plan.health(1), ShardHealth::Quarantined);
        // A suspect mark cannot resurrect a quarantined shard.
        plan.mark_suspect(1);
        assert_eq!(plan.health(1), ShardHealth::Quarantined);
        assert_eq!(plan.record_clean(1), 1);
        assert_eq!(plan.record_clean(1), 2);
        assert!(plan.restore(1));
        assert!(!plan.restore(1), "already in service");
        assert_eq!(plan.healthy_shards(), 3);
    }

    #[test]
    fn pick_shard_avoids_unhealthy_shards() {
        let plan = LiveFaultPlan::healthy(3);
        assert_eq!(plan.pick_shard(0, 0), 0);
        plan.mark_suspect(0);
        assert_eq!(plan.pick_shard(0, 0), 1, "suspect shard 0 skipped");
        plan.mark_suspect(1);
        assert_eq!(plan.pick_shard(0, 0), 2);
        plan.mark_suspect(2);
        assert_eq!(
            plan.pick_shard(0, 0),
            0,
            "all unhealthy: plain round-robin keeps traffic flowing"
        );
        assert_eq!(plan.pick_shard(0, 1), 1);
        assert!(plan.restore(1));
        assert_eq!(plan.pick_shard(0, 0), 1, "restored shard back in rotation");
    }

    #[test]
    fn fault_edits_are_visible_through_snapshots() {
        let plan = LiveFaultPlan::healthy(2);
        let (site, kind) = stuck((0, 0, 0));
        plan.inject(1, site, kind);
        assert_eq!(plan.faults_snapshot(1).len(), 1);
        assert!(plan.faults_snapshot(0).is_empty());
        plan.clear(1);
        assert!(plan.faults_snapshot(1).is_empty());
        plan.set_faults(0, FaultMap::single(site, kind));
        assert_eq!(plan.faults_snapshot(0).len(), 1);
    }

    #[test]
    fn status_reports_health_and_faults_and_round_trips() {
        let plan = LiveFaultPlan::healthy(2);
        let (site, kind) = stuck((1, 0, 2));
        plan.inject(1, site, kind);
        plan.mark_suspect(1);
        let status = plan.status();
        assert_eq!(status.shards.len(), 2);
        assert_eq!(status.healthy, 1);
        assert!(status.degraded);
        assert_eq!(status.shards[0].health, "healthy");
        assert!(status.shards[0].faults.is_empty());
        assert_eq!(status.shards[1].health, "suspect");
        assert_eq!(status.shards[1].faults.len(), 1);
        assert_eq!(status.shards[1].faults[0].site, site);
        let json = serde_json::to_string(&status).unwrap();
        let back: PlanStatus = serde_json::from_str(&json).unwrap();
        assert_eq!(back, status);
    }

    #[test]
    fn scrubber_quarantines_then_restores_a_transient() {
        let counters = Counters::new();
        let net = BnbNetwork::new(3);
        let plan = LiveFaultPlan::healthy(2)
            .with_probe_seed(7)
            .with_restore_after(2)
            .with_scrub_interval(Duration::ZERO);
        let (site, kind) = stuck((0, 0, 0));
        plan.inject(1, site, kind);
        plan.mark_suspect(1);
        let stop = AtomicBool::new(false);
        std::thread::scope(|s| {
            s.spawn(|| scrubber_loop(&stop, net, &plan, &counters));
            // Quarantine must come first, then the clear must restore.
            let deadline = std::time::Instant::now() + Duration::from_secs(10);
            while plan.health(1) != ShardHealth::Quarantined {
                // A probe round the fault happens not to excite can
                // restore the shard early; traffic would immediately
                // re-suspect it, which this loop stands in for.
                if plan.health(1) == ShardHealth::Healthy {
                    plan.mark_suspect(1);
                }
                assert!(std::time::Instant::now() < deadline, "no quarantine");
                std::thread::yield_now();
            }
            plan.clear(1);
            while plan.health(1) != ShardHealth::Healthy {
                assert!(std::time::Instant::now() < deadline, "no restore");
                std::thread::yield_now();
            }
            stop.store(true, Ordering::Release);
        });
        let snap = counters.snapshot();
        assert!(snap.scrub_probes >= 2, "probes were emitted");
        assert!(snap.shards_quarantined >= 1);
        assert!(snap.shards_restored >= 1);
    }
}
