//! Engine-level errors with a proper `source()` chain.

use std::error::Error;
use std::fmt;

use bnb_core::error::RouteError;

/// A batch-level engine failure wrapping the underlying [`RouteError`].
///
/// Carried by [`crate::RoutedBatch::result`]; walking
/// [`source`](Error::source) reaches the routing failure, so callers (and
/// the CLI) can print the full cause chain instead of one flattened
/// string.
///
/// ```
/// use bnb_core::error::RouteError;
/// use bnb_engine::EngineError;
/// use std::error::Error as _;
///
/// let err = EngineError::batch(7, RouteError::WidthMismatch { expected: 8, actual: 3 });
/// assert_eq!(err.to_string(), "batch 7 failed to route");
/// let cause = err.source().expect("engine errors always have a cause");
/// assert!(cause.to_string().contains("8 inputs"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum EngineError {
    /// A submitted batch failed validation or routing.
    Batch {
        /// The batch's submission sequence number.
        seq: u64,
        /// The routing failure.
        source: RouteError,
    },
    /// A batch that kept hitting hardware faults until its retry budget
    /// was exhausted (the engine's retry-with-quarantine path). `source`
    /// is the [`RouteError::HardwareFault`] from the final attempt, so
    /// walking [`source`](Error::source) reaches the fault site.
    ///
    /// [`RouteError::HardwareFault`]: bnb_core::RouteError::HardwareFault
    Quarantined {
        /// The batch's submission sequence number.
        seq: u64,
        /// Route attempts made (the initial try plus every retry).
        attempts: usize,
        /// The hardware fault detected on the final attempt.
        source: RouteError,
    },
}

impl EngineError {
    /// Wraps a routing failure for batch `seq`.
    pub fn batch(seq: u64, source: RouteError) -> Self {
        EngineError::Batch { seq, source }
    }

    /// Wraps a fault that survived `attempts` tries for batch `seq`.
    pub fn quarantined(seq: u64, attempts: usize, source: RouteError) -> Self {
        EngineError::Quarantined {
            seq,
            attempts,
            source,
        }
    }

    /// The failing batch's sequence number.
    pub fn seq(&self) -> u64 {
        match self {
            EngineError::Batch { seq, .. } | EngineError::Quarantined { seq, .. } => *seq,
        }
    }

    /// The underlying routing failure.
    pub fn route_error(&self) -> &RouteError {
        match self {
            EngineError::Batch { source, .. } | EngineError::Quarantined { source, .. } => source,
        }
    }

    /// Unwraps into the underlying routing failure.
    pub fn into_route_error(self) -> RouteError {
        match self {
            EngineError::Batch { source, .. } | EngineError::Quarantined { source, .. } => source,
        }
    }
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Batch { seq, .. } => write!(f, "batch {seq} failed to route"),
            EngineError::Quarantined { seq, attempts, .. } => write!(
                f,
                "batch {seq} quarantined after {attempts} attempts on faulted fabric"
            ),
        }
    }
}

impl Error for EngineError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            EngineError::Batch { source, .. } | EngineError::Quarantined { source, .. } => {
                Some(source)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn source_chain_reaches_the_route_error() {
        let inner = RouteError::UnbalancedSplitter {
            main_stage: 1,
            internal_stage: 0,
            first_line: 4,
            width: 4,
            ones: 3,
        };
        let err = EngineError::batch(3, inner.clone());
        assert_eq!(err.seq(), 3);
        assert_eq!(err.route_error(), &inner);
        let source = err.source().expect("must expose a source");
        assert_eq!(source.to_string(), inner.to_string());
        assert_eq!(err.into_route_error(), inner);
    }

    #[test]
    fn chain_is_two_deep_for_topology_causes() {
        use bnb_topology::TopologyError;
        let inner: RouteError = TopologyError::NotPowerOfTwo { size: 12 }.into();
        let err = EngineError::batch(0, inner);
        let mut depth = 0;
        let mut cause: &dyn Error = &err;
        while let Some(next) = cause.source() {
            cause = next;
            depth += 1;
        }
        assert_eq!(depth, 2, "EngineError -> RouteError -> TopologyError");
    }

    #[test]
    fn quarantined_chain_carries_the_fault_site() {
        let fault = RouteError::HardwareFault {
            main_stage: 0,
            internal_stage: 1,
            first_line: 4,
            width: 4,
            even_ones: 2,
            odd_ones: 0,
        };
        let err = EngineError::quarantined(9, 3, fault.clone());
        assert_eq!(err.seq(), 9);
        assert_eq!(err.route_error(), &fault);
        assert!(err.to_string().contains("quarantined after 3 attempts"));
        let source = err.source().expect("must expose the fault");
        assert!(source.to_string().contains("hardware fault"));
        assert!(source.to_string().contains("internal stage 1"));
        assert_eq!(err.into_route_error(), fault);
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<EngineError>();
    }
}
