//! The concurrent batched routing engine.
//!
//! # Sharding model
//!
//! A batch is one full frame of `N = 2^m` records. The owning worker
//! validates it (same contract as [`bnb_core::router::Router`]), then
//! routes main stage `0` and splits the frame into its two independent
//! half-subnetworks — the GBN's unshuffle after stage `i` guarantees all
//! later switching stays inside each aligned `2^(m-i-1)`-line half (see
//! [`bnb_core::stages`]). One half is pushed to the hub for any idle
//! worker; the owner recurses into the other. After `depth` splits the
//! frame is `2^depth` disjoint slice tasks routing concurrently, each with
//! the worker's own reusable [`StageScratch`] — zero per-batch allocation
//! in steady state. With no observer attached (the default), every slice
//! takes `bnb-core`'s bit-packed word-parallel kernel, so the engine's
//! per-worker throughput is the packed kernel's, not the scalar sweep's.
//!
//! Because BNB routing is oblivious data movement (every switch setting
//! depends only on local destination bits), the parallel result is
//! byte-identical to the sequential route; debug builds assert this on
//! every batch.
//!
//! # Observability
//!
//! The engine is generic over a [`bnb_obs::Observer`] (defaulting to the
//! zero-cost [`NoopObserver`]). An attached observer sees batch
//! submissions and completions ([`SubmitEvent`]/[`DrainEvent`]), slice
//! hand-offs ([`ShardEvent`] on enqueue and on steal), and — through
//! [`bnb_core::stages::RouteSpan`] — every routed column and arbiter
//! sweep. Attach with [`Engine::with_observer`]; the noop path compiles
//! to the same code as before the hooks existed.
//!
//! # Batched submission
//!
//! [`EngineHandle::submit_batch`] feeds a whole
//! [`bnb_core::batch::FrameBatch`] to one worker, which routes every
//! frame in a single batched-kernel invocation
//! ([`bnb_core::batch::route_batch`]) and publishes one in-order result
//! per frame. This keeps every SWAR word of the routing kernel fully
//! occupied regardless of network size, where per-frame submission leaves
//! `64 - 2^m` of 64 lanes idle for small networks.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use bnb_core::batch::{route_batch, BatchOutcome, FrameBatch};
use bnb_core::error::RouteError;
use bnb_core::fault::FaultMap;
use bnb_core::network::BnbNetwork;
use bnb_core::stages::{validate_lines, RouteSpan, StageScratch};
use bnb_obs::{DrainEvent, NoopObserver, Observer, RetryEvent, ShardEvent, SubmitEvent};
use bnb_topology::record::Record;

use crate::error::EngineError;
use crate::hub::{CloseGuard, Hub, JobLatch, JobPayload, SliceTask, Work};
use crate::live::{scrubber_loop, LiveFaultPlan};
use crate::stats::{EngineStats, LatencySummary, WorkerMetrics};

pub use crate::hub::{BatchSubmitError, RoutedBatch, SubmitError};

/// How deep to split each batch into independent subnetwork slices.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ShardDepth {
    /// `ceil(log2(workers))` splits — one slice per worker, no splitting
    /// for a single worker.
    #[default]
    Auto,
    /// Exactly this many splits (`2^d` slices), clamped to `m`.
    Fixed(usize),
}

/// Engine construction parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EngineConfig {
    /// Worker threads (minimum 1).
    pub workers: usize,
    /// Bounded submission-queue capacity; `submit` blocks when this many
    /// batches are waiting (minimum 1).
    pub queue_capacity: usize,
    /// Intra-batch sharding policy.
    pub shard_depth: ShardDepth,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            workers: 1,
            queue_capacity: 4,
            shard_depth: ShardDepth::Auto,
        }
    }
}

impl EngineConfig {
    /// A config with `workers` threads and defaults elsewhere.
    pub fn with_workers(workers: usize) -> Self {
        EngineConfig {
            workers,
            ..Self::default()
        }
    }
}

/// Retry budget for batches hitting hardware faults in
/// [`Engine::run_faulted`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total route attempts per batch (the initial try plus retries,
    /// minimum 1).
    pub max_attempts: usize,
    /// Base backoff slept before retry `k` is `backoff * 2^(k-1)`
    /// (exponential; `Duration::ZERO` disables sleeping).
    pub backoff: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 3,
            backoff: Duration::from_micros(50),
        }
    }
}

/// Per-fabric-shard fault assignment for [`Engine::run_faulted`]: shard
/// `i` routes through `FaultMap` `i`, and a batch that detects a hardware
/// fault is retried on the next shard (round-robin) under the
/// [`RetryPolicy`].
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    shards: Vec<FaultMap>,
    retry: RetryPolicy,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan::healthy(1)
    }
}

impl FaultPlan {
    /// A plan with one fault map per fabric shard.
    ///
    /// # Panics
    ///
    /// Panics if `shards` is empty.
    pub fn new(shards: Vec<FaultMap>, retry: RetryPolicy) -> Self {
        assert!(!shards.is_empty(), "a fault plan needs at least one shard");
        FaultPlan { shards, retry }
    }

    /// Every shard healthy (routing is then identical to [`Engine::run`]).
    pub fn healthy(shards: usize) -> Self {
        FaultPlan::new(vec![FaultMap::new(); shards.max(1)], RetryPolicy::default())
    }

    /// The same faults on every shard (no healthy shard to retry onto).
    pub fn uniform(faults: FaultMap, shards: usize) -> Self {
        FaultPlan::new(vec![faults; shards.max(1)], RetryPolicy::default())
    }

    /// Replaces the retry policy.
    pub fn with_retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// Number of fabric shards.
    pub fn shards(&self) -> usize {
        self.shards.len()
    }

    /// Shard `i`'s fault map (wrapping).
    pub fn shard(&self, i: usize) -> &FaultMap {
        &self.shards[i % self.shards.len()]
    }

    /// The retry policy.
    pub fn retry(&self) -> &RetryPolicy {
        &self.retry
    }

    /// Whether every shard is fault-free.
    pub fn is_healthy(&self) -> bool {
        self.shards.iter().all(FaultMap::is_empty)
    }
}

/// A concurrent batched router for one network configuration.
///
/// The engine owns no threads between runs: [`Engine::run`] opens a
/// [`std::thread::scope`], spawns the worker pool, hands the closure an
/// [`EngineHandle`] for submit/drain, and joins every worker before
/// returning — so no `'static` bounds, no detached threads, and worker
/// panics propagate.
///
/// # Example
///
/// ```
/// use bnb_core::network::BnbNetwork;
/// use bnb_engine::{Engine, EngineConfig};
/// use bnb_topology::perm::Permutation;
/// use bnb_topology::record::records_for_permutation;
///
/// let net = BnbNetwork::builder_for(16)?.build();
/// let engine = Engine::new(net, EngineConfig::with_workers(2));
/// let p = Permutation::try_from((0..16).rev().collect::<Vec<_>>())?;
/// let routed = engine.run(|handle| {
///     handle.submit(records_for_permutation(&p));
///     handle.drain().unwrap()
/// });
/// assert_eq!(routed.result.unwrap(), net.route(&records_for_permutation(&p))?);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, Copy)]
pub struct Engine<O: Observer = NoopObserver> {
    network: BnbNetwork,
    config: EngineConfig,
    observer: O,
}

impl Engine {
    /// An engine for `network` with the given pool configuration and no
    /// instrumentation.
    pub fn new(network: BnbNetwork, config: EngineConfig) -> Self {
        Engine::with_observer(network, config, NoopObserver)
    }
}

impl<O: Observer> Engine<O> {
    /// An engine whose workers report events to `observer` (typically
    /// `&bnb_obs::Counters`, or a `&bnb_obs::FlightRecorder` whose
    /// per-thread lanes give each worker its own recording shard, merged
    /// when the recorder's spans are drained; batch sequence numbers act
    /// as trace ids, threading submit → retries → drain together even
    /// through quarantine). All worker threads share the one observer, so
    /// its hooks must be cheap and contention-free.
    pub fn with_observer(network: BnbNetwork, config: EngineConfig, observer: O) -> Self {
        Engine {
            network,
            config,
            observer,
        }
    }

    /// The bound network.
    pub fn network(&self) -> &BnbNetwork {
        &self.network
    }

    /// The configuration this engine runs with.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// The split depth actually used per batch.
    pub fn effective_depth(&self) -> usize {
        let m = self.network.m();
        match self.config.shard_depth {
            ShardDepth::Auto => auto_depth(self.config.workers, m),
            ShardDepth::Fixed(d) => d.min(m),
        }
    }

    /// Spawns the worker pool, runs `f` with a submit/drain handle, then
    /// drains remaining work and joins every worker.
    pub fn run<R>(&self, f: impl FnOnce(&EngineHandle<'_, O>) -> R) -> R {
        let workers = self.config.workers.max(1);
        let depth = self.effective_depth();
        let hub = Hub::new(self.config.queue_capacity);
        let counters: Vec<WorkerCounters> =
            (0..workers).map(|_| WorkerCounters::default()).collect();
        let started = Instant::now();
        let network = self.network;
        let observer = &self.observer;
        thread::scope(|s| {
            let hub_ref = &hub;
            for slot in &counters {
                s.spawn(move || worker_loop(hub_ref, network, depth, slot, observer));
            }
            let handle = EngineHandle {
                hub: &hub,
                counters: &counters,
                workers,
                depth,
                started,
                observer,
            };
            // Closes the hub even if `f` panics, so the scope can join.
            let _guard = CloseGuard(&hub);
            f(&handle)
        })
    }

    /// [`Engine::run`] over damaged hardware: each worker owns a fabric
    /// shard whose [`FaultMap`] comes from `plan`, and a batch that
    /// detects a hardware fault is retried on the next shard
    /// (round-robin) with exponential backoff, up to the plan's
    /// [`RetryPolicy`] budget. Exhausted batches drain as
    /// [`EngineError::Quarantined`] with the fault site in the
    /// [`source`](std::error::Error::source) chain; batches that land on
    /// a healthy (or harmlessly faulted) shard route byte-identically to
    /// the sequential route.
    ///
    /// Faulted mode routes each attempt sequentially on the owning
    /// worker (no intra-batch slice splitting), so which faults a batch
    /// meets depends only on its owner and attempt number — deterministic
    /// per shard assignment, not per scheduling accident. A fully healthy
    /// plan delegates to [`Engine::run`] unchanged.
    pub fn run_faulted<R>(&self, plan: &FaultPlan, f: impl FnOnce(&EngineHandle<'_, O>) -> R) -> R {
        if plan.is_healthy() {
            return self.run(f);
        }
        let workers = self.config.workers.max(1);
        let hub = Hub::new(self.config.queue_capacity);
        let counters: Vec<WorkerCounters> =
            (0..workers).map(|_| WorkerCounters::default()).collect();
        let started = Instant::now();
        let network = self.network;
        let observer = &self.observer;
        thread::scope(|s| {
            let hub_ref = &hub;
            for (worker, slot) in counters.iter().enumerate() {
                s.spawn(move || {
                    worker_loop_faulted(hub_ref, network, slot, observer, plan, worker)
                });
            }
            let handle = EngineHandle {
                hub: &hub,
                counters: &counters,
                workers,
                depth: 0,
                started,
                observer,
            };
            let _guard = CloseGuard(&hub);
            f(&handle)
        })
    }

    /// [`Engine::run_faulted`] with *live* repair: the fault maps in
    /// `plan` may change while the engine routes (a chaos driver
    /// injecting and clearing faults concurrently), workers steer
    /// batches onto healthy fabric shards, and a background scrubber
    /// thread probes suspect shards between drains — quarantining
    /// confirmed faults and restoring capacity when transients clear —
    /// without ever pausing submit/drain.
    ///
    /// The repair loop:
    ///
    /// - A batch attempt that trips the output balance check demotes its
    ///   shard to [`ShardHealth::Suspect`] and retries on the next
    ///   healthy shard under the plan's [`RetryPolicy`]; with no healthy
    ///   shard left, attempts fall back to plain round-robin so traffic
    ///   keeps flowing degraded rather than stalling.
    /// - The scrubber probes every non-healthy shard with seeded test
    ///   permutations on a private fabric. A dirty probe confirms the
    ///   fault ([`bnb_obs::RepairEvent`] with `restored: false`); a
    ///   clean-probe streak returns the shard to service
    ///   ([`bnb_obs::RepairEvent`] with `restored: true`). Every probe
    ///   emits a [`bnb_obs::ScrubEvent`].
    ///
    /// Batches that exhaust the retry budget drain as
    /// [`EngineError::Quarantined`], exactly like [`Engine::run_faulted`];
    /// delivered frames are always correct — the balance check makes
    /// misdelivery detectable, so a fault either surfaces as an error or
    /// the frame routed cleanly (Theorem 3).
    pub fn run_scrubbed<R>(
        &self,
        plan: &LiveFaultPlan,
        f: impl FnOnce(&EngineHandle<'_, O>) -> R,
    ) -> R {
        let workers = self.config.workers.max(1);
        let hub = Hub::new(self.config.queue_capacity);
        let counters: Vec<WorkerCounters> =
            (0..workers).map(|_| WorkerCounters::default()).collect();
        let started = Instant::now();
        let network = self.network;
        let observer = &self.observer;
        let stop = AtomicBool::new(false);
        thread::scope(|s| {
            let hub_ref = &hub;
            let stop_ref = &stop;
            for (worker, slot) in counters.iter().enumerate() {
                s.spawn(move || {
                    worker_loop_scrubbed(hub_ref, network, slot, observer, plan, worker)
                });
            }
            s.spawn(move || scrubber_loop(stop_ref, network, plan, observer));
            let handle = EngineHandle {
                hub: &hub,
                counters: &counters,
                workers,
                depth: 0,
                started,
                observer,
            };
            // Drop order is reverse of declaration: the hub closes first
            // (workers drain and exit), then the scrubber is stopped —
            // both fire even if `f` panics, so the scope always joins.
            let _stop_scrubber = StopGuard(&stop);
            let _guard = CloseGuard(&hub);
            f(&handle)
        })
    }
}

/// Sets the scrubber's stop flag on drop (see [`Engine::run_scrubbed`]).
struct StopGuard<'a>(&'a AtomicBool);

impl Drop for StopGuard<'_> {
    fn drop(&mut self) {
        self.0.store(true, Ordering::Release);
    }
}

/// Submit/drain interface handed to the [`Engine::run`] closure.
pub struct EngineHandle<'a, O: Observer = NoopObserver> {
    hub: &'a Hub,
    counters: &'a [WorkerCounters],
    workers: usize,
    depth: usize,
    started: Instant,
    observer: &'a O,
}

impl<O: Observer> EngineHandle<'_, O> {
    /// Submits one batch (a full frame of records), blocking while the
    /// bounded queue is full. Returns the batch's sequence number;
    /// [`Self::drain`] yields results in sequence order.
    pub fn submit(&self, lines: Vec<Record>) -> u64 {
        let records = lines.len();
        let seq = self.hub.submit(lines);
        if self.observer.enabled() {
            self.observer.batch_submitted(SubmitEvent { seq, records });
        }
        seq
    }

    /// Non-blocking [`Self::submit`]: rejects the batch instead of
    /// waiting when the bounded queue is full
    /// ([`SubmitError::Full`]) or the engine is past
    /// [`Self::drain_and_close`] ([`SubmitError::Closed`]), handing the
    /// records back inside the error. This is the admission-control
    /// primitive: a front door that checks occupancy before offering can
    /// turn `Full` into an explicit `RETRY` instead of blocking a shared
    /// dispatch thread.
    pub fn try_submit(&self, lines: Vec<Record>) -> Result<u64, SubmitError> {
        let records = lines.len();
        let seq = self.hub.try_submit(lines)?;
        if self.observer.enabled() {
            self.observer.batch_submitted(SubmitEvent { seq, records });
        }
        Ok(seq)
    }

    /// [`Self::try_submit`] with a caller completion-routing token: the
    /// frame's [`RoutedBatch`] carries `token` back verbatim. Serving
    /// front-ends key the token by connection so completions fan out to
    /// the owning socket without a shared side table. `0` = untagged.
    pub fn try_submit_tagged(&self, lines: Vec<Record>, token: u64) -> Result<u64, SubmitError> {
        let records = lines.len();
        let seq = self.hub.try_submit_tagged(lines, token)?;
        if self.observer.enabled() {
            self.observer.batch_submitted(SubmitEvent { seq, records });
        }
        Ok(seq)
    }

    /// Non-blocking [`Self::submit_batch`] with per-frame completion
    /// tokens (`tokens[f]` rides back on frame `f`'s [`RoutedBatch`]):
    /// rejects instead of waiting when the bounded queue is full or the
    /// engine is closed, handing the whole batch back inside the error.
    /// `tokens` must be empty or exactly `batch.frames()` long.
    ///
    /// # Panics
    ///
    /// Panics if the batch is empty or `tokens` has the wrong length.
    pub fn try_submit_batch(
        &self,
        batch: FrameBatch,
        tokens: &[u64],
    ) -> Result<u64, BatchSubmitError> {
        let frames = batch.frames() as u64;
        let records = batch.width();
        let seq = self.hub.try_submit_batch(batch, tokens)?;
        if self.observer.enabled() {
            for f in 0..frames {
                self.observer.batch_submitted(SubmitEvent {
                    seq: seq + f,
                    records,
                });
            }
        }
        Ok(seq)
    }

    /// Submits a whole [`FrameBatch`] as one job, blocking while the
    /// bounded queue is full. Reserves one sequence number per frame and
    /// returns the first: frame `f` of the batch drains as `seq + f`, as
    /// its own [`RoutedBatch`], so drain loops need no batch awareness.
    ///
    /// The owning worker routes all frames through `bnb-core`'s batched
    /// word-parallel kernel ([`bnb_core::batch::route_batch`]) in one
    /// invocation — full SWAR word occupancy regardless of `m` — instead
    /// of sharding a single frame across workers. Per-frame validation
    /// failures surface as per-frame [`EngineError`]s; valid frames in the
    /// same batch still route.
    ///
    /// # Panics
    ///
    /// Panics if the batch is empty or the engine is past
    /// [`Self::drain_and_close`].
    pub fn submit_batch(&self, batch: FrameBatch) -> u64 {
        let frames = batch.frames() as u64;
        let records = batch.width();
        let seq = self.hub.submit_batch(batch);
        if self.observer.enabled() {
            for f in 0..frames {
                self.observer.batch_submitted(SubmitEvent {
                    seq: seq + f,
                    records,
                });
            }
        }
        seq
    }

    /// Graceful shutdown: rejects every submission from this point on
    /// (blocking [`Self::submit`] calls panic, [`Self::try_submit`]
    /// returns [`SubmitError::Closed`]), drains every in-flight batch,
    /// and returns them in submission order. After it returns the hub is
    /// empty, so the worker pool joins deterministically as soon as the
    /// [`Engine::run`] closure does — no frame is lost (everything
    /// submitted before the close is in the returned tail or was drained
    /// earlier) and none is double-delivered (each seq drains exactly
    /// once, here or before).
    pub fn drain_and_close(&self) -> Vec<RoutedBatch> {
        self.hub.stop_accepting();
        let mut tail = Vec::new();
        while let Some(batch) = self.hub.drain() {
            tail.push(batch);
        }
        tail
    }

    /// Blocks for the next routed batch in submission order; `None` once
    /// every submitted batch has been drained.
    pub fn drain(&self) -> Option<RoutedBatch> {
        self.hub.drain()
    }

    /// Non-blocking [`Self::drain`].
    pub fn try_drain(&self) -> Option<RoutedBatch> {
        self.hub.try_drain()
    }

    /// A snapshot of the engine counters.
    pub fn stats(&self) -> EngineStats {
        let elapsed_ns = self.started.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64;
        let secs = (elapsed_ns as f64 / 1e9).max(1e-9);
        let worker_metrics: Vec<WorkerMetrics> = self
            .counters
            .iter()
            .enumerate()
            .map(|(worker, c)| {
                let busy_ns = c.busy_ns.load(Ordering::Relaxed);
                WorkerMetrics {
                    worker,
                    busy_ns,
                    utilization: (busy_ns as f64 / elapsed_ns.max(1) as f64).min(1.0),
                    jobs_owned: c.jobs_owned.load(Ordering::Relaxed),
                    tasks_stolen: c.tasks_stolen.load(Ordering::Relaxed),
                }
            })
            .collect();
        let worker_busy_ns: Vec<u64> = worker_metrics.iter().map(|w| w.busy_ns).collect();
        let worker_utilization: Vec<f64> = worker_metrics.iter().map(|w| w.utilization).collect();
        self.hub.with_state(|st| EngineStats {
            workers: self.workers,
            shard_depth: self.depth,
            batches: st.batches,
            records: st.records,
            errors: st.errors,
            elapsed_ns,
            batches_per_sec: st.batches as f64 / secs,
            records_per_sec: st.records as f64 / secs,
            latency: LatencySummary::from_histogram(&st.histogram),
            histogram: st.histogram.clone(),
            queue_depth: st.jobs.len(),
            queue_high_water: st.queue_high_water,
            wait_latency: LatencySummary::from_histogram(&st.wait_histogram),
            task_queue_high_water: st.task_queue_high_water,
            worker_busy_ns: worker_busy_ns.clone(),
            worker_utilization,
            worker_metrics: worker_metrics.clone(),
        })
    }
}

/// Per-worker activity counters, read by [`EngineHandle::stats`] while the
/// worker is still running (hence atomics, relaxed throughout).
#[derive(Default)]
struct WorkerCounters {
    busy_ns: AtomicU64,
    jobs_owned: AtomicU64,
    tasks_stolen: AtomicU64,
}

/// One-per-worker routing state, reused across every job and task the
/// worker touches. The latch is rearmed for each job this worker owns, so
/// even batch coordination allocates nothing in steady state.
struct WorkerCtx {
    scratch: StageScratch,
    seen: Vec<usize>,
    latch: Arc<JobLatch>,
    /// Per-frame results of owned batch jobs, reused across batches.
    outcome: BatchOutcome,
}

/// `ceil(log2(workers))`, clamped so slices never shrink below one line.
fn auto_depth(workers: usize, m: usize) -> usize {
    if workers <= 1 {
        return 0;
    }
    let log = usize::BITS - (workers - 1).leading_zeros();
    (log as usize).min(m)
}

fn worker_loop<O: Observer>(
    hub: &Hub,
    net: BnbNetwork,
    depth: usize,
    counters: &WorkerCounters,
    observer: &O,
) {
    let observing = observer.enabled();
    let mut ctx = WorkerCtx {
        scratch: StageScratch::with_capacity(net.inputs()),
        seen: Vec::new(),
        latch: Arc::new(JobLatch::new(0)),
        outcome: BatchOutcome::new(),
    };
    while let Some(work) = hub.next_work() {
        let t0 = Instant::now();
        match work {
            Work::Task(task) => {
                counters.tasks_stolen.fetch_add(1, Ordering::Relaxed);
                if observing {
                    observer.shard_stolen(shard_event(&task));
                }
                run_task(hub, task, &mut ctx, observer);
            }
            Work::Job(job) => {
                counters.jobs_owned.fetch_add(1, Ordering::Relaxed);
                match job.payload {
                    JobPayload::Frame(lines) => process_job(
                        hub,
                        job.seq,
                        job.submitted_at,
                        lines,
                        net,
                        depth,
                        &mut ctx,
                        counters,
                        observer,
                    ),
                    JobPayload::Batch(batch) => process_job_batch(
                        hub,
                        job.seq,
                        job.submitted_at,
                        batch,
                        net,
                        &mut ctx,
                        observer,
                    ),
                }
            }
        }
        counters
            .busy_ns
            .fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
    }
}

fn worker_loop_faulted<O: Observer>(
    hub: &Hub,
    net: BnbNetwork,
    counters: &WorkerCounters,
    observer: &O,
    plan: &FaultPlan,
    worker: usize,
) {
    let mut ctx = WorkerCtx {
        scratch: StageScratch::with_capacity(net.inputs()),
        seen: Vec::new(),
        latch: Arc::new(JobLatch::new(0)),
        outcome: BatchOutcome::new(),
    };
    // Per-attempt working copy of the batch: a failed attempt leaves
    // partially routed lines behind, so every attempt restarts from the
    // submitted order. Reused across batches.
    let mut attempt_buf: Vec<Record> = Vec::with_capacity(net.inputs());
    while let Some(work) = hub.next_work() {
        let t0 = Instant::now();
        match work {
            // Faulted mode never splits batches, so no slice tasks are
            // produced; drain any defensively the same way `worker_loop`
            // would.
            Work::Task(task) => {
                counters.tasks_stolen.fetch_add(1, Ordering::Relaxed);
                run_task(hub, task, &mut ctx, observer);
            }
            Work::Job(job) => {
                counters.jobs_owned.fetch_add(1, Ordering::Relaxed);
                match job.payload {
                    JobPayload::Frame(lines) => process_frame_faulted(
                        hub,
                        job.seq,
                        job.submitted_at,
                        lines,
                        net,
                        &mut ctx,
                        &mut attempt_buf,
                        observer,
                        plan,
                        worker,
                    ),
                    // Fault campaigns need per-frame retry/quarantine
                    // bookkeeping, so a batch is unbundled into frames and
                    // each runs the exact per-frame path under its own
                    // reserved sequence number.
                    JobPayload::Batch(batch) => {
                        for f in 0..batch.frames() {
                            let mut lines = Vec::with_capacity(batch.width());
                            batch.read_frame_into(f, &mut lines);
                            process_frame_faulted(
                                hub,
                                job.seq + f as u64,
                                job.submitted_at,
                                lines,
                                net,
                                &mut ctx,
                                &mut attempt_buf,
                                observer,
                                plan,
                                worker,
                            );
                        }
                    }
                }
            }
        }
        counters
            .busy_ns
            .fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
    }
}

fn worker_loop_scrubbed<O: Observer>(
    hub: &Hub,
    net: BnbNetwork,
    counters: &WorkerCounters,
    observer: &O,
    plan: &LiveFaultPlan,
    worker: usize,
) {
    let mut ctx = WorkerCtx {
        scratch: StageScratch::with_capacity(net.inputs()),
        seen: Vec::new(),
        latch: Arc::new(JobLatch::new(0)),
        outcome: BatchOutcome::new(),
    };
    let mut attempt_buf: Vec<Record> = Vec::with_capacity(net.inputs());
    while let Some(work) = hub.next_work() {
        let t0 = Instant::now();
        match work {
            Work::Task(task) => {
                counters.tasks_stolen.fetch_add(1, Ordering::Relaxed);
                run_task(hub, task, &mut ctx, observer);
            }
            Work::Job(job) => {
                counters.jobs_owned.fetch_add(1, Ordering::Relaxed);
                match job.payload {
                    JobPayload::Frame(lines) => process_frame_scrubbed(
                        hub,
                        job.seq,
                        job.submitted_at,
                        lines,
                        net,
                        &mut ctx,
                        &mut attempt_buf,
                        observer,
                        plan,
                        worker,
                    ),
                    JobPayload::Batch(batch) => {
                        for f in 0..batch.frames() {
                            let mut lines = Vec::with_capacity(batch.width());
                            batch.read_frame_into(f, &mut lines);
                            process_frame_scrubbed(
                                hub,
                                job.seq + f as u64,
                                job.submitted_at,
                                lines,
                                net,
                                &mut ctx,
                                &mut attempt_buf,
                                observer,
                                plan,
                                worker,
                            );
                        }
                    }
                }
            }
        }
        counters
            .busy_ns
            .fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
    }
}

/// The live-repair variant of [`process_frame_faulted`]: each attempt
/// asks the plan for a *healthy* shard (round-robin fallback when none
/// is), routes through a point-in-time snapshot of that shard's live
/// fault map, and demotes the shard to suspect on a detected hardware
/// fault so the scrubber picks it up. Delivery semantics are unchanged:
/// success, terminal traffic error, or quarantine after the retry
/// budget.
#[allow(clippy::too_many_arguments)]
fn process_frame_scrubbed<O: Observer>(
    hub: &Hub,
    seq: u64,
    submitted_at: Instant,
    mut lines: Vec<Record>,
    net: BnbNetwork,
    ctx: &mut WorkerCtx,
    attempt_buf: &mut Vec<Record>,
    observer: &O,
    plan: &LiveFaultPlan,
    worker: usize,
) {
    let observing = observer.enabled();
    let records = lines.len();
    if let Err(e) = validate_lines(&net, &lines, &mut ctx.seen) {
        finish_observed(
            hub,
            seq,
            submitted_at,
            Err(EngineError::batch(seq, e)),
            0,
            observing,
            observer,
        );
        return;
    }
    let attempts = plan.retry().max_attempts.max(1);
    let mut last_fault = None;
    for attempt in 0..attempts {
        let shard = plan.pick_shard(worker, attempt);
        if attempt > 0 {
            let backoff = plan
                .retry()
                .backoff
                .saturating_mul(1u32 << (attempt - 1).min(16) as u32);
            if !backoff.is_zero() {
                thread::sleep(backoff);
            }
            if observing {
                observer.batch_retried(RetryEvent {
                    seq,
                    attempt,
                    shard,
                });
            }
        }
        attempt_buf.clear();
        attempt_buf.extend_from_slice(&lines);
        let faults = plan.faults_snapshot(shard);
        match RouteSpan::new().observer(observer).faults(&faults).run(
            &net,
            attempt_buf,
            0,
            0..net.m(),
            &mut ctx.scratch,
        ) {
            Ok(()) => {
                lines.copy_from_slice(attempt_buf);
                finish_observed(
                    hub,
                    seq,
                    submitted_at,
                    Ok(lines),
                    records,
                    observing,
                    observer,
                );
                return;
            }
            Err(e @ RouteError::HardwareFault { .. }) => {
                plan.mark_suspect(shard);
                last_fault = Some(e);
            }
            Err(e) => {
                finish_observed(
                    hub,
                    seq,
                    submitted_at,
                    Err(EngineError::batch(seq, e)),
                    0,
                    observing,
                    observer,
                );
                return;
            }
        }
    }
    let source = last_fault.expect("the attempt loop ran and only exits early on success");
    finish_observed(
        hub,
        seq,
        submitted_at,
        Err(EngineError::quarantined(seq, attempts, source)),
        0,
        observing,
        observer,
    );
}

/// Routes one batch through the faulted fabric: attempt `k` runs on shard
/// `(worker + k) % plan.shards()`, hardware faults trigger a retry on the
/// next shard after exponential backoff, and an exhausted budget
/// publishes [`EngineError::Quarantined`]. Non-fault errors (validation,
/// unbalanced traffic) are terminal immediately — retrying cannot fix the
/// input.
#[allow(clippy::too_many_arguments)]
fn process_frame_faulted<O: Observer>(
    hub: &Hub,
    seq: u64,
    submitted_at: Instant,
    mut lines: Vec<Record>,
    net: BnbNetwork,
    ctx: &mut WorkerCtx,
    attempt_buf: &mut Vec<Record>,
    observer: &O,
    plan: &FaultPlan,
    worker: usize,
) {
    let observing = observer.enabled();
    let records = lines.len();
    if let Err(e) = validate_lines(&net, &lines, &mut ctx.seen) {
        finish_observed(
            hub,
            seq,
            submitted_at,
            Err(EngineError::batch(seq, e)),
            0,
            observing,
            observer,
        );
        return;
    }
    let attempts = plan.retry().max_attempts.max(1);
    let mut last_fault = None;
    for attempt in 0..attempts {
        let shard = (worker + attempt) % plan.shards();
        if attempt > 0 {
            let backoff = plan
                .retry()
                .backoff
                .saturating_mul(1u32 << (attempt - 1).min(16) as u32);
            if !backoff.is_zero() {
                thread::sleep(backoff);
            }
            if observing {
                observer.batch_retried(RetryEvent {
                    seq,
                    attempt,
                    shard,
                });
            }
        }
        attempt_buf.clear();
        attempt_buf.extend_from_slice(&lines);
        match RouteSpan::new()
            .observer(observer)
            .faults(plan.shard(shard))
            .run(&net, attempt_buf, 0, 0..net.m(), &mut ctx.scratch)
        {
            Ok(()) => {
                lines.copy_from_slice(attempt_buf);
                finish_observed(
                    hub,
                    seq,
                    submitted_at,
                    Ok(lines),
                    records,
                    observing,
                    observer,
                );
                return;
            }
            Err(e @ RouteError::HardwareFault { .. }) => last_fault = Some(e),
            Err(e) => {
                finish_observed(
                    hub,
                    seq,
                    submitted_at,
                    Err(EngineError::batch(seq, e)),
                    0,
                    observing,
                    observer,
                );
                return;
            }
        }
    }
    let source = last_fault.expect("the attempt loop ran and only exits early on success");
    finish_observed(
        hub,
        seq,
        submitted_at,
        Err(EngineError::quarantined(seq, attempts, source)),
        0,
        observing,
        observer,
    );
}

/// The [`ShardEvent`] describing a queued slice task.
fn shard_event(task: &SliceTask) -> ShardEvent {
    ShardEvent {
        first_line: task.first_line,
        len: task.len,
        start_stage: task.start_stage,
    }
}

/// Routes one batch as its owner: validate, split into `2^depth` slice
/// tasks, help until every slice lands, publish the result.
#[allow(clippy::too_many_arguments)]
fn process_job<O: Observer>(
    hub: &Hub,
    seq: u64,
    submitted_at: Instant,
    mut lines: Vec<Record>,
    net: BnbNetwork,
    depth: usize,
    ctx: &mut WorkerCtx,
    counters: &WorkerCounters,
    observer: &O,
) {
    let observing = observer.enabled();
    let records = lines.len();
    if let Err(e) = validate_lines(&net, &lines, &mut ctx.seen) {
        finish_observed(
            hub,
            seq,
            submitted_at,
            Err(EngineError::batch(seq, e)),
            0,
            observing,
            observer,
        );
        return;
    }
    #[cfg(debug_assertions)]
    let reference = net.route(&lines);

    // The latch travels behind an `Arc` so the last helper's completion
    // can never outlive it; this worker's latch is rearmed per owned job.
    ctx.latch.reset(1);
    let root = SliceTask {
        net,
        lines: lines.as_mut_ptr(),
        len: lines.len(),
        first_line: 0,
        start_stage: 0,
        split_until: depth.min(net.m()),
        latch: Arc::clone(&ctx.latch),
    };
    run_task(hub, root, ctx, observer);
    // Help with queued slice work (ours or anyone's) until our batch is
    // fully routed.
    while !ctx.latch.is_done() {
        match hub.try_pop_task() {
            Some(task) => {
                counters.tasks_stolen.fetch_add(1, Ordering::Relaxed);
                if observing {
                    observer.shard_stolen(shard_event(&task));
                }
                run_task(hub, task, ctx, observer);
            }
            None => ctx.latch.wait_brief(),
        }
    }
    let result = match ctx.latch.take_error() {
        Some(e) => Err(e),
        None => Ok(lines),
    };

    // Error results are comparable too: `JobLatch::fail` keeps the
    // earliest-scan-site error, which is the one the sequential route
    // stops at.
    #[cfg(debug_assertions)]
    debug_assert_eq!(
        result, reference,
        "parallel routing diverged from the sequential reference"
    );
    finish_observed(
        hub,
        seq,
        submitted_at,
        result.map_err(|e| EngineError::batch(seq, e)),
        records,
        observing,
        observer,
    );
}

/// Routes one owned [`JobPayload::Batch`]: all frames through one batched
/// kernel invocation, then one published result per reserved sequence
/// number. Batch jobs are never sliced across workers — parallelism comes
/// from workers owning *different* batches, and the batched kernel's full
/// word occupancy replaces the intra-frame split.
fn process_job_batch<O: Observer>(
    hub: &Hub,
    seq: u64,
    submitted_at: Instant,
    mut batch: FrameBatch,
    net: BnbNetwork,
    ctx: &mut WorkerCtx,
    observer: &O,
) {
    let observing = observer.enabled();
    let frames = batch.frames();
    let records = batch.width();
    #[cfg(debug_assertions)]
    let inputs = batch.to_frames();
    // An enabled observer rides through RouteSpan: route_batch falls back
    // to frame-at-a-time scalar routing so per-column events still fire,
    // exactly as per-frame submission would.
    let opts = if observing {
        RouteSpan::new().observer(observer)
    } else {
        RouteSpan::new()
    };
    route_batch(&net, &mut batch, &opts, &mut ctx.scratch, &mut ctx.outcome);
    // `inputs` exists only under debug_assertions, so the loop cannot be
    // rewritten over it without forking on cfg.
    #[allow(clippy::needless_range_loop)]
    for f in 0..frames {
        let fseq = seq + f as u64;
        let result = match &ctx.outcome.results()[f] {
            Ok(()) => {
                let mut out = Vec::with_capacity(records);
                batch.read_frame_into(f, &mut out);
                Ok(out)
            }
            Err(e) => Err(EngineError::batch(fseq, e.clone())),
        };
        // The batched kernel must be indistinguishable from routing each
        // frame alone through the sequential reference.
        #[cfg(debug_assertions)]
        {
            let reference = net.route(&inputs[f]);
            match (&result, &reference) {
                (Ok(got), Ok(want)) => debug_assert_eq!(
                    got, want,
                    "batched routing diverged from the sequential reference"
                ),
                (Err(got), Err(want)) => debug_assert_eq!(
                    got.route_error(),
                    want,
                    "batched error diverged from the sequential reference"
                ),
                _ => panic!("batched result status diverged from the sequential reference"),
            }
        }
        finish_observed(
            hub,
            fseq,
            submitted_at,
            result,
            records,
            observing,
            observer,
        );
    }
}

/// Publishes a batch result and, when observing, emits the matching
/// [`DrainEvent`] (the event carries submit-to-publish latency, measured
/// here because `drain` itself never learns it).
#[allow(clippy::too_many_arguments)]
fn finish_observed<O: Observer>(
    hub: &Hub,
    seq: u64,
    submitted_at: Instant,
    result: Result<Vec<Record>, EngineError>,
    records: usize,
    observing: bool,
    observer: &O,
) {
    let ok = result.is_ok();
    hub.finish(seq, submitted_at, result);
    if observing {
        let latency_ns = submitted_at.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64;
        observer.batch_drained(DrainEvent {
            seq,
            records: if ok { records } else { 0 },
            latency_ns,
            ok,
        });
    }
}

/// Routes a slice task: one main stage at a time while splitting is still
/// wanted (pushing the sibling half to the hub), then the remaining
/// stages sequentially.
fn run_task<O: Observer>(hub: &Hub, task: SliceTask, ctx: &mut WorkerCtx, observer: &O) {
    let observing = observer.enabled();
    let net = task.net;
    let m = net.m();
    let latch = &task.latch;
    // SAFETY: the owning worker keeps the batch vector alive until the
    // latch (which we complete below, after the last use) reports done,
    // and sibling tasks cover disjoint ranges.
    let mut lines = unsafe { std::slice::from_raw_parts_mut(task.lines, task.len) };
    // Splits always keep the aligned low half, so our first line never
    // moves.
    let first_line = task.first_line;
    let mut stage = task.start_stage;
    loop {
        if stage >= task.split_until || stage >= m || lines.len() < 2 {
            let tail = RouteSpan::new().observer(observer).run(
                &net,
                lines,
                first_line,
                stage..m,
                &mut ctx.scratch,
            );
            match tail {
                Ok(()) => latch.complete_one(),
                Err(e) => latch.fail(e),
            }
            return;
        }
        // Route this main stage over the whole slice, then hand half of
        // the now-independent subnetworks to any idle worker.
        if let Err(e) = RouteSpan::new().observer(observer).run(
            &net,
            lines,
            first_line,
            stage..stage + 1,
            &mut ctx.scratch,
        ) {
            latch.fail(e);
            return;
        }
        stage += 1;
        let half = lines.len() / 2;
        let (keep, give) = lines.split_at_mut(half);
        let sibling = SliceTask {
            net,
            lines: give.as_mut_ptr(),
            len: give.len(),
            first_line: first_line + half,
            start_stage: stage,
            split_until: task.split_until,
            latch: Arc::clone(&task.latch),
        };
        latch.add_one();
        if observing {
            observer.shard_enqueued(shard_event(&sibling));
        }
        hub.push_task(sibling);
        lines = keep;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::live::ShardHealth;
    use bnb_core::network::RoutePolicy;
    use bnb_obs::Counters;
    use bnb_topology::perm::Permutation;
    use bnb_topology::record::records_for_permutation;
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    #[test]
    fn auto_depth_tracks_worker_count() {
        assert_eq!(auto_depth(1, 8), 0);
        assert_eq!(auto_depth(2, 8), 1);
        assert_eq!(auto_depth(3, 8), 2);
        assert_eq!(auto_depth(4, 8), 2);
        assert_eq!(auto_depth(8, 8), 3);
        assert_eq!(auto_depth(64, 3), 3); // clamped to m
    }

    #[test]
    fn engine_matches_sequential_route() {
        let mut rng = StdRng::seed_from_u64(100);
        for m in [1usize, 3, 6] {
            let n = 1usize << m;
            let net = BnbNetwork::new(m);
            for workers in [1usize, 2, 4] {
                let engine = Engine::new(net, EngineConfig::with_workers(workers));
                let perms: Vec<_> = (0..8).map(|_| Permutation::random(n, &mut rng)).collect();
                let expected: Vec<_> = perms
                    .iter()
                    .map(|p| net.route(&records_for_permutation(p)).unwrap())
                    .collect();
                let routed = engine.run(|h| {
                    for p in &perms {
                        h.submit(records_for_permutation(p));
                    }
                    (0..perms.len())
                        .map(|_| h.drain().unwrap())
                        .collect::<Vec<_>>()
                });
                for (i, batch) in routed.iter().enumerate() {
                    assert_eq!(batch.seq, i as u64, "drain must be in submission order");
                    assert_eq!(batch.result.as_ref().unwrap(), &expected[i]);
                }
            }
        }
    }

    #[test]
    fn tagged_and_batched_submissions_carry_tokens_per_frame() {
        let mut rng = StdRng::seed_from_u64(7);
        let n = 16usize;
        let net = BnbNetwork::new(4);
        let engine = Engine::new(net, EngineConfig::with_workers(2));
        let perms: Vec<_> = (0..5).map(|_| Permutation::random(n, &mut rng)).collect();
        let drained = engine.run(|h| {
            // One tagged single, then a 4-frame batch with distinct
            // per-frame tokens.
            h.try_submit_tagged(records_for_permutation(&perms[0]), 0xAA)
                .unwrap();
            let mut batch = bnb_core::batch::FrameBatch::with_capacity(n, 4);
            for p in &perms[1..] {
                batch.push_frame(&records_for_permutation(p));
            }
            let tokens = [0x10u64, 0x20, 0x30, 0x40];
            let base = h.try_submit_batch(batch, &tokens).unwrap();
            assert_eq!(base, 1, "batch frames follow the single");
            (0..5).map(|_| h.drain().unwrap()).collect::<Vec<_>>()
        });
        let mut by_seq: Vec<_> = drained;
        by_seq.sort_by_key(|b| b.seq);
        let want_tokens = [0xAAu64, 0x10, 0x20, 0x30, 0x40];
        for (i, batch) in by_seq.iter().enumerate() {
            assert_eq!(batch.seq, i as u64);
            assert_eq!(batch.token, want_tokens[i], "frame {i} token");
            assert!(batch.result.is_ok(), "frame {i} routes");
        }
    }

    #[test]
    fn error_batches_are_reported_not_lost() {
        let net = BnbNetwork::new(2);
        let engine = Engine::new(net, EngineConfig::with_workers(2));
        let good = records_for_permutation(&Permutation::try_from(vec![2, 0, 3, 1]).unwrap());
        let dup = vec![
            Record::new(1, 0),
            Record::new(1, 1),
            Record::new(2, 2),
            Record::new(3, 3),
        ];
        let (first, second, stats) = engine.run(|h| {
            h.submit(dup.clone());
            h.submit(good.clone());
            (h.drain().unwrap(), h.drain().unwrap(), h.stats())
        });
        let err = first.result.unwrap_err();
        assert_eq!(err.seq(), 0, "the failing batch's sequence number");
        assert!(matches!(
            err.route_error(),
            bnb_core::RouteError::DuplicateDestination { dest: 1, .. }
        ));
        assert!(second.result.is_ok());
        assert_eq!(stats.batches, 2);
        assert_eq!(stats.errors, 1);
        assert_eq!(stats.records, 4); // only the good batch counts
    }

    #[test]
    fn backpressure_bounds_the_queue() {
        let net = BnbNetwork::new(4);
        let config = EngineConfig {
            workers: 2,
            queue_capacity: 3,
            shard_depth: ShardDepth::Auto,
        };
        let engine = Engine::new(net, config);
        let p = Permutation::random(16, &mut StdRng::seed_from_u64(5));
        let stats = engine.run(|h| {
            for _ in 0..50 {
                h.submit(records_for_permutation(&p));
            }
            while h.drain().is_some() {}
            h.stats()
        });
        assert_eq!(stats.batches, 50);
        assert!(
            stats.queue_high_water <= 3,
            "queue grew past its bound: {}",
            stats.queue_high_water
        );
        assert!(stats.queue_high_water >= 1);
    }

    #[test]
    fn permissive_garbage_traffic_matches_sequential() {
        let mut rng = StdRng::seed_from_u64(6);
        let net = BnbNetwork::builder(5)
            .policy(RoutePolicy::Permissive)
            .build();
        let engine = Engine::new(
            net,
            EngineConfig {
                workers: 4,
                queue_capacity: 4,
                shard_depth: ShardDepth::Fixed(3),
            },
        );
        let batches: Vec<Vec<Record>> = (0..6)
            .map(|_| {
                (0..32)
                    .map(|i| Record::new(rng.random_range(0..32), i as u64))
                    .collect()
            })
            .collect();
        let expected: Vec<_> = batches.iter().map(|b| net.route(b).unwrap()).collect();
        let routed = engine.run(|h| {
            for b in &batches {
                h.submit(b.clone());
            }
            (0..batches.len())
                .map(|_| h.drain().unwrap())
                .collect::<Vec<_>>()
        });
        for (batch, want) in routed.iter().zip(&expected) {
            assert_eq!(batch.result.as_ref().unwrap(), want);
        }
    }

    #[test]
    fn stats_are_sane_after_a_run() {
        let net = BnbNetwork::new(5);
        let engine = Engine::new(net, EngineConfig::with_workers(3));
        let p = Permutation::random(32, &mut StdRng::seed_from_u64(7));
        let stats = engine.run(|h| {
            for _ in 0..10 {
                h.submit(records_for_permutation(&p));
            }
            while h.drain().is_some() {}
            h.stats()
        });
        assert_eq!(stats.workers, 3);
        assert_eq!(stats.shard_depth, 2);
        assert_eq!(stats.batches, 10);
        assert_eq!(stats.records, 320);
        assert_eq!(stats.errors, 0);
        assert_eq!(stats.histogram.count(), 10);
        assert!(stats.batches_per_sec > 0.0);
        assert!(stats.records_per_sec > 0.0);
        assert!(stats.latency.min_ns <= stats.latency.p50_ns);
        assert!(stats.latency.p50_ns <= stats.latency.p99_ns);
        assert!(stats.latency.p99_ns <= stats.latency.max_ns);
        assert_eq!(stats.worker_busy_ns.len(), 3);
        assert_eq!(stats.worker_utilization.len(), 3);
        assert_eq!(stats.worker_metrics.len(), 3);
        assert!(stats
            .worker_utilization
            .iter()
            .all(|&u| (0.0..=1.0).contains(&u)));
        for (i, w) in stats.worker_metrics.iter().enumerate() {
            assert_eq!(w.worker, i);
            assert_eq!(w.busy_ns, stats.worker_busy_ns[i]);
        }
        let owned: u64 = stats.worker_metrics.iter().map(|w| w.jobs_owned).sum();
        assert_eq!(owned, 10, "every batch has exactly one owner");
    }

    /// With a sharding engine, an attached `Counters` observer sees every
    /// slice hand-off (each enqueued shard is eventually stolen) and one
    /// submit/drain pair per batch.
    #[test]
    fn observer_sees_engine_events() {
        let counters = Counters::new();
        let net = BnbNetwork::new(4);
        let engine = Engine::with_observer(net, EngineConfig::with_workers(4), &counters);
        let p = Permutation::random(16, &mut StdRng::seed_from_u64(11));
        let stats = engine.run(|h| {
            for _ in 0..5 {
                h.submit(records_for_permutation(&p));
            }
            while h.drain().is_some() {}
            h.stats()
        });
        let snap = counters.snapshot();
        assert_eq!(snap.batches_submitted, 5);
        assert_eq!(snap.batches_drained, 5);
        assert_eq!(snap.batch_errors, 0);
        assert!(snap.shards_enqueued > 0, "depth 2 must split every batch");
        assert_eq!(
            snap.shards_enqueued, snap.shards_stolen,
            "every queued shard is taken by exactly one worker"
        );
        let stolen: u64 = stats.worker_metrics.iter().map(|w| w.tasks_stolen).sum();
        assert_eq!(stolen, snap.shards_stolen);
        assert_eq!(snap.histogram.count(), 5, "one latency sample per batch");
        assert!(stats.task_queue_high_water >= 1);
    }

    /// Regression: `task_queue_high_water` must describe the current
    /// submission wave. Before the per-wave reset, a reused (idle) engine
    /// kept reporting the deepest wave it had ever run.
    #[test]
    fn task_queue_high_water_resets_between_waves() {
        let net = BnbNetwork::new(4);
        let engine = Engine::new(
            net,
            EngineConfig {
                workers: 2,
                queue_capacity: 4,
                shard_depth: ShardDepth::Fixed(2),
            },
        );
        let p = Permutation::random(16, &mut StdRng::seed_from_u64(21));
        engine.run(|h| {
            h.submit(records_for_permutation(&p));
            assert!(h.drain().unwrap().result.is_ok());
            assert!(
                h.stats().task_queue_high_water >= 1,
                "a depth-2 split publishes slice tasks"
            );
            // Second wave into the now-idle engine: this batch fails
            // validation before any slice is published, so a per-wave
            // high water reads 0 — a stale one would still show wave 1.
            let dup: Vec<Record> = (0..16)
                .map(|i| Record::new(if i == 1 { 0 } else { i }, i as u64))
                .collect();
            h.submit(dup);
            assert!(h.drain().unwrap().result.is_err());
            assert_eq!(
                h.stats().task_queue_high_water,
                0,
                "high water must reset at the start of each wave"
            );
        });
    }

    /// A `FlightRecorder` attached to the engine captures every batch's
    /// submit and drain as spans carrying the batch seq as trace id, with
    /// worker activity spread across per-thread recorder lanes.
    #[test]
    fn flight_recorder_shards_merge_at_drain() {
        use bnb_obs::{FlightRecorder, SpanKind};
        let recorder = FlightRecorder::with_capacity(4096);
        let net = BnbNetwork::new(4);
        let engine = Engine::with_observer(net, EngineConfig::with_workers(4), &recorder);
        let p = Permutation::random(16, &mut StdRng::seed_from_u64(22));
        engine.run(|h| {
            for _ in 0..5 {
                h.submit(records_for_permutation(&p));
            }
            while h.drain().is_some() {}
        });
        let spans = recorder.spans();
        assert_eq!(recorder.dropped(), 0, "capacity covers the whole run");
        let mut submit_seqs: Vec<u64> = spans
            .iter()
            .filter(|s| s.kind == SpanKind::Submit)
            .map(|s| s.seq)
            .collect();
        submit_seqs.sort_unstable();
        assert_eq!(submit_seqs, vec![0, 1, 2, 3, 4]);
        let drains: Vec<_> = spans.iter().filter(|s| s.kind == SpanKind::Drain).collect();
        assert_eq!(drains.len(), 5, "one drain span per batch");
        assert!(drains.iter().all(|s| s.ok));
        let shard_spans = spans
            .iter()
            .filter(|s| matches!(s.kind, SpanKind::Shard | SpanKind::Steal))
            .count();
        assert!(shard_spans > 0, "depth-2 sharding must be visible");
        // Submissions come from the driver thread; routing spans from
        // worker threads — at least two distinct lanes in the merge.
        let mut lanes: Vec<u32> = spans.iter().map(|s| s.lane).collect();
        lanes.sort_unstable();
        lanes.dedup();
        assert!(lanes.len() >= 2, "expected multiple recorder lanes");
    }

    /// Through `run_faulted`, the retry and the eventual drain of a batch
    /// carry the same trace id (`seq`), so a recorder ties the whole
    /// retry chain together.
    #[test]
    fn flight_recorder_threads_trace_ids_through_retries() {
        use bnb_obs::{FlightRecorder, SpanKind};
        let recorder = FlightRecorder::with_capacity(4096);
        let net = BnbNetwork::new(3);
        let map = stuck_map();
        let (bad, _) = fault_sensitive_perms(net, &map, 43);
        let engine = Engine::with_observer(net, EngineConfig::with_workers(1), &recorder);
        let plan = FaultPlan::new(
            vec![map, FaultMap::new()],
            RetryPolicy {
                max_attempts: 2,
                backoff: Duration::ZERO,
            },
        );
        let routed = engine.run_faulted(&plan, |h| {
            h.submit(bad.clone());
            h.drain().unwrap()
        });
        assert!(routed.result.is_ok());
        let spans = recorder.spans();
        let retry = spans
            .iter()
            .find(|s| s.kind == SpanKind::Retry)
            .expect("the faulted first attempt must record a retry span");
        let fault = spans
            .iter()
            .find(|s| s.kind == SpanKind::Fault)
            .expect("the detection must record a fault span");
        let drain = spans
            .iter()
            .find(|s| s.kind == SpanKind::Drain)
            .expect("the batch must drain");
        assert_eq!(retry.seq, drain.seq, "one trace id across the chain");
        assert!(drain.ok, "the retry landed on the healthy shard");
        assert!(!retry.ok);
        assert!(!fault.ok);
    }

    /// With no splitting (one worker, depth 0) the observed column count
    /// is the closed form `m(m+1)/2` per batch — the engine adds no extra
    /// span routing.
    #[test]
    fn observer_column_counts_match_closed_form_without_splitting() {
        let counters = Counters::new();
        let m = 4;
        let n = 1usize << m;
        let net = BnbNetwork::new(m);
        let engine = Engine::with_observer(net, EngineConfig::with_workers(1), &counters);
        let p = Permutation::random(n, &mut StdRng::seed_from_u64(12));
        engine.run(|h| {
            for _ in 0..3 {
                h.submit(records_for_permutation(&p));
            }
            while h.drain().is_some() {}
        });
        let snap = counters.snapshot();
        assert_eq!(snap.columns, 3 * (m as u64 * (m as u64 + 1) / 2));
        let sweeps_per_route = (n * m - n + 1) as u64;
        assert_eq!(snap.arbiter_sweeps, 3 * sweeps_per_route);
        assert_eq!(snap.shards_enqueued, 0, "depth 0 never splits");
    }

    /// Finds a permutation the given fault corrupts (strict route returns
    /// `HardwareFault`) and one it leaves alone, by scanning seeded
    /// random permutations on a sequential `FaultyFabric`.
    fn fault_sensitive_perms(
        net: BnbNetwork,
        faults: &FaultMap,
        seed: u64,
    ) -> (Vec<Record>, Vec<Record>) {
        use bnb_core::fault::FaultyFabric;
        let n = net.inputs();
        let mut fabric = FaultyFabric::new(net, faults.clone());
        let mut rng = StdRng::seed_from_u64(seed);
        let mut bad = None;
        let mut good = None;
        for _ in 0..200 {
            let lines = records_for_permutation(&Permutation::random(n, &mut rng));
            match fabric.route(&lines) {
                Ok(_) if good.is_none() => good = Some(lines),
                Err(bnb_core::RouteError::HardwareFault { .. }) if bad.is_none() => {
                    bad = Some(lines)
                }
                _ => {}
            }
            if bad.is_some() && good.is_some() {
                break;
            }
        }
        (
            bad.expect("no permutation triggered the fault"),
            good.expect("every permutation triggered the fault"),
        )
    }

    fn stuck_map() -> FaultMap {
        use bnb_core::fault::{FaultKind, FaultSite};
        FaultMap::single(FaultSite::new(0, 0, 0), FaultKind::StuckExchange)
    }

    /// A healthy plan is exactly `run`: byte-identical results.
    #[test]
    fn healthy_plan_matches_run() {
        let net = BnbNetwork::new(3);
        let engine = Engine::new(net, EngineConfig::with_workers(2));
        let p = Permutation::try_from(vec![7, 6, 5, 4, 3, 2, 1, 0]).unwrap();
        let expected = net.route(&records_for_permutation(&p)).unwrap();
        let plan = FaultPlan::healthy(2);
        let routed = engine.run_faulted(&plan, |h| {
            h.submit(records_for_permutation(&p));
            h.drain().unwrap()
        });
        assert_eq!(routed.result.unwrap(), expected);
    }

    /// With every shard faulted identically, a fault-triggering batch
    /// exhausts its budget and drains as `Quarantined`, fault site in the
    /// cause chain; untouched batches still route correctly.
    #[test]
    fn uniform_faults_quarantine_after_retries() {
        use std::error::Error as _;
        let net = BnbNetwork::new(3);
        let map = stuck_map();
        let (bad, good) = fault_sensitive_perms(net, &map, 40);
        let expected_good = net.route(&good).unwrap();
        let engine = Engine::new(net, EngineConfig::with_workers(2));
        let plan = FaultPlan::uniform(map, 2).with_retry(RetryPolicy {
            max_attempts: 3,
            backoff: Duration::from_micros(1),
        });
        let (first, second) = engine.run_faulted(&plan, |h| {
            h.submit(bad.clone());
            h.submit(good.clone());
            (h.drain().unwrap(), h.drain().unwrap())
        });
        let err = first.result.unwrap_err();
        assert_eq!(err.seq(), 0);
        assert!(matches!(err, EngineError::Quarantined { attempts: 3, .. }));
        assert!(matches!(
            err.route_error(),
            RouteError::HardwareFault { main_stage: 0, .. }
        ));
        let cause = err.source().expect("quarantine carries the fault");
        assert!(cause.to_string().contains("hardware fault"));
        assert_eq!(second.result.unwrap(), expected_good);
    }

    /// One worker, shard 0 faulted and shard 1 healthy: the first attempt
    /// fails, the retry lands on the healthy shard, and the batch drains
    /// successfully — with the retry visible to the observer.
    #[test]
    fn retry_moves_batches_onto_healthy_shards() {
        use bnb_obs::Counters;
        let counters = Counters::new();
        let net = BnbNetwork::new(3);
        let map = stuck_map();
        let (bad, _) = fault_sensitive_perms(net, &map, 41);
        let expected = net.route(&bad).unwrap();
        let engine = Engine::with_observer(net, EngineConfig::with_workers(1), &counters);
        let plan = FaultPlan::new(
            vec![map, FaultMap::new()],
            RetryPolicy {
                max_attempts: 2,
                backoff: Duration::ZERO,
            },
        );
        let routed = engine.run_faulted(&plan, |h| {
            h.submit(bad.clone());
            h.drain().unwrap()
        });
        assert_eq!(routed.result.unwrap(), expected);
        let snap = counters.snapshot();
        assert_eq!(snap.fault_retries, 1, "exactly one retry");
        assert_eq!(snap.hardware_faults, 1, "the first attempt's detection");
        assert_eq!(snap.batch_errors, 0, "the batch ultimately succeeded");
    }

    /// Non-hardware errors are terminal on the first attempt: retrying
    /// cannot fix bad traffic, and the error stays a plain `Batch`.
    #[test]
    fn traffic_errors_are_not_retried() {
        use bnb_obs::Counters;
        let counters = Counters::new();
        let net = BnbNetwork::new(2);
        let engine = Engine::with_observer(net, EngineConfig::with_workers(1), &counters);
        let plan = FaultPlan::uniform(stuck_map(), 2);
        let dup = vec![
            Record::new(1, 0),
            Record::new(1, 1),
            Record::new(2, 2),
            Record::new(3, 3),
        ];
        let routed = engine.run_faulted(&plan, |h| {
            h.submit(dup);
            h.drain().unwrap()
        });
        let err = routed.result.unwrap_err();
        assert!(matches!(err, EngineError::Batch { .. }));
        assert!(matches!(
            err.route_error(),
            RouteError::DuplicateDestination { dest: 1, .. }
        ));
        assert_eq!(counters.snapshot().fault_retries, 0);
    }

    /// A healthy live plan routes byte-identically to `run`.
    #[test]
    fn scrubbed_healthy_plan_matches_run() {
        let net = BnbNetwork::new(3);
        let engine = Engine::new(net, EngineConfig::with_workers(2));
        let p = Permutation::try_from(vec![7, 6, 5, 4, 3, 2, 1, 0]).unwrap();
        let expected = net.route(&records_for_permutation(&p)).unwrap();
        let plan = LiveFaultPlan::healthy(2);
        let routed = engine.run_scrubbed(&plan, |h| {
            h.submit(records_for_permutation(&p));
            h.drain().unwrap()
        });
        assert_eq!(routed.result.unwrap(), expected);
    }

    /// The full live-repair loop: traffic hits an injected fault, the
    /// shard is demoted and remapped around (retry lands on the healthy
    /// shard — the batch still drains correctly), the scrubber
    /// quarantines it, and after the fault clears the scrubber restores
    /// full capacity — all while submit/drain keeps moving.
    #[test]
    fn scrubbed_engine_remaps_quarantines_and_restores() {
        use bnb_obs::Counters;
        let counters = Counters::new();
        let net = BnbNetwork::new(3);
        let map = stuck_map();
        let (bad, _) = fault_sensitive_perms(net, &map, 47);
        let expected = net.route(&bad).unwrap();
        let engine = Engine::with_observer(net, EngineConfig::with_workers(1), &counters);
        let plan = LiveFaultPlan::healthy(2)
            .with_probe_seed(3)
            .with_restore_after(2)
            .with_scrub_interval(Duration::ZERO)
            .with_retry(RetryPolicy {
                max_attempts: 4,
                backoff: Duration::ZERO,
            });
        plan.set_faults(0, map);
        engine.run_scrubbed(&plan, |h| {
            let deadline = Instant::now() + Duration::from_secs(20);
            // Phase 1: traffic over the faulted shard 0. The fault-
            // sensitive frame must still drain correctly (remapped onto
            // shard 1) and shard 0 must leave service.
            while plan.health(0) == ShardHealth::Healthy {
                assert!(Instant::now() < deadline, "shard 0 never left service");
                h.submit(bad.clone());
                let routed = h.drain().unwrap();
                assert_eq!(
                    routed.result.as_ref().unwrap(),
                    &expected,
                    "no silent misdelivery through the faulted shard"
                );
            }
            while plan.health(0) != ShardHealth::Quarantined {
                assert!(Instant::now() < deadline, "scrubber never confirmed");
                // Keep traffic flowing while the scrubber works; a probe
                // round the fault doesn't excite may restore early —
                // traffic re-demotes it.
                h.submit(bad.clone());
                assert!(h.drain().unwrap().result.is_ok());
            }
            assert!(plan.is_degraded());
            // Phase 2: the transient clears; capacity must come back
            // while traffic continues.
            plan.clear(0);
            while plan.health(0) != ShardHealth::Healthy {
                assert!(Instant::now() < deadline, "capacity never restored");
                h.submit(bad.clone());
                assert!(h.drain().unwrap().result.is_ok());
            }
            assert_eq!(plan.healthy_shards(), 2, "full capacity restored");
        });
        let snap = counters.snapshot();
        assert!(snap.hardware_faults >= 1, "traffic detected the fault");
        assert!(snap.fault_retries >= 1, "the remap retried");
        assert!(snap.scrub_probes >= 1);
        assert!(snap.shards_quarantined >= 1);
        assert!(snap.shards_restored >= 1);
        assert_eq!(snap.batch_errors, 0, "every batch ultimately delivered");
    }

    /// With every shard faulted identically, a scrubbed run quarantines
    /// the batch exactly like `run_faulted` — the fallback keeps trying
    /// but the budget is finite.
    #[test]
    fn scrubbed_uniform_faults_still_quarantine_batches() {
        let net = BnbNetwork::new(3);
        let map = stuck_map();
        let (bad, _) = fault_sensitive_perms(net, &map, 48);
        let engine = Engine::new(net, EngineConfig::with_workers(1));
        let plan = LiveFaultPlan::healthy(2)
            .with_scrub_interval(Duration::ZERO)
            .with_retry(RetryPolicy {
                max_attempts: 3,
                backoff: Duration::ZERO,
            });
        plan.set_faults(0, map.clone());
        plan.set_faults(1, map);
        let routed = engine.run_scrubbed(&plan, |h| {
            h.submit(bad.clone());
            h.drain().unwrap()
        });
        let err = routed.result.unwrap_err();
        assert!(matches!(err, EngineError::Quarantined { attempts: 3, .. }));
    }

    #[test]
    fn try_submit_rejects_on_full_queue_and_returns_the_batch() {
        let net = BnbNetwork::new(3);
        let engine = Engine::new(
            net,
            EngineConfig {
                workers: 1,
                queue_capacity: 1,
                shard_depth: ShardDepth::Auto,
            },
        );
        let p = Permutation::try_from(vec![7, 6, 5, 4, 3, 2, 1, 0]).unwrap();
        engine.run(|h| {
            // Saturate: keep try_submitting until the bounded queue
            // pushes back (the single worker may drain a couple first).
            let mut accepted = 0u64;
            let rejected = loop {
                match h.try_submit(records_for_permutation(&p)) {
                    Ok(_) => accepted += 1,
                    Err(e) => break e,
                }
            };
            assert!(matches!(rejected, SubmitError::Full(_)));
            assert!(!rejected.is_closed());
            assert_eq!(
                rejected.into_lines(),
                records_for_permutation(&p),
                "the rejected batch rides back unrouted"
            );
            let mut drained = 0u64;
            while h.drain().is_some() {
                drained += 1;
            }
            assert_eq!(drained, accepted, "accepted batches all drain");
        });
    }

    #[test]
    fn drain_and_close_delivers_every_inflight_batch_once() {
        let net = BnbNetwork::new(4);
        let engine = Engine::new(net, EngineConfig::with_workers(2));
        let p = Permutation::random(16, &mut StdRng::seed_from_u64(31));
        engine.run(|h| {
            let mut seqs = Vec::new();
            for _ in 0..6 {
                seqs.push(h.submit(records_for_permutation(&p)));
            }
            // Drain a prefix interactively, then close over the rest.
            let head = h.drain().unwrap();
            assert_eq!(head.seq, seqs[0]);
            let tail = h.drain_and_close();
            let tail_seqs: Vec<u64> = tail.iter().map(|b| b.seq).collect();
            assert_eq!(tail_seqs, seqs[1..], "tail drains in order, exactly once");
            assert!(tail.iter().all(|b| b.result.is_ok()));
            // Closed for good: rejections are typed, nothing enqueues.
            let refused = h.try_submit(records_for_permutation(&p)).unwrap_err();
            assert!(refused.is_closed());
            assert!(h.drain().is_none(), "nothing left after the close");
            assert_eq!(h.stats().batches, 6);
        });
    }

    #[test]
    fn try_drain_is_nonblocking_and_ordered() {
        let net = BnbNetwork::new(3);
        let engine = Engine::new(net, EngineConfig::with_workers(2));
        let p = Permutation::try_from(vec![7, 6, 5, 4, 3, 2, 1, 0]).unwrap();
        engine.run(|h| {
            assert!(h.try_drain().is_none(), "nothing submitted yet");
            let a = h.submit(records_for_permutation(&p));
            let b = h.submit(records_for_permutation(&p));
            let first = h.drain().unwrap();
            assert_eq!(first.seq, a);
            // Blocking drain for the second too, then the queue is empty.
            let second = h.drain().unwrap();
            assert_eq!(second.seq, b);
            assert!(h.try_drain().is_none());
            assert!(h.drain().is_none());
        });
    }
}
