//! Implementation of the `bnb` command-line tool.
//!
//! All commands are pure functions from parsed arguments to output text,
//! so the entire CLI is unit-testable without spawning processes. The
//! thin `main` in `main.rs` only parses `std::env::args` and prints.
//!
//! ```text
//! bnb route --inputs 8 --perm 6,2,7,0,4,1,3,5 [--trace] [--record FILE]
//!           [--metrics text|json|prom]
//! bnb trace [--inputs 8] [--perm a,b,c,...] [--dest D] [--record FILE]
//!           [--metrics text|json|prom]
//! bnb tables [--sizes 3,4,5,6,8,10] [--data-width 8]
//! bnb figures
//! bnb ratios [--sizes 3,5,8,10,14,20] [--data-width 0]
//! bnb crossover
//! bnb verilog --component bnb|batcher|splitter|bsn [--inputs 8]
//!             [--data-width 0] [--optimize]
//! bnb engine [--inputs 256] [--workers 4] [--batch 64] [--depth auto|D]
//!            [--queue 4] [--seed 0] [--pretty] [--record FILE]
//!            [--metrics text|json|prom]
//! bnb serve [--addr 127.0.0.1:0] [--inputs 64] [--workers 2] [--queue 8]
//!           [--threads 0] [--window 32] [--tenant-keys FILE]
//!           [--tenant-quota 4] [--max-conns 64] [--read-timeout-ms 100]
//!           [--slow-ms 0] [--record FILE] [--chaos] [--shards 2]
//!           [--chaos-ops 16] [--chaos-interval-ms 50] [--seed ..]
//!           [--chaos-out FILE] [--pretty]
//! bnb loadgen [--addr 127.0.0.1:9500] [--tenants 4] [--connections A,B,..]
//!             [--frames 64] [--inputs 64] [--mode closed|open]
//!             [--inflight 4] [--window W] [--qps 500] [--tenant-keys FILE]
//!             [--seed 45488] [--drain-ms 2000] [--resubmits 0] [--shutdown]
//!             [--out FILE] [--pretty]
//! bnb top [--addr 127.0.0.1:9500] [--interval-ms 1000] [--count 0]
//! bnb faults [--inputs 8] [--faults M.I.E:kind,..] [--trials 200] [--seed 0]
//!            [--sweep 0,1,2,..] [--frames 50] [--record FILE]
//!            [--metrics text|json|prom]
//! bnb faults --chaos [--inputs 8] [--trials 100] [--frames 40] [--shards 2]
//!            [--ops 8] [--workers 2] [--seed 0] [--out FILE]
//!            [--metrics text|json|prom]
//! bnb report
//! ```
//!
//! `--record FILE` attaches a bounded [`FlightRecorder`] to the command
//! and writes its contents as Chrome trace-event JSON (loadable in
//! `chrome://tracing` or [Perfetto](https://ui.perfetto.dev)) when the
//! command finishes — on success *and* on error, so a failed run still
//! leaves its black-box recording behind. `--sample all|errors|N` sets
//! the recorder's sampling policy.

use std::error::Error;
use std::fmt;

use bnb_analysis::report;
use bnb_analysis::{table1, table2};
use bnb_core::network::BnbNetwork;
use bnb_core::tracer::PathTracer;
use bnb_gates::export::to_verilog;
use bnb_gates::netlist::{Net, Netlist};
use bnb_gates::optimize::optimize;
use bnb_obs::{Counters, Fanout, FlightRecorder, SamplePolicy};
use bnb_topology::perm::Permutation;
use bnb_topology::record::{all_delivered, records_for_permutation};

pub mod bench;
mod serve;

/// A CLI failure: bad flags or usage (no cause), or a library failure
/// wrapped with its full cause chain — `main` walks
/// [`source`](Error::source) and prints every level, so a failed route
/// shows both "routing failed" and the underlying splitter site.
#[derive(Debug)]
pub struct CliError {
    message: String,
    source: Option<Box<dyn Error + Send + Sync + 'static>>,
}

impl CliError {
    /// A usage error with no underlying cause.
    pub fn usage(message: impl Into<String>) -> Self {
        CliError {
            message: message.into(),
            source: None,
        }
    }

    /// A failure wrapping the library error that caused it.
    pub fn caused_by(
        message: impl Into<String>,
        source: impl Error + Send + Sync + 'static,
    ) -> Self {
        CliError {
            message: message.into(),
            source: Some(Box::new(source)),
        }
    }
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.message)
    }
}

impl Error for CliError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        self.source.as_deref().map(|e| e as &(dyn Error + 'static))
    }
}

pub(crate) fn err(msg: impl Into<String>) -> CliError {
    CliError::usage(msg)
}

/// Where `--metrics` output should go, when requested.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum MetricsFormat {
    Text,
    Json,
    /// Prometheus text exposition format (scrape-ready).
    Prom,
}

fn metrics_flag(flags: &Flags) -> Result<Option<MetricsFormat>, CliError> {
    match flags.value("--metrics") {
        None => Ok(None),
        Some("text") => Ok(Some(MetricsFormat::Text)),
        Some("json") => Ok(Some(MetricsFormat::Json)),
        Some("prom") => Ok(Some(MetricsFormat::Prom)),
        Some(other) => Err(err(format!(
            "--metrics expects 'text', 'json' or 'prom', got {other}"
        ))),
    }
}

fn render_metrics(format: MetricsFormat, counters: &Counters) -> Result<String, CliError> {
    let snapshot = counters.snapshot();
    match format {
        MetricsFormat::Text => Ok(bnb_obs::render_text(&snapshot)),
        MetricsFormat::Json => bnb_obs::render_json(&snapshot)
            .map(|json| format!("{json}\n"))
            .map_err(|e| CliError::caused_by("metrics serialization failed", e)),
        MetricsFormat::Prom => Ok(bnb_obs::render_prometheus(&snapshot)),
    }
}

/// Parses `--sample all|errors|N` into the recorder's sampling policy:
/// keep everything (default), tail-sample only error-path spans
/// (conflicts, hardware faults, retries, failed drains), or head-sample
/// one span in `N`.
fn sample_flag(flags: &Flags) -> Result<SamplePolicy, CliError> {
    match flags.value("--sample") {
        None | Some("all") => Ok(SamplePolicy::All),
        Some("errors") => Ok(SamplePolicy::Errors),
        Some(v) => match v.parse::<u64>() {
            Ok(n) if n >= 1 => Ok(SamplePolicy::Rate(n)),
            _ => Err(err(format!(
                "--sample expects 'all', 'errors' or a rate >= 1, got {v}"
            ))),
        },
    }
}

/// Flushes a `--record` flight recorder to disk as Chrome trace-event
/// JSON and folds the write into the command's result. The write happens
/// whether the command body succeeded or failed (a failed run is exactly
/// when the black-box recording matters); a body error takes precedence
/// over a write error so the root cause is never masked.
fn finish_recording(
    path: Option<&str>,
    recorder: &FlightRecorder,
    result: Result<String, CliError>,
) -> Result<String, CliError> {
    let Some(path) = path else { return result };
    let spans = recorder.spans();
    let write = std::fs::write(path, bnb_obs::render_chrome_trace(&spans));
    match (result, write) {
        (Ok(mut out), Ok(())) => {
            let stats = recorder.stats();
            out.push_str(&format!(
                "recorded {} span(s) to {path} ({} dropped, {} sampled out)\n",
                spans.len(),
                stats.dropped,
                stats.sampled_out
            ));
            Ok(out)
        }
        (Ok(_), Err(e)) => Err(CliError::caused_by(
            format!("failed to write recording to {path}"),
            e,
        )),
        (Err(e), _) => Err(e),
    }
}

/// Flag accessor over raw arguments.
pub(crate) struct Flags<'a> {
    args: &'a [String],
}

impl<'a> Flags<'a> {
    pub(crate) fn value(&self, name: &str) -> Option<&'a str> {
        self.args
            .iter()
            .position(|a| a == name)
            .and_then(|i| self.args.get(i + 1))
            .map(String::as_str)
    }

    pub(crate) fn present(&self, name: &str) -> bool {
        self.args.iter().any(|a| a == name)
    }

    pub(crate) fn usize_or(&self, name: &str, default: usize) -> Result<usize, CliError> {
        match self.value(name) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| err(format!("{name} expects an integer, got {v}"))),
        }
    }

    fn usize_list_or(&self, name: &str, default: &[usize]) -> Result<Vec<usize>, CliError> {
        match self.value(name) {
            None => Ok(default.to_vec()),
            Some(v) => v
                .split(',')
                .map(|s| {
                    s.trim()
                        .parse()
                        .map_err(|_| err(format!("{name} expects integers, got {s}")))
                })
                .collect(),
        }
    }
}

/// Usage text.
pub fn usage() -> String {
    "bnb — BNB self-routing permutation network (Lee & Lu, ICDCS 1991)\n\
     \n\
     usage: bnb <command> [flags]\n\
     \n\
     commands:\n\
       route      route a permutation (--inputs N --perm a,b,c,... [--trace]\n\
                  [--record FILE] [--metrics text|json|prom])\n\
       trace      route with per-cell path capture: record every hop of\n\
                  every cell, verify the reconstruction against the applied\n\
                  switch settings, and print the paths ([--inputs 8]\n\
                  [--perm a,b,c,...] [--dest D] [--record FILE]\n\
                  [--metrics text|json|prom])\n\
       tables     regenerate the paper's Tables 1 and 2 ([--sizes 3,4,..] [--data-width 8])\n\
       figures    regenerate the paper's Figs. 1-4 structures\n\
       ratios     BNB/Batcher hardware and delay ratios ([--sizes ..] [--data-width 0])\n\
       crossover  finite-N crossover findings\n\
       verilog    emit structural Verilog (--component bnb|batcher|splitter|bsn\n\
                  [--inputs 8] [--data-width 0] [--optimize])\n\
       compare    route one permutation through every network\n\
                  ([--inputs 8] [--perm a,b,c,...])\n\
       sweep      load-latency curve of the input-queued switch\n\
                  ([--inputs 16] [--discipline fifo|voq] [--rounds 2000]\n\
                  [--record FILE] [--metrics text|json|prom])\n\
       diagnose   route possibly-invalid traffic with conflict detection\n\
                  (--inputs N --dests a,b,c,...)\n\
       engine     route random batches through the concurrent engine and\n\
                  print JSON stats ([--inputs 256] [--workers 4] [--batch 64]\n\
                  [--depth auto|D] [--queue 4] [--seed 0] [--pretty]\n\
                  [--record FILE] [--metrics text|json|prom])\n\
       faults     inject hardware faults and report detection coverage\n\
                  ([--inputs 8] [--faults M.I.E:kind,..] [--trials 200]\n\
                  [--seed 0] [--sweep 0,1,2,..] [--frames 50]\n\
                  [--record FILE] [--metrics text|json|prom];\n\
                  kinds: stuck0 stuck1 arbiter link); with --chaos, replay\n\
                  seeded randomized fault schedules (inject, flap, clear)\n\
                  against the live-repair engine under traffic and assert\n\
                  zero silent misdeliveries, balanced ledgers, and capacity\n\
                  recovery ([--trials 100] [--frames 40] [--shards 2]\n\
                  [--ops 8] [--workers 2] [--seed 0] [--out FILE])\n\
       bench      time the routing kernels (bit-packed vs scalar) and\n\
                  report ns/frame and cells/s ([--min-m 4] [--max-m 12]\n\
                  [--frames 16] [--seed 0] [--min-ms 20] [--json]\n\
                  [--out BENCH_routing.json])\n\
       serve      run the long-lived routing service until SIGTERM/SIGINT\n\
                  or a wire SHUTDOWN; prints 'listening on ADDR' at bind\n\
                  and the session report JSON after the graceful drain\n\
                  ([--addr 127.0.0.1:0] [--inputs 64] [--workers 2]\n\
                  [--queue 8] [--threads 0 (= cores) reactor threads]\n\
                  [--window 32 per-conn pipeline] [--tenant-keys FILE]\n\
                  [--tenant-quota 4] [--max-conns 64]\n\
                  [--read-timeout-ms 100] [--pretty]); HTTP GET /metrics\n\
                  on the same port serves Prometheus metrics with\n\
                  per-stage/per-tenant telemetry, GET /status a JSON\n\
                  status snapshot; --slow-ms N samples requests slower\n\
                  than N ms into the --record FILE flight recording;\n\
                  with --chaos, a seeded fault-injection thread damages\n\
                  and heals fabric shards while the live-repair scrubber\n\
                  routes around them ([--shards 2] [--chaos-ops 16]\n\
                  [--chaos-interval-ms 50] [--seed ..] [--chaos-out FILE])\n\
       loadgen    drive a running server and verify every routed frame\n\
                  ([--addr 127.0.0.1:9500] [--tenants 4] [--frames 64]\n\
                  [--inputs 64] [--mode closed|open] [--inflight 4]\n\
                  [--window W (alias for --inflight)] [--qps 500]\n\
                  [--tenant-keys FILE] [--seed 45488] [--drain-ms 2000]\n\
                  [--resubmits 0] [--shutdown] [--out FILE] [--pretty]);\n\
                  --connections N drives N sockets sharing the tenants;\n\
                  a comma list (--connections 1,16,64) sweeps each count\n\
                  in turn and reports the scaling curve as JSON\n\
       top        live dashboard over a running server's /status endpoint\n\
                  ([--addr 127.0.0.1:9500] [--interval-ms 1000]\n\
                  [--count 0]; --count 1 prints once without clearing)\n\
       report     the full evaluation report\n\
       help       this text\n\
     \n\
     --record FILE writes the command's flight-recorder contents as Chrome\n\
     trace-event JSON (open in chrome://tracing or ui.perfetto.dev), on\n\
     success and on error alike. --sample all|errors|N picks the recording\n\
     policy: keep everything, keep only error-path spans (conflicts,\n\
     hardware faults, retries, failed drains), or keep one span in N.\n"
        .to_string()
}

/// Dispatches a full argument vector (without the program name).
///
/// # Errors
///
/// Returns a [`CliError`] describing bad usage; never panics on user input.
pub fn run(args: &[String]) -> Result<String, CliError> {
    let Some(command) = args.first() else {
        return Ok(usage());
    };
    let flags = Flags { args: &args[1..] };
    match command.as_str() {
        "help" | "--help" | "-h" => Ok(usage()),
        "route" => cmd_route(&flags),
        "trace" => cmd_trace(&flags),
        "tables" => cmd_tables(&flags),
        "figures" => Ok(cmd_figures()),
        "ratios" => cmd_ratios(&flags),
        "crossover" => Ok(bnb_analysis::crossover::summary()),
        "verilog" => cmd_verilog(&flags),
        "compare" => cmd_compare(&flags),
        "sweep" => cmd_sweep(&flags),
        "diagnose" => cmd_diagnose(&flags),
        "engine" => cmd_engine(&flags),
        "faults" => cmd_faults(&flags),
        "bench" => bench::cmd_bench(&flags),
        "serve" => serve::cmd_serve(&flags),
        "loadgen" => serve::cmd_loadgen(&flags),
        "top" => serve::cmd_top(&flags),
        "report" => Ok(report::full_report()),
        other => Err(err(format!("unknown command '{other}'; try 'bnb help'"))),
    }
}

/// Parses `--perm a,b,c,...` (falling back to a `seed`-seeded random
/// permutation) and checks it has exactly `n` entries.
fn perm_flag(flags: &Flags, n: usize, seed: u64) -> Result<Permutation, CliError> {
    let perm = match flags.value("--perm") {
        Some(spec) => {
            let images: Vec<usize> = spec
                .split(',')
                .map(|s| {
                    s.trim()
                        .parse()
                        .map_err(|_| err(format!("bad permutation entry '{s}'")))
                })
                .collect::<Result<_, _>>()?;
            Permutation::try_from(images).map_err(|e| err(format!("invalid permutation: {e}")))?
        }
        None => {
            use rand::SeedableRng;
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            Permutation::random(n, &mut rng)
        }
    };
    if perm.len() != n {
        return Err(err(format!(
            "permutation has {} entries, expected {n}",
            perm.len()
        )));
    }
    Ok(perm)
}

fn cmd_route(flags: &Flags) -> Result<String, CliError> {
    let n = flags.usize_or("--inputs", 8)?;
    if !n.is_power_of_two() || n < 2 {
        return Err(err(format!(
            "--inputs must be a power of two >= 2, got {n}"
        )));
    }
    let perm = perm_flag(flags, n, 0)?;
    let metrics = metrics_flag(flags)?;
    let record_path = flags.value("--record");
    let net = BnbNetwork::builder_for(n)
        .map_err(|e| CliError::caused_by("network construction failed", e))?
        .build();
    let records = records_for_permutation(&perm);
    let recorder = FlightRecorder::new().policy(sample_flag(flags)?);
    let result = (|| {
        let mut out = String::new();
        if flags.present("--trace") {
            let (outputs, trace) = net
                .route_traced(&records)
                .map_err(|e| CliError::caused_by("routing failed", e))?;
            out.push_str(&trace.render());
            out.push_str(&format!(
                "\ncolumns: {}   exchanges: {}   delivered: {}\n",
                trace.column_count(),
                trace.exchange_count(),
                all_delivered(&outputs)
            ));
        } else {
            let outputs = net
                .route(&records)
                .map_err(|e| CliError::caused_by("routing failed", e))?;
            out.push_str(&format!("permutation {perm}\n"));
            for (j, r) in outputs.iter().enumerate() {
                out.push_str(&format!("output {j}: from input {}\n", r.data()));
            }
            out.push_str(&format!("delivered: {}\n", all_delivered(&outputs)));
        }
        if metrics.is_some() || record_path.is_some() {
            let counters = Counters::new();
            net.route_observed(&records, &Fanout::new(&counters, &recorder))
                .map_err(|e| CliError::caused_by("routing failed", e))?;
            if let Some(format) = metrics {
                out.push_str(&render_metrics(format, &counters)?);
            }
        }
        Ok(out)
    })();
    finish_recording(record_path, &recorder, result)
}

fn cmd_trace(flags: &Flags) -> Result<String, CliError> {
    let n = flags.usize_or("--inputs", 8)?;
    if !n.is_power_of_two() || !(2..=4096).contains(&n) {
        return Err(err(format!(
            "--inputs must be a power of two in 2..=4096 for path tracing, got {n}"
        )));
    }
    let perm = perm_flag(flags, n, 0)?;
    let dest = match flags.value("--dest") {
        None => None,
        Some(v) => {
            let d: usize = v
                .parse()
                .map_err(|_| err(format!("--dest expects an integer, got {v}")))?;
            if d >= n {
                return Err(err(format!("--dest must be < {n}, got {d}")));
            }
            Some(d)
        }
    };
    let metrics = metrics_flag(flags)?;
    let record_path = flags.value("--record");
    let net = BnbNetwork::builder_for(n)
        .map_err(|e| CliError::caused_by("network construction failed", e))?
        .build();
    let records = records_for_permutation(&perm);
    let tracer = PathTracer::with_inputs(n);
    let counters = Counters::new();
    // Hop spans land in the recorder too, so a `--record` of a traced
    // route carries per-cell instants, not just column/sweep events.
    let recorder = FlightRecorder::new()
        .record_hops(true)
        .policy(sample_flag(flags)?);
    let result = (|| {
        let observer = Fanout::new(&tracer, Fanout::new(&counters, &recorder));
        let outputs = net
            .route_observed(&records, &observer)
            .map_err(|e| CliError::caused_by("routing failed", e))?;
        tracer
            .verify(&net)
            .map_err(|e| CliError::caused_by("path reconstruction failed verification", e))?;
        let mut out = format!("permutation {perm}\n");
        match dest {
            Some(d) => out.push_str(&tracer.render(d)),
            None => {
                for d in 0..n {
                    out.push_str(&tracer.render(d));
                }
            }
        }
        out.push_str(&format!(
            "hops: {} ({} main-stage)   paths verified: {}   delivered: {}\n",
            tracer.total_hops(),
            tracer.main_stage_hops(),
            n,
            all_delivered(&outputs)
        ));
        if let Some(format) = metrics {
            out.push_str(&render_metrics(format, &counters)?);
        }
        Ok(out)
    })();
    finish_recording(record_path, &recorder, result)
}

fn cmd_tables(flags: &Flags) -> Result<String, CliError> {
    let sizes = flags.usize_list_or("--sizes", &[3, 4, 5, 6, 8, 10])?;
    let w = flags.usize_or("--data-width", 8)?;
    if sizes.iter().any(|&m| m == 0 || m > 20) {
        return Err(err("--sizes entries must be 1..=20 (they are log2 N)"));
    }
    Ok(format!(
        "{}\n{}",
        table1(&sizes, w).to_markdown(),
        table2(&sizes).to_markdown()
    ))
}

fn cmd_figures() -> String {
    use bnb_core::render::{render_network, render_profile, render_splitter};
    use bnb_topology::gbn::Gbn;
    use bnb_topology::render::render_gbn_ascii;
    let mut out = String::new();
    out.push_str("== Fig. 1 ==\n");
    out.push_str(&render_gbn_ascii(&Gbn::new(3)));
    out.push_str("\n== Fig. 2 ==\n");
    out.push_str(&render_network(
        &BnbNetwork::builder(3).data_width(0).build(),
    ));
    out.push_str("\n== Fig. 3 ==\n");
    out.push_str(&render_profile(3));
    out.push_str("\n== Fig. 4 ==\n");
    out.push_str(&render_splitter(3));
    out
}

fn cmd_ratios(flags: &Flags) -> Result<String, CliError> {
    let sizes = flags.usize_list_or("--sizes", &[3, 5, 8, 10, 14, 20])?;
    let w = flags.usize_or("--data-width", 0)?;
    if sizes.iter().any(|&m| m == 0 || m > 30) {
        return Err(err("--sizes entries must be 1..=30 (they are log2 N)"));
    }
    Ok(report::ratio_table(&sizes, w).to_markdown())
}

fn cmd_verilog(flags: &Flags) -> Result<String, CliError> {
    let m_inputs = flags.usize_or("--inputs", 8)?;
    if !m_inputs.is_power_of_two() || !(2..=64).contains(&m_inputs) {
        return Err(err(
            "--inputs must be a power of two in 2..=64 for Verilog export",
        ));
    }
    let m = m_inputs.trailing_zeros() as usize;
    let w = flags.usize_or("--data-width", 0)?;
    if w > 63 {
        return Err(err("--data-width must be <= 63"));
    }
    let component = flags.value("--component").unwrap_or("bnb");
    let (netlist, name) = match component {
        "bnb" => (
            bnb_gates::components::bnb_network(m, w).netlist().clone(),
            format!("bnb_n{m_inputs}"),
        ),
        "batcher" => (
            bnb_baselines::batcher_gates::batcher_netlist(m, w)
                .netlist()
                .clone(),
            format!("batcher_n{m_inputs}"),
        ),
        "splitter" => {
            let mut nl = Netlist::new();
            let ins: Vec<Net> = (0..m_inputs).map(|j| nl.input(format!("s{j}"))).collect();
            let sp = bnb_gates::components::splitter(&mut nl, &ins);
            for (j, &o) in sp.outputs.iter().enumerate() {
                nl.output(format!("o{j}"), o);
            }
            (nl, format!("splitter_n{m_inputs}"))
        }
        "bsn" => {
            let mut nl = Netlist::new();
            let ins: Vec<Net> = (0..m_inputs).map(|j| nl.input(format!("s{j}"))).collect();
            let outs = bnb_gates::components::bit_sorter(&mut nl, &ins);
            for (j, &o) in outs.iter().enumerate() {
                nl.output(format!("o{j}"), o);
            }
            (nl, format!("bsn_n{m_inputs}"))
        }
        other => return Err(err(format!("unknown --component '{other}'"))),
    };
    let netlist = if flags.present("--optimize") {
        let (opt, stats) = optimize(&netlist);
        let mut header = format!(
            "// optimized: {} -> {} gates ({:.1}% removed)\n",
            stats.original_gates,
            stats.optimized_gates,
            stats.reduction() * 100.0
        );
        header.push_str(&to_verilog(&opt, &name));
        return Ok(header);
    } else {
        netlist
    };
    Ok(to_verilog(&netlist, &name))
}

fn cmd_compare(flags: &Flags) -> Result<String, CliError> {
    let n = flags.usize_or("--inputs", 8)?;
    if !n.is_power_of_two() || !(2..=4096).contains(&n) {
        return Err(err("--inputs must be a power of two in 2..=4096"));
    }
    let m = n.trailing_zeros() as usize;
    let perm = perm_flag(flags, n, 1)?;
    let recs = records_for_permutation(&perm);
    let mut out = format!("permutation {perm} through every network:\n");
    for net in bnb_baselines::all_networks(m) {
        let verdict = match net.route(&recs) {
            Ok(delivered) if all_delivered(&delivered) => "delivered".to_string(),
            Ok(_) => "ROUTED BUT MISDELIVERED".to_string(),
            Err(e) => format!("error: {e}"),
        };
        let kind = if net.is_self_routing() {
            "self-routing"
        } else {
            "global"
        };
        out.push_str(&format!("  {:<28} [{kind:>12}] {verdict}\n", net.name()));
    }
    Ok(out)
}

fn cmd_sweep(flags: &Flags) -> Result<String, CliError> {
    use bnb_sim::loadsweep::{sweep, sweep_observed};
    use bnb_sim::scheduler::QueueDiscipline;
    use rand::SeedableRng;
    let n = flags.usize_or("--inputs", 16)?;
    if !n.is_power_of_two() || !(2..=1024).contains(&n) {
        return Err(err("--inputs must be a power of two in 2..=1024"));
    }
    let m = n.trailing_zeros() as usize;
    let rounds = flags.usize_or("--rounds", 2000)?;
    let discipline = match flags.value("--discipline").unwrap_or("voq") {
        "fifo" => QueueDiscipline::Fifo,
        "voq" => QueueDiscipline::Voq,
        other => return Err(err(format!("unknown --discipline '{other}'"))),
    };
    let metrics = metrics_flag(flags)?;
    let record_path = flags.value("--record");
    let loads = [0.1, 0.3, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0];
    let mut rng = rand::rngs::StdRng::seed_from_u64(42);
    let counters = Counters::new();
    let recorder = FlightRecorder::new().policy(sample_flag(flags)?);
    let result = (|| {
        let pts = if metrics.is_some() || record_path.is_some() {
            sweep_observed(
                m,
                discipline,
                &loads,
                rounds,
                &mut rng,
                &Fanout::new(&counters, &recorder),
            )
        } else {
            sweep(m, discipline, &loads, rounds, &mut rng)
        }
        .map_err(|e| CliError::caused_by("simulation failed", e))?;
        let mut out = format!(
            "{discipline:?} input-queued switch over the BNB fabric, N = {n}, {rounds} rounds\n"
        );
        out.push_str("offered  delivered  mean_delay  backlog\n");
        for p in pts {
            out.push_str(&format!(
                "{:>7.2}  {:>9.3}  {:>10.1}  {:>7}\n",
                p.offered, p.delivered, p.mean_delay, p.final_backlog
            ));
        }
        if let Some(format) = metrics {
            out.push_str(&render_metrics(format, &counters)?);
        }
        Ok(out)
    })();
    finish_recording(record_path, &recorder, result)
}

fn cmd_diagnose(flags: &Flags) -> Result<String, CliError> {
    use bnb_topology::record::Record;
    let n = flags.usize_or("--inputs", 8)?;
    if !n.is_power_of_two() || n < 2 {
        return Err(err("--inputs must be a power of two >= 2"));
    }
    let m = n.trailing_zeros() as usize;
    let Some(spec) = flags.value("--dests") else {
        return Err(err(
            "diagnose requires --dests a,b,c,... (one destination per input)",
        ));
    };
    let dests: Vec<usize> = spec
        .split(',')
        .map(|s| {
            s.trim()
                .parse()
                .map_err(|_| err(format!("bad destination '{s}'")))
        })
        .collect::<Result<_, _>>()?;
    if dests.len() != n {
        return Err(err(format!(
            "expected {n} destinations, got {}",
            dests.len()
        )));
    }
    let records: Vec<Record> = dests
        .iter()
        .enumerate()
        .map(|(i, &d)| Record::new(d, i as u64))
        .collect();
    let net = BnbNetwork::builder(m).data_width(64).build();
    let d = net
        .route_diagnosed(&records)
        .map_err(|e| CliError::caused_by("diagnosis failed", e))?;
    let mut out = String::new();
    if d.is_clean() {
        out.push_str("clean: all records delivered, no assumption violations\n");
    } else {
        for site in &d.unbalanced {
            out.push_str(&format!(
                "violated splitter: main stage {}, internal stage {}, lines {}..{}\n",
                site.main_stage,
                site.internal_stage,
                site.first_line,
                site.first_line + 1
            ));
        }
        out.push_str(&format!("misdelivered outputs: {:?}\n", d.misdelivered));
    }
    for (j, r) in d.outputs.iter().enumerate() {
        out.push_str(&format!(
            "output {j}: from input {} (wanted {})\n",
            r.data(),
            r.dest()
        ));
    }
    Ok(out)
}

/// Drives an engine for `cmd_engine`: submit `batches` random
/// permutations, drain everything, snapshot stats. Generic so the same
/// driver serves both the bare and the observed engine.
fn drive_engine<O: bnb_obs::Observer>(
    engine: &bnb_engine::Engine<O>,
    n: usize,
    batches: usize,
    seed: u64,
) -> bnb_engine::EngineStats {
    use rand::SeedableRng;
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    engine.run(|h| {
        for _ in 0..batches {
            h.submit(records_for_permutation(&Permutation::random(n, &mut rng)));
            while let Some(batch) = h.try_drain() {
                debug_assert!(batch.result.is_ok());
            }
        }
        while h.drain().is_some() {}
        h.stats()
    })
}

fn cmd_engine(flags: &Flags) -> Result<String, CliError> {
    use bnb_engine::{Engine, EngineConfig, ShardDepth};
    let n = flags.usize_or("--inputs", 256)?;
    if !n.is_power_of_two() || !(2..=1 << 20).contains(&n) {
        return Err(err("--inputs must be a power of two in 2..=1048576"));
    }
    let workers = flags.usize_or("--workers", 4)?;
    if workers == 0 || workers > 256 {
        return Err(err("--workers must be 1..=256"));
    }
    let batches = flags.usize_or("--batch", 64)?;
    if batches == 0 || batches > 1_000_000 {
        return Err(err("--batch must be 1..=1000000"));
    }
    let queue = flags.usize_or("--queue", 4)?;
    if queue == 0 {
        return Err(err("--queue must be >= 1"));
    }
    let shard_depth = match flags.value("--depth") {
        None | Some("auto") => ShardDepth::Auto,
        Some(v) => ShardDepth::Fixed(
            v.parse()
                .map_err(|_| err(format!("--depth expects 'auto' or an integer, got {v}")))?,
        ),
    };
    let seed = flags.usize_or("--seed", 0)? as u64;
    let metrics = metrics_flag(flags)?;
    let record_path = flags.value("--record");
    let net = BnbNetwork::builder_for(n)
        .map_err(|e| CliError::caused_by("network construction failed", e))?
        .build();
    let config = EngineConfig {
        workers,
        queue_capacity: queue,
        shard_depth,
    };
    let counters = Counters::new();
    // Each engine worker lands in its own recorder lane, so the merged
    // Chrome trace shows per-worker activity on separate tid rows.
    let recorder = FlightRecorder::new().policy(sample_flag(flags)?);
    let result = (|| {
        let stats = if metrics.is_some() || record_path.is_some() {
            drive_engine(
                &Engine::with_observer(net, config, Fanout::new(&counters, &recorder)),
                n,
                batches,
                seed,
            )
        } else {
            drive_engine(&Engine::new(net, config), n, batches, seed)
        };
        let json = if flags.present("--pretty") {
            serde_json::to_string_pretty(&stats)
        } else {
            serde_json::to_string(&stats)
        }
        .map_err(|e| err(format!("stats serialization failed: {e}")))?;
        let mut out = format!("{json}\n");
        if let Some(format) = metrics {
            out.push_str(&render_metrics(format, &counters)?);
        }
        Ok(out)
    })();
    finish_recording(record_path, &recorder, result)
}

/// Parses one `M.I.E:kind` fault spec (e.g. `1.0.3:stuck1`).
fn parse_fault_spec(spec: &str) -> Result<bnb_core::HardwareFault, CliError> {
    use bnb_core::{FaultKind, FaultSite};
    let bad = || {
        err(format!(
            "--faults expects M.I.E:kind (kinds: stuck0 stuck1 arbiter link), got '{spec}'"
        ))
    };
    let (site, kind) = spec.split_once(':').ok_or_else(bad)?;
    let mut parts = site.split('.');
    let mut field = || -> Result<usize, CliError> {
        parts
            .next()
            .and_then(|v| v.trim().parse().ok())
            .ok_or_else(bad)
    };
    let (main_stage, internal_stage, element) = (field()?, field()?, field()?);
    if parts.next().is_some() {
        return Err(bad());
    }
    let kind = match kind.trim() {
        "stuck0" => FaultKind::StuckStraight,
        "stuck1" => FaultKind::StuckExchange,
        "arbiter" => FaultKind::DeadArbiter,
        "link" => FaultKind::BrokenLink,
        _ => return Err(bad()),
    };
    Ok(bnb_core::HardwareFault {
        site: FaultSite::new(main_stage, internal_stage, element),
        kind,
    })
}

/// `bnb faults --chaos`: replay randomized fault schedules (inject,
/// flap, clear) against the live-repair engine under traffic. Every
/// schedule is generated from `--seed + index`, so any reported failure
/// names the exact seed that reproduces it.
fn cmd_faults_chaos(flags: &Flags, m: usize, n: usize) -> Result<String, CliError> {
    use bnb_sim::chaos::{chaos_engine_campaign, ChaosReport, ChaosSchedule};
    let schedules = flags.usize_or("--trials", 100)?;
    if schedules == 0 || schedules > 100_000 {
        return Err(err("--trials must be 1..=100000"));
    }
    let frames = flags.usize_or("--frames", 40)?;
    if frames == 0 || frames > 1_000_000 {
        return Err(err("--frames must be 1..=1000000"));
    }
    let shards = flags.usize_or("--shards", 2)?;
    if shards == 0 || shards > 64 {
        return Err(err("--shards must be 1..=64"));
    }
    let ops = flags.usize_or("--ops", 8)?;
    if ops > 10_000 {
        return Err(err("--ops must be <= 10000"));
    }
    let workers = flags.usize_or("--workers", 2)?;
    if workers == 0 || workers > 64 {
        return Err(err("--workers must be 1..=64"));
    }
    let seed = flags.usize_or("--seed", 0)? as u64;
    let metrics = metrics_flag(flags)?;
    let counters = Counters::new();

    #[derive(serde::Serialize)]
    struct ChaosRun {
        schedule: ChaosSchedule,
        report: ChaosReport,
    }
    let mut runs: Vec<ChaosRun> = Vec::with_capacity(schedules);
    let mut failed: Vec<u64> = Vec::new();
    for i in 0..schedules {
        let schedule = ChaosSchedule::generate(m, shards, frames, ops, seed.wrapping_add(i as u64));
        let report = chaos_engine_campaign(&schedule, workers, &counters);
        if !report.holds() {
            failed.push(schedule.seed);
        }
        runs.push(ChaosRun { schedule, report });
    }

    let total = |f: fn(&ChaosReport) -> usize| -> usize { runs.iter().map(|r| f(&r.report)).sum() };
    let mut out = format!(
        "chaos campaign: N = {n}, {shards} fabric shard(s), {workers} worker(s), \
         {schedules} schedule(s) x {frames} frame(s), {ops} fault op(s) each, base seed {seed}\n"
    );
    out.push_str(&format!(
        "  frames:  {} submitted, {} delivered, {} quarantined, {} misdelivered\n",
        total(|r| r.frames_submitted),
        total(|r| r.frames_delivered),
        total(|r| r.frames_quarantined),
        total(|r| r.frames_misdelivered),
    ));
    out.push_str(&format!(
        "  faults:  {} injected, {} cleared\n",
        total(|r| r.faults_injected),
        total(|r| r.faults_cleared),
    ));
    let recovered = runs.iter().filter(|r| r.report.recovered).count();
    out.push_str(&format!(
        "  repair:  {recovered}/{schedules} schedule(s) recovered full capacity\n"
    ));
    if let Some(path) = flags.value("--out") {
        let json = serde_json::to_string(&runs)
            .map_err(|e| CliError::caused_by("chaos run serialization failed", e))?;
        std::fs::write(path, &json)
            .map_err(|e| CliError::caused_by(format!("cannot write {path}"), e))?;
        out.push_str(&format!("  wrote {} run(s) to {path}\n", runs.len()));
    }
    if let Some(format) = metrics {
        out.push_str(&render_metrics(format, &counters)?);
    }
    if !failed.is_empty() {
        return Err(err(format!(
            "chaos contract violated for {} of {schedules} schedule(s); reproduce with \
             --chaos --seed S --trials 1 for S in {failed:?}",
            failed.len()
        )));
    }
    out.push_str("  contract: zero silent misdeliveries, ledgers balanced, capacity recovered\n");
    Ok(out)
}

fn cmd_faults(flags: &Flags) -> Result<String, CliError> {
    use bnb_core::FaultMap;
    use bnb_sim::faults::{degraded_sweep, hardware_campaign, random_hardware_campaign};
    use rand::SeedableRng;
    let n = flags.usize_or("--inputs", 8)?;
    if !n.is_power_of_two() || !(4..=1 << 16).contains(&n) {
        return Err(err("--inputs must be a power of two in 4..=65536"));
    }
    let m = n.trailing_zeros() as usize;
    if flags.present("--chaos") {
        return cmd_faults_chaos(flags, m, n);
    }
    let trials = flags.usize_or("--trials", 200)?;
    if trials == 0 || trials > 1_000_000 {
        return Err(err("--trials must be 1..=1000000"));
    }
    let frames = flags.usize_or("--frames", 50)?;
    if frames == 0 || frames > 1_000_000 {
        return Err(err("--frames must be 1..=1000000"));
    }
    let seed = flags.usize_or("--seed", 0)? as u64;
    let metrics = metrics_flag(flags)?;
    let map = match flags.value("--faults") {
        None => None,
        Some(list) => {
            let map: FaultMap = list
                .split(',')
                .map(parse_fault_spec)
                .collect::<Result<_, _>>()?;
            if !map.in_bounds(m) {
                return Err(err(format!(
                    "--faults names an element outside the N = {n} topology"
                )));
            }
            Some(map)
        }
    };
    let record_path = flags.value("--record");
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let counters = Counters::new();
    let recorder = FlightRecorder::new().policy(sample_flag(flags)?);
    let fanout = Fanout::new(&counters, &recorder);
    let result = (|| {
        let report = match &map {
            Some(map) => hardware_campaign(m, map, trials, &mut rng, &fanout),
            None => random_hardware_campaign(m, trials, &mut rng, &fanout),
        };
        let mut out = format!(
            "hardware-fault campaign: N = {n}, {} per trial, {} trials\n",
            match &map {
                Some(map) => format!("{} pinned fault(s)", map.len()),
                None => "1 random fault".to_string(),
            },
            report.trials,
        );
        if let Some(map) = &map {
            for fault in map.iter() {
                out.push_str(&format!(
                    "  fault: {} at main stage {}, internal stage {}, element {}\n",
                    fault.kind,
                    fault.site.main_stage,
                    fault.site.internal_stage,
                    fault.site.element
                ));
            }
        }
        out.push_str(&format!(
            "  strict:     {} detected, {} routed correctly, {} misdelivered\n",
            report.strict_detected, report.strict_correct, report.strict_misdelivered
        ));
        out.push_str(&format!(
            "  permissive: {} trials misdelivered ({} records total)\n",
            report.permissive_misdelivered_trials, report.permissive_misdelivered_records
        ));
        if let Some(counts) = flags.value("--sweep") {
            let counts: Vec<usize> = counts
                .split(',')
                .map(|s| {
                    s.trim()
                        .parse()
                        .map_err(|_| err(format!("--sweep expects integers, got {s}")))
                })
                .collect::<Result<_, _>>()?;
            out.push_str("degraded throughput (permissive, random faults):\n");
            out.push_str("  faults  delivered_fraction\n");
            for point in degraded_sweep(m, &counts, frames, &mut rng) {
                out.push_str(&format!(
                    "  {:>6}  {:>10.4}  ({}/{} records over {} frames)\n",
                    point.faults,
                    point.delivered_fraction,
                    point.delivered,
                    point.records,
                    point.frames
                ));
            }
        }
        match metrics {
            Some(MetricsFormat::Json) => {
                let report_json = serde_json::to_string(&report)
                    .map_err(|e| CliError::caused_by("fault report serialization failed", e))?;
                let metrics_json = bnb_obs::render_json(&counters.snapshot())
                    .map_err(|e| CliError::caused_by("metrics serialization failed", e))?;
                out.push_str(&format!("{report_json}\n{metrics_json}\n"));
            }
            Some(format) => out.push_str(&render_metrics(format, &counters)?),
            None => {}
        }
        Ok(out)
    })();
    finish_recording(record_path, &recorder, result)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_str(args: &[&str]) -> Result<String, CliError> {
        let v: Vec<String> = args.iter().map(|s| s.to_string()).collect();
        run(&v)
    }

    #[test]
    fn no_args_prints_usage() {
        let out = run_str(&[]).unwrap();
        assert!(out.contains("usage: bnb"));
        assert_eq!(run_str(&["help"]).unwrap(), out);
    }

    #[test]
    fn bench_json_round_trips() {
        let out = run_str(&[
            "bench", "--min-m", "2", "--max-m", "4", "--frames", "2", "--min-ms", "1", "--json",
        ])
        .unwrap();
        let report: bench::BenchReport = serde_json::from_str(out.trim()).unwrap();
        assert_eq!(report.frames, 2);
        // One packed, one scalar, and one batched row per size, in order.
        assert_eq!(report.rows.len(), 9);
        for m in 2..=4usize {
            for kernel in ["packed", "scalar", "batched"] {
                let row = report
                    .rows
                    .iter()
                    .find(|r| r.m == m && r.kernel == kernel)
                    .unwrap_or_else(|| panic!("missing row {kernel}/{m}"));
                assert!(row.ns_per_frame > 0.0);
                assert!(row.cells_per_s > 0.0);
                assert_eq!(row.word_bits, 64);
                assert_eq!(row.batch, if kernel == "batched" { 64 } else { 1 });
            }
        }
    }

    #[test]
    fn bench_table_and_out_file() {
        let path = std::env::temp_dir().join(format!("bnb_bench_{}.json", std::process::id()));
        let path = path.to_str().unwrap().to_string();
        let out = run_str(&[
            "bench", "--min-m", "2", "--max-m", "2", "--frames", "1", "--min-ms", "1", "--out",
            &path,
        ])
        .unwrap();
        assert!(out.contains("routing-kernel benchmark"));
        assert!(out.contains("batched cells/s"));
        let written = std::fs::read_to_string(&path).unwrap();
        std::fs::remove_file(&path).unwrap();
        let report: bench::BenchReport = serde_json::from_str(&written).unwrap();
        assert_eq!(report.rows.len(), 3);
    }

    #[test]
    fn bench_rejects_bad_sizes() {
        let e = run_str(&["bench", "--min-m", "9", "--max-m", "4"]).unwrap_err();
        assert!(e.to_string().contains("--min-m"));
    }

    #[test]
    fn unknown_command_is_an_error() {
        let e = run_str(&["frobnicate"]).unwrap_err();
        assert!(e.to_string().contains("unknown command"));
    }

    #[test]
    fn route_with_explicit_permutation() {
        let out = run_str(&["route", "--inputs", "4", "--perm", "2,0,3,1"]).unwrap();
        assert!(out.contains("delivered: true"));
        assert!(out.contains("output 0: from input 1"));
    }

    #[test]
    fn route_with_trace() {
        let out = run_str(&["route", "--inputs", "4", "--perm", "2,0,3,1", "--trace"]).unwrap();
        assert!(out.contains("col 0.0"));
        assert!(out.contains("columns: 3"));
    }

    #[test]
    fn route_validates_input() {
        assert!(run_str(&["route", "--inputs", "5"]).is_err());
        assert!(run_str(&["route", "--inputs", "4", "--perm", "1,1,2,3"]).is_err());
        assert!(run_str(&["route", "--inputs", "4", "--perm", "0,1"]).is_err());
        assert!(run_str(&["route", "--inputs", "4", "--perm", "a,b,c,d"]).is_err());
    }

    #[test]
    fn route_defaults_to_seeded_random() {
        let a = run_str(&["route"]).unwrap();
        let b = run_str(&["route"]).unwrap();
        assert_eq!(a, b, "default route must be deterministic");
        assert!(a.contains("delivered: true"));
    }

    #[test]
    fn tables_render() {
        let out = run_str(&["tables", "--sizes", "3,4", "--data-width", "0"]).unwrap();
        assert!(out.contains("Table 1"));
        assert!(out.contains("Table 2"));
        assert!(run_str(&["tables", "--sizes", "0"]).is_err());
        assert!(run_str(&["tables", "--sizes", "x"]).is_err());
    }

    #[test]
    fn figures_render() {
        let out = run_str(&["figures"]).unwrap();
        assert!(out.contains("Fig. 1"));
        assert!(out.contains("sp(3)"));
    }

    #[test]
    fn ratios_render() {
        let out = run_str(&["ratios", "--sizes", "3,5"]).unwrap();
        assert!(out.contains("hardware ratio"));
    }

    #[test]
    fn crossover_renders() {
        let out = run_str(&["crossover"]).unwrap();
        assert!(out.contains("Crossover findings"));
    }

    #[test]
    fn verilog_for_each_component() {
        for component in ["bnb", "batcher", "splitter", "bsn"] {
            let out = run_str(&["verilog", "--component", component, "--inputs", "4"]).unwrap();
            assert!(out.contains("module"), "{component}");
            assert!(out.contains("endmodule"), "{component}");
        }
    }

    #[test]
    fn verilog_optimize_flag_reports_stats() {
        let out = run_str(&[
            "verilog",
            "--component",
            "bsn",
            "--inputs",
            "8",
            "--optimize",
        ])
        .unwrap();
        assert!(out.starts_with("// optimized:"));
        assert!(out.contains("endmodule"));
    }

    #[test]
    fn compare_routes_through_the_fleet() {
        let out = run_str(&["compare", "--inputs", "8"]).unwrap();
        assert!(out.contains("BNB"));
        assert!(out.contains("Benes"));
        assert!(out.matches("delivered").count() >= 8);
        assert!(!out.contains("MISDELIVERED"));
        assert!(run_str(&["compare", "--inputs", "3"]).is_err());
    }

    #[test]
    fn sweep_prints_curve() {
        let out = run_str(&["sweep", "--inputs", "8", "--rounds", "50"]).unwrap();
        assert!(out.contains("offered"));
        assert!(out.lines().count() >= 10);
        assert!(run_str(&["sweep", "--inputs", "7"]).is_err());
        assert!(run_str(&["sweep", "--discipline", "lifo"]).is_err());
    }

    #[test]
    fn diagnose_reports_conflicts() {
        // Duplicate destination 1 at inputs 0 and 2.
        let out = run_str(&["diagnose", "--inputs", "4", "--dests", "1,0,1,3"]).unwrap();
        assert!(out.contains("violated splitter"));
        assert!(out.contains("misdelivered"));
        // A clean permutation.
        let out = run_str(&["diagnose", "--inputs", "4", "--dests", "2,0,3,1"]).unwrap();
        assert!(out.starts_with("clean:"));
        // Missing flag.
        assert!(run_str(&["diagnose", "--inputs", "4"]).is_err());
        assert!(run_str(&["diagnose", "--inputs", "4", "--dests", "1,2"]).is_err());
    }

    #[test]
    fn engine_emits_json_stats() {
        let out = run_str(&[
            "engine",
            "--inputs",
            "64",
            "--workers",
            "2",
            "--batch",
            "10",
        ])
        .unwrap();
        let stats: bnb_engine::EngineStats = serde_json::from_str(out.trim()).unwrap();
        assert_eq!(stats.workers, 2);
        assert_eq!(stats.batches, 10);
        assert_eq!(stats.records, 640);
        assert_eq!(stats.errors, 0);
        assert!(stats.records_per_sec > 0.0);
    }

    #[test]
    fn engine_pretty_and_fixed_depth() {
        let out = run_str(&[
            "engine",
            "--inputs",
            "16",
            "--workers",
            "1",
            "--batch",
            "3",
            "--depth",
            "2",
            "--pretty",
        ])
        .unwrap();
        assert!(out.contains("\n  \"workers\": 1"), "pretty JSON expected");
        let stats: bnb_engine::EngineStats = serde_json::from_str(out.trim()).unwrap();
        assert_eq!(stats.shard_depth, 2);
    }

    #[test]
    fn engine_validates_flags() {
        assert!(run_str(&["engine", "--inputs", "3"]).is_err());
        assert!(run_str(&["engine", "--workers", "0"]).is_err());
        assert!(run_str(&["engine", "--batch", "0"]).is_err());
        assert!(run_str(&["engine", "--queue", "0"]).is_err());
        assert!(run_str(&["engine", "--depth", "fast"]).is_err());
    }

    #[test]
    fn cli_error_preserves_cause_chain() {
        let e = CliError::caused_by(
            "routing failed",
            bnb_core::RouteError::WidthMismatch {
                expected: 8,
                actual: 3,
            },
        );
        assert_eq!(e.to_string(), "routing failed");
        let cause = e.source().expect("wrapped errors expose their cause");
        assert!(cause.to_string().contains('8'), "{cause}");
        assert!(CliError::usage("bad flag").source().is_none());
    }

    #[test]
    fn route_metrics_text_matches_closed_form() {
        // m = 2: a full route visits m(m+1)/2 = 3 columns.
        let out = run_str(&[
            "route",
            "--inputs",
            "4",
            "--perm",
            "2,0,3,1",
            "--metrics",
            "text",
        ])
        .unwrap();
        assert!(out.contains("delivered: true"));
        assert!(out.contains("columns"));
        assert!(out
            .lines()
            .any(|l| l.starts_with("columns") && l.ends_with('3')));
    }

    #[test]
    fn route_metrics_json_parses() {
        let out = run_str(&[
            "route",
            "--inputs",
            "8",
            "--perm",
            "6,2,7,0,4,1,3,5",
            "--metrics",
            "json",
        ])
        .unwrap();
        let json_line = out.lines().last().unwrap();
        let snap: bnb_obs::MetricsSnapshot = serde_json::from_str(json_line).unwrap();
        assert_eq!(snap.columns, 6, "m=3 routes m(m+1)/2 columns");
        assert_eq!(snap.conflicts, 0);
    }

    #[test]
    fn sweep_metrics_json_reports_rounds() {
        let out = run_str(&[
            "sweep",
            "--inputs",
            "8",
            "--rounds",
            "40",
            "--metrics",
            "json",
        ])
        .unwrap();
        let snap: bnb_obs::MetricsSnapshot =
            serde_json::from_str(out.lines().last().unwrap()).unwrap();
        assert_eq!(
            snap.scheduler_rounds,
            8 * 40,
            "one event per round per load point"
        );
        assert!(snap.records_matched > 0, "sweeps deliver records");
    }

    #[test]
    fn engine_metrics_json_emits_both_documents() {
        let out = run_str(&[
            "engine",
            "--inputs",
            "64",
            "--workers",
            "2",
            "--batch",
            "10",
            "--metrics",
            "json",
        ])
        .unwrap();
        let mut lines = out.lines();
        let stats: bnb_engine::EngineStats = serde_json::from_str(lines.next().unwrap()).unwrap();
        let snap: bnb_obs::MetricsSnapshot = serde_json::from_str(lines.next().unwrap()).unwrap();
        assert_eq!(stats.batches, 10);
        assert_eq!(snap.batches_submitted, 10);
        assert_eq!(snap.batches_drained, 10);
        assert_eq!(snap.batch_errors, 0);
        assert_eq!(snap.histogram.count(), 10);
        assert!(!snap.per_stage.is_empty(), "per-stage counters must appear");
    }

    #[test]
    fn engine_metrics_text_renders() {
        let out = run_str(&[
            "engine",
            "--inputs",
            "16",
            "--workers",
            "1",
            "--batch",
            "2",
            "--metrics",
            "text",
        ])
        .unwrap();
        assert!(out.contains("batches_drained"));
        assert!(out.contains("per-stage"));
    }

    #[test]
    fn metrics_flag_validates() {
        assert!(run_str(&["route", "--metrics", "yaml"]).is_err());
        assert!(run_str(&["engine", "--metrics", "csv"]).is_err());
        assert!(run_str(&["sweep", "--metrics", ""]).is_err());
        assert!(run_str(&["trace", "--metrics", "xml"]).is_err());
    }

    #[test]
    fn route_metrics_prom_renders_exposition_format() {
        let out = run_str(&[
            "route",
            "--inputs",
            "4",
            "--perm",
            "2,0,3,1",
            "--metrics",
            "prom",
        ])
        .unwrap();
        assert!(out.contains("# HELP bnb_columns_total"));
        assert!(out.contains("# TYPE bnb_columns_total counter"));
        assert!(
            out.lines().any(|l| l == "bnb_columns_total 3"),
            "m = 2 routes m(m+1)/2 = 3 columns:\n{out}"
        );
        assert!(out.contains("bnb_stage_columns_total{stage=\"0\"}"));
    }

    #[test]
    fn trace_renders_verified_paths() {
        let out = run_str(&["trace", "--inputs", "4", "--perm", "2,0,3,1"]).unwrap();
        for d in 0..4 {
            assert!(out.contains(&format!("cell {d}\n")), "{out}");
        }
        // N = 4, m = 2: N * m(m+1)/2 = 12 hops, N * m = 8 at main columns.
        assert!(out.contains("hops: 12 (8 main-stage)"), "{out}");
        assert!(out.contains("paths verified: 4"), "{out}");
        assert!(out.contains("delivered: true"), "{out}");
    }

    #[test]
    fn trace_dest_filter_shows_one_path() {
        let out = run_str(&["trace", "--inputs", "4", "--perm", "2,0,3,1", "--dest", "2"]).unwrap();
        assert!(out.contains("cell 2\n"));
        assert!(!out.contains("cell 0\n"), "{out}");
        assert!(run_str(&["trace", "--inputs", "4", "--dest", "9"]).is_err());
        assert!(run_str(&["trace", "--inputs", "4", "--dest", "x"]).is_err());
    }

    #[test]
    fn trace_defaults_are_deterministic() {
        let a = run_str(&["trace"]).unwrap();
        let b = run_str(&["trace"]).unwrap();
        assert_eq!(a, b);
        assert!(a.contains("paths verified: 8"));
    }

    fn temp_trace_path(tag: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("bnb_cli_{tag}_{}.json", std::process::id()))
    }

    #[test]
    fn record_flag_writes_chrome_trace_json() {
        let path = temp_trace_path("route");
        let path_str = path.to_str().unwrap();
        let out = run_str(&[
            "route", "--inputs", "4", "--perm", "2,0,3,1", "--record", path_str,
        ])
        .unwrap();
        assert!(out.contains("recorded ") && out.contains(path_str), "{out}");
        let json = std::fs::read_to_string(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert!(json.starts_with("{\"displayTimeUnit\":\"ns\""), "{json}");
        assert!(json.contains("\"traceEvents\""));
        assert!(json.contains("\"ph\":"), "events expected: {json}");
    }

    #[test]
    fn engine_record_merges_worker_lanes_into_one_trace() {
        let path = temp_trace_path("engine");
        let path_str = path.to_str().unwrap();
        let out = run_str(&[
            "engine",
            "--inputs",
            "16",
            "--workers",
            "2",
            "--batch",
            "3",
            "--record",
            path_str,
            "--metrics",
            "prom",
        ])
        .unwrap();
        assert!(out.contains("bnb_batches_drained_total 3"), "{out}");
        let json = std::fs::read_to_string(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert!(json.contains("\"name\":\"drain\""), "{json}");
        assert!(json.contains("\"name\":\"submit\""), "{json}");
        assert!(json.contains("thread_name"), "lane metadata expected");
    }

    #[test]
    fn sweep_and_faults_accept_record() {
        for (tag, args) in [
            ("sweep", vec!["sweep", "--inputs", "8", "--rounds", "20"]),
            ("faults", vec!["faults", "--inputs", "8", "--trials", "10"]),
        ] {
            let path = temp_trace_path(tag);
            let path_str = path.to_str().unwrap().to_string();
            let mut args: Vec<&str> = args;
            args.push("--record");
            args.push(&path_str);
            let out = run_str(&args).unwrap();
            assert!(out.contains("recorded "), "{tag}: {out}");
            let json = std::fs::read_to_string(&path).unwrap();
            std::fs::remove_file(&path).ok();
            assert!(json.contains("\"traceEvents\""), "{tag}");
        }
    }

    #[test]
    fn sample_errors_keeps_a_clean_route_trace_empty() {
        let path = temp_trace_path("sample");
        let path_str = path.to_str().unwrap();
        let out = run_str(&[
            "route", "--inputs", "4", "--perm", "2,0,3,1", "--record", path_str, "--sample",
            "errors",
        ])
        .unwrap();
        assert!(out.contains("recorded 0 span(s)"), "{out}");
        assert!(out.contains("sampled out"), "{out}");
        let json = std::fs::read_to_string(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(
            json.matches("\"ph\":").count(),
            1,
            "clean route, errors-only sampling: metadata event only\n{json}"
        );
        assert!(run_str(&["route", "--sample", "sometimes"]).is_err());
        assert!(run_str(&["route", "--sample", "0"]).is_err());
    }

    #[test]
    fn record_to_unwritable_path_is_an_error() {
        let e = run_str(&[
            "route",
            "--inputs",
            "4",
            "--perm",
            "2,0,3,1",
            "--record",
            "/nonexistent-dir/trace.json",
        ])
        .unwrap_err();
        assert!(e.to_string().contains("failed to write recording"));
        assert!(e.source().is_some(), "io cause must be preserved");
    }

    #[test]
    fn verilog_validates_flags() {
        assert!(run_str(&["verilog", "--inputs", "3"]).is_err());
        assert!(run_str(&["verilog", "--component", "nope"]).is_err());
        assert!(run_str(&["verilog", "--data-width", "99"]).is_err());
    }

    #[test]
    fn faults_random_campaign_reports_coverage() {
        let out = run_str(&["faults", "--inputs", "8", "--trials", "40", "--seed", "7"]).unwrap();
        assert!(out.contains("hardware-fault campaign: N = 8, 1 random fault"));
        assert!(out.contains("misdelivered"));
        assert!(
            out.contains("0 misdelivered"),
            "strict must never silently misdeliver:\n{out}"
        );
    }

    #[test]
    fn faults_pinned_fault_and_sweep() {
        let out = run_str(&[
            "faults",
            "--inputs",
            "8",
            "--faults",
            "1.0.0:stuck1",
            "--trials",
            "30",
            "--sweep",
            "0,2",
            "--frames",
            "10",
        ])
        .unwrap();
        assert!(out.contains("1 pinned fault(s)"));
        assert!(out.contains("stuck-exchange at main stage 1, internal stage 0, element 0"));
        assert!(out.contains("degraded throughput"));
        assert!(
            out.contains("1.0000"),
            "zero faults delivers everything:\n{out}"
        );
    }

    #[test]
    fn faults_metrics_json_emits_report_then_snapshot() {
        let out = run_str(&[
            "faults",
            "--inputs",
            "8",
            "--trials",
            "25",
            "--seed",
            "3",
            "--metrics",
            "json",
        ])
        .unwrap();
        let lines: Vec<&str> = out.trim_end().lines().collect();
        let report: bnb_sim::faults::FaultReport =
            serde_json::from_str(lines[lines.len() - 2]).expect("penultimate line is FaultReport");
        assert_eq!(report.m, 3);
        assert_eq!(report.trials, 25);
        assert_eq!(report.strict_misdelivered, 0);
        let snapshot: bnb_obs::MetricsSnapshot =
            serde_json::from_str(lines[lines.len() - 1]).expect("last line is MetricsSnapshot");
        assert_eq!(
            snapshot.hardware_faults, report.strict_detected as u64,
            "counters must agree with the report"
        );
    }

    #[test]
    fn faults_chaos_campaign_holds() {
        let out = run_str(&[
            "faults", "--chaos", "--inputs", "8", "--trials", "3", "--frames", "20", "--ops", "4",
            "--seed", "11",
        ])
        .unwrap();
        assert!(out.contains("chaos campaign: N = 8"), "{out}");
        assert!(out.contains("base seed 11"), "{out}");
        assert!(out.contains("0 misdelivered"), "{out}");
        assert!(out.contains("3/3 schedule(s) recovered"), "{out}");
        assert!(out.contains("contract: zero silent misdeliveries"), "{out}");
    }

    #[test]
    fn faults_chaos_out_writes_schedules_and_reports() {
        let path = std::env::temp_dir().join(format!("bnb_chaos_{}.json", std::process::id()));
        let path_str = path.to_str().unwrap().to_string();
        let out = run_str(&[
            "faults", "--chaos", "--inputs", "8", "--trials", "2", "--frames", "10", "--ops", "3",
            "--out", &path_str,
        ])
        .unwrap();
        assert!(out.contains("wrote 2 run(s)"), "{out}");
        let json = std::fs::read_to_string(&path).unwrap();
        std::fs::remove_file(&path).ok();
        #[derive(serde::Deserialize)]
        struct Run {
            schedule: bnb_sim::ChaosSchedule,
            report: bnb_sim::ChaosReport,
        }
        let runs: Vec<Run> = serde_json::from_str(&json).unwrap();
        assert_eq!(runs.len(), 2);
        assert_eq!(runs[0].schedule.seed, 0);
        assert_eq!(runs[1].schedule.seed, 1);
        assert_eq!(runs[0].report.frames_misdelivered, 0);
        assert!(runs[0].report.recovered);
    }

    #[test]
    fn faults_chaos_validates_flags() {
        assert!(run_str(&["faults", "--chaos", "--trials", "0"]).is_err());
        assert!(run_str(&["faults", "--chaos", "--shards", "0"]).is_err());
        assert!(run_str(&["faults", "--chaos", "--workers", "0"]).is_err());
        assert!(run_str(&["faults", "--chaos", "--ops", "99999"]).is_err());
        assert!(run_str(&["faults", "--chaos", "--frames", "0"]).is_err());
    }

    #[test]
    fn faults_validates_flags() {
        assert!(run_str(&["faults", "--inputs", "3"]).is_err());
        assert!(run_str(&["faults", "--trials", "0"]).is_err());
        assert!(run_str(&["faults", "--faults", "nonsense"]).is_err());
        assert!(run_str(&["faults", "--faults", "1.0:stuck1"]).is_err());
        assert!(run_str(&["faults", "--faults", "0.0.0:melted"]).is_err());
        assert!(run_str(&["faults", "--inputs", "8", "--faults", "9.0.0:link"]).is_err());
        assert!(run_str(&["faults", "--sweep", "two"]).is_err());
        assert!(run_str(&["faults", "--metrics", "xml"]).is_err());
    }

    #[test]
    fn serve_and_loadgen_validate_flags() {
        // Flag validation happens before any socket is bound or dialed.
        assert!(run_str(&["serve", "--inputs", "12"]).is_err());
        assert!(run_str(&["serve", "--inputs", "1"]).is_err());
        assert!(run_str(&["serve", "--queue", "many"]).is_err());
        assert!(run_str(&["serve", "--read-timeout-ms", "soon"]).is_err());
        assert!(run_str(&["serve", "--shards", "0"]).is_err());
        assert!(run_str(&["serve", "--chaos-ops", "99999"]).is_err());
        assert!(run_str(&["serve", "--chaos-interval-ms", "soon"]).is_err());
        assert!(run_str(&["loadgen", "--mode", "sideways"]).is_err());
        assert!(run_str(&["loadgen", "--mode", "open", "--qps", "-3"]).is_err());
        assert!(run_str(&["loadgen", "--tenants", "0"]).is_err());
        assert!(run_str(&["loadgen", "--tenants", "70000"]).is_err());
        assert!(run_str(&["loadgen", "--inputs", "63"]).is_err());
        assert!(run_str(&["loadgen", "--frames", "lots"]).is_err());
    }

    #[test]
    fn serve_refuses_an_unbindable_address() {
        let err = run_str(&["serve", "--addr", "256.0.0.1:0"]).unwrap_err();
        assert!(err.to_string().contains("cannot bind"));
        assert!(err.source().is_some(), "bind failure keeps its io cause");
    }

    #[test]
    fn loadgen_reports_an_unreachable_server() {
        // Bind-then-drop guarantees a port with no listener behind it.
        let port = {
            let sock = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
            sock.local_addr().unwrap().port()
        };
        let err = run_str(&[
            "loadgen",
            "--addr",
            &format!("127.0.0.1:{port}"),
            "--tenants",
            "1",
            "--frames",
            "1",
        ])
        .unwrap_err();
        assert!(err.to_string().contains("load generation"));
    }

    #[test]
    fn usage_mentions_serving_commands() {
        let out = usage();
        assert!(out.contains("serve"));
        assert!(out.contains("loadgen"));
        assert!(out.contains("Prometheus"));
    }
}
