//! `bnb bench` — the routing-kernel micro-benchmark behind the repo's
//! `BENCH_routing.json` trajectory.
//!
//! Routes seeded random frames through three kernels — the scalar oracle
//! ([`Kernel::Scalar`]), the single-frame bit-packed word-parallel path
//! ([`Kernel::Packed`] via [`RouteSpan`]), and the frame-batched kernel
//! ([`route_batch`] over a [`FrameBatch`] of `--batch` frames) — and
//! reports nanoseconds per frame and cells per second for each. Every row
//! is self-describing: kernel name, batch size, and SWAR word width, so
//! the checked-in baseline can accumulate rows from different kernel
//! generations without ambiguity. The CI bench-smoke job re-parses the
//! `--json` output and gates on packed > scalar at m ≥ 8, batched >
//! packed at m ≥ 10, and batched flatness (m = 12 within 3x of m = 4
//! cells/s); a full-size run (`bnb bench --out BENCH_routing.json`) is
//! checked in so future PRs have a baseline to diff against.

use std::fmt::Write as _;
use std::hint::black_box;
use std::time::Instant;

use bnb_core::batch::{route_batch, BatchOutcome, FrameBatch};
use bnb_core::network::BnbNetwork;
use bnb_core::stages::{Kernel, RouteSpan, StageScratch};
use bnb_topology::perm::Permutation;
use bnb_topology::record::{records_for_permutation, Record};
use serde::{Deserialize, Serialize};

use crate::{err, CliError, Flags};

/// One benchmark measurement: a kernel variant at a size.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BenchRow {
    /// Kernel name: `"scalar"`, `"packed"`, or `"batched"`.
    pub kernel: String,
    /// Network size exponent (`N = 2^m` cells per frame).
    pub m: usize,
    /// Frames routed per kernel invocation (1 for the per-frame kernels).
    pub batch: usize,
    /// SWAR word width in bits (64 for the packed kernels; 64 recorded
    /// for scalar too — it is the unit the packed paths are held against).
    pub word_bits: usize,
    /// Mean wall-clock nanoseconds to route one full frame.
    pub ns_per_frame: f64,
    /// Routed cell throughput implied by `ns_per_frame`.
    pub cells_per_s: f64,
}

/// The full `bnb bench` document, as printed by `--json` and written by
/// `--out`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BenchReport {
    /// Distinct seeded frames cycled through per measurement pass.
    pub frames: usize,
    /// Measurements, ordered by size then kernel (packed first).
    pub rows: Vec<BenchRow>,
}

/// Times one per-frame kernel at one size: cycles through `frames`
/// pre-generated permutation frames, repeating whole passes until the
/// measurement window is long enough to trust (`min_ns`, at least two
/// passes after one warm-up pass). Returns mean ns per routed frame.
fn time_kernel(
    net: &BnbNetwork,
    frames: &[Vec<Record>],
    scratch: &mut StageScratch,
    buf: &mut Vec<Record>,
    kernel: Kernel,
    min_ns: u128,
) -> f64 {
    let m = net.m();
    let span = RouteSpan::new().kernel(kernel);
    let pass = |scratch: &mut StageScratch, buf: &mut Vec<Record>| {
        for frame in frames {
            buf.copy_from_slice(frame);
            span.run(net, buf, 0, 0..m, scratch).unwrap();
            black_box(buf.last());
        }
    };
    // Warm-up sizes the scratch buffers and faults in the frame data.
    pass(scratch, buf);
    let mut routed = 0u64;
    let start = Instant::now();
    loop {
        pass(scratch, buf);
        routed += frames.len() as u64;
        let elapsed = start.elapsed().as_nanos();
        if elapsed >= min_ns && routed >= 2 * frames.len() as u64 {
            return elapsed as f64 / routed as f64;
        }
    }
}

/// Times the batched kernel: each pass refills one [`FrameBatch`] with
/// every pre-generated frame (grouped `batch_size` at a time) and routes
/// it through [`route_batch`]. The refill is part of the measured work —
/// a real submit path pays the same copy — so batched and per-frame rows
/// compare end to end. Returns mean ns per routed frame.
fn time_batched(
    net: &BnbNetwork,
    frames: &[Vec<Record>],
    scratch: &mut StageScratch,
    batch_size: usize,
    min_ns: u128,
) -> f64 {
    let n = net.inputs();
    let opts = RouteSpan::new();
    let mut batch = FrameBatch::with_capacity(n, batch_size.min(frames.len()));
    let mut outcome = BatchOutcome::new();
    let pass = |scratch: &mut StageScratch, batch: &mut FrameBatch, outcome: &mut BatchOutcome| {
        for group in frames.chunks(batch_size) {
            batch.clear();
            for frame in group {
                batch.push_frame(frame);
            }
            route_batch(net, batch, &opts, scratch, outcome);
            assert!(outcome.all_ok());
            black_box(batch.len());
        }
    };
    pass(scratch, &mut batch, &mut outcome);
    let mut routed = 0u64;
    let start = Instant::now();
    loop {
        pass(scratch, &mut batch, &mut outcome);
        routed += frames.len() as u64;
        let elapsed = start.elapsed().as_nanos();
        if elapsed >= min_ns && routed >= 2 * frames.len() as u64 {
            return elapsed as f64 / routed as f64;
        }
    }
}

/// Runs the benchmark matrix and returns the report. Shared by the CLI
/// command and the CI smoke test. Scalar rows stop at `scalar_max_m`
/// (the oracle is O(n·m²) per frame and exists for reference, not for
/// production sizes — though the default measures it everywhere).
#[allow(clippy::too_many_arguments)]
pub fn run_bench(
    min_m: usize,
    max_m: usize,
    frames: usize,
    seed: u64,
    min_ms_per_cell: u64,
    batch_size: usize,
    scalar_max_m: usize,
) -> BenchReport {
    use rand::SeedableRng;
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let min_ns = u128::from(min_ms_per_cell) * 1_000_000;
    let mut rows = Vec::new();
    for m in min_m..=max_m {
        let n = 1usize << m;
        let net = BnbNetwork::builder(m).data_width(32).build();
        let mut scratch = StageScratch::with_capacity(n);
        let batch: Vec<Vec<Record>> = (0..frames)
            .map(|_| records_for_permutation(&Permutation::random(n, &mut rng)))
            .collect();
        let mut buf = batch[0].clone();
        let mut push = |kernel: &str, batch_n: usize, ns: f64| {
            rows.push(BenchRow {
                kernel: kernel.to_string(),
                m,
                batch: batch_n,
                word_bits: 64,
                ns_per_frame: ns,
                cells_per_s: n as f64 * 1e9 / ns,
            });
        };
        let ns = time_kernel(&net, &batch, &mut scratch, &mut buf, Kernel::Packed, min_ns);
        push("packed", 1, ns);
        if m <= scalar_max_m {
            let ns = time_kernel(&net, &batch, &mut scratch, &mut buf, Kernel::Scalar, min_ns);
            push("scalar", 1, ns);
        }
        let ns = time_batched(&net, &batch, &mut scratch, batch_size, min_ns);
        push("batched", batch_size, ns);
    }
    BenchReport { frames, rows }
}

/// Renders the human-readable table: one line per size with every
/// measured kernel and the speedups over scalar.
fn render_table(report: &BenchReport) -> String {
    let mut out = String::from(
        "routing-kernel benchmark (ns/frame, lower is better)\n\
         \n\
         m      N     scalar ns     packed ns    batched ns   pk-x   bt-x   batched cells/s\n",
    );
    let mut by_m: Vec<usize> = report.rows.iter().map(|r| r.m).collect();
    by_m.dedup();
    for m in by_m {
        let find = |kernel: &str| report.rows.iter().find(|r| r.m == m && r.kernel == kernel);
        let packed = find("packed").expect("packed measured per size");
        let batched = find("batched").expect("batched measured per size");
        let scalar = find("scalar");
        let (scalar_ns, pk_x, bt_x) = match scalar {
            Some(s) => (
                format!("{:>13.0}", s.ns_per_frame),
                format!("{:>5.1}x", s.ns_per_frame / packed.ns_per_frame),
                format!("{:>5.1}x", s.ns_per_frame / batched.ns_per_frame),
            ),
            None => (format!("{:>13}", "-"), "    -".into(), "    -".into()),
        };
        let _ = writeln!(
            out,
            "{m:<2} {n:>6} {scalar_ns} {p:>13.0} {b:>13.0} {pk_x} {bt_x} {c:>17.3e}",
            n = 1usize << m,
            p = packed.ns_per_frame,
            b = batched.ns_per_frame,
            c = batched.cells_per_s,
        );
    }
    out
}

/// The `bnb bench` command.
pub(crate) fn cmd_bench(flags: &Flags) -> Result<String, CliError> {
    let min_m = flags.usize_or("--min-m", 4)?;
    let max_m = flags.usize_or("--max-m", 12)?;
    if min_m < 1 || max_m > 20 || min_m > max_m {
        return Err(err("--min-m/--max-m must satisfy 1 <= min <= max <= 20"));
    }
    let frames = flags.usize_or("--frames", 16)?;
    if frames == 0 || frames > 100_000 {
        return Err(err("--frames must be 1..=100000"));
    }
    let seed = flags.usize_or("--seed", 0)? as u64;
    let min_ms = flags.usize_or("--min-ms", 20)? as u64;
    let batch_size = flags.usize_or("--batch", 64)?;
    if batch_size == 0 || batch_size > 4096 {
        return Err(err("--batch must be 1..=4096"));
    }
    let scalar_max_m = flags.usize_or("--scalar-max-m", max_m)?;
    let report = run_bench(min_m, max_m, frames, seed, min_ms, batch_size, scalar_max_m);
    let mut out = if flags.present("--json") {
        let json = serde_json::to_string(&report)
            .map_err(|e| err(format!("bench serialization failed: {e}")))?;
        format!("{json}\n")
    } else {
        render_table(&report)
    };
    if let Some(path) = flags.value("--out") {
        let pretty = serde_json::to_string_pretty(&report)
            .map_err(|e| err(format!("bench serialization failed: {e}")))?;
        std::fs::write(path, format!("{pretty}\n"))
            .map_err(|e| CliError::caused_by(format!("failed to write {path}"), e))?;
        let _ = writeln!(out, "wrote {path}");
    }
    Ok(out)
}
