//! `bnb bench` — the routing-kernel micro-benchmark behind the repo's
//! `BENCH_routing.json` trajectory.
//!
//! Routes seeded random frames through both stage-span kernels — the
//! bit-packed word-parallel fast path (`route_span`) and the scalar
//! oracle it is held against (`route_span_scalar`) — and reports
//! nanoseconds per frame and cells per second for each size. The CI
//! bench-smoke job re-parses the `--json` output and fails if the packed
//! kernel ever regresses below the scalar one at m ≥ 8; a full-size run
//! (`bnb bench --out BENCH_routing.json`) is checked in so future PRs
//! have a baseline to diff against.

use std::fmt::Write as _;
use std::hint::black_box;
use std::time::Instant;

use bnb_core::network::BnbNetwork;
use bnb_core::stages::{route_span, route_span_scalar, StageScratch};
use bnb_topology::perm::Permutation;
use bnb_topology::record::{records_for_permutation, Record};
use serde::{Deserialize, Serialize};

use crate::{err, CliError, Flags};

/// One benchmark measurement: a kernel at a size.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BenchRow {
    /// Kernel name: `"packed"` or `"scalar"`.
    pub kernel: String,
    /// Network size exponent (`N = 2^m` cells per frame).
    pub m: usize,
    /// Mean wall-clock nanoseconds to route one full frame.
    pub ns_per_frame: f64,
    /// Routed cell throughput implied by `ns_per_frame`.
    pub cells_per_s: f64,
}

/// The full `bnb bench` document, as printed by `--json` and written by
/// `--out`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BenchReport {
    /// Distinct seeded frames cycled through per measurement pass.
    pub frames: usize,
    /// Measurements, ordered by size then kernel (packed first).
    pub rows: Vec<BenchRow>,
}

/// Times one kernel at one size: cycles through `frames` pre-generated
/// permutation frames, repeating whole passes until the measurement
/// window is long enough to trust (`min_ns`, at least two passes after
/// one warm-up pass). Returns mean ns per routed frame.
fn time_kernel(
    net: &BnbNetwork,
    frames: &[Vec<Record>],
    scratch: &mut StageScratch,
    buf: &mut Vec<Record>,
    scalar: bool,
    min_ns: u128,
) -> f64 {
    let m = net.m();
    let pass = |scratch: &mut StageScratch, buf: &mut Vec<Record>| {
        for frame in frames {
            buf.copy_from_slice(frame);
            if scalar {
                route_span_scalar(net, buf, 0, 0..m, scratch).unwrap();
            } else {
                route_span(net, buf, 0, 0..m, scratch).unwrap();
            }
            black_box(buf.last());
        }
    };
    // Warm-up sizes the scratch buffers and faults in the frame data.
    pass(scratch, buf);
    let mut routed = 0u64;
    let start = Instant::now();
    loop {
        pass(scratch, buf);
        routed += frames.len() as u64;
        let elapsed = start.elapsed().as_nanos();
        if elapsed >= min_ns && routed >= 2 * frames.len() as u64 {
            return elapsed as f64 / routed as f64;
        }
    }
}

/// Runs the benchmark matrix and returns the report. Shared by the CLI
/// command and the CI smoke test.
pub fn run_bench(
    min_m: usize,
    max_m: usize,
    frames: usize,
    seed: u64,
    min_ms_per_cell: u64,
) -> BenchReport {
    use rand::SeedableRng;
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let min_ns = u128::from(min_ms_per_cell) * 1_000_000;
    let mut rows = Vec::new();
    for m in min_m..=max_m {
        let n = 1usize << m;
        let net = BnbNetwork::builder(m).data_width(32).build();
        let mut scratch = StageScratch::with_capacity(n);
        let batch: Vec<Vec<Record>> = (0..frames)
            .map(|_| records_for_permutation(&Permutation::random(n, &mut rng)))
            .collect();
        let mut buf = batch[0].clone();
        for (kernel, is_scalar) in [("packed", false), ("scalar", true)] {
            let ns = time_kernel(&net, &batch, &mut scratch, &mut buf, is_scalar, min_ns);
            rows.push(BenchRow {
                kernel: kernel.to_string(),
                m,
                ns_per_frame: ns,
                cells_per_s: n as f64 * 1e9 / ns,
            });
        }
    }
    BenchReport { frames, rows }
}

/// Renders the human-readable table: one line per size with both
/// kernels and the packed/scalar speedup.
fn render_table(report: &BenchReport) -> String {
    let mut out = String::from(
        "routing-kernel benchmark (ns/frame, lower is better)\n\
         \n\
         m      N     packed ns     scalar ns   speedup   packed cells/s\n",
    );
    let mut by_m: Vec<usize> = report.rows.iter().map(|r| r.m).collect();
    by_m.dedup();
    for m in by_m {
        let find = |kernel: &str| {
            report
                .rows
                .iter()
                .find(|r| r.m == m && r.kernel == kernel)
                .expect("both kernels measured per size")
        };
        let packed = find("packed");
        let scalar = find("scalar");
        let _ = writeln!(
            out,
            "{m:<2} {n:>6} {p:>12.0} {s:>13.0} {x:>8.2}x {c:>15.3e}",
            n = 1usize << m,
            p = packed.ns_per_frame,
            s = scalar.ns_per_frame,
            x = scalar.ns_per_frame / packed.ns_per_frame,
            c = packed.cells_per_s,
        );
    }
    out
}

/// The `bnb bench` command.
pub(crate) fn cmd_bench(flags: &Flags) -> Result<String, CliError> {
    let min_m = flags.usize_or("--min-m", 4)?;
    let max_m = flags.usize_or("--max-m", 12)?;
    if min_m < 1 || max_m > 20 || min_m > max_m {
        return Err(err("--min-m/--max-m must satisfy 1 <= min <= max <= 20"));
    }
    let frames = flags.usize_or("--frames", 16)?;
    if frames == 0 || frames > 100_000 {
        return Err(err("--frames must be 1..=100000"));
    }
    let seed = flags.usize_or("--seed", 0)? as u64;
    let min_ms = flags.usize_or("--min-ms", 20)? as u64;
    let report = run_bench(min_m, max_m, frames, seed, min_ms);
    let mut out = if flags.present("--json") {
        let json = serde_json::to_string(&report)
            .map_err(|e| err(format!("bench serialization failed: {e}")))?;
        format!("{json}\n")
    } else {
        render_table(&report)
    };
    if let Some(path) = flags.value("--out") {
        let pretty = serde_json::to_string_pretty(&report)
            .map_err(|e| err(format!("bench serialization failed: {e}")))?;
        std::fs::write(path, format!("{pretty}\n"))
            .map_err(|e| CliError::caused_by(format!("failed to write {path}"), e))?;
        let _ = writeln!(out, "wrote {path}");
    }
    Ok(out)
}
