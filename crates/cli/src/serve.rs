//! `bnb serve` and `bnb loadgen` — the long-lived routing service and
//! its load-generator client.
//!
//! `serve` is the one command in this CLI that is not a pure function:
//! it binds a socket, prints a `listening on ADDR` line immediately (so
//! scripts and the CI soak can discover the ephemeral port), and blocks
//! until a graceful drain is requested by SIGTERM/SIGINT or a wire
//! `SHUTDOWN` message. Its *return value* is still pure: the session's
//! [`ServeReport`] as JSON, printed by `main` after the drain.
//!
//! `loadgen` drives a running server and returns the
//! [`bnb_serve::LoadgenReport`] as JSON; `--out FILE` additionally
//! writes the JSON to a file for CI artifacts.

use std::io::Write as _;
use std::net::TcpListener;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

use bnb_engine::LiveFaultPlan;
use bnb_serve::{
    install_signal_handlers, run_loadgen, LoadMode, LoadgenConfig, ServeConfig, Server,
    ServerControl,
};
use bnb_sim::chaos::{ChaosAction, ChaosSchedule};

use crate::{err, CliError, Flags};

fn u64_or(flags: &Flags, name: &str, default: u64) -> Result<u64, CliError> {
    match flags.value(name) {
        None => Ok(default),
        Some(v) => v
            .parse()
            .map_err(|_| err(format!("{name} expects an integer, got {v}"))),
    }
}

fn f64_or(flags: &Flags, name: &str, default: f64) -> Result<f64, CliError> {
    match flags.value(name) {
        None => Ok(default),
        Some(v) => v
            .parse()
            .map_err(|_| err(format!("{name} expects a number, got {v}"))),
    }
}

fn require_power_of_two(flags: &Flags, name: &str, default: usize) -> Result<usize, CliError> {
    let n = flags.usize_or(name, default)?;
    if n < 2 || !n.is_power_of_two() {
        return Err(err(format!("{name} expects a power of two >= 2, got {n}")));
    }
    Ok(n)
}

/// `bnb serve`: run a serving session until a graceful drain.
pub(crate) fn cmd_serve(flags: &Flags) -> Result<String, CliError> {
    let addr = flags.value("--addr").unwrap_or("127.0.0.1:0");
    let config = ServeConfig {
        inputs: require_power_of_two(flags, "--inputs", 64)?,
        workers: flags.usize_or("--workers", 2)?.max(1),
        queue_capacity: flags.usize_or("--queue", 8)?.max(1),
        tenant_quota: flags.usize_or("--tenant-quota", 4)?.max(1),
        max_connections: flags.usize_or("--max-conns", 64)?.max(1),
        read_timeout: Duration::from_millis(u64_or(flags, "--read-timeout-ms", 100)?.max(1)),
    };
    let pretty = flags.present("--pretty");
    let chaos = flags.present("--chaos");
    let shards = flags.usize_or("--shards", 2)?;
    if shards == 0 || shards > 64 {
        return Err(err(format!("--shards expects 1..=64, got {shards}")));
    }
    let chaos_ops = flags.usize_or("--chaos-ops", 16)?;
    if chaos_ops > 10_000 {
        return Err(err("--chaos-ops must be <= 10000"));
    }
    let chaos_interval =
        Duration::from_millis(u64_or(flags, "--chaos-interval-ms", 50)?.clamp(1, 60_000));
    let seed = u64_or(flags, "--seed", 0xC4A05)?;
    let m = config.inputs.trailing_zeros() as usize;
    // Generate (and optionally persist) the fault schedule before binding,
    // so a failed session still leaves its script behind for replay.
    let schedule = chaos.then(|| ChaosSchedule::generate(m, shards, chaos_ops, chaos_ops, seed));
    if let (Some(schedule), Some(path)) = (&schedule, flags.value("--chaos-out")) {
        let json = serde_json::to_string(schedule)
            .map_err(|e| CliError::caused_by("cannot serialize chaos schedule", e))?;
        std::fs::write(path, &json)
            .map_err(|e| CliError::caused_by(format!("cannot write {path}"), e))?;
    }

    let listener = TcpListener::bind(addr)
        .map_err(|e| CliError::caused_by(format!("cannot bind {addr}"), e))?;
    let local = listener
        .local_addr()
        .map_err(|e| CliError::caused_by("cannot read bound address", e))?;
    // Announce the bound address *now* — with --addr 127.0.0.1:0 this is
    // the only way a caller learns the ephemeral port.
    println!("listening on {local}");
    std::io::stdout().flush().ok();

    install_signal_handlers();
    let control = ServerControl::new();
    let counters = bnb_obs::Counters::new();
    let report = match &schedule {
        None => Server::new(config, &counters)
            .serve(listener, &control)
            .map_err(|e| CliError::caused_by("serving session failed", e))?,
        Some(schedule) => {
            // The chaos driver and the serving engine share one live
            // plan: the driver damages and heals shards on a fixed
            // cadence while the engine's scrubber routes around the
            // damage. After the script ends every shard is cleared, so
            // a session that outlives its schedule converges back to
            // full capacity.
            let plan = LiveFaultPlan::healthy(shards).with_probe_seed(seed);
            let server = Server::with_fault_plan(config, &counters, &plan);
            let stop = AtomicBool::new(false);
            let result = std::thread::scope(|s| {
                s.spawn(|| {
                    for op in &schedule.ops {
                        if stop.load(Ordering::Acquire) {
                            break;
                        }
                        match op.action {
                            ChaosAction::Inject { shard, site, kind } => {
                                plan.inject(shard, site, kind)
                            }
                            ChaosAction::Clear { shard } => plan.clear(shard),
                        }
                        std::thread::sleep(chaos_interval);
                    }
                    for shard in 0..shards {
                        plan.clear(shard);
                    }
                });
                let result = server.serve(listener, &control);
                stop.store(true, Ordering::Release);
                result
            });
            result.map_err(|e| CliError::caused_by("serving session failed", e))?
        }
    };

    let json = if pretty {
        serde_json::to_string_pretty(&report)
    } else {
        serde_json::to_string(&report)
    }
    .map_err(|e| CliError::caused_by("cannot serialize serve report", e))?;
    Ok(format!("{json}\n"))
}

/// `bnb loadgen`: drive a running server and report what came back.
pub(crate) fn cmd_loadgen(flags: &Flags) -> Result<String, CliError> {
    let mode = match flags.value("--mode").unwrap_or("closed") {
        "closed" => LoadMode::Closed {
            inflight: flags.usize_or("--inflight", 4)?.max(1),
        },
        "open" => {
            let qps = f64_or(flags, "--qps", 500.0)?;
            if !qps.is_finite() || qps <= 0.0 {
                return Err(err(format!("--qps expects a positive rate, got {qps}")));
            }
            LoadMode::Open { qps }
        }
        other => {
            return Err(err(format!(
                "--mode expects 'closed' or 'open', got {other}"
            )))
        }
    };
    let tenants = u64_or(flags, "--tenants", 4)?;
    if tenants == 0 || tenants > u64::from(u16::MAX) {
        return Err(err(format!("--tenants expects 1..=65535, got {tenants}")));
    }
    let config = LoadgenConfig {
        addr: flags
            .value("--addr")
            .unwrap_or("127.0.0.1:9500")
            .to_string(),
        tenants: tenants as u16,
        frames: u64_or(flags, "--frames", 64)?,
        inputs: require_power_of_two(flags, "--inputs", 64)?,
        mode,
        seed: u64_or(flags, "--seed", 0xB1B0)?,
        drain_window: Duration::from_millis(u64_or(flags, "--drain-ms", 2000)?.max(1)),
        shutdown_when_done: flags.present("--shutdown"),
    };

    let report = run_loadgen(&config).map_err(|e| {
        CliError::caused_by(format!("load generation against {} failed", config.addr), e)
    })?;

    let json = if flags.present("--pretty") {
        serde_json::to_string_pretty(&report)
    } else {
        serde_json::to_string(&report)
    }
    .map_err(|e| CliError::caused_by("cannot serialize loadgen report", e))?;
    if let Some(path) = flags.value("--out") {
        std::fs::write(path, &json)
            .map_err(|e| CliError::caused_by(format!("cannot write {path}"), e))?;
    }
    Ok(format!("{json}\n"))
}
