//! `bnb serve` and `bnb loadgen` — the long-lived routing service and
//! its load-generator client.
//!
//! `serve` is the one command in this CLI that is not a pure function:
//! it binds a socket, prints a `listening on ADDR` line immediately (so
//! scripts and the CI soak can discover the ephemeral port), and blocks
//! until a graceful drain is requested by SIGTERM/SIGINT or a wire
//! `SHUTDOWN` message. Its *return value* is still pure: the session's
//! [`ServeReport`] as JSON, printed by `main` after the drain.
//!
//! `loadgen` drives a running server and returns the
//! [`bnb_serve::LoadgenReport`] as JSON; `--out FILE` additionally
//! writes the JSON to a file for CI artifacts.
//!
//! `top` polls a running server's `/status` endpoint and renders a
//! refreshing terminal dashboard — per-stage latency, tenant windows,
//! engine queue depths, and fabric health — like `top(1)` for the
//! routing service.

use std::io::{Read as _, Write as _};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

use bnb_engine::LiveFaultPlan;
use bnb_obs::FlightRecorder;
use bnb_serve::{
    install_signal_handlers, run_loadgen, run_sweep, LoadMode, LoadgenConfig, ServeConfig, Server,
    ServerControl, StatusSnapshot, TenantKeys,
};
use bnb_sim::chaos::{ChaosAction, ChaosSchedule};

use crate::{err, finish_recording, sample_flag, CliError, Flags};

fn u64_or(flags: &Flags, name: &str, default: u64) -> Result<u64, CliError> {
    match flags.value(name) {
        None => Ok(default),
        Some(v) => v
            .parse()
            .map_err(|_| err(format!("{name} expects an integer, got {v}"))),
    }
}

fn f64_or(flags: &Flags, name: &str, default: f64) -> Result<f64, CliError> {
    match flags.value(name) {
        None => Ok(default),
        Some(v) => v
            .parse()
            .map_err(|_| err(format!("{name} expects a number, got {v}"))),
    }
}

/// Loads and parses a `--tenant-keys` file when the flag is present.
fn tenant_keys_flag(flags: &Flags) -> Result<Option<TenantKeys>, CliError> {
    let Some(path) = flags.value("--tenant-keys") else {
        return Ok(None);
    };
    let text = std::fs::read_to_string(path)
        .map_err(|e| CliError::caused_by(format!("cannot read {path}"), e))?;
    let keys = TenantKeys::parse(&text).map_err(|e| err(format!("bad key file {path}: {e}")))?;
    if keys.is_empty() {
        return Err(err(format!("{path} provisions no tenants")));
    }
    Ok(Some(keys))
}

fn require_power_of_two(flags: &Flags, name: &str, default: usize) -> Result<usize, CliError> {
    let n = flags.usize_or(name, default)?;
    if n < 2 || !n.is_power_of_two() {
        return Err(err(format!("{name} expects a power of two >= 2, got {n}")));
    }
    Ok(n)
}

/// `bnb serve`: run a serving session until a graceful drain.
pub(crate) fn cmd_serve(flags: &Flags) -> Result<String, CliError> {
    let addr = flags.value("--addr").unwrap_or("127.0.0.1:0");
    let config = ServeConfig {
        inputs: require_power_of_two(flags, "--inputs", 64)?,
        workers: flags.usize_or("--workers", 2)?.max(1),
        queue_capacity: flags.usize_or("--queue", 8)?.max(1),
        tenant_quota: flags.usize_or("--tenant-quota", 4)?.max(1),
        max_connections: flags.usize_or("--max-conns", 64)?.max(1),
        read_timeout: Duration::from_millis(u64_or(flags, "--read-timeout-ms", 100)?.max(1)),
        slow_ms: u64_or(flags, "--slow-ms", 0)?,
        reactor_threads: flags.usize_or("--threads", 0)?,
        window: flags.usize_or("--window", 32)?.max(1),
    };
    let tenant_keys = tenant_keys_flag(flags)?;
    let record_path = flags.value("--record");
    let recorder = FlightRecorder::new().policy(sample_flag(flags)?);
    let pretty = flags.present("--pretty");
    let chaos = flags.present("--chaos");
    let shards = flags.usize_or("--shards", 2)?;
    if shards == 0 || shards > 64 {
        return Err(err(format!("--shards expects 1..=64, got {shards}")));
    }
    let chaos_ops = flags.usize_or("--chaos-ops", 16)?;
    if chaos_ops > 10_000 {
        return Err(err("--chaos-ops must be <= 10000"));
    }
    let chaos_interval =
        Duration::from_millis(u64_or(flags, "--chaos-interval-ms", 50)?.clamp(1, 60_000));
    let seed = u64_or(flags, "--seed", 0xC4A05)?;
    let m = config.inputs.trailing_zeros() as usize;
    // Generate (and optionally persist) the fault schedule before binding,
    // so a failed session still leaves its script behind for replay.
    let schedule = chaos.then(|| ChaosSchedule::generate(m, shards, chaos_ops, chaos_ops, seed));
    if let (Some(schedule), Some(path)) = (&schedule, flags.value("--chaos-out")) {
        let json = serde_json::to_string(schedule)
            .map_err(|e| CliError::caused_by("cannot serialize chaos schedule", e))?;
        std::fs::write(path, &json)
            .map_err(|e| CliError::caused_by(format!("cannot write {path}"), e))?;
    }

    let listener = TcpListener::bind(addr)
        .map_err(|e| CliError::caused_by(format!("cannot bind {addr}"), e))?;
    let local = listener
        .local_addr()
        .map_err(|e| CliError::caused_by("cannot read bound address", e))?;
    // Announce the bound address *now* — with --addr 127.0.0.1:0 this is
    // the only way a caller learns the ephemeral port.
    println!("listening on {local}");
    std::io::stdout().flush().ok();

    install_signal_handlers();
    let control = ServerControl::new();
    let counters = bnb_obs::Counters::new();
    let report = match &schedule {
        None => {
            let mut server = Server::new(config, &counters).with_recorder(&recorder);
            if let Some(keys) = tenant_keys.clone() {
                server = server.with_tenant_keys(keys);
            }
            server
                .serve(listener, &control)
                .map_err(|e| CliError::caused_by("serving session failed", e))?
        }
        Some(schedule) => {
            // The chaos driver and the serving engine share one live
            // plan: the driver damages and heals shards on a fixed
            // cadence while the engine's scrubber routes around the
            // damage. After the script ends every shard is cleared, so
            // a session that outlives its schedule converges back to
            // full capacity.
            let plan = LiveFaultPlan::healthy(shards).with_probe_seed(seed);
            let mut server =
                Server::with_fault_plan(config, &counters, &plan).with_recorder(&recorder);
            if let Some(keys) = tenant_keys.clone() {
                server = server.with_tenant_keys(keys);
            }
            let stop = AtomicBool::new(false);
            let result = std::thread::scope(|s| {
                s.spawn(|| {
                    for op in &schedule.ops {
                        if stop.load(Ordering::Acquire) {
                            break;
                        }
                        match op.action {
                            ChaosAction::Inject { shard, site, kind } => {
                                plan.inject(shard, site, kind)
                            }
                            ChaosAction::Clear { shard } => plan.clear(shard),
                        }
                        std::thread::sleep(chaos_interval);
                    }
                    for shard in 0..shards {
                        plan.clear(shard);
                    }
                });
                let result = server.serve(listener, &control);
                stop.store(true, Ordering::Release);
                result
            });
            result.map_err(|e| CliError::caused_by("serving session failed", e))?
        }
    };

    let json = if pretty {
        serde_json::to_string_pretty(&report)
    } else {
        serde_json::to_string(&report)
    }
    .map_err(|e| CliError::caused_by("cannot serialize serve report", e))?;
    finish_recording(record_path, &recorder, Ok(format!("{json}\n")))
}

/// `bnb loadgen`: drive a running server and report what came back.
pub(crate) fn cmd_loadgen(flags: &Flags) -> Result<String, CliError> {
    let mode = match flags.value("--mode").unwrap_or("closed") {
        "closed" => LoadMode::Closed {
            // --window is the pipelining-era spelling; --inflight the
            // original. When both appear, --window wins.
            inflight: match flags.value("--window") {
                Some(_) => flags.usize_or("--window", 4)?.max(1),
                None => flags.usize_or("--inflight", 4)?.max(1),
            },
        },
        "open" => {
            let qps = f64_or(flags, "--qps", 500.0)?;
            if !qps.is_finite() || qps <= 0.0 {
                return Err(err(format!("--qps expects a positive rate, got {qps}")));
            }
            LoadMode::Open { qps }
        }
        other => {
            return Err(err(format!(
                "--mode expects 'closed' or 'open', got {other}"
            )))
        }
    };
    let tenants = u64_or(flags, "--tenants", 4)?;
    if tenants == 0 || tenants > u64::from(u16::MAX) {
        return Err(err(format!("--tenants expects 1..=65535, got {tenants}")));
    }
    // --connections: absent = one per tenant; one value = that many
    // sockets; a comma list = a full scaling sweep.
    let sweep: Vec<usize> = match flags.value("--connections") {
        None => Vec::new(),
        Some(list) => {
            let mut counts = Vec::new();
            for part in list.split(',') {
                let n: usize = part.trim().parse().map_err(|_| {
                    err(format!("--connections expects integers, got '{part}'"))
                })?;
                if n == 0 || n > 65_535 {
                    return Err(err(format!("--connections expects 1..=65535, got {n}")));
                }
                counts.push(n);
            }
            if counts.is_empty() {
                return Err(err("--connections expects at least one count"));
            }
            counts
        }
    };
    let config = LoadgenConfig {
        addr: flags
            .value("--addr")
            .unwrap_or("127.0.0.1:9500")
            .to_string(),
        tenants: tenants as u16,
        connections: if sweep.len() == 1 { sweep[0] } else { 0 },
        frames: u64_or(flags, "--frames", 64)?,
        inputs: require_power_of_two(flags, "--inputs", 64)?,
        mode,
        seed: u64_or(flags, "--seed", 0xB1B0)?,
        drain_window: Duration::from_millis(u64_or(flags, "--drain-ms", 2000)?.max(1)),
        shutdown_when_done: flags.present("--shutdown"),
        max_resubmits: {
            let n = u64_or(flags, "--resubmits", 0)?;
            if n > 1000 {
                return Err(err(format!("--resubmits expects 0..=1000, got {n}")));
            }
            n as u32
        },
        keys: tenant_keys_flag(flags)?,
    };

    let pretty = flags.present("--pretty");
    let json = if sweep.len() > 1 {
        let report = run_sweep(&config, &sweep).map_err(|e| {
            CliError::caused_by(
                format!("connection sweep against {} failed", config.addr),
                e,
            )
        })?;
        if pretty {
            serde_json::to_string_pretty(&report)
        } else {
            serde_json::to_string(&report)
        }
    } else {
        let report = run_loadgen(&config).map_err(|e| {
            CliError::caused_by(format!("load generation against {} failed", config.addr), e)
        })?;
        if pretty {
            serde_json::to_string_pretty(&report)
        } else {
            serde_json::to_string(&report)
        }
    }
    .map_err(|e| CliError::caused_by("cannot serialize loadgen report", e))?;
    if let Some(path) = flags.value("--out") {
        std::fs::write(path, &json)
            .map_err(|e| CliError::caused_by(format!("cannot write {path}"), e))?;
    }
    Ok(format!("{json}\n"))
}

/// `bnb top`: poll a running server's `/status` endpoint and render a
/// refreshing terminal dashboard. `--count N` stops after N polls
/// (default 0 = until the server goes away or Ctrl-C); `--count 1`
/// prints one dashboard without clearing the screen, which is what
/// scripts and tests want.
pub(crate) fn cmd_top(flags: &Flags) -> Result<String, CliError> {
    let addr = flags.value("--addr").unwrap_or("127.0.0.1:9500");
    let interval = Duration::from_millis(u64_or(flags, "--interval-ms", 1000)?.clamp(50, 60_000));
    let count = u64_or(flags, "--count", 0)?;
    let clear = count != 1;

    let mut polls = 0u64;
    loop {
        let status = fetch_status(addr)
            .map_err(|e| CliError::caused_by(format!("cannot poll {addr}/status"), e))?;
        let dashboard = render_top(addr, &status);
        if clear {
            // Clear + home, like top(1); the dashboard repaints in place.
            print!("\x1b[2J\x1b[H{dashboard}");
            std::io::stdout().flush().ok();
        }
        polls += 1;
        if count != 0 && polls >= count {
            return Ok(if clear { String::new() } else { dashboard });
        }
        std::thread::sleep(interval);
    }
}

/// One HTTP GET of `/status`, parsed into a [`StatusSnapshot`].
fn fetch_status(addr: &str) -> std::io::Result<StatusSnapshot> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(5)))?;
    stream.write_all(
        format!("GET /status HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\r\n").as_bytes(),
    )?;
    let mut response = Vec::new();
    stream.read_to_end(&mut response)?;
    let body_at = response
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .map(|i| i + 4)
        .ok_or_else(|| std::io::Error::new(std::io::ErrorKind::InvalidData, "no HTTP body"))?;
    let body = std::str::from_utf8(&response[body_at..])
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))?;
    serde_json::from_str(body).map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))
}

fn fmt_ns(ns: u64) -> String {
    if ns >= 1_000_000 {
        format!("{:.1}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.1}µs", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

/// Renders one `/status` snapshot as the `bnb top` dashboard. Pure, so
/// the layout is unit-testable without a server.
pub(crate) fn render_top(addr: &str, s: &StatusSnapshot) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "bnb top — {addr}  up {:.1}s  {}\n",
        s.uptime_ms as f64 / 1e3,
        if s.draining { "DRAINING" } else { "serving" }
    ));
    out.push_str(&format!(
        "conns {}  reactors {}  inflight {}  window {}/{}  engine queue {}/{} hw  batches {}  records {}  errors {}\n",
        s.connections,
        s.reactors,
        s.inflight,
        s.window.max_depth,
        s.window.limit,
        s.engine.queue_depth,
        s.engine.queue_high_water,
        s.engine.batches,
        s.engine.records,
        s.engine.errors,
    ));
    out.push_str(&format!(
        "slow {} (threshold {})\n",
        s.telemetry.slow_captured,
        if s.telemetry.slow_threshold_ns == 0 {
            "off".to_string()
        } else {
            fmt_ns(s.telemetry.slow_threshold_ns)
        }
    ));
    out.push_str("\nSTAGE           COUNT        P50        P95        P99        MAX\n");
    for st in s
        .telemetry
        .stages
        .iter()
        .chain(std::iter::once(&s.telemetry.wire))
    {
        out.push_str(&format!(
            "{:<12} {:>8} {:>10} {:>10} {:>10} {:>10}\n",
            st.stage,
            st.count,
            fmt_ns(st.p50_ns),
            fmt_ns(st.p95_ns),
            fmt_ns(st.p99_ns),
            fmt_ns(st.max_ns),
        ));
    }
    if !s.telemetry.tenants.is_empty() {
        out.push_str(&format!(
            "\nTENANT (last {:.0}s)  COUNT      BYTES  RETRY  ERR        P50        P99\n",
            s.telemetry.window_ms as f64 / 1e3
        ));
        for t in &s.telemetry.tenants {
            out.push_str(&format!(
                "{:<18} {:>6} {:>10} {:>6} {:>4} {:>10} {:>10}\n",
                t.tenant,
                t.count,
                t.bytes,
                t.retries,
                t.errors,
                fmt_ns(t.p50_ns),
                fmt_ns(t.p99_ns),
            ));
        }
    }
    if let Some(fabric) = &s.fabric {
        out.push_str(&format!(
            "\nFABRIC  {} healthy{}\n",
            fabric.healthy,
            if fabric.degraded { "  DEGRADED" } else { "" }
        ));
        for sh in &fabric.shards {
            out.push_str(&format!(
                "shard {:<3} {:<12} clean_streak {:<4} faults {}\n",
                sh.shard,
                sh.health,
                sh.clean_streak,
                sh.faults.len(),
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use bnb_obs::{StageSnapshot, TelemetrySnapshot, TenantSnapshot};
    use bnb_serve::EngineStatus;

    fn stage(name: &str, count: u64) -> StageSnapshot {
        StageSnapshot {
            stage: name.to_string(),
            count,
            sum_ns: count * 1_000,
            p50_ns: 900,
            p95_ns: 40_000,
            p99_ns: 2_500_000,
            max_ns: 3_000_000,
        }
    }

    fn sample_status() -> StatusSnapshot {
        StatusSnapshot {
            uptime_ms: 12_500,
            inflight: 3,
            connections: 2,
            reactors: 2,
            draining: false,
            window: bnb_serve::WindowStatus {
                limit: 32,
                max_depth: 5,
            },
            telemetry: TelemetrySnapshot {
                uptime_ms: 12_500,
                window_ms: 60_000,
                slow_threshold_ns: 5_000_000,
                slow_captured: 1,
                stages: vec![stage("decode", 10), stage("route", 10)],
                wire: stage("wire", 10),
                tenants: vec![TenantSnapshot {
                    tenant: 7,
                    count: 10,
                    bytes: 640,
                    retries: 2,
                    errors: 0,
                    p50_ns: 900,
                    p95_ns: 40_000,
                    p99_ns: 2_500_000,
                }],
            },
            engine: EngineStatus {
                queue_depth: 1,
                queue_high_water: 4,
                task_queue_high_water: 8,
                batches: 10,
                records: 160,
                errors: 0,
                wait_latency: Default::default(),
                latency: Default::default(),
            },
            fabric: None,
        }
    }

    #[test]
    fn fmt_ns_picks_readable_units() {
        assert_eq!(fmt_ns(900), "900ns");
        assert_eq!(fmt_ns(40_000), "40.0µs");
        assert_eq!(fmt_ns(2_500_000), "2.5ms");
    }

    #[test]
    fn render_top_shows_stages_tenants_and_engine_state() {
        let out = render_top("127.0.0.1:9500", &sample_status());
        assert!(out.contains("bnb top — 127.0.0.1:9500"), "{out}");
        assert!(out.contains("serving"), "{out}");
        assert!(out.contains("decode"), "{out}");
        assert!(out.contains("wire"), "{out}");
        assert!(out.contains("engine queue 1/4"), "{out}");
        assert!(out.contains("reactors 2"), "{out}");
        assert!(out.contains("window 5/32"), "{out}");
        // Tenant row: id, window count, retries.
        assert!(out.contains('7'), "{out}");
        assert!(out.contains("slow 1 (threshold 5.0ms)"), "{out}");
        // No fault plan: the fabric section is absent entirely.
        assert!(!out.contains("FABRIC"), "{out}");
    }

    #[test]
    fn render_top_marks_draining_and_fabric_health() {
        let mut status = sample_status();
        status.draining = true;
        status.fabric = Some(bnb_engine::PlanStatus {
            healthy: 1,
            degraded: true,
            shards: vec![bnb_engine::ShardStatus {
                shard: 0,
                health: "quarantined".to_string(),
                clean_streak: 0,
                faults: Vec::new(),
            }],
        });
        let out = render_top("x", &status);
        assert!(out.contains("DRAINING"), "{out}");
        assert!(out.contains("DEGRADED"), "{out}");
        assert!(out.contains("quarantined"), "{out}");
    }
}
