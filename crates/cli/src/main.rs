//! The `bnb` binary: parse `argv`, dispatch to [`bnb_cli::run`], print.

use std::error::Error;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match bnb_cli::run(&args) {
        Ok(out) => {
            print!("{out}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {e}");
            let mut cause = e.source();
            while let Some(c) = cause {
                eprintln!("  caused by: {c}");
                cause = c.source();
            }
            ExitCode::FAILURE
        }
    }
}
